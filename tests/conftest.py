"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cnf.formula import CNFFormula
from repro.cnf.paper_instances import (
    example6_instance,
    example7_instance,
    section4_sat_instance,
    section4_unsat_instance,
)
from repro.core.config import NBLConfig
from repro.noise.telegraph import BipolarCarrier
from repro.noise.uniform import UniformCarrier


#: Master seed shared by every randomised test; change it here to re-roll
#: all derived streams at once (the fuzz suites fold per-case indices in).
TEST_MASTER_SEED = 12345


@pytest.fixture
def seed() -> int:
    """The suite-wide master seed for randomised/property tests."""
    return TEST_MASTER_SEED


@pytest.fixture
def rng(seed: int) -> np.random.Generator:
    """A deterministic NumPy generator seeded from the shared master seed."""
    return np.random.default_rng(seed)


@pytest.fixture
def sat_instance() -> CNFFormula:
    """The paper's Section IV satisfiable instance (n=2, m=4, one model)."""
    return section4_sat_instance()


@pytest.fixture
def unsat_instance() -> CNFFormula:
    """The paper's Section IV unsatisfiable instance (n=2, m=4)."""
    return section4_unsat_instance()


@pytest.fixture
def example6() -> CNFFormula:
    """Example 6: (x1+x2)(~x1+~x2), two models."""
    return example6_instance()


@pytest.fixture
def example7() -> CNFFormula:
    """Example 7: (x1)(~x1), unsatisfiable."""
    return example7_instance()


@pytest.fixture
def fast_uniform_config() -> NBLConfig:
    """Small-budget configuration with the paper's uniform carrier."""
    return NBLConfig(
        carrier=UniformCarrier(),
        max_samples=120_000,
        block_size=30_000,
        min_samples=30_000,
        seed=7,
    )


@pytest.fixture
def fast_bipolar_config() -> NBLConfig:
    """Small-budget configuration with the high-SNR bipolar carrier."""
    return NBLConfig(
        carrier=BipolarCarrier(),
        max_samples=60_000,
        block_size=15_000,
        min_samples=15_000,
        seed=11,
    )
