"""Differential fuzzing of the flat-arena CDCL kernel against its oracles.

The arena kernel rewrite (:mod:`repro.solvers.cdcl.kernel`) replaced the
per-clause-object kernel wholesale; :class:`LegacyCDCLSolver` is a frozen
copy of the pre-rewrite implementation kept as a differential oracle. A
seeded corpus of random 3-SAT (several clause/variable ratios) plus
structured pigeonhole / coloring / parity instances is solved three ways
— arena kernel, legacy kernel, brute-force enumeration — and checked:

* all three verdicts agree on every formula (zero mismatches),
* every SAT verdict (arena and legacy) ships a model that satisfies the
  formula,
* every arena UNSAT verdict ships a DRAT proof the in-repo RUP/RAT
  checker accepts (zero rejected proofs),
* half the corpus runs the arena kernel with aggressive restart /
  DB-reduction / inprocessing knobs, so the proofs cover clause deletion,
  strengthening and compaction — not just the happy path.

``test_kernel_differential`` (200+ formulas) is the tier-1 acceptance
run; ``test_kernel_differential_smoke`` (50 formulas) is the fast-lane
subset CI selects by name; the ``slow``-marked variant re-rolls a
nightly-sized corpus via ``REPRO_FUZZ_ITERATIONS``.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.cnf.generators import random_ksat
from repro.cnf.structured import (
    complete_graph_edges,
    cycle_graph_edges,
    graph_coloring_formula,
    parity_chain_formula,
    pigeonhole_formula,
)
from repro.proofs import ProofLog, check_proof
from repro.solvers.brute_force import BruteForceSolver
from repro.solvers.cdcl import CDCLSolver, LegacyCDCLSolver

#: Clause/variable ratios: under, at and over the phase transition, plus a
#: dense band that is almost surely UNSAT (to exercise proof emission).
_RATIOS = (2.0, 3.0, 4.27, 5.5, 6.0)
_SMOKE_FORMULAS = 50
_FULL_FORMULAS = 200


def _corpus(seed: int, count: int, max_vars: int = 9):
    rng = np.random.default_rng(seed)
    corpus = []
    for index in range(count):
        ratio = _RATIOS[index % len(_RATIOS)]
        num_vars = int(rng.integers(5, max_vars + 1))
        num_clauses = max(1, round(ratio * num_vars))
        formula = random_ksat(
            num_vars, num_clauses, 3, seed=int(rng.integers(0, 2**31))
        )
        corpus.append((f"3sat[{index}] n={num_vars} r={ratio}", formula))
    corpus += [
        ("php(3,2)", pigeonhole_formula(3, 2)),
        ("php(4,3)", pigeonhole_formula(4, 3)),
        ("php(5,4)", pigeonhole_formula(5, 4)),
        ("color(C5,2)", graph_coloring_formula(cycle_graph_edges(5), 5, 2)),
        ("color(C5,3)", graph_coloring_formula(cycle_graph_edges(5), 5, 3)),
        ("color(K4,3)", graph_coloring_formula(complete_graph_edges(4), 4, 3)),
        ("parity(5,1)", parity_chain_formula(5, 1)),
        ("parity(6,0)", parity_chain_formula(6, 0)),
    ]
    return corpus


def _aggressive_solver() -> CDCLSolver:
    """Arena solver tuned so tiny instances still restart, reduce and
    inprocess — the paths a default-knob run never reaches."""
    return CDCLSolver(
        restart_base=3,
        reduce_interval=8,
        keep_lbd=1,
        inprocess_interval=1,
        inprocess_budget=64,
    )


def _assert_satisfies(label: str, who: str, result, formula) -> None:
    assert result.assignment is not None, f"{label}: {who} SAT without model"
    assert formula.evaluate(result.assignment.as_dict()), (
        f"{label}: {who} returned a non-satisfying assignment"
    )


def _run_kernel_differential(corpus) -> tuple[int, int]:
    """Shared fuzz loop; returns (formulas checked, proofs checked)."""
    brute = BruteForceSolver()
    legacy = LegacyCDCLSolver()
    proofs_checked = 0
    for index, (label, formula) in enumerate(corpus):
        truth = brute.solve(formula)
        assert truth.status in ("SAT", "UNSAT")

        arena = CDCLSolver() if index % 2 == 0 else _aggressive_solver()
        log = ProofLog()
        arena_result = arena.solve(formula, proof=log)
        legacy_result = legacy.solve(formula)

        assert arena_result.status == truth.status, (
            f"{label}: arena kernel says {arena_result.status}, "
            f"brute force says {truth.status}"
        )
        assert legacy_result.status == truth.status, (
            f"{label}: legacy kernel says {legacy_result.status}, "
            f"brute force says {truth.status}"
        )
        if arena_result.is_sat:
            _assert_satisfies(label, "arena", arena_result, formula)
            _assert_satisfies(label, "legacy", legacy_result, formula)
        else:
            verdict = check_proof(formula, log.text())
            assert verdict, f"{label}: arena proof rejected: {verdict.reason}"
            proofs_checked += 1
    return len(corpus), proofs_checked


def test_kernel_differential(seed):
    """Tier-1 acceptance run: 200+ formulas, zero mismatches, all proofs."""
    checked, proofs = _run_kernel_differential(
        _corpus(seed + 11, _FULL_FORMULAS)
    )
    assert checked >= 200, f"only {checked} formulas checked"
    assert proofs >= 40, f"only {proofs} UNSAT proofs checked"


def test_kernel_differential_smoke(seed):
    """Fast-lane subset (50 formulas) selected by name in CI."""
    checked, _ = _run_kernel_differential(
        _corpus(seed + 12, _SMOKE_FORMULAS)[:_SMOKE_FORMULAS]
    )
    assert checked == _SMOKE_FORMULAS


@pytest.mark.slow
def test_kernel_differential_extended(seed):
    """Nightly-sized corpus (REPRO_FUZZ_ITERATIONS, default 1000)."""
    iterations = int(os.environ.get("REPRO_FUZZ_ITERATIONS", "1000"))
    _run_kernel_differential(_corpus(seed + 13, iterations, max_vars=11))
