"""Property-based tests (hypothesis) on the core data structures and invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cnf.assignment import Assignment
from repro.cnf.clause import Clause
from repro.cnf.dimacs import parse_dimacs, to_dimacs
from repro.cnf.evaluate import count_models, satisfying_minterm_mask
from repro.cnf.formula import CNFFormula
from repro.cnf.literal import Literal
from repro.core.sigma import satisfying_minterms
from repro.core.symbolic import SymbolicNBLEngine
from repro.hyperspace.minterm import MintermSet
from repro.solvers.brute_force import BruteForceSolver
from repro.solvers.cdcl import CDCLSolver
from repro.solvers.dpll import DPLLSolver

MAX_VARS = 4

# -- strategies ---------------------------------------------------------------

literal_ints = st.integers(min_value=1, max_value=MAX_VARS).flatmap(
    lambda v: st.sampled_from([v, -v])
)

clauses = st.lists(literal_ints, min_size=1, max_size=3)

formulas = st.lists(clauses, min_size=1, max_size=6).map(
    lambda clause_list: CNFFormula.from_ints(clause_list, num_variables=MAX_VARS)
)

assignments = st.lists(st.booleans(), min_size=MAX_VARS, max_size=MAX_VARS).map(
    lambda bits: {i + 1: bit for i, bit in enumerate(bits)}
)

bindings = st.dictionaries(
    st.integers(min_value=1, max_value=MAX_VARS), st.booleans(), max_size=MAX_VARS
)


class TestLiteralAndClauseProperties:
    @given(literal_ints)
    @settings(max_examples=50, deadline=None)
    def test_literal_int_roundtrip(self, encoded):
        assert Literal.from_int(encoded).to_int() == encoded

    @given(literal_ints, st.booleans())
    @settings(max_examples=50, deadline=None)
    def test_negation_flips_evaluation(self, encoded, value):
        literal = Literal.from_int(encoded)
        assert literal.evaluate(value) != literal.negate().evaluate(value)

    @given(clauses, assignments)
    @settings(max_examples=100, deadline=None)
    def test_clause_evaluation_is_disjunction(self, ints, assignment):
        clause = Clause.from_ints(ints)
        expected = any(
            Literal.from_int(v).evaluate(assignment[abs(v)]) for v in ints
        )
        assert clause.evaluate(assignment) == expected


class TestFormulaProperties:
    @given(formulas)
    @settings(max_examples=60, deadline=None)
    def test_dimacs_roundtrip(self, formula):
        assert parse_dimacs(to_dimacs(formula)) == formula

    @given(formulas, assignments)
    @settings(max_examples=100, deadline=None)
    def test_evaluation_is_conjunction_of_clauses(self, formula, assignment):
        expected = all(clause.evaluate(assignment) for clause in formula)
        assert formula.evaluate(assignment) == expected

    @given(formulas, st.integers(min_value=1, max_value=MAX_VARS), st.booleans())
    @settings(max_examples=80, deadline=None)
    def test_conditioning_preserves_model_count(self, formula, variable, value):
        """Models of F with x=v correspond exactly to models of F|x=v with x free."""
        conditioned = formula.condition(variable, value)
        mask = satisfying_minterm_mask(formula)
        restricted = 0
        for index in range(mask.size):
            if mask[index] and bool((index >> (variable - 1)) & 1) == value:
                restricted += 1
        # The conditioned formula no longer mentions the bound variable, so
        # every restricted model of the original appears twice (once per free
        # value of that variable).
        assert count_models(conditioned) == 2 * restricted

    @given(formulas)
    @settings(max_examples=60, deadline=None)
    def test_model_count_bounds(self, formula):
        count = count_models(formula)
        assert 0 <= count <= 2**MAX_VARS


class TestMintermSetProperties:
    @given(bindings)
    @settings(max_examples=60, deadline=None)
    def test_cube_size(self, cube_bindings):
        mset = MintermSet.from_cube(MAX_VARS, cube_bindings)
        assert mset.count() == 2 ** (MAX_VARS - len(cube_bindings))

    @given(formulas)
    @settings(max_examples=60, deadline=None)
    def test_union_of_clause_sets_covers_models(self, formula):
        models = satisfying_minterms(formula)
        full = MintermSet.full(MAX_VARS)
        assert (models & full) == models
        assert models.count() == count_models(formula)

    @given(formulas, bindings)
    @settings(max_examples=80, deadline=None)
    def test_restriction_never_increases_count(self, formula, cube_bindings):
        models = satisfying_minterms(formula)
        assert models.restrict(cube_bindings).count() <= models.count()


class TestEngineAndSolverProperties:
    @given(formulas)
    @settings(max_examples=50, deadline=None)
    def test_symbolic_engine_matches_brute_force(self, formula):
        expected = count_models(formula) > 0
        assert SymbolicNBLEngine(formula).check().satisfiable == expected

    @given(formulas, bindings)
    @settings(max_examples=50, deadline=None)
    def test_symbolic_model_count_under_bindings(self, formula, cube_bindings):
        engine = SymbolicNBLEngine(formula)
        mask = satisfying_minterm_mask(formula)
        expected = 0
        for index in range(mask.size):
            if not mask[index]:
                continue
            if all(
                bool((index >> (var - 1)) & 1) == val
                for var, val in cube_bindings.items()
            ):
                expected += 1
        assert engine.model_count(cube_bindings) == expected

    @given(formulas)
    @settings(max_examples=30, deadline=None)
    def test_complete_solvers_agree(self, formula):
        statuses = {
            BruteForceSolver().solve(formula).status,
            DPLLSolver().solve(formula).status,
            CDCLSolver().solve(formula).status,
        }
        assert len(statuses) == 1

    @given(formulas)
    @settings(max_examples=30, deadline=None)
    def test_returned_models_satisfy(self, formula):
        result = CDCLSolver().solve(formula)
        if result.is_sat:
            assert formula.evaluate(result.assignment.as_dict())


class TestAssignmentProperties:
    @given(st.integers(min_value=0, max_value=2**MAX_VARS - 1))
    @settings(max_examples=60, deadline=None)
    def test_minterm_index_roundtrip(self, index):
        assignment = Assignment.from_minterm_index(index, MAX_VARS)
        assert assignment.to_minterm_index(MAX_VARS) == index
