"""Differential fuzzing across the whole solver stack.

A seeded corpus of ≥200 formulas — uniform random 3-SAT at several
clause/variable ratios plus structured pigeonhole / graph-colouring /
parity instances — is solved by every registered complete solver and
checked against brute-force enumeration as ground truth:

* verdict agreement (zero cross-solver disagreements),
* every returned SAT assignment actually satisfies the formula,
* stochastic local search (WalkSAT, GSAT) never claims SAT on an UNSAT
  instance,
* incremental-vs-fresh equivalence: ``session.solve(assumptions)`` answers
  exactly like solving the formula with the assumption unit clauses
  appended — for the native CDCL session, the generic re-solve session and
  the exact NBL frontend alike,
* proof soundness: every UNSAT verdict CDCL produces — solving directly
  *and* through the preprocessing pipeline — ships a DRAT proof that the
  in-repo RUP/RAT checker accepts (≥200 proof-checked verdicts per run).

The corpus is deterministic (derived from the suite's master ``seed``
fixture), so any failure reproduces exactly. The ``slow``-marked variant
re-rolls a much larger corpus (``REPRO_FUZZ_ITERATIONS``, default 1000)
for nightly runs.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.cnf.formula import CNFFormula
from repro.cnf.generators import random_ksat
from repro.cnf.structured import (
    complete_graph_edges,
    cycle_graph_edges,
    graph_coloring_formula,
    parity_chain_formula,
    pigeonhole_formula,
)
from repro.incremental import make_session
from repro.solvers.brute_force import BruteForceSolver
from repro.solvers.registry import make_solver

#: Clause/variable ratios for the random 3-SAT corpus: well below, around
#: and well above the satisfiability phase transition (~4.27).
RATIOS = (2.0, 3.0, 4.27, 5.5)
#: Random formulas in the tier-1 corpus (structured instances add more).
NUM_RANDOM_FORMULAS = 200

#: Deterministic complete solvers checked on the full corpus.
COMPLETE_SOLVERS = ("dpll", "cdcl")
#: The hybrid solver's symbolic coprocessor enumerates minterm masks per
#: decision, so it runs on every ``HYBRID_STRIDE``-th corpus entry.
HYBRID_STRIDE = 20


def _random_corpus(seed: int, count: int, max_vars: int = 9):
    rng = np.random.default_rng(seed)
    corpus = []
    for index in range(count):
        ratio = RATIOS[index % len(RATIOS)]
        num_vars = int(rng.integers(5, max_vars + 1))
        num_clauses = max(1, round(ratio * num_vars))
        formula = random_ksat(
            num_vars, num_clauses, 3, seed=int(rng.integers(0, 2**31))
        )
        corpus.append((f"3sat[{index}] n={num_vars} r={ratio}", formula))
    return corpus


def _structured_corpus():
    return [
        ("php(2,2)", pigeonhole_formula(2, 2)),
        ("php(3,2)", pigeonhole_formula(3, 2)),
        ("php(3,3)", pigeonhole_formula(3, 3)),
        ("php(4,3)", pigeonhole_formula(4, 3)),
        ("color(C4,2)", graph_coloring_formula(cycle_graph_edges(4), 4, 2)),
        ("color(C5,2)", graph_coloring_formula(cycle_graph_edges(5), 5, 2)),
        ("color(K4,3)", graph_coloring_formula(complete_graph_edges(4), 4, 3)),
        ("color(K3,3)", graph_coloring_formula(complete_graph_edges(3), 3, 3)),
        ("parity(5,1)", parity_chain_formula(5, 1)),
        ("parity(6,0)", parity_chain_formula(6, 0)),
    ]


def _full_corpus(seed: int, count: int = NUM_RANDOM_FORMULAS):
    return _random_corpus(seed, count) + _structured_corpus()


def _unsat_dense_corpus(seed: int, count: int):
    """Random 3-SAT far above the phase transition (almost surely UNSAT)."""
    rng = np.random.default_rng(seed)
    corpus = []
    for index in range(count):
        num_vars = int(rng.integers(5, 9))
        formula = random_ksat(
            num_vars, 6 * num_vars, 3, seed=int(rng.integers(0, 2**31))
        )
        corpus.append((f"dense[{index}] n={num_vars}", formula))
    return corpus


def _assert_model_satisfies(label: str, solver_name: str, result, formula):
    assert result.assignment is not None, f"{label}: {solver_name} SAT sans model"
    assert formula.evaluate(result.assignment.as_dict()), (
        f"{label}: {solver_name} returned a non-satisfying assignment"
    )


def _differential_run(corpus, seed: int) -> None:
    """Core fuzz loop, shared by the tier-1 and nightly entry points."""
    brute = BruteForceSolver()
    complete = {name: make_solver(name) for name in COMPLETE_SOLVERS}
    stochastic = {
        name: make_solver(name, max_flips=300, max_tries=2, seed=seed + index)
        for index, name in enumerate(("walksat", "gsat"))
    }
    hybrid = make_solver("hybrid")

    for index, (label, formula) in enumerate(corpus):
        truth = brute.solve(formula)
        assert truth.status in ("SAT", "UNSAT")
        if truth.is_sat:
            _assert_model_satisfies(label, "brute-force", truth, formula)

        for name, solver in complete.items():
            result = solver.solve(formula)
            assert result.status == truth.status, (
                f"{label}: {name} says {result.status}, "
                f"brute force says {truth.status}"
            )
            if result.is_sat:
                _assert_model_satisfies(label, name, result, formula)

        if index % HYBRID_STRIDE == 0:
            result = hybrid.solve(formula)
            assert result.status == truth.status, (
                f"{label}: hybrid says {result.status}, "
                f"brute force says {truth.status}"
            )
            if result.is_sat:
                _assert_model_satisfies(label, "hybrid", result, formula)

        for name, solver in stochastic.items():
            result = solver.solve(formula)
            assert result.status in ("SAT", "UNKNOWN"), (
                f"{label}: incomplete {name} claimed {result.status}"
            )
            if result.is_sat:
                assert truth.is_sat, f"{label}: {name} SAT on UNSAT instance"
                _assert_model_satisfies(label, name, result, formula)


def _random_assumption_sets(formula: CNFFormula, rng, count: int = 3):
    sets = []
    for _ in range(count):
        size = int(rng.integers(1, min(3, formula.num_variables) + 1))
        variables = rng.choice(formula.num_variables, size=size, replace=False)
        polarities = rng.integers(0, 2, size=size)
        sets.append(
            tuple(
                int(var + 1) if positive else -int(var + 1)
                for var, positive in zip(variables, polarities)
            )
        )
    return sets


def test_differential_fuzz_complete_solvers(seed):
    """≥200 seeded formulas, zero cross-solver disagreements allowed."""
    corpus = _full_corpus(seed)
    assert len(corpus) >= 200
    _differential_run(corpus, seed)


def test_incremental_vs_fresh_equivalence(seed):
    """``solve(assumptions)`` ≡ solving with assumption units appended.

    One warm CDCL session answers several assumption-set queries per
    formula; each answer is checked against brute force on the
    assumption-strengthened formula, and the generic DPLL re-solve session
    must agree as well.
    """
    rng = np.random.default_rng(seed + 1)
    corpus = _full_corpus(seed, count=60)[::3]
    brute = BruteForceSolver()
    for label, formula in corpus:
        cdcl_session = make_session("cdcl", base_formula=formula)
        dpll_session = make_session("dpll", base_formula=formula)
        for assumptions in _random_assumption_sets(formula, rng):
            strengthened = formula.with_assumptions(assumptions)
            truth = brute.solve(strengthened)
            incremental = cdcl_session.solve(assumptions=assumptions)
            assert incremental.status == truth.status, (
                f"{label} assuming {assumptions}: warm CDCL session says "
                f"{incremental.status}, fresh brute force says {truth.status}"
            )
            fallback = dpll_session.solve(assumptions=assumptions)
            assert fallback.status == truth.status, (
                f"{label} assuming {assumptions}: DPLL re-solve session says "
                f"{fallback.status}, fresh brute force says {truth.status}"
            )
            if incremental.is_sat:
                model = incremental.assignment.as_dict()
                assert all(model[abs(a)] == (a > 0) for a in assumptions)
                assert formula.evaluate(model)


def test_nbl_symbolic_session_agrees(seed):
    """The exact NBL frontend joins the differential net on small instances."""
    rng = np.random.default_rng(seed + 2)
    brute = BruteForceSolver()
    for label, formula in _structured_corpus():
        if formula.num_variables > 12:
            continue
        session = make_session("nbl-symbolic", base_formula=formula)
        truth = brute.solve(formula)
        result = session.solve()
        assert result.status == truth.status, (
            f"{label}: nbl-symbolic says {result.status}, "
            f"brute force says {truth.status}"
        )
        for assumptions in _random_assumption_sets(formula, rng, count=2):
            truth = brute.solve(formula.with_assumptions(assumptions))
            result = session.solve(assumptions=assumptions)
            assert result.status == truth.status, (
                f"{label} assuming {assumptions}: nbl-symbolic says "
                f"{result.status}, brute force says {truth.status}"
            )


def test_unsat_verdicts_are_proof_checked(seed):
    """Every CDCL UNSAT verdict ships a checker-accepted DRAT proof.

    Both execution paths are covered per UNSAT formula — solving the
    original directly and solving through the preprocessing pipeline
    (whose elimination lines must splice soundly in front of the
    translated residual derivation) — for ≥200 proof-checked verdicts
    with zero rejections.
    """
    from repro.proofs import ProofLog, check_proof

    solver = make_solver("cdcl")
    corpus = _full_corpus(seed) + _unsat_dense_corpus(seed + 5, 110)
    checked = 0
    for label, formula in corpus:
        direct_log = ProofLog()
        result = solver.solve(formula, proof=direct_log)
        if not result.is_unsat:
            continue
        verdict = check_proof(formula, direct_log.text())
        assert verdict, f"{label} direct proof rejected: {verdict.reason}"
        checked += 1
        preprocessed_log = ProofLog()
        preprocessed = solver.solve(
            formula, preprocess=True, proof=preprocessed_log
        )
        assert preprocessed.is_unsat, (
            f"{label}: preprocessed path disagrees with direct UNSAT"
        )
        verdict = check_proof(formula, preprocessed_log.text())
        assert verdict, f"{label} preprocessed proof rejected: {verdict.reason}"
        checked += 1
    assert checked >= 200, f"only {checked} proof-checked UNSAT verdicts"


@pytest.mark.slow
def test_differential_fuzz_extended(seed):
    """Nightly-sized corpus (REPRO_FUZZ_ITERATIONS, default 1000)."""
    iterations = int(os.environ.get("REPRO_FUZZ_ITERATIONS", "1000"))
    corpus = _random_corpus(seed + 3, iterations, max_vars=11)
    corpus += _structured_corpus()
    _differential_run(corpus, seed + 3)


@pytest.mark.slow
def test_incremental_equivalence_extended(seed):
    """Nightly-sized incremental-vs-fresh sweep with deeper sessions."""
    iterations = int(os.environ.get("REPRO_FUZZ_ITERATIONS", "1000")) // 5
    rng = np.random.default_rng(seed + 4)
    brute = BruteForceSolver()
    for label, formula in _random_corpus(seed + 4, iterations, max_vars=10):
        session = make_session("cdcl", base_formula=formula)
        for assumptions in _random_assumption_sets(formula, rng, count=5):
            truth = brute.solve(formula.with_assumptions(assumptions))
            result = session.solve(assumptions=assumptions)
            assert result.status == truth.status, (
                f"{label} assuming {assumptions}: session says "
                f"{result.status}, brute force says {truth.status}"
            )
