"""Property tests for formula fingerprints and the assumption-aware cache key.

The runtime's result cache is only sound if

* :meth:`CNFFormula.fingerprint` is invariant under clause reordering and
  literal reordering (structurally identical formulas must share answers),
* the fingerprint is sensitive to any literal flip or clause change
  (different formulas must not share answers), and
* :func:`solve_cache_key` never maps different ``(formula, assumption
  set)`` pairs to the same key.

Each property is exercised over a seeded stream of random formulas.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cnf.formula import CNFFormula
from repro.cnf.generators import random_ksat
from repro.runtime import ResultCache, SolveJob, SolveOutcome, solve_cache_key

NUM_FORMULAS = 40


def _random_formulas(seed: int, count: int = NUM_FORMULAS):
    rng = np.random.default_rng(seed)
    for index in range(count):
        num_vars = int(rng.integers(4, 12))
        num_clauses = int(rng.integers(3, 4 * num_vars))
        yield (
            rng,
            random_ksat(num_vars, num_clauses, 3, seed=int(rng.integers(0, 2**31))),
        )


class TestFingerprintInvariance:
    def test_clause_permutation_invariance(self, seed):
        for rng, formula in _random_formulas(seed):
            clauses = formula.to_ints()
            order = rng.permutation(len(clauses))
            shuffled = CNFFormula.from_ints(
                [clauses[i] for i in order], formula.num_variables
            )
            assert shuffled.fingerprint() == formula.fingerprint()

    def test_literal_permutation_invariance(self, seed):
        for rng, formula in _random_formulas(seed + 1):
            reordered = CNFFormula.from_ints(
                [
                    [clause[i] for i in rng.permutation(len(clause))]
                    for clause in formula.to_ints()
                ],
                formula.num_variables,
            )
            assert reordered.fingerprint() == formula.fingerprint()

    def test_fingerprint_stable_across_instances(self, seed):
        for _, formula in _random_formulas(seed + 2, count=10):
            rebuilt = CNFFormula.from_ints(
                formula.to_ints(), formula.num_variables
            )
            assert rebuilt.fingerprint() == formula.fingerprint()


class TestFingerprintSensitivity:
    def test_any_single_literal_flip_changes_fingerprint(self, seed):
        for _, formula in _random_formulas(seed + 3, count=12):
            clauses = formula.to_ints()
            for clause_index in range(len(clauses)):
                for literal_index in range(len(clauses[clause_index])):
                    mutated = [list(clause) for clause in clauses]
                    mutated[clause_index][literal_index] *= -1
                    flipped = CNFFormula.from_ints(
                        mutated, formula.num_variables
                    )
                    assert flipped.fingerprint() != formula.fingerprint(), (
                        f"flip of clause {clause_index} literal "
                        f"{literal_index} went unnoticed"
                    )

    def test_dropping_a_clause_changes_fingerprint(self, seed):
        for rng, formula in _random_formulas(seed + 4, count=12):
            clauses = formula.to_ints()
            victim = int(rng.integers(0, len(clauses)))
            reduced = CNFFormula.from_ints(
                clauses[:victim] + clauses[victim + 1 :], formula.num_variables
            )
            if sorted(reduced.to_ints()) == sorted(clauses):
                continue  # the victim had a duplicate; dropping it is a no-op
            assert reduced.fingerprint() != formula.fingerprint()

    def test_variable_count_is_part_of_the_fingerprint(self):
        narrow = CNFFormula.from_ints([[1, 2]], num_variables=2)
        wide = CNFFormula.from_ints([[1, 2]], num_variables=3)
        assert narrow.fingerprint() != wide.fingerprint()


class TestCacheKey:
    def test_no_assumptions_is_the_bare_fingerprint(self, seed):
        for _, formula in _random_formulas(seed + 5, count=5):
            assert solve_cache_key(formula.fingerprint()) == formula.fingerprint()
            job = SolveJob(formula=formula, solver="cdcl")
            assert job.cache_key == formula.fingerprint()

    def test_assumption_order_is_canonical(self, seed):
        for rng, formula in _random_formulas(seed + 6, count=10):
            variables = rng.choice(formula.num_variables, size=3, replace=False)
            lits = [int(v) + 1 for v in variables]
            a = SolveJob(formula=formula, solver="cdcl", assumptions=tuple(lits))
            b = SolveJob(
                formula=formula, solver="cdcl", assumptions=tuple(reversed(lits))
            )
            assert a.cache_key == b.cache_key

    def test_distinct_assumption_sets_never_collide(self, seed):
        """Exhaustive over all assumption sets of size <= 2 on 6 variables,
        plus random larger sets: the key must be injective in the set."""
        rng = np.random.default_rng(seed + 7)
        fingerprint = "f" * 64
        sets: list[tuple[int, ...]] = [()]
        literals = [lit for v in range(1, 7) for lit in (v, -v)]
        sets += [(lit,) for lit in literals]
        sets += [
            (a, b)
            for i, a in enumerate(literals)
            for b in literals[i + 1 :]
            if a != b
        ]
        for _ in range(200):
            size = int(rng.integers(3, 7))
            chosen = rng.choice(len(literals), size=size, replace=False)
            candidate = tuple(sorted({literals[i] for i in chosen}))
            sets.append(candidate)
        keys: dict[str, tuple[int, ...]] = {}
        for assumptions in sets:
            canonical = tuple(sorted(set(assumptions)))
            key = solve_cache_key(fingerprint, canonical)
            if key in keys:
                assert keys[key] == canonical, (
                    f"collision: {keys[key]} vs {canonical}"
                )
            keys[key] = canonical

    def test_different_formulas_same_assumptions_never_collide(self, seed):
        keys = set()
        formulas = 0
        for _, formula in _random_formulas(seed + 8, count=15):
            key = solve_cache_key(formula.fingerprint(), (1, -2))
            assert key not in keys
            keys.add(key)
            formulas += 1
        assert len(keys) == formulas

    def test_cache_separates_assumption_sets(self):
        """End to end: the cache must never answer an assumption query with
        the assumption-free outcome (or vice versa)."""
        formula = CNFFormula.from_ints([[1, 2], [-1, -2]])
        cache = ResultCache()
        free = SolveJob(formula=formula, solver="cdcl")
        assumed = SolveJob(formula=formula, solver="cdcl", assumptions=(1, 2))
        cache.put(
            SolveOutcome(
                job_id=free.job_id,
                status="SAT",
                solver="cdcl",
                fingerprint=free.fingerprint,
                assignment=(1, -2),
                verified=True,
            )
        )
        assert cache.get(free.cache_key) is not None
        assert cache.get(assumed.cache_key) is None
        cache.put(
            SolveOutcome(
                job_id=assumed.job_id,
                status="UNSAT",
                solver="cdcl",
                fingerprint=assumed.fingerprint,
                assumptions=assumed.assumptions,
                verified=True,
            )
        )
        assert cache.get(assumed.cache_key).status == "UNSAT"
        assert cache.get(free.cache_key).status == "SAT"

    def test_job_rejects_out_of_range_assumptions(self):
        from repro.exceptions import RuntimeSubsystemError

        formula = CNFFormula.from_ints([[1, 2]])
        with pytest.raises(RuntimeSubsystemError):
            SolveJob(formula=formula, solver="cdcl", assumptions=(5,))
        with pytest.raises(RuntimeSubsystemError):
            SolveJob(formula=formula, solver="cdcl", assumptions=(0,))
