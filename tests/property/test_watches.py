"""Property tests of the arena kernel's two-watched-literal machinery.

:meth:`ArenaKernel.check_invariants` is the single source of truth for
structural health: arena span integrity, exactly-once watching of the
first two literals of every live clause, value/trail agreement and level
monotonicity — plus, ``at_fixpoint``, the two-watcher invariant proper
(a falsified watched literal implies the other watch is true). These
tests drive the kernel through every phase that rewrites watch lists —
propagation fixpoints under decisions, learned-DB reduction, arena
compaction, incremental push/pop rebuilds — and assert the checker stays
silent throughout.
"""

from __future__ import annotations

import numpy as np

from repro.cnf.generators import random_ksat
from repro.cnf.structured import pigeonhole_formula
from repro.incremental import make_session
from repro.solvers.base import SolverStats
from repro.solvers.cdcl import CDCLSolver
from repro.solvers.cdcl.kernel import _FLAG_DELETED, _HEADER, ArenaKernel


def _load_kernel(formula, **knobs) -> ArenaKernel:
    kernel = ArenaKernel(formula.num_variables, **knobs)
    kernel.load_clauses(formula.to_ints())
    return kernel


def _decide(kernel: ArenaKernel) -> None:
    """One heuristic decision, exactly as :meth:`ArenaKernel.search` takes it."""
    variable = kernel.pick_branch_variable()
    kernel.trail_lim.append(len(kernel.trail))
    kernel._enqueue((variable << 1) | (0 if kernel.phase[variable] else 1), -1)


def _live_clauses(kernel: ArenaKernel) -> list[tuple[int, ...]]:
    """Sorted literal tuples of every live clause, by arena walk."""
    clauses = []
    arena = kernel.arena
    i = 0
    while i < len(arena):
        size = arena[i]
        if not (arena[i + 1] & _FLAG_DELETED):
            clauses.append(tuple(sorted(kernel.clause_literals(i))))
        i += _HEADER + size
    return sorted(clauses)


def test_invariants_hold_at_every_propagation_fixpoint(seed):
    """Decide/propagate to a full assignment; every conflict-free fixpoint
    satisfies the strict (``at_fixpoint``) two-watcher invariant."""
    rng = np.random.default_rng(seed)
    fixpoints = 0
    for trial in range(30):
        num_vars = int(rng.integers(8, 16))
        formula = random_ksat(
            num_vars,
            round(4.0 * num_vars),
            3,
            seed=int(rng.integers(0, 2**31)),
        )
        kernel = _load_kernel(formula)
        stats = SolverStats()
        while True:
            conflict = kernel.propagate(stats)
            if conflict >= 0:
                # Conflicts leave the queue unprocessed: only the
                # unconditional structural invariants are claimed.
                assert kernel.check_invariants() == []
                break
            assert kernel.check_invariants(at_fixpoint=True) == []
            fixpoints += 1
            if len(kernel.trail) == kernel.num_vars:
                break
            _decide(kernel)
    assert fixpoints >= 30  # the property was actually exercised


def test_invariants_hold_after_learning_and_backjumps(seed):
    """Interleave conflicts, 1UIP learning and backjumps; the strict
    invariant must be restored at the next conflict-free fixpoint."""
    rng = np.random.default_rng(seed + 1)
    conflicts_seen = 0
    for trial in range(15):
        num_vars = int(rng.integers(8, 14))
        formula = random_ksat(
            num_vars,
            round(4.5 * num_vars),
            3,
            seed=int(rng.integers(0, 2**31)),
        )
        kernel = _load_kernel(formula)
        stats = SolverStats()
        if kernel.root_conflict:
            continue
        for _ in range(200):
            conflict = kernel.propagate(stats)
            if conflict >= 0:
                conflicts_seen += 1
                if not kernel.trail_lim:
                    break  # root conflict: UNSAT
                learned, level, lbd = kernel.analyze(conflict)
                kernel.backjump(level)
                kernel.learn(learned, stats, lbd)
                assert kernel.check_invariants() == []
                continue
            assert kernel.check_invariants(at_fixpoint=True) == []
            if len(kernel.trail) == kernel.num_vars:
                break
            _decide(kernel)
    assert conflicts_seen >= 10


def test_watch_lists_consistent_after_reduce_db_and_compact(seed):
    """DB reduction followed by arena compaction rebuilds every watch list;
    the surviving clause set and the invariants must both be preserved."""
    formula = pigeonhole_formula(5, 4)
    solver = CDCLSolver(restart_base=3, reduce_interval=8, keep_lbd=1)
    solver.begin_incremental(num_variables=formula.num_variables)
    for clause in formula.to_ints():
        solver.attach_clause(clause)
    result = solver.solve_incremental()
    assert result.status == "UNSAT"
    kernel = solver._kernel
    assert kernel.check_invariants() == []

    # Force another reduction + compaction on the retained database and
    # check the live clause set is untouched by the relocation.
    kernel.backjump(0)
    stats = SolverStats()
    before_reduce = _live_clauses(kernel)
    kernel.reduce_db(stats)
    assert kernel.check_invariants() == []
    before = _live_clauses(kernel)
    assert len(before) <= len(before_reduce)
    kernel.compact()
    assert kernel.check_invariants() == []
    assert _live_clauses(kernel) == before


def test_compact_preserves_propagation_behaviour(seed):
    """A propagation fixpoint reached after compaction matches the one the
    uncompacted twin reaches: compaction must not change semantics."""
    rng = np.random.default_rng(seed + 2)
    for trial in range(10):
        num_vars = int(rng.integers(8, 14))
        formula = random_ksat(
            num_vars,
            round(4.2 * num_vars),
            3,
            seed=int(rng.integers(0, 2**31)),
        )
        compacted = _load_kernel(formula)
        plain = _load_kernel(formula)
        compacted.compact()
        assert compacted.check_invariants() == []
        c1 = compacted.propagate(SolverStats())
        c2 = plain.propagate(SolverStats())
        assert (c1 >= 0) == (c2 >= 0)
        assert sorted(compacted.trail) == sorted(plain.trail)


def test_trail_and_levels_round_trip_through_backjump(seed):
    """Decisions then ``backjump(0)`` must restore the exact level-0 trail
    prefix and clear values/levels/reasons of everything undone."""
    rng = np.random.default_rng(seed + 3)
    for trial in range(15):
        num_vars = int(rng.integers(10, 18))
        formula = random_ksat(
            num_vars,
            round(3.0 * num_vars),  # satisfiable-ish: deep trails, few conflicts
            3,
            seed=int(rng.integers(0, 2**31)),
        )
        kernel = _load_kernel(formula)
        stats = SolverStats()
        if kernel.propagate(stats) >= 0:
            continue
        root_trail = list(kernel.trail)
        while len(kernel.trail) < kernel.num_vars:
            _decide(kernel)
            if kernel.propagate(stats) >= 0:
                break
        undone = kernel.trail[len(root_trail):]
        kernel.backjump(0)
        assert kernel.decision_level() == 0
        assert kernel.trail == root_trail
        assert kernel.trail_lim == []
        for enc in undone:
            assert kernel.values[enc] == 0
            assert kernel.values[enc ^ 1] == 0
            assert kernel.reason[enc >> 1] == -1
        assert kernel.check_invariants() == []


def test_trail_levels_round_trip_across_session_push_pop():
    """Session push/pop rebuilds the kernel database; verdicts and kernel
    structural invariants must round-trip across nested scopes."""
    session = make_session("cdcl", base_formula=pigeonhole_formula(4, 4))
    kernel_of = lambda: session.solver._kernel

    assert session.solve().is_sat
    assert kernel_of().check_invariants() == []

    session.push()
    # Pin pigeon 1 out of every hole: now UNSAT inside the scope.
    for hole in range(1, 5):
        session.add_clause([-hole])
    assert session.solve().status == "UNSAT"
    assert kernel_of().check_invariants() == []

    session.push()  # nested scope on top of an unsatisfiable set
    session.add_clause([17])
    assert session.solve().status == "UNSAT"
    session.pop()

    session.pop()
    result = session.solve()
    assert result.is_sat
    kernel = kernel_of()
    assert kernel.check_invariants() == []
    assert kernel.decision_level() == 0 or not kernel.root_conflict
    assert session.scope_depth == 0
