"""Differential testing of preprocess → solve → reconstruct.

Plugs the inprocessing pipeline into the existing differential fuzz
harness: on the same ≥200-formula seeded corpus, the
``preprocess → solve reduced → reconstruct model`` route must agree with
brute-force ground truth for every registered complete solver, including
the instances preprocessing decides outright (the corpus provably
contains UNSAT-detected-during-preprocessing cases). Incremental
re-solve sessions with per-query preprocessing are checked against fresh
solves under random assumption sets as well.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cnf.formula import CNFFormula
from repro.cnf.paper_instances import section4_unsat_instance
from repro.preprocess import Preprocessor, preprocess_formula
from repro.solvers.brute_force import BruteForceSolver
from repro.solvers.registry import make_solver

from test_differential_fuzz import (
    COMPLETE_SOLVERS,
    _full_corpus,
    _random_assumption_sets,
)


def _assert_reconstruction(label, formula, reduction, reduced_model=None):
    model = reduction.reconstruct(reduced_model)
    assert model.is_complete(formula.num_variables), (
        f"{label}: reconstructed model is partial"
    )
    assert formula.evaluate(model.as_dict()), (
        f"{label}: reconstructed model does not satisfy the original"
    )


def test_preprocess_solve_reconstruct_agrees_with_direct_solve(seed):
    """≥200 seeded formulas: the preprocessed route matches ground truth."""
    corpus = _full_corpus(seed) + [("section4-unsat", section4_unsat_instance())]
    assert len(corpus) >= 200
    brute = BruteForceSolver()
    solvers = {name: make_solver(name) for name in COMPLETE_SOLVERS}
    decided_unsat = 0
    for label, formula in corpus:
        truth = brute.solve(formula)
        reduction = preprocess_formula(formula)
        if reduction.status == "UNSAT":
            decided_unsat += 1
            assert truth.is_unsat, (
                f"{label}: preprocessing refuted a satisfiable formula"
            )
            continue
        if reduction.status == "SAT":
            assert truth.is_sat, (
                f"{label}: preprocessing 'satisfied' an UNSAT formula"
            )
            _assert_reconstruction(label, formula, reduction)
            continue
        for name, solver in solvers.items():
            inner = solver.solve(reduction.formula)
            assert inner.status == truth.status, (
                f"{label}: {name} on the reduced formula says {inner.status}, "
                f"brute force says {truth.status}"
            )
            if inner.is_sat:
                _assert_reconstruction(
                    label, formula, reduction, inner.assignment.as_dict()
                )
    # The corpus must genuinely exercise the UNSAT-during-preprocessing
    # path (pigeonhole instances and the paper's Section IV UNSAT formula
    # are refuted by elimination alone).
    assert decided_unsat >= 1


def test_solver_preprocess_hook_agrees(seed):
    """`solver.solve(formula, preprocess=True)` ≡ plain solve, per solver."""
    corpus = _full_corpus(seed, count=48)
    brute = BruteForceSolver()
    for name in COMPLETE_SOLVERS:
        hooked = make_solver(name, preprocess=True)
        for label, formula in corpus:
            truth = brute.solve(formula)
            result = hooked.solve(formula)
            assert result.status == truth.status, (
                f"{label}: {name} with preprocess=True says {result.status}, "
                f"brute force says {truth.status}"
            )
            if result.is_sat:
                assert formula.evaluate(result.assignment.as_dict())


def test_stochastic_solver_never_wrong_with_preprocessing(seed):
    """WalkSAT + pipeline: SAT answers carry real models, UNSAT only from
    the pipeline's (sound) refutation."""
    brute = BruteForceSolver()
    solver = make_solver("walksat", max_flips=300, max_tries=2, seed=seed)
    for label, formula in _full_corpus(seed, count=40):
        truth = brute.solve(formula)
        result = solver.solve(formula, preprocess=True)
        if result.is_sat:
            assert truth.is_sat, f"{label}: walksat SAT on UNSAT instance"
            assert formula.evaluate(result.assignment.as_dict())
        elif result.is_unsat:
            assert truth.is_unsat, (
                f"{label}: preprocessing refuted a satisfiable formula"
            )


def test_preprocessed_sessions_agree_under_assumptions(seed):
    """Re-solve sessions with per-query preprocessing match fresh solves."""
    rng = np.random.default_rng(seed + 11)
    corpus = _full_corpus(seed, count=45)[::3]
    brute = BruteForceSolver()
    for label, formula in corpus:
        session = make_solver("cdcl").make_session(
            base_formula=formula, preprocess=True
        )
        for assumptions in _random_assumption_sets(formula, rng):
            truth = brute.solve(formula.with_assumptions(assumptions))
            result = session.solve(assumptions=assumptions)
            assert result.status == truth.status, (
                f"{label} assuming {assumptions}: preprocessed session says "
                f"{result.status}, fresh brute force says {truth.status}"
            )
            if result.is_sat:
                model = result.assignment.as_dict()
                assert all(model[abs(a)] == (a > 0) for a in assumptions)
                assert formula.evaluate(model)


def test_preprocessing_is_deterministic(seed):
    """Same formula, same configuration → identical reduced instance."""
    for label, formula in _full_corpus(seed, count=12):
        first = Preprocessor().preprocess(formula)
        second = Preprocessor().preprocess(formula)
        assert first.status == second.status, label
        assert first.formula == second.formula, label
        assert first.variable_map == second.variable_map, label


@pytest.mark.slow
def test_preprocess_differential_extended(seed):
    """Nightly-sized corpus for the preprocessed route."""
    import os

    iterations = int(os.environ.get("REPRO_FUZZ_ITERATIONS", "1000")) // 2
    brute = BruteForceSolver()
    cdcl = make_solver("cdcl", preprocess=True)
    from test_differential_fuzz import _random_corpus

    for label, formula in _random_corpus(seed + 9, iterations, max_vars=11):
        truth = brute.solve(formula)
        result = cdcl.solve(formula)
        assert result.status == truth.status, (
            f"{label}: preprocessed cdcl says {result.status}, "
            f"brute force says {truth.status}"
        )
        if result.is_sat:
            assert formula.evaluate(result.assignment.as_dict())
