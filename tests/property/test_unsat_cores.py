"""Assumption-core properties over a seeded corpus.

Every UNSAT-under-assumptions verdict must come with a failing core that
is (a) a subset of the given assumptions, (b) no larger than the full
assumption set and (c) genuinely unsatisfiable when re-asserted alone
against a fresh solver. The native CDCL session minimizes cores via
final-conflict analysis; re-solve sessions fall back to the full
assumption set — both must satisfy the same soundness contract. ≥100
seeded UNSAT queries are exercised per run.
"""

from __future__ import annotations

import numpy as np

from repro.cnf.formula import CNFFormula
from repro.cnf.generators import random_ksat
from repro.cnf.structured import pigeonhole_formula
from repro.incremental import make_session
from repro.solvers.registry import make_solver


def _corpus(seed: int, count: int):
    rng = np.random.default_rng(seed)
    corpus = []
    for _ in range(count):
        num_vars = int(rng.integers(5, 10))
        formula = random_ksat(
            num_vars,
            round(3.5 * num_vars),
            3,
            seed=int(rng.integers(0, 2**31)),
        )
        corpus.append(formula)
    return corpus


def _assumption_sets(formula: CNFFormula, rng, count: int):
    sets = []
    for _ in range(count):
        size = int(rng.integers(1, min(4, formula.num_variables) + 1))
        variables = rng.choice(formula.num_variables, size=size, replace=False)
        polarities = rng.integers(0, 2, size=size)
        sets.append(
            tuple(
                int(var + 1) if positive else -int(var + 1)
                for var, positive in zip(variables, polarities)
            )
        )
    return sets


def _check_core(label: str, formula: CNFFormula, assumptions, core, fresh):
    assert core is not None, f"{label}: UNSAT query without a core"
    assert set(core) <= set(assumptions), (
        f"{label}: core {core} is not a subset of assumptions {assumptions}"
    )
    assert len(core) <= len(assumptions), (
        f"{label}: core {core} larger than assumption set {assumptions}"
    )
    recheck = fresh.solve(formula.with_assumptions(core))
    assert recheck.is_unsat, (
        f"{label}: formula under core {core} re-solves {recheck.status}, "
        f"so the core does not explain the failure"
    )


def test_cdcl_cores_are_sound_and_minimized(seed):
    """≥100 seeded UNSAT-under-assumption queries with valid cores."""
    rng = np.random.default_rng(seed + 10)
    fresh = make_solver("cdcl")
    unsat_queries = 0
    for index, formula in enumerate(_corpus(seed + 10, 120)):
        label = f"core[{index}]"
        session = make_session("cdcl", base_formula=formula)
        for assumptions in _assumption_sets(formula, rng, 4):
            result = session.solve(assumptions=assumptions)
            if not result.is_unsat:
                assert session.unsat_core() is None, (
                    f"{label}: non-UNSAT query left a stale core"
                )
                continue
            core = session.unsat_core()
            assert core == result.core
            _check_core(label, formula, assumptions, core, fresh)
            unsat_queries += 1
    assert unsat_queries >= 100, (
        f"only {unsat_queries} UNSAT queries exercised"
    )


def test_resolve_session_cores_fall_back_to_full_set(seed):
    """Re-solve sessions report the (sound, unminimized) full assumption set."""
    rng = np.random.default_rng(seed + 11)
    fresh = make_solver("cdcl")
    checked = 0
    for index, formula in enumerate(_corpus(seed + 11, 30)):
        session = make_session("dpll", base_formula=formula)
        for assumptions in _assumption_sets(formula, rng, 2):
            result = session.solve(assumptions=assumptions)
            if not result.is_unsat:
                continue
            core = session.unsat_core()
            _check_core(f"dpll[{index}]", formula, assumptions, core, fresh)
            checked += 1
    assert checked >= 10


def test_root_unsat_core_is_empty_without_assumptions():
    """An assumption-free UNSAT query reports the empty core."""
    session = make_session("cdcl", base_formula=pigeonhole_formula(3, 2))
    result = session.solve()
    assert result.is_unsat
    assert session.unsat_core() == ()
    assert result.core == ()


def test_conflicting_assumptions_core_is_the_conflicting_pair():
    """Directly contradictory assumptions yield the contradicting literals."""
    formula = CNFFormula.from_ints([[1, 2]], 3)
    session = make_session("cdcl", base_formula=formula)
    result = session.solve(assumptions=(3, -3))
    assert result.is_unsat
    core = session.unsat_core()
    assert core is not None and set(core) == {3, -3}


def test_core_cleared_after_sat_query():
    """unsat_core() answers only for the most recent query."""
    formula = CNFFormula.from_ints([[-1, 2], [-2, 3]], 3)
    session = make_session("cdcl", base_formula=formula)
    assert session.solve(assumptions=(1, -3)).is_unsat
    assert session.unsat_core() == (1, -3)
    assert session.solve(assumptions=(1, 3)).is_sat
    assert session.unsat_core() is None
