"""Tests for the command-line interface (repro.cli)."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.cnf.dimacs import write_dimacs_file
from repro.cnf.paper_instances import section4_sat_instance, section4_unsat_instance


@pytest.fixture
def sat_file(tmp_path):
    path = tmp_path / "sat.cnf"
    write_dimacs_file(section4_sat_instance(), path)
    return str(path)


@pytest.fixture
def unsat_file(tmp_path):
    path = tmp_path / "unsat.cnf"
    write_dimacs_file(section4_unsat_instance(), path)
    return str(path)


class TestCheckCommand:
    def test_sat_exit_code(self, sat_file, capsys):
        assert main(["check", sat_file]) == 10
        assert "SATISFIABLE" in capsys.readouterr().out

    def test_unsat_exit_code(self, unsat_file, capsys):
        assert main(["check", unsat_file]) == 20
        assert "UNSATISFIABLE" in capsys.readouterr().out

    def test_sampled_engine_with_carrier(self, sat_file):
        code = main(
            ["check", sat_file, "--engine", "sampled", "--carrier", "bipolar",
             "--samples", "60000", "--seed", "3"]
        )
        assert code == 10


class TestSolveCommand:
    def test_solve_prints_model(self, sat_file, capsys):
        assert main(["solve", sat_file]) == 10
        out = capsys.readouterr().out
        assert "SATISFIABLE" in out
        assert "v -1 2 0" in out

    def test_solve_unsat(self, unsat_file, capsys):
        assert main(["solve", unsat_file]) == 20
        assert "UNSATISFIABLE" in capsys.readouterr().out

    def test_solve_cube_flag(self, sat_file):
        assert main(["solve", sat_file, "--cube"]) == 10


class TestFigure1Command:
    def test_figure1_renders(self, capsys):
        assert main(["figure1", "--samples", "60000", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "legend" in out


class TestArgumentParsing:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_engine_rejected(self, sat_file):
        with pytest.raises(SystemExit):
            main(["check", sat_file, "--engine", "quantum"])

    def test_help_states_exit_code_convention(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        out = " ".join(capsys.readouterr().out.split())
        assert "10 SAT" in out and "20 UNSAT" in out


@pytest.fixture
def batch_dir(tmp_path):
    from repro.cnf.generators import planted_ksat

    directory = tmp_path / "instances"
    directory.mkdir()
    for index in range(3):
        formula, _ = planted_ksat(6, 15, seed=index)
        write_dimacs_file(formula, directory / f"sat-{index}.cnf")
    write_dimacs_file(section4_unsat_instance(), directory / "unsat-0.cnf")
    return directory


class TestBatchCommand:
    def test_batch_directory_smoke(self, batch_dir, capsys):
        code = main(
            ["batch", str(batch_dir), "--workers", "1", "--portfolio",
             "--samples", "20000", "--seed", "0"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "4 instances" in out
        # Status-count lines ("SAT" alone would match inside "UNSAT").
        assert "SAT      3" in out
        assert "UNSAT    1" in out
        assert "cache" in out

    def test_batch_parallel_workers(self, batch_dir, capsys):
        code = main(["batch", str(batch_dir), "--workers", "2", "--samples", "20000"])
        assert code == 0
        assert "workers=2" in capsys.readouterr().out

    def test_batch_cache_file_warm_second_run(self, batch_dir, tmp_path, capsys):
        # --no-preprocess so every instance keys on its own fingerprint
        # (with preprocessing, instances sharing a reduced core would
        # already hit the cache within the cold run).
        cache_file = str(tmp_path / "cache.json")
        assert main(
            ["batch", str(batch_dir), "--cache-file", cache_file,
             "--samples", "20000", "--no-preprocess"]
        ) == 0
        cold = capsys.readouterr().out
        assert "0 hits" in cold
        assert main(
            ["batch", str(batch_dir), "--cache-file", cache_file,
             "--samples", "20000", "--no-preprocess"]
        ) == 0
        warm = capsys.readouterr().out
        assert "4 hits" in warm and "100% of batch" in warm

    def test_batch_corrupt_cache_file_degrades_gracefully(
        self, batch_dir, tmp_path, capsys
    ):
        cache_file = tmp_path / "corrupt.json"
        cache_file.write_text("truncated{")
        code = main(
            ["batch", str(batch_dir), "--cache-file", str(cache_file),
             "--samples", "20000"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "warning: ignoring cache file" in captured.err
        assert "4 instances" in captured.out

    def test_batch_single_solver_spec(self, batch_dir, capsys):
        code = main(
            ["batch", str(batch_dir), "--solver", "dpll", "--no-preprocess"]
        )
        assert code == 0
        assert "dpll=4" in capsys.readouterr().out

    def test_batch_no_match_exits_nonzero(self, tmp_path, capsys):
        code = main(["batch", str(tmp_path / "nope" / "*.cnf")])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_batch_conflicting_solver_flags(self, batch_dir, capsys):
        code = main(
            ["batch", str(batch_dir), "--portfolio", "--solver", "dpll"]
        )
        assert code == 2


class TestPreprocessCommand:
    def test_unsat_decided_exit_20(self, unsat_file, capsys):
        assert main(["preprocess", unsat_file]) == 20
        out = capsys.readouterr().out
        assert "c status UNSAT" in out
        assert "p cnf 0 1" in out

    def test_sat_decided_exit_10(self, sat_file, capsys):
        assert main(["preprocess", sat_file]) == 10
        out = capsys.readouterr().out
        assert "c status SAT" in out
        assert "p cnf 0 0" in out

    def test_reduced_output_parses_and_maps(self, tmp_path, capsys):
        from repro.cnf.dimacs import parse_dimacs
        from repro.cnf.generators import random_ksat

        path = tmp_path / "hard.cnf"
        write_dimacs_file(random_ksat(9, 38, 3, seed=123), path)
        # Freeze every variable so nothing can be eliminated: the command
        # must exit 0 with a residual formula.
        freeze = [str(v) for v in range(1, 10)]
        code = main(["preprocess", str(path), "--freeze", *freeze])
        captured = capsys.readouterr()
        assert code == 0
        dimacs = "\n".join(
            line for line in captured.out.splitlines() if not line.startswith("c")
        )
        reduced = parse_dimacs(dimacs)
        assert reduced.num_variables == 9
        assert "clauses" in captured.err

    def test_output_file(self, unsat_file, tmp_path):
        target = tmp_path / "reduced.cnf"
        assert main(["preprocess", unsat_file, "-o", str(target)]) == 20
        assert "p cnf 0 1" in target.read_text()

    def test_technique_subset(self, sat_file, capsys):
        code = main(["preprocess", sat_file, "--techniques", "units,subsumption"])
        assert code in (0, 10, 20)
        assert "c status" in capsys.readouterr().out

    def test_bad_technique_fails(self, sat_file, capsys):
        assert main(["preprocess", sat_file, "--techniques", "magic"]) == 1
        assert "error" in capsys.readouterr().err

    def test_missing_file_fails(self, tmp_path, capsys):
        assert main(["preprocess", str(tmp_path / "absent.cnf")]) == 1
        assert "error" in capsys.readouterr().err


class TestNoPreprocessFlags:
    def test_check_decided_in_preprocessing(self, sat_file, capsys):
        assert main(["check", sat_file]) == 10
        assert "decided in preprocessing" in capsys.readouterr().out

    def test_check_no_preprocess_runs_engine(self, sat_file, capsys):
        assert main(["check", sat_file, "--no-preprocess"]) == 10
        assert "decided in preprocessing" not in capsys.readouterr().out

    def test_solve_model_identical_either_way(self, sat_file, capsys):
        assert main(["solve", sat_file]) == 10
        with_pre = capsys.readouterr().out
        assert main(["solve", sat_file, "--no-preprocess"]) == 10
        without = capsys.readouterr().out
        # Section IV's instance has a unique model: both routes print it.
        assert "v -1 2 0" in with_pre and "v -1 2 0" in without

    def test_batch_preprocess_wins_reported(self, batch_dir, capsys):
        code = main(["batch", str(batch_dir), "--solver", "dpll"])
        assert code == 0
        out = capsys.readouterr().out
        assert "SAT      3" in out
        assert "UNSAT    1" in out
        assert "preprocess=" in out  # at least one instance decided by it


class TestIncrementalCommand:
    def _write_script(self, tmp_path, text):
        path = tmp_path / "queries.txt"
        path.write_text(text, encoding="utf-8")
        return str(path)

    def test_script_with_assumptions_and_scopes(self, tmp_path, capsys):
        script = self._write_script(
            tmp_path,
            """
            # session demo
            var 2
            add 1 2 0
            add -1 -2 0
            solve
            solve 1 0
            push
            add -1
            solve
            pop
            solve 1 2 0
            """,
        )
        assert main(["incremental", script, "--models"]) == 0
        out = capsys.readouterr().out
        assert out.count("s SATISFIABLE") == 3
        assert out.count("s UNSATISFIABLE") == 1
        assert "v " in out
        assert "4 queries" in out

    def test_load_dimacs_file(self, sat_file, tmp_path, capsys):
        script = self._write_script(tmp_path, f"load {sat_file}\nsolve\n")
        assert main(["incremental", script]) == 0
        assert "s SATISFIABLE" in capsys.readouterr().out

    def test_alternative_solver_spec(self, tmp_path, capsys):
        script = self._write_script(tmp_path, "add 1 0\nsolve -1 0\n")
        assert main(["incremental", script, "--solver", "dpll"]) == 0
        assert "s UNSATISFIABLE" in capsys.readouterr().out

    def test_unknown_command_fails(self, tmp_path, capsys):
        script = self._write_script(tmp_path, "frobnicate 1 2\n")
        assert main(["incremental", script]) == 1
        assert "unknown command" in capsys.readouterr().err

    def test_missing_script_fails(self, tmp_path, capsys):
        assert main(["incremental", str(tmp_path / "absent.txt")]) == 1
        assert "cannot read script" in capsys.readouterr().err

    def test_pop_without_push_fails(self, tmp_path, capsys):
        script = self._write_script(tmp_path, "pop\n")
        assert main(["incremental", script]) == 1
        assert "pop" in capsys.readouterr().err

    def test_bad_solver_spec_fails(self, tmp_path, capsys):
        script = self._write_script(tmp_path, "solve\n")
        assert main(["incremental", script, "--solver", "nope"]) == 1
        assert "error" in capsys.readouterr().err

    def test_preprocess_flag(self, tmp_path, capsys):
        script = self._write_script(
            tmp_path,
            "add 1 2 0\nadd -1 2 0\nadd 1 -2 0\nsolve\nsolve -1 0\n",
        )
        assert main(["incremental", script, "--preprocess", "--models"]) == 0
        out = capsys.readouterr().out
        assert out.count("s SATISFIABLE") == 1
        assert out.count("s UNSATISFIABLE") == 1

    def test_preprocess_flag_rejected_for_nbl_spec(self, tmp_path, capsys):
        script = self._write_script(tmp_path, "add 1 0\nsolve\n")
        code = main(
            ["incremental", script, "--solver", "nbl-symbolic", "--preprocess"]
        )
        assert code == 1
        assert "preprocess" in capsys.readouterr().err


class TestTelemetryFlags:
    def test_solve_writes_trace_and_metrics(self, sat_file, tmp_path, capsys):
        from repro.telemetry import load_trace

        trace_file = str(tmp_path / "out.jsonl")
        metrics_file = str(tmp_path / "out.prom")
        code = main(
            ["solve", sat_file, "--trace", trace_file, "--metrics", metrics_file]
        )
        assert code == 10
        roots = load_trace(trace_file)
        assert [root.name for root in roots] == ["cli.solve"]
        names = {span.name for root in roots for span in root.walk()}
        assert "preprocess" in names
        assert roots[0].attributes["exit_code"] == 10
        metrics_text = (tmp_path / "out.prom").read_text()
        assert "# TYPE repro_preprocess_runs_total counter" in metrics_text

    def test_solve_metrics_json_snapshot(self, sat_file, tmp_path):
        import json

        metrics_file = tmp_path / "out.json"
        assert main(["solve", sat_file, "--metrics", str(metrics_file)]) == 10
        payload = json.loads(metrics_file.read_text())
        assert "repro_preprocess_runs_total" in payload

    def test_batch_trace_has_pool_and_cache_spans(
        self, batch_dir, tmp_path, capsys
    ):
        from repro.telemetry import load_trace

        trace_file = str(tmp_path / "batch.jsonl")
        code = main(
            ["batch", str(batch_dir), "--solver", "cdcl", "--trace", trace_file]
        )
        assert code == 0
        names = {
            span.name
            for root in load_trace(trace_file)
            for span in root.walk()
        }
        assert "cli.batch" in names
        assert "pool.task" in names
        assert "cache.lookup" in names

    def test_telemetry_is_off_after_the_run(self, sat_file, tmp_path, capsys):
        from repro.telemetry import metrics_active, tracing_active

        main(
            ["solve", sat_file, "--trace", str(tmp_path / "t.jsonl"),
             "--metrics", str(tmp_path / "m.prom")]
        )
        assert not tracing_active()
        assert not metrics_active()


class TestStatsCommand:
    def test_no_inputs_is_usage_error(self, capsys):
        assert main(["stats"]) == 2
        assert "at least one" in capsys.readouterr().err

    def test_reads_back_solve_artifacts(self, sat_file, tmp_path, capsys):
        trace_file = str(tmp_path / "out.jsonl")
        metrics_file = str(tmp_path / "out.prom")
        main(["solve", sat_file, "--trace", trace_file, "--metrics", metrics_file])
        capsys.readouterr()
        code = main(["stats", "--trace", trace_file, "--metrics", metrics_file])
        assert code == 0
        out = capsys.readouterr().out
        assert "cli.solve" in out
        assert "families" in out

    def test_reads_bench_trajectory(self, tmp_path, capsys):
        from repro.telemetry import BenchRecord, append_bench_record

        bench_file = tmp_path / "BENCH_test.json"
        append_bench_record(
            bench_file,
            BenchRecord(benchmark="cdcl-kernel", metrics={"decisions_per_sec": 10.0}),
        )
        assert main(["stats", "--bench", str(bench_file)]) == 0
        assert "cdcl-kernel" in capsys.readouterr().out

    def test_bad_file_exits_1(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("nonsense\n")
        assert main(["stats", "--trace", str(bad)]) == 1
        assert main(["stats", "--bench", str(tmp_path / "missing.json")]) == 1
        assert main(["stats", "--metrics", str(tmp_path / "missing.prom")]) == 1

    def test_empty_metrics_file_is_invalid(self, tmp_path, capsys):
        empty = tmp_path / "empty.prom"
        empty.write_text("")
        assert main(["stats", "--metrics", str(empty)]) == 1


@pytest.fixture
def paper_proof(unsat_file, tmp_path):
    """A CLI-emitted DRAT proof for the paper's UNSAT instance."""
    proof = str(tmp_path / "paper.drat")
    assert main(["solve", unsat_file, "--proof", proof]) == 20
    return proof


class TestSolveProofFlag:
    def test_unsat_roundtrip_on_paper_instance(
        self, unsat_file, paper_proof, capsys
    ):
        assert main(["check-proof", unsat_file, paper_proof]) == 0
        assert "s VERIFIED" in capsys.readouterr().out

    def test_no_preprocess_path_also_roundtrips(
        self, unsat_file, tmp_path, capsys
    ):
        proof = str(tmp_path / "direct.drat")
        assert main(["solve", unsat_file, "--proof", proof, "--no-preprocess"]) == 20
        assert main(["check-proof", unsat_file, proof]) == 0
        assert "s VERIFIED" in capsys.readouterr().out

    def test_sat_instance_still_exits_10(self, sat_file, tmp_path, capsys):
        proof = str(tmp_path / "sat.drat")
        assert main(["solve", sat_file, "--proof", proof]) == 10
        out = capsys.readouterr().out
        assert "SATISFIABLE" in out and "v " in out


class TestIncrementalProofFlag:
    def test_session_proof_roundtrips(self, unsat_file, tmp_path, capsys):
        script = tmp_path / "queries.txt"
        script.write_text(f"load {unsat_file}\nsolve\n", encoding="utf-8")
        proof = str(tmp_path / "inc.drat")
        assert main(["incremental", str(script), "--proof", proof]) == 0
        out = capsys.readouterr().out
        assert "s UNSATISFIABLE" in out and proof in out
        assert main(["check-proof", unsat_file, proof]) == 0

    def test_nbl_session_rejects_proof(self, tmp_path, capsys):
        script = tmp_path / "queries.txt"
        script.write_text("add 1 0\nsolve\n", encoding="utf-8")
        code = main(
            ["incremental", str(script), "--solver", "nbl-symbolic",
             "--proof", str(tmp_path / "x.drat")]
        )
        assert code == 1
        assert "does not support proof logging" in capsys.readouterr().err


class TestBatchProofDir:
    def test_proofs_written_per_job(self, batch_dir, tmp_path, capsys):
        proof_dir = tmp_path / "proofs"
        code = main(
            ["batch", str(batch_dir), "--solver", "cdcl",
             "--proof-dir", str(proof_dir)]
        )
        assert code == 0
        assert list(proof_dir.glob("*.drat"))

    def test_portfolio_rejects_proof_dir(self, batch_dir, tmp_path, capsys):
        code = main(
            ["batch", str(batch_dir), "--portfolio",
             "--proof-dir", str(tmp_path / "proofs")]
        )
        assert code == 1
        assert "classical solver spec" in capsys.readouterr().err


class TestCheckProofCommand:
    def test_verified_exits_0(self, unsat_file, paper_proof, capsys):
        assert main(["check-proof", unsat_file, paper_proof]) == 0
        assert "s VERIFIED" in capsys.readouterr().out

    def test_no_refutation_exits_1(self, unsat_file, paper_proof, tmp_path, capsys):
        lines = [
            line
            for line in open(paper_proof, encoding="utf-8").read().splitlines()
            if line != "0"
        ]
        trimmed = tmp_path / "noempty.drat"
        trimmed.write_text("\n".join(lines) + "\n" if lines else "")
        assert main(["check-proof", unsat_file, str(trimmed)]) == 1
        assert "s REJECTED" in capsys.readouterr().out

    def test_reordered_proof_exits_1(self, unsat_file, paper_proof, tmp_path):
        lines = open(paper_proof, encoding="utf-8").read().splitlines()
        reordered = tmp_path / "reordered.drat"
        reordered.write_text("\n".join(["0"] + [l for l in lines if l != "0"]) + "\n")
        assert main(["check-proof", unsat_file, str(reordered)]) == 1

    def test_torn_line_exits_2(self, unsat_file, tmp_path, capsys):
        torn = tmp_path / "torn.drat"
        torn.write_text("1 2\n")  # missing terminating 0
        assert main(["check-proof", unsat_file, str(torn)]) == 2
        assert "torn" in capsys.readouterr().err

    def test_bad_token_exits_2(self, unsat_file, tmp_path, capsys):
        bad = tmp_path / "bad.drat"
        bad.write_text("1 oops 0\n")
        assert main(["check-proof", unsat_file, str(bad)]) == 2

    def test_missing_files_exit_2(self, unsat_file, paper_proof, tmp_path, capsys):
        assert main(["check-proof", unsat_file, str(tmp_path / "no.drat")]) == 2
        assert main(["check-proof", str(tmp_path / "no.cnf"), paper_proof]) == 2

    def test_help_states_proof_exit_codes(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        out = " ".join(capsys.readouterr().out.split())
        assert "check-proof" in out
