"""Tests for the command-line interface (repro.cli)."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.cnf.dimacs import write_dimacs_file
from repro.cnf.paper_instances import section4_sat_instance, section4_unsat_instance


@pytest.fixture
def sat_file(tmp_path):
    path = tmp_path / "sat.cnf"
    write_dimacs_file(section4_sat_instance(), path)
    return str(path)


@pytest.fixture
def unsat_file(tmp_path):
    path = tmp_path / "unsat.cnf"
    write_dimacs_file(section4_unsat_instance(), path)
    return str(path)


class TestCheckCommand:
    def test_sat_exit_code(self, sat_file, capsys):
        assert main(["check", sat_file]) == 10
        assert "SATISFIABLE" in capsys.readouterr().out

    def test_unsat_exit_code(self, unsat_file, capsys):
        assert main(["check", unsat_file]) == 20
        assert "UNSATISFIABLE" in capsys.readouterr().out

    def test_sampled_engine_with_carrier(self, sat_file):
        code = main(
            ["check", sat_file, "--engine", "sampled", "--carrier", "bipolar",
             "--samples", "60000", "--seed", "3"]
        )
        assert code == 10


class TestSolveCommand:
    def test_solve_prints_model(self, sat_file, capsys):
        assert main(["solve", sat_file]) == 10
        out = capsys.readouterr().out
        assert "SATISFIABLE" in out
        assert "v -1 2 0" in out

    def test_solve_unsat(self, unsat_file, capsys):
        assert main(["solve", unsat_file]) == 20
        assert "UNSATISFIABLE" in capsys.readouterr().out

    def test_solve_cube_flag(self, sat_file):
        assert main(["solve", sat_file, "--cube"]) == 10


class TestFigure1Command:
    def test_figure1_renders(self, capsys):
        assert main(["figure1", "--samples", "60000", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "legend" in out


class TestArgumentParsing:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_engine_rejected(self, sat_file):
        with pytest.raises(SystemExit):
            main(["check", sat_file, "--engine", "quantum"])
