"""Tests for repro.runtime.locks: lease protocol, staleness, takeover."""

from __future__ import annotations

import json
import os
import threading
import time

import pytest

from repro.exceptions import CacheLockError
from repro.runtime.locks import FileLease


def _lock_path(tmp_path) -> str:
    return str(tmp_path / "shard-000.lock")


class TestLifecycle:
    def test_acquire_release_roundtrip(self, tmp_path):
        lease = FileLease(_lock_path(tmp_path))
        assert not lease.held
        lease.acquire()
        assert lease.held
        assert os.path.exists(lease.path)
        lease.release()
        assert not lease.held
        assert not os.path.exists(lease.path)

    def test_lock_file_records_holder(self, tmp_path):
        lease = FileLease(_lock_path(tmp_path))
        with lease:
            with open(lease.path, "r", encoding="utf-8") as handle:
                holder = json.load(handle)
            assert holder["pid"] == os.getpid()
            assert holder["heartbeat"] >= holder["acquired"]

    def test_release_idempotent_and_tolerates_missing_file(self, tmp_path):
        lease = FileLease(_lock_path(tmp_path))
        lease.acquire()
        os.unlink(lease.path)  # someone else cleaned up behind our back
        lease.release()
        lease.release()
        assert not lease.held

    def test_reacquire_after_release(self, tmp_path):
        lease = FileLease(_lock_path(tmp_path))
        for _ in range(3):
            lease.acquire()
            lease.release()

    def test_double_acquire_rejected(self, tmp_path):
        lease = FileLease(_lock_path(tmp_path))
        lease.acquire()
        with pytest.raises(CacheLockError, match="already held"):
            lease.acquire()

    def test_refresh_requires_held(self, tmp_path):
        lease = FileLease(_lock_path(tmp_path))
        with pytest.raises(CacheLockError, match="not held"):
            lease.refresh()

    def test_bad_lease_timeout(self, tmp_path):
        with pytest.raises(CacheLockError):
            FileLease(_lock_path(tmp_path), lease_timeout=0)


class TestMutualExclusion:
    def test_second_instance_blocks_until_release(self, tmp_path):
        # Two FileLease instances behave exactly like two processes.
        first = FileLease(_lock_path(tmp_path), lease_timeout=5.0)
        second = FileLease(_lock_path(tmp_path), lease_timeout=5.0)
        first.acquire()
        assert not second.try_acquire()

        acquired = threading.Event()

        def contender():
            second.acquire(timeout=5.0)
            acquired.set()

        thread = threading.Thread(target=contender)
        thread.start()
        time.sleep(0.05)
        assert not acquired.is_set()  # still held by first
        first.release()
        thread.join(timeout=5.0)
        assert acquired.is_set()
        assert second.held and not first.held
        second.release()

    def test_acquire_times_out_on_live_holder(self, tmp_path):
        first = FileLease(_lock_path(tmp_path), lease_timeout=30.0)
        second = FileLease(_lock_path(tmp_path), lease_timeout=30.0)
        first.acquire()  # live PID, fresh heartbeat: never stale
        with pytest.raises(CacheLockError, match="could not acquire"):
            second.acquire(timeout=0.1)
        first.release()

    def test_interleaved_critical_sections_exclusive(self, tmp_path):
        path = _lock_path(tmp_path)
        inside = []
        overlaps = []

        def worker(name: str) -> None:
            lease = FileLease(path, lease_timeout=10.0)
            for _ in range(20):
                lease.acquire(timeout=10.0)
                inside.append(name)
                if len(inside) > 1:
                    overlaps.append(list(inside))
                inside.remove(name)
                lease.release()

        threads = [
            threading.Thread(target=worker, args=(f"w{i}",)) for i in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not overlaps, f"critical sections overlapped: {overlaps[:3]}"


class TestStaleTakeover:
    def _plant_lock(self, path: str, pid: int, heartbeat: float) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "pid": pid,
                    "nonce": "dead-holder",
                    "acquired": heartbeat,
                    "heartbeat": heartbeat,
                },
                handle,
            )

    def test_dead_pid_is_taken_over(self, tmp_path):
        path = _lock_path(tmp_path)
        # A PID that cannot exist: max_pid is far below 2**30 on Linux.
        self._plant_lock(path, pid=2**30 + 7, heartbeat=time.time())
        lease = FileLease(path, lease_timeout=30.0)
        lease.acquire(timeout=5.0)
        assert lease.held
        assert lease.takeovers == 1
        lease.release()

    def test_expired_heartbeat_is_taken_over(self, tmp_path):
        path = _lock_path(tmp_path)
        # Our own (live) PID, but a heartbeat far past the lease timeout —
        # the SIGKILL-while-holding shape when the PID got recycled.
        self._plant_lock(path, pid=os.getpid(), heartbeat=time.time() - 60.0)
        lease = FileLease(path, lease_timeout=0.5)
        lease.acquire(timeout=5.0)
        assert lease.takeovers == 1
        lease.release()

    def test_fresh_heartbeat_from_live_pid_not_stolen(self, tmp_path):
        path = _lock_path(tmp_path)
        self._plant_lock(path, pid=os.getpid(), heartbeat=time.time())
        lease = FileLease(path, lease_timeout=30.0)
        with pytest.raises(CacheLockError):
            lease.acquire(timeout=0.1)

    def test_unreadable_lock_falls_back_to_mtime(self, tmp_path):
        path = _lock_path(tmp_path)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"pid": 12')  # a torn lock write
        old = time.time() - 60.0
        os.utime(path, (old, old))
        lease = FileLease(path, lease_timeout=0.5)
        lease.acquire(timeout=5.0)
        assert lease.takeovers == 1
        lease.release()

    def test_refresh_keeps_lease_live(self, tmp_path):
        path = _lock_path(tmp_path)
        holder = FileLease(path, lease_timeout=0.4)
        holder.acquire()
        waiter = FileLease(path, lease_timeout=0.4)
        for _ in range(3):
            time.sleep(0.2)
            holder.refresh()  # heartbeat never grows older than 0.2s
        assert not waiter.try_acquire()
        with open(path, "r", encoding="utf-8") as handle:
            record = json.load(handle)
        assert time.time() - record["heartbeat"] < 0.4
        holder.release()

    def test_exactly_one_waiter_wins_takeover(self, tmp_path):
        path = _lock_path(tmp_path)
        self._plant_lock(path, pid=2**30 + 7, heartbeat=time.time() - 60.0)
        winners = []
        barrier = threading.Barrier(4)

        def waiter(index: int) -> None:
            lease = FileLease(path, lease_timeout=1.0)
            barrier.wait()
            lease.acquire(timeout=10.0)
            winners.append(index)
            time.sleep(0.02)  # hold briefly so contenders truly contend
            lease.release()

        threads = [
            threading.Thread(target=waiter, args=(i,)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        # All four eventually got the lock (serially), none deadlocked.
        assert sorted(winners) == [0, 1, 2, 3]
