"""Proof and assumption-core plumbing through the runtime subsystem."""

from __future__ import annotations

import os

import pytest

from repro.cnf.formula import CNFFormula
from repro.cnf.structured import pigeonhole_formula
from repro.exceptions import RuntimeSubsystemError
from repro.proofs import check_proof_file
from repro.runtime.jobs import SolveJob, SolveOutcome
from repro.runtime.pool import WorkerPool, execute_job

CHAIN = CNFFormula.from_ints([[-1, 2], [-2, 3]], 3)


class TestSolveJobProofField:
    @pytest.mark.parametrize("spec", ["portfolio", "nbl-symbolic", "nbl-sampled"])
    def test_rejected_for_non_classical_specs(self, spec):
        with pytest.raises(RuntimeSubsystemError, match="classical"):
            SolveJob(formula=CHAIN, solver=spec, proof="p.drat")

    def test_accepted_for_classical_specs(self, tmp_path):
        job = SolveJob(formula=CHAIN, solver="cdcl", proof=str(tmp_path / "p.drat"))
        assert job.proof is not None


class TestOutcomeSerialisation:
    def test_core_and_proof_roundtrip(self):
        outcome = SolveOutcome(
            job_id="j",
            status="UNSAT",
            solver="cdcl",
            core=(1, -3),
            proof="/tmp/p.drat",
        )
        restored = SolveOutcome.from_dict(outcome.to_dict())
        assert restored.core == (1, -3)
        assert restored.proof == "/tmp/p.drat"
        assert outcome.copy().core == (1, -3)

    def test_old_payloads_load_with_defaults(self):
        data = SolveOutcome(job_id="j", status="SAT", solver="cdcl").to_dict()
        del data["core"], data["proof"]
        restored = SolveOutcome.from_dict(data)
        assert restored.core is None
        assert restored.proof == ""


class TestExecuteJobProofs:
    def test_direct_proof_verifies(self, tmp_path):
        formula = pigeonhole_formula(4, 3)
        path = str(tmp_path / "direct.drat")
        outcome = execute_job(SolveJob(formula=formula, solver="cdcl", proof=path))
        assert outcome.status == "UNSAT"
        assert outcome.proof == path
        assert check_proof_file(formula, path)

    def test_preprocessed_proof_verifies(self, tmp_path):
        formula = pigeonhole_formula(4, 3)
        path = str(tmp_path / "pre.drat")
        outcome = execute_job(
            SolveJob(formula=formula, solver="cdcl", preprocess=True, proof=path)
        )
        assert outcome.status == "UNSAT"
        assert check_proof_file(formula, path)

    def test_preprocessed_proof_after_coordinator_cache_key(self, tmp_path):
        """Regression: computing the cache key first (as the batch
        coordinator does) caches a proof-less reduction; the executing
        side must still record the pipeline's lines."""
        formula = pigeonhole_formula(4, 3)
        path = str(tmp_path / "warm.drat")
        job = SolveJob(formula=formula, solver="cdcl", preprocess=True, proof=path)
        assert job.cache_key  # forces the proof-less reduction
        outcome = execute_job(job)
        assert outcome.status == "UNSAT"
        result = check_proof_file(formula, path)
        assert result, result.reason


class TestExecuteJobCores:
    def test_direct_assumption_core(self):
        outcome = execute_job(
            SolveJob(formula=CHAIN, solver="cdcl", assumptions=(1, -3))
        )
        assert outcome.status == "UNSAT"
        assert outcome.core == (1, -3)

    def test_preprocessed_core_in_original_numbering(self):
        # Variables 1-3 are eliminated by preprocessing; the frozen
        # assumption variables 4 and 6 must come back un-renumbered.
        formula = CNFFormula.from_ints([[-4, 5], [-5, 6], [1, 2], [2, 3]], 6)
        outcome = execute_job(
            SolveJob(
                formula=formula, solver="cdcl", preprocess=True, assumptions=(4, -6)
            )
        )
        assert outcome.status == "UNSAT"
        assert outcome.core is not None
        assert set(outcome.core) <= {4, -6}

    def test_contradictory_assumptions_core(self):
        outcome = execute_job(
            SolveJob(
                formula=CHAIN, solver="cdcl", preprocess=True, assumptions=(2, -2)
            )
        )
        assert outcome.status == "UNSAT"
        assert set(outcome.core) == {2, -2}

    def test_sat_outcome_has_no_core(self):
        outcome = execute_job(
            SolveJob(formula=CHAIN, solver="cdcl", assumptions=(1, 3))
        )
        assert outcome.status == "SAT"
        assert outcome.core is None


class TestBatchProofDir:
    def test_proof_per_job_and_verifying(self, tmp_path):
        from repro.runtime.batch import BatchRunner

        proof_dir = tmp_path / "proofs"
        runner = BatchRunner(solver="cdcl", proof_dir=proof_dir, preprocess=True)
        formula = pigeonhole_formula(4, 3)
        report = runner.run_jobs([runner.make_job(formula, label="php43")])
        outcome = report.outcomes[0]
        assert outcome.status == "UNSAT"
        assert os.path.dirname(outcome.proof) == str(proof_dir)
        assert check_proof_file(formula, outcome.proof)

    def test_cache_hit_keeps_producing_runs_proof(self, tmp_path):
        from repro.runtime.batch import BatchRunner

        runner = BatchRunner(solver="cdcl", proof_dir=tmp_path / "proofs")
        formula = pigeonhole_formula(4, 3)
        first = runner.run_jobs([runner.make_job(formula, label="a")]).outcomes[0]
        second = runner.run_jobs([runner.make_job(formula, label="b")]).outcomes[0]
        assert second.from_cache is True
        assert second.proof == first.proof

    def test_rejected_for_non_classical_specs(self, tmp_path):
        from repro.runtime.batch import BatchRunner

        with pytest.raises(RuntimeSubsystemError, match="classical"):
            BatchRunner(solver="portfolio", proof_dir=tmp_path / "proofs")


def test_parallel_workers_write_proofs(tmp_path):
    """Proof paths are picklable; worker processes write the real files."""
    formulas = [pigeonhole_formula(3, 2), pigeonhole_formula(4, 3)]
    jobs = [
        SolveJob(
            formula=formula,
            job_id=f"par-{index}",
            solver="cdcl",
            proof=str(tmp_path / f"par-{index}.drat"),
        )
        for index, formula in enumerate(formulas)
    ]
    outcomes = WorkerPool(workers=2).run(jobs)
    for job, formula, outcome in zip(jobs, formulas, outcomes):
        assert outcome.status == "UNSAT"
        result = check_proof_file(formula, job.proof)
        assert result, result.reason
