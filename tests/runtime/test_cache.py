"""Tests for repro.runtime.cache (and the formula fingerprint it keys on)."""

from __future__ import annotations

import pytest

from repro.cnf.formula import CNFFormula
from repro.exceptions import RuntimeSubsystemError
from repro.runtime.cache import ResultCache
from repro.runtime.jobs import SolveOutcome


def _outcome(fingerprint: str, status: str = "SAT", **kwargs) -> SolveOutcome:
    defaults = dict(
        job_id=f"job-{fingerprint}",
        status=status,
        solver="portfolio",
        fingerprint=fingerprint,
        verified=True,
    )
    defaults.update(kwargs)
    return SolveOutcome(**defaults)


class TestFingerprintKeying:
    def test_clause_reordering_is_invariant(self):
        a = CNFFormula.from_ints([[1, 2], [-1, -2], [2, 3]])
        b = CNFFormula.from_ints([[2, 3], [1, 2], [-1, -2]])
        assert a.fingerprint() == b.fingerprint()

    def test_literal_reordering_is_invariant(self):
        a = CNFFormula.from_ints([[1, 2, -3]])
        b = CNFFormula.from_ints([[-3, 2, 1]])
        assert a.fingerprint() == b.fingerprint()

    def test_different_clauses_differ(self):
        a = CNFFormula.from_ints([[1, 2]])
        b = CNFFormula.from_ints([[1, -2]])
        assert a.fingerprint() != b.fingerprint()

    def test_num_variables_is_part_of_the_key(self):
        a = CNFFormula.from_ints([[1]], num_variables=1)
        b = CNFFormula.from_ints([[1]], num_variables=3)
        assert a.fingerprint() != b.fingerprint()

    def test_cache_serves_reordered_formula(self):
        cache = ResultCache()
        a = CNFFormula.from_ints([[1, 2], [-1, -2]])
        b = CNFFormula.from_ints([[-1, -2], [1, 2]])
        assert cache.put(_outcome(a.fingerprint()))
        hit = cache.get(b.fingerprint())
        assert hit is not None and hit.from_cache


class TestLRUBehaviour:
    def test_eviction_order(self):
        cache = ResultCache(max_size=2)
        cache.put(_outcome("a"))
        cache.put(_outcome("b"))
        assert cache.get("a") is not None  # refresh "a"
        cache.put(_outcome("c"))  # evicts "b"
        assert cache.get("b") is None
        assert cache.get("a") is not None
        assert cache.get("c") is not None
        assert cache.stats.evictions == 1

    def test_max_size_must_be_positive(self):
        with pytest.raises(RuntimeSubsystemError):
            ResultCache(max_size=0)


class TestCacheability:
    def test_unknown_outcomes_are_not_cached(self):
        cache = ResultCache()
        assert not cache.put(_outcome("x", status="UNKNOWN", verified=False))
        assert len(cache) == 0

    def test_unverified_outcomes_are_not_cached(self):
        cache = ResultCache()
        assert not cache.put(_outcome("x", status="UNSAT", verified=False))
        assert len(cache) == 0

    def test_missing_fingerprint_is_not_cached(self):
        cache = ResultCache()
        assert not cache.put(_outcome(""))


class TestStatsAndServing:
    def test_hit_rate(self):
        cache = ResultCache()
        cache.put(_outcome("a"))
        cache.get("a")
        cache.get("missing")
        stats = cache.stats
        assert stats.hits == 1 and stats.misses == 1
        assert stats.hit_rate == pytest.approx(0.5)

    def test_served_copy_is_independent(self):
        cache = ResultCache()
        cache.put(_outcome("a", elapsed_seconds=1.5))
        served = cache.get("a")
        assert served.from_cache and served.elapsed_seconds == 0.0
        served.status = "MUTATED"
        assert cache.get("a").status == "SAT"


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = ResultCache()
        cache.put(_outcome("a", assignment=(1, -2)))
        cache.put(_outcome("b", status="UNSAT", assignment=None))
        assert cache.save(path) == 2

        fresh = ResultCache()
        assert fresh.load(path) == 2
        hit = fresh.get("a")
        assert hit.assignment == (1, -2) and hit.status == "SAT"
        assert fresh.get("b").status == "UNSAT"

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json at all")
        with pytest.raises(RuntimeSubsystemError):
            ResultCache().load(path)
