"""Tests for repro.runtime.portfolio: correctness against ground truth."""

from __future__ import annotations

import pytest

from repro.cnf.formula import CNFFormula
from repro.cnf.generators import phase_transition_family, random_ksat
from repro.exceptions import RuntimeSubsystemError
from repro.runtime.portfolio import DEFAULT_CONTENDERS, PortfolioSolver
from repro.solvers.brute_force import BruteForceSolver


class TestAgreementWithBruteForce:
    """Portfolio answers must match exhaustive enumeration (≤ 12 variables)."""

    def test_mixed_random_instances(self):
        portfolio = PortfolioSolver(samples=20_000)
        brute = BruteForceSolver()
        checked = 0
        for num_variables in (6, 10, 12):
            for ratio, formula in phase_transition_family(
                num_variables, ratios=(3.0, 4.26, 5.5), seed=num_variables
            ):
                truth = brute.solve(formula).status
                result = portfolio.solve(formula, seed=0)
                assert result.status == truth, (
                    f"portfolio={result.status} truth={truth} "
                    f"(n={num_variables}, ratio={ratio})"
                )
                if result.status == "SAT":
                    assert result.verified
                    assert formula.evaluate(result.assignment.as_dict())
                checked += 1
        assert checked == 9

    def test_unsat_instance(self):
        formula = CNFFormula.from_ints(
            [[1, 2], [1, -2], [-1, 2], [-1, -2]]
        )
        result = PortfolioSolver().solve(formula, seed=0)
        assert result.status == "UNSAT" and result.verified
        assert result.winner in DEFAULT_CONTENDERS


class TestRaceMechanics:
    def test_reports_cover_run_contenders(self):
        formula = random_ksat(8, 20, seed=1)
        result = PortfolioSolver().solve(formula, seed=0)
        assert result.reports
        assert result.winner == result.reports[-1].name  # race stops at winner
        assert set(result.contender_seconds) == {r.name for r in result.reports}

    def test_first_settler_wins(self):
        formula = CNFFormula.from_ints([[1, 2], [-1, -2]])
        result = PortfolioSolver(contenders=("dpll", "cdcl")).solve(formula)
        assert result.winner == "dpll"
        assert [r.name for r in result.reports] == ["dpll"]

    def test_incomplete_solver_cannot_settle_unsat(self):
        formula = CNFFormula.from_ints([[1], [-1]])
        result = PortfolioSolver(contenders=("walksat",)).solve(formula, seed=0)
        assert result.status == "UNKNOWN"
        assert result.contender_status["walksat"] == "UNKNOWN"

    def test_exponential_contender_is_skipped_on_large_instances(self):
        formula = random_ksat(30, 60, seed=0)
        result = PortfolioSolver(
            contenders=("nbl-symbolic", "cdcl"), samples=10_000
        ).solve(formula, seed=0)
        assert result.contender_status["nbl-symbolic"] == "SKIPPED"
        assert result.winner == "cdcl"

    def test_hybrid_is_a_valid_contender(self):
        formula = CNFFormula.from_ints([[1, 2], [-1, -2]])
        result = PortfolioSolver(contenders=("hybrid",)).solve(formula, seed=0)
        assert result.status == "SAT" and result.winner == "hybrid"

    def test_determinism_for_fixed_seed(self):
        formula = random_ksat(10, 42, seed=4)
        portfolio = PortfolioSolver(samples=20_000)
        first = portfolio.solve(formula, seed=9)
        second = portfolio.solve(formula, seed=9)
        assert first.status == second.status
        assert first.winner == second.winner
        statuses = lambda r: {c.name: c.status for c in r.reports}  # noqa: E731
        assert statuses(first) == statuses(second)


class TestValidation:
    def test_unknown_contender_rejected(self):
        with pytest.raises(RuntimeSubsystemError):
            PortfolioSolver(contenders=("quantum",))

    def test_empty_roster_rejected(self):
        with pytest.raises(RuntimeSubsystemError):
            PortfolioSolver(contenders=())
