"""Assumption-carrying jobs through the pool, batch and portfolio layers."""

from __future__ import annotations

import pytest

from repro.cnf.formula import CNFFormula
from repro.runtime import BatchRunner, PortfolioSolver, SolveJob, execute_job
from repro.runtime.jobs import SolveOutcome


def simple_formula() -> CNFFormula:
    return CNFFormula.from_ints([[1, 2], [-1, -2]])


class TestExecuteJobWithAssumptions:
    @pytest.mark.parametrize("solver", ["cdcl", "dpll", "brute-force"])
    def test_classical_unsat_under_assumptions(self, solver):
        outcome = execute_job(
            SolveJob(formula=simple_formula(), solver=solver, assumptions=(1, 2))
        )
        assert outcome.status == "UNSAT"
        assert outcome.verified
        assert outcome.assumptions == (1, 2)

    def test_classical_sat_model_respects_assumptions(self):
        outcome = execute_job(
            SolveJob(formula=simple_formula(), solver="cdcl", assumptions=(-1,))
        )
        assert outcome.status == "SAT"
        model = outcome.assignment_dict()
        assert model[1] is False and model[2] is True

    def test_nbl_symbolic_with_assumptions(self):
        outcome = execute_job(
            SolveJob(
                formula=simple_formula(),
                solver="nbl-symbolic",
                assumptions=(1, 2),
            )
        )
        assert outcome.status == "UNSAT"
        assert outcome.verified

    def test_portfolio_with_assumptions(self):
        outcome = execute_job(
            SolveJob(
                formula=simple_formula(),
                solver="portfolio",
                assumptions=(2,),
                seed=1,
            )
        )
        assert outcome.status == "SAT"
        model = outcome.assignment_dict()
        assert model[2] is True and model[1] is False

    def test_assumptions_are_canonicalised(self):
        job = SolveJob(
            formula=simple_formula(), solver="cdcl", assumptions=(2, 1, 2)
        )
        assert job.assumptions == (1, 2)


class TestPortfolioAssumptions:
    def test_solve_accepts_assumptions(self):
        result = PortfolioSolver().solve(
            simple_formula(), seed=0, assumptions=(1, 2)
        )
        assert result.status == "UNSAT"

    def test_assumption_free_race_unchanged(self):
        result = PortfolioSolver().solve(simple_formula(), seed=0)
        assert result.status == "SAT"


class TestBatchCacheWithAssumptions:
    def test_cache_keys_separate_assumption_sets(self):
        runner = BatchRunner(solver="cdcl")
        formula = simple_formula()
        jobs = [
            runner.make_job(formula, label="free"),
            runner.make_job(formula, label="assumed", assumptions=(1, 2)),
            runner.make_job(formula, label="free-again"),
            runner.make_job(formula, label="assumed-again", assumptions=(2, 1)),
        ]
        report = runner.run_jobs(jobs)
        by_label = {o.label: o for o in report.outcomes}
        assert by_label["free"].status == "SAT"
        assert by_label["assumed"].status == "UNSAT"
        # Repeats are cache/de-dup hits of the matching assumption set only.
        assert by_label["free-again"].status == "SAT"
        assert by_label["free-again"].from_cache
        assert by_label["assumed-again"].status == "UNSAT"
        assert by_label["assumed-again"].from_cache

    def test_outcome_roundtrips_assumptions_through_json(self):
        outcome = SolveOutcome(
            job_id="j",
            status="UNSAT",
            solver="cdcl",
            fingerprint="ab" * 32,
            assumptions=(1, -3),
            verified=True,
        )
        restored = SolveOutcome.from_dict(outcome.to_dict())
        assert restored.assumptions == (1, -3)
        assert restored.cache_key == outcome.cache_key

    def test_persisted_cache_preserves_assumption_keys(self, tmp_path):
        from repro.runtime import ResultCache

        cache = ResultCache()
        runner = BatchRunner(solver="cdcl", cache=cache)
        formula = simple_formula()
        runner.run_jobs(
            [runner.make_job(formula, label="a", assumptions=(1, 2))]
        )
        path = tmp_path / "cache.json"
        cache.save(path)
        reloaded = ResultCache()
        reloaded.load(path)
        key = runner.make_job(formula, assumptions=(1, 2)).cache_key
        hit = reloaded.get(key)
        assert hit is not None and hit.status == "UNSAT"
        assert reloaded.get(formula.fingerprint()) is None
