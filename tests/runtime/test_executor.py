"""Tests for repro.runtime.pool.JobExecutor (the reusable executor core)."""

from __future__ import annotations

import concurrent.futures

import pytest

from repro.cnf.formula import CNFFormula
from repro.exceptions import RuntimeSubsystemError
from repro.runtime.jobs import SolveJob
from repro.runtime.pool import JobExecutor, WorkerPool


def _sat_job(**overrides) -> SolveJob:
    fields = dict(
        formula=CNFFormula.from_ints([[1, 2], [-1]]),
        solver="cdcl",
    )
    fields.update(overrides)
    return SolveJob(**fields)


def _unsat_job() -> SolveJob:
    return SolveJob(formula=CNFFormula.from_ints([[1], [-1]]), solver="cdcl")


class TestConstruction:
    def test_rejects_nonpositive_workers(self):
        with pytest.raises(RuntimeSubsystemError):
            JobExecutor(workers=0)

    def test_rejects_inline_multiworker(self):
        with pytest.raises(RuntimeSubsystemError):
            JobExecutor(workers=2, inline=True)

    def test_single_worker_defaults_inline(self):
        executor = JobExecutor(workers=1)
        assert executor.inline
        executor.shutdown()

    def test_pool_factory_shares_configuration(self):
        pool = WorkerPool(workers=1, master_seed=99)
        executor = pool.executor()
        assert executor.inline and executor.master_seed == 99
        executor.shutdown()
        nonblocking = pool.executor(inline=False)
        assert not nonblocking.inline
        nonblocking.shutdown()


class TestInline:
    def test_submit_resolves_synchronously(self):
        executor = JobExecutor(workers=1)
        future = executor.submit(_sat_job())
        assert future.done()  # inline: already solved
        outcome = executor.collect(future, _sat_job())
        assert outcome.status == "SAT" and outcome.verified
        executor.shutdown()


class TestThreaded:
    def test_submit_returns_pending_future(self):
        executor = JobExecutor(workers=1, inline=False)
        try:
            job = _sat_job()
            future = executor.submit(job)
            outcome = executor.collect(future, job)
            assert outcome.status == "SAT"
            unsat = _unsat_job()
            assert executor.collect(executor.submit(unsat), unsat).status == "UNSAT"
        finally:
            executor.shutdown()

    def test_collect_translates_worker_exception(self):
        executor = JobExecutor(workers=1, inline=False)
        try:
            job = _sat_job()
            poisoned: concurrent.futures.Future = concurrent.futures.Future()
            poisoned.set_exception(RuntimeError("boom"))
            outcome = executor.collect(poisoned, job)
            assert outcome.status == "ERROR"
            assert "boom" in outcome.error
        finally:
            executor.shutdown()

    def test_collect_grace_window_times_out(self):
        executor = JobExecutor(workers=1, inline=False)
        try:
            job = _sat_job(timeout=0.01)
            stuck: concurrent.futures.Future = concurrent.futures.Future()
            outcome = executor.collect(stuck, job, grace=0.05)
            assert outcome.status == "UNKNOWN" and outcome.timed_out
        finally:
            executor.shutdown()

    def test_collect_cancelled_future(self):
        executor = JobExecutor(workers=1, inline=False)
        try:
            job = _sat_job()
            cancelled: concurrent.futures.Future = concurrent.futures.Future()
            cancelled.cancel()
            cancelled.set_running_or_notify_cancel()
            outcome = executor.collect(cancelled, job)
            assert outcome.status == "ERROR"
        finally:
            executor.shutdown()


class TestProcessPool:
    def test_multiworker_solves(self):
        executor = JobExecutor(workers=2, master_seed=7)
        try:
            jobs = [_sat_job(), _unsat_job()]
            futures = [executor.submit(job) for job in jobs]
            outcomes = [
                executor.collect(future, job)
                for future, job in zip(futures, jobs)
            ]
            assert [outcome.status for outcome in outcomes] == ["SAT", "UNSAT"]
        finally:
            executor.shutdown()


class TestBatchEquivalence:
    def test_pool_run_unchanged_by_refactor(self):
        """WorkerPool.run on the executor core keeps batch semantics."""
        jobs = [_sat_job(), _unsat_job()]
        seen = []
        outcomes = WorkerPool(workers=1, master_seed=0).run(
            jobs, on_outcome=seen.append
        )
        assert [outcome.status for outcome in outcomes] == ["SAT", "UNSAT"]
        assert [outcome.job_id for outcome in seen] == [
            outcome.job_id for outcome in outcomes
        ]
