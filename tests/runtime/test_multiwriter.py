"""Tests for multi-writer shard safety: leases, merge-compaction, degradation.

Two :class:`ShardedResultCache` instances over one directory behave
exactly like two server processes — separate in-memory caches, separate
WAL handles, separate leases — so these tests exercise the cross-process
protocol without subprocess plumbing (the chaos suite covers the real
multi-process case).
"""

from __future__ import annotations

import os

import pytest

from repro import faults
from repro.exceptions import CachePersistError
from repro.faults import FaultPlan
from repro.runtime.jobs import SolveOutcome
from repro.runtime.shards import ShardedResultCache


@pytest.fixture(autouse=True)
def _isolated_plan():
    faults.clear_plan()
    yield
    faults.clear_plan()


def _outcome(fingerprint: str) -> SolveOutcome:
    return SolveOutcome(
        job_id=f"job-{fingerprint}",
        status="SAT",
        solver="cdcl",
        fingerprint=fingerprint,
        verified=True,
        assignment=(1,),
    )


class TestTwoWriters:
    def test_interleaved_puts_all_recoverable(self, tmp_path):
        directory = str(tmp_path / "cache")
        writer_a = ShardedResultCache(directory=directory, shards=2)
        writer_b = ShardedResultCache(directory=directory, shards=2)
        for i in range(10):
            writer_a.put(_outcome(f"a-{i}"))
            writer_b.put(_outcome(f"b-{i}"))
        # Neither closed: recovery must see all 20 from the WALs alone.
        recovered = ShardedResultCache(directory=directory, shards=2)
        for i in range(10):
            assert recovered.get(f"a-{i}") is not None
            assert recovered.get(f"b-{i}") is not None
        assert recovered.torn_records == 0

    def test_compaction_by_one_keeps_the_others_records(self, tmp_path):
        # The regression merge-compaction exists for: writer A compacts
        # (snapshot + WAL truncate) while writer B's verdicts live only
        # in the WAL. A bare dump of A's memory would lose them.
        directory = str(tmp_path / "cache")
        writer_a = ShardedResultCache(directory=directory, shards=1)
        writer_b = ShardedResultCache(directory=directory, shards=1)
        writer_a.put(_outcome("from-a"))
        writer_b.put(_outcome("from-b"))
        writer_a.compact()
        wal = os.path.join(directory, "shard-000.wal")
        assert os.path.getsize(wal) == 0  # WAL truncated by A
        recovered = ShardedResultCache(directory=directory, shards=1)
        assert recovered.get("from-a") is not None
        assert recovered.get("from-b") is not None, (
            "compaction by writer A discarded writer B's WAL records"
        )

    def test_compaction_adopts_other_writers_entries(self, tmp_path):
        directory = str(tmp_path / "cache")
        writer_a = ShardedResultCache(directory=directory, shards=1)
        writer_b = ShardedResultCache(directory=directory, shards=1)
        writer_b.put(_outcome("b-only"))
        assert writer_a.get("b-only") is None  # not in A's memory yet
        writer_a.compact()  # merge folds B's WAL record into A's view
        assert writer_a.get("b-only") is not None

    def test_both_auto_compact_without_loss(self, tmp_path):
        directory = str(tmp_path / "cache")
        writer_a = ShardedResultCache(
            directory=directory, shards=1, compact_threshold=3
        )
        writer_b = ShardedResultCache(
            directory=directory, shards=1, compact_threshold=3
        )
        keys = []
        for i in range(12):
            writer = writer_a if i % 2 == 0 else writer_b
            key = f"fp-{i}"
            writer.put(_outcome(key))
            keys.append(key)
        writer_a.close()
        writer_b.close()
        recovered = ShardedResultCache(directory=directory, shards=1)
        missing = [key for key in keys if recovered.get(key) is None]
        assert not missing, f"lost across concurrent compactions: {missing}"

    def test_meta_agreed_between_concurrent_creators(self, tmp_path):
        directory = str(tmp_path / "cache")
        ShardedResultCache(directory=directory, shards=4)
        ShardedResultCache(directory=directory, shards=4)  # same count: fine
        meta = os.path.join(directory, "shards.meta.json")
        assert os.path.exists(meta)


class TestDegradation:
    def test_append_failure_keeps_entry_in_memory(self, tmp_path):
        faults.install_plan(
            FaultPlan([dict(point="shards.wal.append", kind="error")])
        )
        cache = ShardedResultCache(directory=str(tmp_path / "c"), shards=1)
        with pytest.raises(CachePersistError):
            cache.put(_outcome("fp-degraded"))
        # Serve-without-persist: the verdict is still answerable warm.
        assert cache.get("fp-degraded") is not None

    def test_compaction_heals_unpersisted_entry(self, tmp_path):
        directory = str(tmp_path / "cache")
        faults.install_plan(
            FaultPlan([dict(point="shards.wal.append", kind="error")])
        )
        cache = ShardedResultCache(directory=directory, shards=1)
        with pytest.raises(CachePersistError):
            cache.put(_outcome("fp-healed"))
        # The fault plan is spent (times=1); the next compaction folds the
        # memory-only entry into the snapshot.
        cache.compact()
        recovered = ShardedResultCache(directory=directory, shards=1)
        assert recovered.get("fp-healed") is not None

    def test_torn_write_rolled_back_no_corruption(self, tmp_path):
        directory = str(tmp_path / "cache")
        faults.install_plan(
            FaultPlan([dict(point="shards.wal.append", kind="torn", after=1)])
        )
        cache = ShardedResultCache(directory=directory, shards=1)
        cache.put(_outcome("fp-ok"))
        with pytest.raises(CachePersistError):
            cache.put(_outcome("fp-torn"))
        # The partial bytes were truncated away, so a *later* append lands
        # on a clean boundary instead of concatenating after garbage.
        cache.put(_outcome("fp-after"))
        recovered = ShardedResultCache(directory=directory, shards=1)
        assert recovered.get("fp-ok") is not None
        assert recovered.get("fp-after") is not None
        assert recovered.torn_records == 0, (
            "failed append left a torn tail in the WAL"
        )

    def test_fsync_failure_degrades(self, tmp_path):
        faults.install_plan(
            FaultPlan([dict(point="shards.wal.fsync", kind="error")])
        )
        cache = ShardedResultCache(
            directory=str(tmp_path / "c"), shards=1, fsync=True
        )
        with pytest.raises(CachePersistError):
            cache.put(_outcome("fp-fsync"))
        assert cache.get("fp-fsync") is not None

    def test_auto_compaction_failure_swallowed(self, tmp_path):
        directory = str(tmp_path / "cache")
        faults.install_plan(
            FaultPlan([dict(point="shards.snapshot.write", kind="error")])
        )
        cache = ShardedResultCache(
            directory=directory, shards=1, compact_threshold=2
        )
        cache.put(_outcome("fp-0"))
        cache.put(_outcome("fp-1"))  # threshold: compaction fires and fails
        assert cache.failed_compactions == 1
        # The verdicts are safe in the WAL regardless.
        recovered = ShardedResultCache(directory=directory, shards=1)
        assert recovered.get("fp-0") is not None
        assert recovered.get("fp-1") is not None

    def test_close_tolerates_snapshot_failure(self, tmp_path):
        directory = str(tmp_path / "cache")
        faults.install_plan(
            FaultPlan([dict(point="shards.snapshot.write", kind="error")])
        )
        cache = ShardedResultCache(directory=directory, shards=1)
        cache.put(_outcome("fp-0"))
        cache.close()  # must not raise
        assert cache.failed_compactions == 1
        recovered = ShardedResultCache(directory=directory, shards=1)
        assert recovered.get("fp-0") is not None
