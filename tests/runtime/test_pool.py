"""Tests for repro.runtime.pool: determinism, seeding, error isolation."""

from __future__ import annotations

import pytest

from repro.cnf.formula import CNFFormula
from repro.cnf.generators import random_ksat
from repro.exceptions import RuntimeSubsystemError
from repro.runtime.jobs import SolveJob
from repro.runtime.pool import WorkerPool, derive_job_seed, execute_job


def _jobs(count: int = 5, solver: str = "portfolio") -> list[SolveJob]:
    return [
        SolveJob(
            formula=random_ksat(8, 28, seed=index),
            label=f"instance-{index}",
            solver=solver,
            samples=20_000,
        )
        for index in range(count)
    ]


class TestSeedDerivation:
    def test_deterministic(self):
        assert derive_job_seed(1, "a", "f") == derive_job_seed(1, "a", "f")

    def test_sensitive_to_every_component(self):
        base = derive_job_seed(1, "a", "f")
        assert base != derive_job_seed(2, "a", "f")
        assert base != derive_job_seed(1, "b", "f")
        assert base != derive_job_seed(1, "a", "g")

    def test_non_negative_63_bit(self):
        seed = derive_job_seed(123, "job", "fp")
        assert 0 <= seed < 2**63


class TestDeterminism:
    def test_same_master_seed_same_outcomes(self):
        jobs = _jobs()
        first = WorkerPool(workers=1, master_seed=7).run(jobs)
        second = WorkerPool(workers=1, master_seed=7).run(jobs)
        assert [o.status for o in first] == [o.status for o in second]
        assert [o.assignment for o in first] == [o.assignment for o in second]
        assert [o.winner for o in first] == [o.winner for o in second]

    def test_worker_count_does_not_change_outcomes(self):
        jobs = _jobs(4)
        serial = WorkerPool(workers=1, master_seed=3).run(jobs)
        parallel = WorkerPool(workers=2, master_seed=3).run(jobs)
        assert [o.status for o in serial] == [o.status for o in parallel]
        assert [o.assignment for o in serial] == [o.assignment for o in parallel]

    def test_outcomes_preserve_job_order(self):
        jobs = _jobs(6)
        outcomes = WorkerPool(workers=3, master_seed=0).run(jobs)
        assert [o.label for o in outcomes] == [job.label for job in jobs]


class TestExecution:
    def test_classical_solver_job(self):
        job = SolveJob(
            formula=CNFFormula.from_ints([[1, 2], [-1, -2]]), solver="dpll"
        )
        outcome = execute_job(job)
        assert outcome.status == "SAT" and outcome.verified
        assert outcome.winner == "dpll"
        model = outcome.assignment_dict()
        assert job.formula.evaluate(model)

    def test_nbl_symbolic_unsat_is_verified(self):
        job = SolveJob(
            formula=CNFFormula.from_ints([[1], [-1]]), solver="nbl-symbolic"
        )
        outcome = execute_job(job)
        assert outcome.status == "UNSAT" and outcome.verified

    def test_symbolic_job_beyond_variable_limit_fails_fast(self):
        job = SolveJob(formula=random_ksat(30, 60, seed=0), solver="nbl-symbolic")
        outcome = execute_job(job)
        assert outcome.status == "ERROR"
        assert "30 variables" in outcome.error

    def test_portfolio_timeout_is_reported(self):
        job = SolveJob(
            formula=random_ksat(18, 80, seed=0),
            solver="portfolio",
            timeout=1e-6,
        )
        outcome = execute_job(job)
        assert outcome.status == "UNKNOWN"
        assert outcome.timed_out

    def test_unknown_solver_becomes_error_outcome(self):
        job = SolveJob(
            formula=CNFFormula.from_ints([[1]]), solver="no-such-solver"
        )
        outcome = execute_job(job)
        assert outcome.status == "ERROR"
        assert "no-such-solver" in outcome.error

    def test_error_job_does_not_poison_the_batch(self):
        jobs = [
            SolveJob(formula=CNFFormula.from_ints([[1]]), solver="dpll"),
            SolveJob(formula=CNFFormula.from_ints([[1]]), solver="bogus"),
            SolveJob(formula=CNFFormula.from_ints([[-1]]), solver="dpll"),
        ]
        outcomes = WorkerPool().run(jobs)
        assert [o.status for o in outcomes] == ["SAT", "ERROR", "SAT"]

    def test_non_library_exception_becomes_error_outcome(self, monkeypatch):
        from repro.runtime import pool as pool_module

        def explode(name, **kwargs):
            raise RecursionError("maximum recursion depth exceeded")

        monkeypatch.setattr(pool_module, "make_solver", explode)
        outcome = execute_job(
            SolveJob(formula=CNFFormula.from_ints([[1]]), solver="dpll")
        )
        assert outcome.status == "ERROR"
        assert "RecursionError" in outcome.error

    def test_explicit_job_seed_overrides_derivation(self):
        formula = random_ksat(6, 20, seed=0)
        a = execute_job(SolveJob(formula=formula, solver="walksat", seed=5), 1)
        b = execute_job(SolveJob(formula=formula, solver="walksat", seed=5), 2)
        assert a.status == b.status and a.assignment == b.assignment


class TestValidation:
    def test_workers_must_be_positive(self):
        with pytest.raises(RuntimeSubsystemError):
            WorkerPool(workers=0)

    def test_empty_job_list(self):
        assert WorkerPool().run([]) == []

    def test_progress_callback_sees_every_outcome(self):
        seen = []
        WorkerPool().run(_jobs(3), on_outcome=lambda o: seen.append(o.label))
        assert seen == ["instance-0", "instance-1", "instance-2"]
