"""Preprocessing through the batch runtime: jobs, cache keys, reconstruction."""

from __future__ import annotations

import pytest

from repro.cnf.formula import CNFFormula
from repro.cnf.generators import planted_ksat, random_ksat
from repro.cnf.paper_instances import section4_unsat_instance
from repro.cnf.structured import all_equal_formula, pigeonhole_formula
from repro.exceptions import RuntimeSubsystemError
from repro.runtime import BatchRunner, ResultCache, SolveJob, execute_job
from repro.runtime.jobs import solve_cache_key
from repro.solvers.brute_force import BruteForceSolver


@pytest.fixture
def formula():
    return random_ksat(8, 22, 3, seed=17)


class TestSolveJobPreprocess:
    def test_cache_key_uses_reduced_fingerprint(self, formula):
        plain = SolveJob(formula=formula, solver="cdcl")
        pre = SolveJob(formula=formula, solver="cdcl", preprocess=True)
        reduced_fp = pre.preprocessed().formula.fingerprint()
        assert pre.cache_key == solve_cache_key(reduced_fp, ())
        assert pre.cache_key != plain.cache_key or reduced_fp == plain.fingerprint
        assert pre.fingerprint == formula.fingerprint()  # original preserved

    def test_preprocessed_requires_flag(self, formula):
        job = SolveJob(formula=formula, solver="cdcl")
        with pytest.raises(RuntimeSubsystemError):
            job.preprocessed()

    def test_preprocessed_freezes_assumption_variables(self, formula):
        job = SolveJob(
            formula=formula, solver="cdcl", assumptions=(1, -3), preprocess=True
        )
        reduction = job.preprocessed()
        assert 1 in reduction.variable_map and 3 in reduction.variable_map

    def test_cache_key_maps_assumptions_into_reduced_numbering(self):
        # Variable elimination renumbers the survivors, so the assumption
        # literal the solver actually sees is not the original one; the
        # key must carry the *mapped* literal, else two originals sharing
        # a reduced core but mapping the same original variable to
        # different reduced variables would share verdicts unsoundly.
        php = pigeonhole_formula(6, 5)
        job = SolveJob(
            formula=php, solver="cdcl", assumptions=(30,), preprocess=True
        )
        reduction = job.preprocessed()
        mapped = reduction.map_assumptions((30,))
        assert mapped != (30,)  # the renumbering genuinely moved it
        assert job.cache_key == solve_cache_key(
            reduction.formula.fingerprint(), mapped
        )

    def test_cache_key_drops_assumptions_on_refuted_formula(self):
        # The pipeline refutes the formula with the assumption variable
        # merely frozen, never asserted: the verdict is a property of the
        # contradictory core alone, so the key carries no assumptions and
        # every refuted-under-any-assumptions job shares it.
        job = SolveJob(
            formula=section4_unsat_instance(),
            solver="cdcl",
            assumptions=(1,),
            preprocess=True,
        )
        assert job.preprocessed().status == "UNSAT"
        assert "#" not in job.cache_key

    def test_same_core_same_key(self):
        # Clause order and literal order do not matter before preprocessing,
        # and the chain formula reduces to the same (empty) core as a
        # trivially satisfiable singleton — they share a cache key.
        chain = all_equal_formula(8)
        shuffled = CNFFormula(list(reversed(chain.clauses)), chain.num_variables)
        a = SolveJob(formula=chain, solver="cdcl", preprocess=True)
        b = SolveJob(formula=shuffled, solver="cdcl", preprocess=True)
        assert a.cache_key == b.cache_key


class TestExecuteJobPreprocess:
    @pytest.mark.parametrize("solver", ["cdcl", "dpll", "portfolio", "nbl-symbolic"])
    def test_agrees_with_truth(self, formula, solver):
        truth = BruteForceSolver().solve(formula)
        outcome = execute_job(
            SolveJob(formula=formula, solver=solver, preprocess=True), 0
        )
        assert outcome.status == truth.status
        assert outcome.fingerprint != ""
        if outcome.status == "SAT":
            assert outcome.verified
            assert formula.evaluate(outcome.assignment_dict())

    def test_unsat_decided_by_preprocessing(self):
        outcome = execute_job(
            SolveJob(
                formula=section4_unsat_instance(), solver="cdcl", preprocess=True
            ),
            0,
        )
        assert outcome.status == "UNSAT"
        assert outcome.winner == "preprocess"
        assert outcome.verified

    def test_assumptions_survive_preprocessing(self, formula):
        assumptions = (2, -5)
        truth = BruteForceSolver().solve(formula.with_assumptions(assumptions))
        outcome = execute_job(
            SolveJob(
                formula=formula,
                solver="cdcl",
                assumptions=assumptions,
                preprocess=True,
            ),
            0,
        )
        assert outcome.status == truth.status
        if outcome.status == "SAT":
            model = outcome.assignment_dict()
            assert all(model[abs(a)] == (a > 0) for a in assumptions)
            assert formula.evaluate(model)

    def test_contradictory_assumptions_are_unsat(self, formula):
        outcome = execute_job(
            SolveJob(
                formula=formula,
                solver="cdcl",
                assumptions=(4, -4),
                preprocess=True,
            ),
            0,
        )
        assert outcome.status == "UNSAT"
        assert outcome.winner == "preprocess"

    def test_preprocessing_lifts_symbolic_variable_limit(self):
        # 30 variables is beyond the symbolic engine's 20-variable refusal
        # threshold, but the chain collapses to nothing during
        # preprocessing, so the job succeeds instead of erroring.
        chain = all_equal_formula(30)
        refused = execute_job(SolveJob(formula=chain, solver="nbl-symbolic"), 0)
        assert refused.status == "ERROR"
        outcome = execute_job(
            SolveJob(formula=chain, solver="nbl-symbolic", preprocess=True), 0
        )
        assert outcome.status == "SAT"
        assert outcome.verified


class TestBatchRunnerPreprocess:
    def test_same_core_served_from_cache(self):
        runner = BatchRunner(solver="cdcl", preprocess=True)
        chain = all_equal_formula(9)
        shuffled = CNFFormula(list(reversed(chain.clauses)), chain.num_variables)
        report = runner.run_jobs(
            [runner.make_job(chain, label="a"), runner.make_job(shuffled, label="b")]
        )
        assert report.status_counts == {"SAT": 2}
        assert report.cache_hits == 1

    def test_cached_model_revalidated_against_new_formula(self):
        # Both formulas preprocess to the trivial SAT core (same cache
        # key), but a model of the first does not satisfy the second: the
        # runner must detect the mismatch and re-solve instead of serving
        # a wrong model from the cache.
        force_true = CNFFormula.from_ints([[1], [1, 2]])  # needs x1=True
        force_false = CNFFormula.from_ints([[-1], [-1, 2]])  # needs x1=False
        runner = BatchRunner(solver="cdcl", preprocess=True)
        a = runner.make_job(force_true, label="true")
        b = runner.make_job(force_false, label="false")
        assert a.cache_key == b.cache_key  # same reduced (empty) core
        report = runner.run_jobs([a, b])
        models = {o.label: o.assignment_dict() for o in report.outcomes}
        assert models["true"][1] is True
        assert models["false"][1] is False
        assert force_true.evaluate(models["true"])
        assert force_false.evaluate(models["false"])

    def test_preprocess_roundtrips_through_worker_pool(self):
        runner = BatchRunner(solver="cdcl", workers=2, preprocess=True)
        formulas = [planted_ksat(7, 18, seed=s)[0] for s in range(3)]
        report = runner.run_jobs(
            [runner.make_job(f, label=str(i)) for i, f in enumerate(formulas)]
        )
        assert report.status_counts.get("SAT", 0) == 3
        for outcome in report.outcomes:
            if not outcome.from_cache:
                assert outcome.verified

    def test_alias_entries_survive_persistence(self, tmp_path):
        # save() must keep the key each entry lives under: an alias key is
        # not reconstructible from the outcome, and dropping it would make
        # every warm-from-disk batch re-run the pipeline per instance.
        cache = ResultCache()
        runner = BatchRunner(solver="cdcl", cache=cache, preprocess=True)
        formula = planted_ksat(7, 20, seed=5)[0]
        runner.run_jobs([runner.make_job(formula, label="x")])
        alias = solve_cache_key(formula.fingerprint(), ())
        path = tmp_path / "cache.json"
        saved = cache.save(path)
        warm = ResultCache()
        assert warm.load(path) == saved
        assert warm.get(alias) is not None

    def test_outcomes_aliased_under_original_key(self):
        # Preprocessed outcomes key on the reduced core, which only the
        # pipeline can recompute; the alias under the original key lets a
        # warm re-run of the same instance hit without preprocessing in
        # the coordinator.
        cache = ResultCache()
        runner = BatchRunner(solver="cdcl", cache=cache, preprocess=True)
        formula = planted_ksat(7, 20, seed=3)[0]
        job = runner.make_job(formula, label="x")
        runner.run_jobs([job])
        alias = solve_cache_key(formula.fingerprint(), ())
        assert cache.get(alias) is not None
        report = runner.run_jobs([runner.make_job(formula, label="x")])
        assert report.cache_hits == 1

    def test_cache_persistence_with_reduced_keys(self, tmp_path):
        cache = ResultCache()
        runner = BatchRunner(solver="cdcl", cache=cache, preprocess=True)
        formula = planted_ksat(7, 20, seed=9)[0]
        runner.run_jobs([runner.make_job(formula, label="x")])
        path = tmp_path / "cache.json"
        cache.save(path)
        warm_cache = ResultCache()
        warm_cache.load(path)
        warm = BatchRunner(solver="cdcl", cache=warm_cache, preprocess=True)
        report = warm.run_jobs([warm.make_job(formula, label="x")])
        assert report.cache_hits == 1
