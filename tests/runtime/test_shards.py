"""Tests for repro.runtime.shards: WAL durability, recovery, compaction."""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.exceptions import RuntimeSubsystemError
from repro.runtime.cache import atomic_write_json
from repro.runtime.jobs import SolveOutcome
from repro.runtime.shards import ShardedResultCache, shard_index


def _outcome(fingerprint: str, status: str = "SAT", **overrides) -> SolveOutcome:
    fields = dict(
        job_id=f"job-{fingerprint}",
        status=status,
        solver="cdcl",
        fingerprint=fingerprint,
        verified=True,
        assignment=(1,) if status == "SAT" else None,
    )
    fields.update(overrides)
    return SolveOutcome(**fields)


class TestShardIndex:
    def test_in_range_and_stable(self):
        for key in ("a", "fingerprint-1", "x" * 64):
            index = shard_index(key, 8)
            assert 0 <= index < 8
            assert shard_index(key, 8) == index  # deterministic

    def test_distributes(self):
        indices = {shard_index(f"key-{i}", 8) for i in range(200)}
        assert len(indices) == 8  # every shard gets keys


class TestInMemory:
    def test_put_get_roundtrip(self):
        cache = ShardedResultCache(directory=None, shards=4)
        assert cache.put(_outcome("fp1"))
        hit = cache.get("fp1")
        assert hit is not None and hit.status == "SAT" and hit.from_cache
        assert cache.get("missing") is None
        assert len(cache) == 1

    def test_refuses_non_definitive(self):
        cache = ShardedResultCache(directory=None, shards=2)
        assert not cache.put(_outcome("fp1", status="UNKNOWN", verified=False))
        assert not cache.put(_outcome("", status="SAT"))  # no key
        assert len(cache) == 0

    def test_explicit_key_alias(self):
        cache = ShardedResultCache(directory=None, shards=4)
        outcome = _outcome("reduced-fp")
        cache.put(outcome)
        cache.put(outcome, key="original-fp")
        assert cache.get("original-fp").fingerprint == "reduced-fp"

    def test_stats_and_shard_sizes(self):
        cache = ShardedResultCache(directory=None, shards=4)
        for i in range(10):
            cache.put(_outcome(f"fp-{i}"))
        cache.get("fp-0")
        cache.get("nope")
        stats = cache.stats
        assert stats.size == 10
        assert stats.hits == 1 and stats.misses == 1
        assert sum(cache.shard_sizes) == 10

    def test_bad_parameters(self):
        with pytest.raises(RuntimeSubsystemError):
            ShardedResultCache(shards=0)
        with pytest.raises(RuntimeSubsystemError):
            ShardedResultCache(compact_threshold=-1)


class TestPersistence:
    def test_wal_survives_unclean_exit(self, tmp_path):
        directory = str(tmp_path / "cache")
        cache = ShardedResultCache(directory=directory, shards=4)
        for i in range(8):
            cache.put(_outcome(f"fp-{i}"))
        # No close(), no compact(): simulate the process dying. Every
        # put() already flushed its WAL record, so a fresh instance must
        # recover all eight entries from the logs alone.
        reopened = ShardedResultCache(directory=directory, shards=4)
        assert len(reopened) == 8
        assert reopened.replayed_records == 8
        assert reopened.torn_records == 0
        for i in range(8):
            assert reopened.get(f"fp-{i}") is not None

    def test_snapshot_roundtrip_after_close(self, tmp_path):
        directory = str(tmp_path / "cache")
        with ShardedResultCache(directory=directory, shards=4) as cache:
            for i in range(5):
                cache.put(_outcome(f"fp-{i}"))
        # close() compacted: WALs are empty, snapshots hold everything.
        reopened = ShardedResultCache(directory=directory, shards=4)
        assert len(reopened) == 5
        assert reopened.replayed_records == 0

    def test_torn_final_record_dropped_and_trimmed(self, tmp_path):
        directory = str(tmp_path / "cache")
        cache = ShardedResultCache(directory=directory, shards=1)
        for i in range(3):
            cache.put(_outcome(f"fp-{i}"))
        cache.close()  # compacts; now append committed + torn records
        cache = ShardedResultCache(directory=directory, shards=1)
        cache.put(_outcome("fp-committed"))
        wal_path = os.path.join(directory, "shard-000.wal")
        with open(wal_path, "a", encoding="utf-8") as handle:
            # A crash mid-append leaves a truncated JSON line.
            handle.write('{"key": "fp-torn", "outcome": {"job_id"')

        reopened = ShardedResultCache(directory=directory, shards=1)
        assert reopened.get("fp-committed") is not None
        assert reopened.get("fp-torn") is None
        assert reopened.torn_records == 1
        assert reopened.replayed_records == 1
        # The log was trimmed back to its committed prefix...
        with open(wal_path, "r", encoding="utf-8") as handle:
            lines = [line for line in handle.read().splitlines() if line.strip()]
        assert len(lines) == 1 and json.loads(lines[0])["key"] == "fp-committed"
        # ...so the next recovery sees a clean log.
        third = ShardedResultCache(directory=directory, shards=1)
        assert third.torn_records == 0
        assert third.get("fp-committed") is not None

    def test_garbage_after_torn_record_not_replayed(self, tmp_path):
        directory = str(tmp_path / "cache")
        cache = ShardedResultCache(directory=directory, shards=1)
        cache.put(_outcome("fp-good"))
        wal_path = os.path.join(directory, "shard-000.wal")
        record = json.dumps({"key": "fp-after", "outcome": _outcome("fp-after").to_dict()})
        with open(wal_path, "a", encoding="utf-8") as handle:
            handle.write("not json at all\n")
            handle.write(record + "\n")
        # Everything after the first bad line is suspect in an append-only
        # log: the committed prefix survives, the rest is dropped.
        reopened = ShardedResultCache(directory=directory, shards=1)
        assert reopened.get("fp-good") is not None
        assert reopened.get("fp-after") is None
        assert reopened.torn_records == 2

    def test_auto_compaction_at_threshold(self, tmp_path):
        directory = str(tmp_path / "cache")
        cache = ShardedResultCache(
            directory=directory, shards=1, compact_threshold=3
        )
        for i in range(3):
            cache.put(_outcome(f"fp-{i}"))
        wal_path = os.path.join(directory, "shard-000.wal")
        assert os.path.getsize(wal_path) == 0  # threshold hit: WAL folded
        snapshot = os.path.join(directory, "shard-000.json")
        assert os.path.exists(snapshot)
        reopened = ShardedResultCache(directory=directory, shards=1)
        assert len(reopened) == 3 and reopened.replayed_records == 0

    def test_manual_compact_returns_entries(self, tmp_path):
        cache = ShardedResultCache(directory=str(tmp_path / "c"), shards=2)
        for i in range(4):
            cache.put(_outcome(f"fp-{i}"))
        assert cache.compact() == 4

    def test_shard_count_pinned(self, tmp_path):
        directory = str(tmp_path / "cache")
        ShardedResultCache(directory=directory, shards=4).close()
        with pytest.raises(RuntimeSubsystemError, match="misplace"):
            ShardedResultCache(directory=directory, shards=8)

    def test_replay_idempotent_over_snapshot(self, tmp_path):
        # A crash between snapshot and WAL truncation leaves records that
        # replay to entries the snapshot already holds — allowed, lossless.
        directory = str(tmp_path / "cache")
        cache = ShardedResultCache(directory=directory, shards=1)
        cache.put(_outcome("fp-dup"))
        wal_path = os.path.join(directory, "shard-000.wal")
        with open(wal_path, "r", encoding="utf-8") as handle:
            wal_before = handle.read()
        cache.compact()
        with open(wal_path, "a", encoding="utf-8") as handle:
            handle.write(wal_before)  # resurrect the pre-compaction WAL
        reopened = ShardedResultCache(directory=directory, shards=1)
        assert len(reopened) == 1
        assert reopened.get("fp-dup") is not None


_WRITER_SCRIPT = """
import sys
sys.path.insert(0, {src!r})
from repro.runtime.shards import ShardedResultCache
from repro.runtime.jobs import SolveOutcome

cache = ShardedResultCache(directory={directory!r}, shards=4)
for i in range(100000):
    fp = f"fp-{{i}}"
    cache.put(SolveOutcome(
        job_id=f"job-{{i}}", status="SAT", solver="cdcl",
        fingerprint=fp, verified=True, assignment=(1,),
    ))
    # An acked key is printed only after put() returned, i.e. after the
    # WAL record was flushed to the OS.
    print(fp, flush=True)
"""


class TestCrashRecovery:
    def test_sigkill_mid_write_loses_no_acked_verdict(self, tmp_path):
        """Kill a writer process mid-stream; every acked key must survive."""
        directory = str(tmp_path / "cache")
        src = os.path.join(
            os.path.dirname(__file__), os.pardir, os.pardir, "src"
        )
        script = _WRITER_SCRIPT.format(
            src=os.path.abspath(src), directory=directory
        )
        proc = subprocess.Popen(
            [sys.executable, "-c", script],
            stdout=subprocess.PIPE,
            text=True,
        )
        acked = []
        try:
            # Let it commit a healthy number of verdicts, then kill it at
            # an arbitrary instruction boundary (possibly mid-append).
            deadline = time.monotonic() + 30
            while len(acked) < 50 and time.monotonic() < deadline:
                line = proc.stdout.readline()
                if not line:
                    break
                acked.append(line.strip())
        finally:
            proc.kill()
            proc.wait(timeout=10)
        assert len(acked) >= 50, "writer produced too few acks to test"

        recovered = ShardedResultCache(directory=directory, shards=4)
        missing = [key for key in acked if recovered.get(key) is None]
        assert not missing, f"acked verdicts lost in the crash: {missing}"
        # At most one torn (unacked) trailing record per shard can exist.
        assert recovered.torn_records <= 4
        # Recovery trimmed the logs: a second open sees no torn records.
        again = ShardedResultCache(directory=directory, shards=4)
        assert again.torn_records == 0
        assert not [key for key in acked if again.get(key) is None]
