"""Tests for repro.runtime.batch: ingestion, caching, aggregate stats."""

from __future__ import annotations

import pytest

from repro.cnf.dimacs import write_dimacs_file
from repro.cnf.formula import CNFFormula
from repro.cnf.generators import planted_ksat, random_ksat
from repro.exceptions import RuntimeSubsystemError
from repro.runtime.batch import BatchRunner, discover_instances
from repro.runtime.cache import ResultCache
from repro.runtime.jobs import SolveJob


@pytest.fixture
def instance_dir(tmp_path):
    """A directory of 6 small DIMACS instances (4 SAT planted, 2 UNSAT)."""
    directory = tmp_path / "instances"
    directory.mkdir()
    for index in range(4):
        formula, _ = planted_ksat(6, 15, seed=index)
        write_dimacs_file(formula, directory / f"sat-{index}.cnf")
    unsat = CNFFormula.from_ints([[1, 2], [1, -2], [-1, 2], [-1, -2]])
    write_dimacs_file(unsat, directory / "unsat-0.cnf")
    write_dimacs_file(
        CNFFormula.from_ints([[1], [-1]]), directory / "unsat-1.cnf"
    )
    return directory


class TestDiscovery:
    def test_directory_scan_is_sorted(self, instance_dir):
        files = discover_instances([instance_dir])
        assert len(files) == 6
        assert files == sorted(files)

    def test_glob_pattern(self, instance_dir):
        files = discover_instances([str(instance_dir / "sat-*.cnf")])
        assert len(files) == 4

    def test_explicit_file(self, instance_dir):
        files = discover_instances([instance_dir / "unsat-0.cnf"])
        assert len(files) == 1

    def test_duplicates_are_collapsed(self, instance_dir):
        files = discover_instances([instance_dir, str(instance_dir / "*.cnf")])
        assert len(files) == 6

    def test_no_match_raises(self, tmp_path):
        with pytest.raises(RuntimeSubsystemError):
            discover_instances([tmp_path / "missing" / "*.cnf"])

    def test_empty_directory_raises(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(RuntimeSubsystemError):
            discover_instances([empty])

    def test_glob_matching_only_directories_raises(self, tmp_path):
        (tmp_path / "sub-a").mkdir()
        (tmp_path / "sub-b").mkdir()
        with pytest.raises(RuntimeSubsystemError):
            discover_instances([str(tmp_path / "sub-*")])


class TestBatchRun:
    def test_mixed_directory(self, instance_dir):
        report = BatchRunner(solver="portfolio", samples=20_000).run([instance_dir])
        assert report.total == 6
        assert report.status_counts == {"SAT": 4, "UNSAT": 2}
        assert report.cache_hits == 0
        assert sum(report.win_counts.values()) == 6
        assert report.wall_seconds > 0 and report.throughput > 0

    def test_second_run_hits_cache(self, instance_dir):
        runner = BatchRunner(solver="portfolio", samples=20_000)
        cold = runner.run([instance_dir])
        warm = runner.run([instance_dir])
        assert cold.cache_hits == 0
        assert warm.cache_hits == 6
        assert warm.cache_hit_rate == pytest.approx(1.0)
        assert warm.status_counts == cold.status_counts

    def test_shared_cache_across_runners(self, instance_dir):
        cache = ResultCache(max_size=64)
        BatchRunner(cache=cache, samples=20_000).run([instance_dir])
        warm = BatchRunner(cache=cache, samples=20_000).run([instance_dir])
        assert warm.cache_hits == 6

    def test_cache_hit_reports_requesting_solver_spec(self, instance_dir):
        cache = ResultCache(max_size=64)
        BatchRunner(solver="portfolio", cache=cache, samples=20_000).run(
            [instance_dir]
        )
        warm = BatchRunner(solver="dpll", cache=cache).run([instance_dir])
        assert all(o.solver == "dpll" for o in warm.outcomes)
        assert all(o.from_cache for o in warm.outcomes)

    def test_unknown_solver_spec_fails_fast(self):
        with pytest.raises(RuntimeSubsystemError):
            BatchRunner(solver="dppl")

    def test_parse_failure_is_reported_not_raised(self, instance_dir):
        (instance_dir / "broken.cnf").write_text("p cnf nonsense\n")
        report = BatchRunner(samples=20_000).run([instance_dir])
        assert report.total == 7
        assert report.status_counts["ERROR"] == 1
        error = next(o for o in report.outcomes if o.status == "ERROR")
        assert "broken.cnf" in error.label
        assert "ERROR" in report.to_text() or "error" in report.to_text()

    def test_outcomes_follow_sorted_file_order(self, instance_dir):
        report = BatchRunner(samples=20_000).run([instance_dir])
        labels = [o.label for o in report.outcomes]
        assert labels == sorted(labels)

    def test_report_text_mentions_key_stats(self, instance_dir):
        report = BatchRunner(samples=20_000, workers=1).run([instance_dir])
        text = report.to_text()
        assert "6 instances" in text
        assert "cache" in text
        assert "wins" in text


class TestRunJobs:
    def test_run_jobs_with_prebuilt_formulas(self):
        runner = BatchRunner(solver="dpll")
        jobs = [
            runner.make_job(random_ksat(8, 24, seed=index), label=f"f{index}")
            for index in range(4)
        ]
        report = runner.run_jobs(jobs)
        assert report.total == 4
        assert all(o.status in ("SAT", "UNSAT") for o in report.outcomes)

    def test_identical_formulas_collapse_to_one_solve(self):
        runner = BatchRunner(solver="dpll")
        formula = random_ksat(8, 24, seed=0)
        jobs = [runner.make_job(formula, label=f"copy-{i}") for i in range(5)]
        report = runner.run_jobs(jobs)
        # First job misses; the rest of the batch must be served by the cache.
        assert report.cache_hits == 4

    def test_dedup_respects_requested_solver(self):
        # Same formula under different solvers must not share one solve:
        # walksat cannot prove UNSAT, cdcl can.
        runner = BatchRunner()
        unsat = CNFFormula.from_ints([[1, 2], [1, -2], [-1, 2], [-1, -2]])
        jobs = [
            SolveJob(formula=unsat, label="ws", solver="walksat"),
            SolveJob(formula=unsat, label="cdcl", solver="cdcl"),
        ]
        report = runner.run_jobs(jobs)
        by_label = {o.label: o for o in report.outcomes}
        assert by_label["ws"].status == "UNKNOWN"
        assert by_label["cdcl"].status == "UNSAT"

    def test_duplicated_non_definitive_outcome_is_not_a_cache_hit(self):
        # WalkSAT on an UNSAT formula yields UNKNOWN, which is uncacheable:
        # the duplicate must not be reported as served-from-cache.
        runner = BatchRunner(solver="walksat")
        unsat = CNFFormula.from_ints([[1, 2], [1, -2], [-1, 2], [-1, -2]])
        jobs = [runner.make_job(unsat, label=f"copy-{i}") for i in range(2)]
        report = runner.run_jobs(jobs)
        assert [o.status for o in report.outcomes] == ["UNKNOWN", "UNKNOWN"]
        assert report.cache_hits == 0
