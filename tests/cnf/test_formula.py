"""Tests for repro.cnf.formula."""

from __future__ import annotations

import pytest

from repro.cnf.clause import Clause
from repro.cnf.formula import CNFFormula
from repro.exceptions import CNFError


class TestConstruction:
    def test_from_ints(self):
        formula = CNFFormula.from_ints([[1, 2], [-1]])
        assert formula.num_variables == 2
        assert formula.num_clauses == 2

    def test_explicit_num_variables(self):
        formula = CNFFormula.from_ints([[1]], num_variables=5)
        assert formula.num_variables == 5

    def test_num_variables_too_small_raises(self):
        with pytest.raises(CNFError):
            CNFFormula.from_ints([[3]], num_variables=2)

    def test_mixed_clause_inputs(self):
        formula = CNFFormula([Clause([1, 2]), [-1, -2]])
        assert formula.num_clauses == 2

    def test_empty_formula(self):
        formula = CNFFormula([])
        assert formula.num_variables == 0
        assert formula.num_clauses == 0


class TestQueries:
    def test_num_literals_and_histogram(self):
        formula = CNFFormula.from_ints([[1, 2], [1], [-1, 2, 3]])
        assert formula.num_literals == 6
        assert formula.clause_size_histogram() == {1: 1, 2: 1, 3: 1}

    def test_variables(self):
        formula = CNFFormula.from_ints([[1, 3]], num_variables=5)
        assert formula.variables() == {1, 3}

    def test_has_empty_clause(self):
        assert CNFFormula([Clause([])], num_variables=1).has_empty_clause()
        assert not CNFFormula.from_ints([[1]]).has_empty_clause()

    def test_is_ksat(self):
        assert CNFFormula.from_ints([[1, 2], [2, 3]]).is_ksat(2)
        assert not CNFFormula.from_ints([[1, 2], [3]]).is_ksat(2)

    def test_evaluate(self):
        formula = CNFFormula.from_ints([[1, 2], [-1, -2]])
        assert formula.evaluate({1: True, 2: False})
        assert not formula.evaluate({1: True, 2: True})

    def test_unsatisfied_clauses(self):
        formula = CNFFormula.from_ints([[1], [2]])
        unsatisfied = formula.unsatisfied_clauses({1: True, 2: False})
        assert unsatisfied == [Clause([2])]

    def test_equality_and_hash(self):
        a = CNFFormula.from_ints([[1, 2]])
        b = CNFFormula.from_ints([[2, 1]])
        assert a == b and hash(a) == hash(b)

    def test_iteration(self):
        formula = CNFFormula.from_ints([[1], [2]])
        assert [c.to_ints() for c in formula] == [[1], [2]]


class TestTransformations:
    def test_with_clause(self):
        formula = CNFFormula.from_ints([[1]])
        extended = formula.with_clause([2, -1])
        assert extended.num_clauses == 2
        assert extended.num_variables == 2
        assert formula.num_clauses == 1  # original untouched

    def test_condition_satisfied_clause_removed(self):
        formula = CNFFormula.from_ints([[1, 2], [-1, 2]])
        conditioned = formula.condition(1, True)
        assert conditioned.num_clauses == 1
        assert conditioned.clauses[0] == Clause([2])

    def test_condition_produces_empty_clause(self):
        formula = CNFFormula.from_ints([[1]])
        conditioned = formula.condition(1, False)
        assert conditioned.has_empty_clause()

    def test_condition_preserves_variable_count(self):
        formula = CNFFormula.from_ints([[1, 2], [2, 3]])
        assert formula.condition(2, True).num_variables == 3

    def test_condition_out_of_range_raises(self):
        with pytest.raises(CNFError):
            CNFFormula.from_ints([[1]]).condition(2, True)

    def test_remove_tautologies(self):
        formula = CNFFormula.from_ints([[1, -1], [2]])
        assert formula.remove_tautologies().num_clauses == 1

    def test_to_ints_roundtrip(self):
        clauses = [[1, -2], [2, 3]]
        formula = CNFFormula.from_ints(clauses)
        assert formula.to_ints() == [sorted(c, key=abs) for c in clauses] or formula.to_ints()

    def test_renumbered(self):
        formula = CNFFormula.from_ints([[2, 5]], num_variables=6)
        compact, mapping = formula.renumbered()
        assert compact.num_variables == 2
        assert mapping == {2: 1, 5: 2}
        assert compact.clauses[0] == Clause([1, 2])


class TestFingerprint:
    def test_is_hex_sha256(self):
        fingerprint = CNFFormula.from_ints([[1, 2]]).fingerprint()
        assert len(fingerprint) == 64
        int(fingerprint, 16)  # raises if not hex

    def test_stable_across_calls(self):
        formula = CNFFormula.from_ints([[1, 2], [-1, 3]])
        assert formula.fingerprint() == formula.fingerprint()

    def test_clause_order_invariant(self):
        a = CNFFormula.from_ints([[1, 2], [-1, 3]])
        b = CNFFormula.from_ints([[-1, 3], [1, 2]])
        assert a.fingerprint() == b.fingerprint()

    def test_polarity_sensitive(self):
        a = CNFFormula.from_ints([[1, 2]])
        b = CNFFormula.from_ints([[-1, 2]])
        assert a.fingerprint() != b.fingerprint()

    def test_empty_formula_has_a_fingerprint(self):
        assert CNFFormula([], num_variables=0).fingerprint()

    def test_survives_pickling(self):
        import pickle

        formula = CNFFormula.from_ints([[1, 2], [-1, -2]])
        fingerprint = formula.fingerprint()
        clone = pickle.loads(pickle.dumps(formula))
        assert clone.fingerprint() == fingerprint
        assert clone == formula
