"""Tests for repro.cnf.clause."""

from __future__ import annotations

import pytest

from repro.cnf.clause import Clause
from repro.cnf.literal import Literal
from repro.exceptions import CNFError


class TestConstruction:
    def test_from_literals(self):
        clause = Clause([Literal(1), Literal(2, False)])
        assert len(clause) == 2

    def test_from_ints(self):
        clause = Clause.from_ints([1, -2])
        assert Literal(1) in clause
        assert Literal(2, False) in clause

    def test_int_coercion_in_constructor(self):
        assert Clause([1, -2]) == Clause.from_ints([1, -2])

    def test_duplicates_removed(self):
        assert len(Clause([1, 1, -2])) == 2

    def test_canonical_order_makes_equal(self):
        assert Clause([2, 1]) == Clause([1, 2])
        assert hash(Clause([2, 1])) == hash(Clause([1, 2]))

    def test_empty_clause(self):
        clause = Clause([])
        assert clause.is_empty
        assert len(clause) == 0

    def test_rejects_bool(self):
        with pytest.raises(CNFError):
            Clause([True])

    def test_rejects_garbage(self):
        with pytest.raises(CNFError):
            Clause(["x1"])


class TestQueries:
    def test_is_unit(self):
        assert Clause([1]).is_unit
        assert not Clause([1, 2]).is_unit

    def test_variables(self):
        assert Clause([1, -2, 3]).variables() == {1, 2, 3}

    def test_tautology_detection(self):
        assert Clause([1, -1]).is_tautology()
        assert not Clause([1, -2]).is_tautology()

    def test_evaluate_true(self):
        assert Clause([1, -2]).evaluate({1: False, 2: False})

    def test_evaluate_false(self):
        assert not Clause([1, -2]).evaluate({1: False, 2: True})

    def test_evaluate_missing_variable_raises(self):
        with pytest.raises(CNFError):
            Clause([1, 2]).evaluate({1: False})

    def test_empty_clause_evaluates_false(self):
        assert not Clause([]).evaluate({1: True})

    def test_status_under_partial(self):
        clause = Clause([1, 2])
        assert clause.status_under({}) == "unresolved"
        assert clause.status_under({1: True}) == "satisfied"
        assert clause.status_under({1: False}) == "unit"
        assert clause.status_under({1: False, 2: False}) == "falsified"

    def test_unassigned_literals(self):
        clause = Clause([1, -2, 3])
        free = clause.unassigned_literals({2: True})
        assert {lit.variable for lit in free} == {1, 3}

    def test_to_ints(self):
        assert set(Clause([3, -1]).to_ints()) == {3, -1}

    def test_without_variable(self):
        reduced = Clause([1, -2, 3]).without_variable(2)
        assert reduced == Clause([1, 3])

    def test_str_contains_literals(self):
        text = str(Clause([1, -2]))
        assert "x1" in text and "~x2" in text
