"""Tests for repro.cnf.assignment."""

from __future__ import annotations

import pytest

from repro.cnf.assignment import Assignment
from repro.cnf.literal import Literal
from repro.exceptions import AssignmentError


class TestConstruction:
    def test_from_dict(self):
        assignment = Assignment({1: True, 2: False})
        assert assignment[1] is True
        assert assignment[2] is False

    def test_from_literals(self):
        assignment = Assignment.from_literals([Literal(1), Literal(2, False)])
        assert assignment[1] and not assignment[2]

    def test_from_int_literals(self):
        assignment = Assignment.from_literals([1, -2])
        assert assignment[1] and not assignment[2]

    def test_conflicting_literals_raise(self):
        with pytest.raises(AssignmentError):
            Assignment.from_literals([1, -1])

    def test_invalid_variable_raises(self):
        with pytest.raises(AssignmentError):
            Assignment({0: True})
        with pytest.raises(AssignmentError):
            Assignment({-3: True})

    def test_from_minterm_index(self):
        assignment = Assignment.from_minterm_index(0b101, 3)
        assert assignment[1] is True
        assert assignment[2] is False
        assert assignment[3] is True

    def test_minterm_index_out_of_range(self):
        with pytest.raises(AssignmentError):
            Assignment.from_minterm_index(8, 3)


class TestMappingProtocol:
    def test_unassigned_getitem_raises(self):
        with pytest.raises(AssignmentError):
            Assignment()[1]

    def test_get_default(self):
        assert Assignment().get(1) is None
        assert Assignment().get(1, True) is True

    def test_contains_len_iter(self):
        assignment = Assignment({2: True, 1: False})
        assert 1 in assignment and 3 not in assignment
        assert len(assignment) == 2
        assert list(assignment) == [1, 2]

    def test_items_sorted(self):
        assignment = Assignment({3: True, 1: False})
        assert list(assignment.items()) == [(1, False), (3, True)]

    def test_equality_with_dict(self):
        assert Assignment({1: True}) == {1: True}

    def test_hashable(self):
        assert len({Assignment({1: True}), Assignment({1: True})}) == 1


class TestHelpers:
    def test_is_complete(self):
        assert Assignment({1: True, 2: False}).is_complete(2)
        assert not Assignment({1: True}).is_complete(2)

    def test_extended_does_not_mutate(self):
        base = Assignment({1: True})
        extended = base.extended(2, False)
        assert 2 not in base and extended[2] is False

    def test_extended_conflict_raises(self):
        with pytest.raises(AssignmentError):
            Assignment({1: True}).extended(1, False)

    def test_updated(self):
        merged = Assignment({1: True}).updated({2: False})
        assert merged[1] and not merged[2]

    def test_satisfies_literal(self):
        assignment = Assignment({1: True})
        assert assignment.satisfies_literal(Literal(1)) is True
        assert assignment.satisfies_literal(Literal(1, False)) is False
        assert assignment.satisfies_literal(Literal(2)) is None

    def test_minterm_roundtrip(self):
        for index in range(8):
            assignment = Assignment.from_minterm_index(index, 3)
            assert assignment.to_minterm_index(3) == index

    def test_to_minterm_index_requires_complete(self):
        with pytest.raises(AssignmentError):
            Assignment({1: True}).to_minterm_index(2)

    def test_to_literals_and_str(self):
        assignment = Assignment({1: False, 2: True})
        assert assignment.to_literals() == [Literal(1, False), Literal(2, True)]
        assert str(assignment) == "~x1 x2"

    def test_empty_str(self):
        assert "empty" in str(Assignment())
