"""Tests for repro.cnf.dimacs."""

from __future__ import annotations

import pytest

from repro.cnf.dimacs import (
    parse_dimacs,
    parse_dimacs_file,
    to_dimacs,
    write_dimacs_file,
)
from repro.cnf.formula import CNFFormula
from repro.exceptions import DimacsParseError

BASIC = """c example instance
p cnf 3 2
1 -2 0
2 3 0
"""


class TestParse:
    def test_basic(self):
        formula = parse_dimacs(BASIC)
        assert formula.num_variables == 3
        assert formula.num_clauses == 2
        assert formula.to_ints() == [[1, -2], [2, 3]]

    def test_clause_spanning_lines(self):
        text = "p cnf 3 1\n1\n-2 3 0\n"
        formula = parse_dimacs(text)
        assert formula.num_clauses == 1
        assert set(formula.clauses[0].to_ints()) == {1, -2, 3}

    def test_multiple_clauses_on_one_line(self):
        formula = parse_dimacs("p cnf 2 2\n1 0 -2 0\n")
        assert formula.num_clauses == 2

    def test_trailing_clause_without_zero(self):
        formula = parse_dimacs("p cnf 2 1\n1 2")
        assert formula.num_clauses == 1

    def test_percent_terminator_ignored(self):
        formula = parse_dimacs("p cnf 1 1\n1 0\n%\n0\n")
        assert formula.num_clauses == 1

    def test_missing_problem_line(self):
        with pytest.raises(DimacsParseError):
            parse_dimacs("1 2 0\n")

    def test_duplicate_problem_line(self):
        with pytest.raises(DimacsParseError):
            parse_dimacs("p cnf 1 1\np cnf 1 1\n1 0\n")

    def test_malformed_problem_line(self):
        with pytest.raises(DimacsParseError):
            parse_dimacs("p sat 3 2\n")

    def test_non_integer_literal(self):
        with pytest.raises(DimacsParseError):
            parse_dimacs("p cnf 2 1\n1 x 0\n")

    def test_literal_out_of_range(self):
        with pytest.raises(DimacsParseError):
            parse_dimacs("p cnf 2 1\n3 0\n")

    def test_clause_count_mismatch(self):
        with pytest.raises(DimacsParseError):
            parse_dimacs("p cnf 2 2\n1 0\n")

    def test_negative_counts(self):
        with pytest.raises(DimacsParseError):
            parse_dimacs("p cnf -1 0\n")


class TestSerialize:
    def test_roundtrip(self):
        formula = CNFFormula.from_ints([[1, -2], [2, 3]], num_variables=4)
        parsed = parse_dimacs(to_dimacs(formula))
        assert parsed == formula

    def test_comments_included(self):
        text = to_dimacs(CNFFormula.from_ints([[1]]), comments=["hello"])
        assert text.startswith("c hello\n")

    def test_file_roundtrip(self, tmp_path):
        formula = CNFFormula.from_ints([[1, 2], [-1]], num_variables=2)
        path = tmp_path / "instance.cnf"
        write_dimacs_file(formula, path, comments=["generated for tests"])
        assert parse_dimacs_file(path) == formula
