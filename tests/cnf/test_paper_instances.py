"""Tests for the named paper instances (Section III examples and Section IV)."""

from __future__ import annotations

from repro.cnf.evaluate import count_models, enumerate_models, first_model
from repro.cnf.paper_instances import (
    example5_instance,
    example6_instance,
    example7_instance,
    paper_instances,
    section4_sat_instance,
    section4_unsat_instance,
)


class TestSection4Instances:
    def test_unsat_instance_shape_and_status(self):
        formula = section4_unsat_instance()
        assert formula.num_variables == 2
        assert formula.num_clauses == 4
        assert count_models(formula) == 0

    def test_sat_instance_shape_and_status(self):
        formula = section4_sat_instance()
        assert formula.num_variables == 2
        assert formula.num_clauses == 4
        assert count_models(formula) == 1

    def test_sat_instance_model_is_not_x1_x2(self):
        # The reconstructed S_SAT must be satisfied by x1=0, x2=1 only.
        model = first_model(section4_sat_instance())
        assert model == {1: False, 2: True}

    def test_sat_instance_has_redundant_first_clause(self):
        formula = section4_sat_instance()
        assert formula.clauses[0] == formula.clauses[1]


class TestSectionIIIExamples:
    def test_example5_is_satisfiable(self):
        formula = example5_instance()
        assert formula.num_variables == 3
        assert formula.num_clauses == 4
        assert count_models(formula) >= 1

    def test_example6_two_models(self):
        formula = example6_instance()
        assert count_models(formula) == 2
        models = {m.to_minterm_index(2) for m in enumerate_models(formula)}
        assert models == {0b01, 0b10}  # x1~x2 and ~x1x2

    def test_example7_unsat(self):
        assert count_models(example7_instance()) == 0


class TestRegistry:
    def test_all_instances_present(self):
        instances = paper_instances()
        assert set(instances) == {
            "section4_unsat",
            "section4_sat",
            "example5",
            "example6",
            "example7",
        }

    def test_registry_returns_fresh_objects(self):
        assert paper_instances()["example6"] == example6_instance()
