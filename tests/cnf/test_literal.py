"""Tests for repro.cnf.literal."""

from __future__ import annotations

import pytest

from repro.cnf.literal import Literal
from repro.exceptions import CNFError


class TestConstruction:
    def test_positive_default(self):
        lit = Literal(3)
        assert lit.variable == 3
        assert lit.positive

    def test_negative(self):
        lit = Literal(2, False)
        assert not lit.positive

    @pytest.mark.parametrize("bad", [0, -1])
    def test_rejects_nonpositive_variable(self, bad):
        with pytest.raises(CNFError):
            Literal(bad)

    def test_rejects_bool_variable(self):
        with pytest.raises(CNFError):
            Literal(True)

    def test_rejects_non_bool_polarity(self):
        with pytest.raises(CNFError):
            Literal(1, 1)

    def test_from_int(self):
        assert Literal.from_int(5) == Literal(5, True)
        assert Literal.from_int(-5) == Literal(5, False)

    def test_from_int_zero_rejected(self):
        with pytest.raises(CNFError):
            Literal.from_int(0)

    def test_named_constructors(self):
        assert Literal.positive_of(4) == Literal(4, True)
        assert Literal.negative_of(4) == Literal(4, False)


class TestOperations:
    def test_negate(self):
        assert Literal(1).negate() == Literal(1, False)
        assert Literal(1, False).negate() == Literal(1, True)

    def test_operator_negation(self):
        assert -Literal(2) == Literal(2, False)
        assert ~Literal(2, False) == Literal(2, True)

    def test_double_negation_identity(self):
        lit = Literal(7, False)
        assert lit.negate().negate() == lit

    def test_to_int_roundtrip(self):
        for encoded in (1, -1, 9, -9):
            assert Literal.from_int(encoded).to_int() == encoded

    def test_evaluate(self):
        assert Literal(1).evaluate(True) is True
        assert Literal(1).evaluate(False) is False
        assert Literal(1, False).evaluate(False) is True

    def test_str(self):
        assert str(Literal(3)) == "x3"
        assert str(Literal(3, False)) == "~x3"

    def test_hashable_and_ordered(self):
        literals = {Literal(1), Literal(1, False), Literal(2)}
        assert len(literals) == 3
        assert sorted([Literal(2), Literal(1)])[0] == Literal(1)
