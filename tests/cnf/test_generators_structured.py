"""Tests for repro.cnf.generators and repro.cnf.structured."""

from __future__ import annotations

import pytest

from repro.cnf.evaluate import count_models
from repro.cnf.generators import (
    PHASE_TRANSITION_RATIO_3SAT,
    phase_transition_family,
    planted_ksat,
    random_ksat,
)
from repro.cnf.structured import (
    all_equal_formula,
    complete_graph_edges,
    cycle_graph_edges,
    graph_coloring_formula,
    parity_chain_formula,
    pigeonhole_formula,
)
from repro.exceptions import CNFError
from repro.solvers.dpll import DPLLSolver


class TestRandomKSat:
    def test_dimensions(self):
        formula = random_ksat(10, 30, 3, seed=0)
        assert formula.num_variables == 10
        assert formula.num_clauses == 30
        assert formula.is_ksat(3)

    def test_no_tautological_clauses(self):
        formula = random_ksat(8, 60, 3, seed=1)
        assert all(not c.is_tautology() for c in formula)

    def test_reproducible(self):
        assert random_ksat(6, 10, 3, seed=5) == random_ksat(6, 10, 3, seed=5)

    def test_different_seeds_differ(self):
        assert random_ksat(6, 10, 3, seed=5) != random_ksat(6, 10, 3, seed=6)

    def test_k_larger_than_n_rejected(self):
        with pytest.raises(CNFError):
            random_ksat(2, 5, 3)

    @pytest.mark.parametrize("bad", [0, -3])
    def test_invalid_sizes_rejected(self, bad):
        with pytest.raises((ValueError, TypeError)):
            random_ksat(bad, 5, 2)


class TestPlantedKSat:
    def test_planted_model_satisfies(self):
        formula, model = planted_ksat(8, 30, 3, seed=3)
        assert formula.evaluate(model.as_dict())

    def test_planted_is_complete_assignment(self):
        formula, model = planted_ksat(5, 12, 3, seed=4)
        assert model.is_complete(5)

    def test_reproducible(self):
        f1, m1 = planted_ksat(5, 10, 3, seed=9)
        f2, m2 = planted_ksat(5, 10, 3, seed=9)
        assert f1 == f2 and m1 == m2


class TestPhaseTransitionFamily:
    def test_ratios_and_sizes(self):
        family = list(phase_transition_family(10, ratios=(2.0, 4.0), seed=0))
        assert [ratio for ratio, _ in family] == [2.0, 4.0]
        assert family[0][1].num_clauses == 20
        assert family[1][1].num_clauses == 40

    def test_default_ratios_include_transition(self):
        ratios = [r for r, _ in phase_transition_family(6, seed=0)]
        assert PHASE_TRANSITION_RATIO_3SAT in ratios

    def test_invalid_ratio_rejected(self):
        with pytest.raises(CNFError):
            list(phase_transition_family(5, ratios=(-1.0,)))


class TestPigeonhole:
    def test_unsat_when_more_pigeons(self):
        assert DPLLSolver().solve(pigeonhole_formula(3, 2)).is_unsat

    def test_sat_when_enough_holes(self):
        assert DPLLSolver().solve(pigeonhole_formula(2, 2)).is_sat

    def test_dimensions(self):
        formula = pigeonhole_formula(3, 2)
        assert formula.num_variables == 6
        # 3 "somewhere" clauses + 2 holes * C(3,2) pair clauses
        assert formula.num_clauses == 3 + 2 * 3


class TestGraphColoring:
    def test_cycle_edges(self):
        assert cycle_graph_edges(1) == []
        assert cycle_graph_edges(2) == [(0, 1)]
        assert len(cycle_graph_edges(5)) == 5

    def test_complete_edges(self):
        assert len(complete_graph_edges(4)) == 6

    def test_odd_cycle_needs_three_colors(self):
        two = graph_coloring_formula(cycle_graph_edges(5), 5, 2)
        three = graph_coloring_formula(cycle_graph_edges(5), 5, 3)
        assert DPLLSolver().solve(two).is_unsat
        assert DPLLSolver().solve(three).is_sat

    def test_complete_graph_chromatic_number(self):
        k4_three = graph_coloring_formula(complete_graph_edges(4), 4, 3)
        k4_four = graph_coloring_formula(complete_graph_edges(4), 4, 4)
        assert DPLLSolver().solve(k4_three).is_unsat
        assert DPLLSolver().solve(k4_four).is_sat

    def test_bad_edges_rejected(self):
        with pytest.raises(CNFError):
            graph_coloring_formula([(0, 5)], 3, 2)
        with pytest.raises(CNFError):
            graph_coloring_formula([(1, 1)], 3, 2)


class TestParityAndAllEqual:
    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_parity_model_count(self, n):
        assert count_models(parity_chain_formula(n, parity=1)) == 2 ** (n - 1)
        assert count_models(parity_chain_formula(n, parity=0)) == 2 ** (n - 1)

    def test_parity_models_have_correct_parity(self):
        formula = parity_chain_formula(3, parity=1)
        from repro.cnf.evaluate import enumerate_models

        for model in enumerate_models(formula):
            assert sum(model.as_dict().values()) % 2 == 1

    def test_invalid_parity_rejected(self):
        with pytest.raises(CNFError):
            parity_chain_formula(3, parity=2)

    @pytest.mark.parametrize("n", [1, 2, 5])
    def test_all_equal_has_two_models(self, n):
        expected = 2 if n >= 1 else 0
        assert count_models(all_equal_formula(n)) == expected
