"""Tests for repro.cnf.evaluate and repro.cnf.simplify."""

from __future__ import annotations

import pytest

from repro.cnf.clause import Clause
from repro.cnf.evaluate import (
    clause_minterm_mask,
    count_models,
    enumerate_models,
    first_model,
    satisfying_minterm_mask,
)
from repro.cnf.formula import CNFFormula
from repro.cnf.paper_instances import section4_sat_instance, section4_unsat_instance
from repro.cnf.simplify import (
    pure_literal_eliminate,
    simplify_formula,
    unit_propagate,
)
from repro.exceptions import CNFError


class TestEvaluate:
    def test_clause_minterm_mask(self):
        mask = clause_minterm_mask(Clause([1, -2]), 2)
        # minterm index bit0 = x1, bit1 = x2
        assert list(mask) == [True, True, False, True]

    def test_satisfying_mask_of_paper_instances(self):
        assert satisfying_minterm_mask(section4_unsat_instance()).sum() == 0
        sat_mask = satisfying_minterm_mask(section4_sat_instance())
        assert sat_mask.sum() == 1
        assert sat_mask[2]  # x1=0, x2=1 -> index 0b10

    def test_count_models(self):
        formula = CNFFormula.from_ints([[1, 2]])
        assert count_models(formula) == 3

    def test_count_models_empty_formula(self):
        assert count_models(CNFFormula([])) == 1
        assert count_models(CNFFormula([Clause([])], num_variables=0)) == 0

    def test_enumerate_models(self):
        formula = CNFFormula.from_ints([[1], [2]])
        models = list(enumerate_models(formula))
        assert len(models) == 1
        assert models[0] == {1: True, 2: True}

    def test_first_model(self):
        assert first_model(section4_unsat_instance()) is None
        model = first_model(section4_sat_instance())
        assert model is not None and model == {1: False, 2: True}

    def test_enumeration_limit(self):
        big = CNFFormula.from_ints([[1]], num_variables=30)
        with pytest.raises(CNFError):
            count_models(big)

    def test_models_actually_satisfy(self):
        formula = CNFFormula.from_ints([[1, 2, 3], [-1, -2], [2, -3]])
        for model in enumerate_models(formula):
            assert formula.evaluate(model.as_dict())


class TestUnitPropagation:
    def test_propagates_chain(self):
        formula = CNFFormula.from_ints([[1], [-1, 2], [-2, 3]])
        result = unit_propagate(formula)
        assert result.forced == {1: True, 2: True, 3: True}
        assert not result.conflict
        assert result.formula.num_clauses == 0

    def test_detects_conflict(self):
        formula = CNFFormula.from_ints([[1], [-1]])
        assert unit_propagate(formula).conflict

    def test_respects_initial_assignment(self):
        formula = CNFFormula.from_ints([[1, 2]])
        result = unit_propagate(formula, {1: False})
        assert result.forced[2] is True

    def test_no_units_is_noop(self):
        formula = CNFFormula.from_ints([[1, 2], [-1, -2]])
        result = unit_propagate(formula)
        assert result.forced == {}
        assert result.formula == formula


class TestPureLiterals:
    def test_pure_literal_bound(self):
        formula = CNFFormula.from_ints([[1, 2], [1, -2]])
        result = pure_literal_eliminate(formula)
        assert result.forced[1] is True
        assert result.formula.num_clauses == 0

    def test_mixed_polarity_not_bound(self):
        formula = CNFFormula.from_ints([[1, 2], [-1, -2]])
        result = pure_literal_eliminate(formula)
        assert result.forced == {}


class TestSimplify:
    def test_satisfiability_preserved(self):
        formula = CNFFormula.from_ints([[1], [-1, 2], [3, 4], [-3, 4]])
        result = simplify_formula(formula)
        assert not result.conflict
        # The forced bindings must be extendable to a model of the original.
        partial = dict(result.forced)
        for variable in range(1, formula.num_variables + 1):
            partial.setdefault(variable, True)
        residual_ok = result.formula.num_clauses == 0
        assert residual_ok or formula.evaluate(partial) or count_models(result.formula) > 0

    def test_conflict_reported(self):
        formula = CNFFormula.from_ints([[1], [-1]])
        assert simplify_formula(formula).conflict

    def test_tautologies_removed(self):
        formula = CNFFormula.from_ints([[1, -1], [2, 3]])
        result = simplify_formula(formula)
        assert not result.conflict
