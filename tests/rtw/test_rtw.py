"""Tests for the RTW realization."""

from __future__ import annotations

import pytest

from repro.cnf.paper_instances import (
    example6_instance,
    section4_sat_instance,
    section4_unsat_instance,
)
from repro.core.assignment import find_satisfying_assignment
from repro.exceptions import EngineError
from repro.rtw.engine import RTWNBLEngine, instantaneous_margin


class TestRTWEngine:
    def test_decisions_on_paper_instances(self):
        assert RTWNBLEngine(section4_sat_instance(), seed=1).check().satisfiable
        assert not RTWNBLEngine(section4_unsat_instance(), seed=1).check().satisfiable

    def test_unit_power_signal(self):
        engine = RTWNBLEngine(example6_instance())
        assert engine.minterm_signal == pytest.approx(1.0)
        assert engine.decision_threshold == pytest.approx(0.5)

    def test_slow_switching_variant(self):
        engine = RTWNBLEngine(
            section4_sat_instance(), switch_probability=0.2, seed=2, max_samples=150_000
        )
        assert engine.check().satisfiable

    def test_algorithm2_on_rtw(self):
        engine = RTWNBLEngine(section4_sat_instance(), seed=3)
        result = find_satisfying_assignment(engine)
        assert result.satisfiable and result.verified

    def test_engine_label(self):
        assert RTWNBLEngine(example6_instance(), seed=0).check().engine == "rtw"

    def test_invalid_switch_probability(self):
        with pytest.raises(EngineError):
            RTWNBLEngine(example6_instance(), switch_probability=0.0)


class TestInstantaneousMargin:
    def test_sat_exceeds_unsat(self):
        sat_rate = instantaneous_margin(
            section4_sat_instance(), num_observations=24, block_size=2_000, seed=1
        )
        unsat_rate = instantaneous_margin(
            section4_unsat_instance(), num_observations=24, block_size=2_000, seed=1
        )
        assert 0.0 <= unsat_rate <= 1.0
        assert sat_rate > unsat_rate

    def test_invalid_parameters(self):
        with pytest.raises(EngineError):
            instantaneous_margin(example6_instance(), num_observations=0)
