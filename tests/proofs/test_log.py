"""Unit tests of the DRAT proof sink (:mod:`repro.proofs.log`)."""

from __future__ import annotations

import io

import pytest

from repro.exceptions import ProofError
from repro.proofs import ProofLog, resolve_proof_log


class TestProofLog:
    def test_in_memory_lines_and_counters(self):
        log = ProofLog()
        log.add([2, -1])
        log.delete([1, 2, 3])
        log.comment("a note")
        log.add([])
        assert log.lines() == ["-1 2 0", "d 1 2 3 0", "c a note", "0"]
        assert log.additions == 2
        assert log.deletions == 1
        assert log.incomplete is False

    def test_literals_are_sorted_and_deduplicated(self):
        log = ProofLog()
        log.add([3, -2, 3, 1])
        assert log.lines() == ["1 -2 3 0"]

    def test_literal_zero_rejected(self):
        log = ProofLog()
        with pytest.raises(ProofError):
            log.add([1, 0, 2])

    def test_text_ends_with_newline(self):
        log = ProofLog()
        assert log.text() == ""
        log.add([1])
        assert log.text() == "1 0\n"

    def test_mark_incomplete_is_idempotent(self):
        log = ProofLog()
        log.mark_incomplete("timeout")
        log.mark_incomplete("timeout")
        log.mark_incomplete()
        assert log.incomplete is True
        assert log.lines() == ["c incomplete timeout"]

    def test_comment_newlines_flattened(self):
        log = ProofLog()
        log.comment("two\nlines")
        assert log.lines() == ["c two lines"]

    def test_file_backed_sink(self, tmp_path):
        path = tmp_path / "p.drat"
        with ProofLog(path) as log:
            log.add([1, 2])
            log.delete([2])
        assert path.read_text() == "1 2 0\nd 2 0\n"
        # In-memory accessors are refused for file sinks.
        log2 = ProofLog(tmp_path / "q.drat")
        with pytest.raises(ProofError):
            log2.lines()
        log2.close()

    def test_each_line_is_one_write_call(self):
        """The torn-line guard: whole lines reach the sink atomically."""

        class RecordingStream(io.StringIO):
            def __init__(self):
                super().__init__()
                self.writes = []

            def write(self, chunk):
                self.writes.append(chunk)
                return super().write(chunk)

        stream = RecordingStream()
        log = ProofLog(stream)
        log.add([1, -2])
        log.delete([1])
        log.mark_incomplete("timeout")
        assert stream.writes == ["1 -2 0\n", "d 1 0\n", "c incomplete timeout\n"]

    def test_borrowed_stream_not_closed(self):
        stream = io.StringIO()
        log = ProofLog(stream)
        log.add([1])
        log.close()
        assert not stream.closed
        assert stream.getvalue() == "1 0\n"

    def test_close_is_idempotent_and_write_after_close_fails(self):
        log = ProofLog()
        log.close()
        log.close()
        with pytest.raises(ProofError):
            log.add([1])


class TestTranslatedProofLog:
    def test_renames_variables_preserving_polarity(self):
        log = ProofLog()
        view = log.translated({1: 7, 2: 3})
        view.add([-1, 2])
        view.delete([1])
        assert log.lines() == ["3 -7 0", "d 7 0"]

    def test_missing_variable_raises(self):
        view = ProofLog().translated({1: 7})
        with pytest.raises(ProofError):
            view.add([2])

    def test_incomplete_and_close_forwarding(self):
        log = ProofLog()
        view = log.translated({})
        view.mark_incomplete("timeout")
        assert view.incomplete is True and log.incomplete is True
        view.close()  # no-op: the base log stays open
        log.add([])
        assert log.lines()[-1] == "0"


class TestResolveProofLog:
    def test_none_passthrough(self):
        assert resolve_proof_log(None) == (None, False)

    def test_existing_log_not_owned(self):
        log = ProofLog()
        assert resolve_proof_log(log) == (log, False)
        view = log.translated({})
        assert resolve_proof_log(view) == (view, False)

    def test_path_opens_owned_log(self, tmp_path):
        path = tmp_path / "r.drat"
        log, owned = resolve_proof_log(str(path))
        assert owned is True
        log.add([5])
        log.close()
        assert path.read_text() == "5 0\n"


def test_closed_log_records_telemetry():
    """Closing a log under active metrics records the proof-line counters."""
    from repro import telemetry

    telemetry.enable_metrics()
    try:
        log = ProofLog()
        log.add([1])
        log.add([])
        log.delete([1])
        log.close()
        snapshot = telemetry.get_metrics().to_json()
        assert "repro_proof_lines_total" in snapshot
        assert "repro_proof_logs_total" in snapshot
    finally:
        telemetry.disable_metrics()
