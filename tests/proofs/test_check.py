"""Unit tests of the RUP/DRAT checker (:mod:`repro.proofs.check`).

Positive and negative paths alike: correct refutations verify, while
corrupted, truncated, reordered and delete-too-early proofs are rejected
with a step-level reason — the guarantees the differential fuzz harness
and the ``repro check-proof`` exit codes build on.
"""

from __future__ import annotations

import pytest

from repro.cnf.formula import CNFFormula
from repro.cnf.structured import pigeonhole_formula
from repro.exceptions import ProofError
from repro.proofs import (
    ProofLog,
    ProofStep,
    check_proof,
    check_proof_file,
    parse_proof,
    parse_proof_file,
)

#: (x1 | x2) & (x1 | ~x2) & (~x1 | x2) & (~x1 | ~x2): minimal UNSAT core.
FOUR_CLAUSE_UNSAT = CNFFormula.from_ints([[1, 2], [1, -2], [-1, 2], [-1, -2]], 2)
#: A correct RUP refutation of it.
GOOD_PROOF = "1 0\n-1 0\n0\n"


class TestParseProof:
    def test_parses_additions_deletions_comments(self):
        steps, incomplete = parse_proof("c header\n1 -2 0\nd 1 -2 0\n0\n")
        assert steps == [
            ProofStep(delete=False, literals=(1, -2)),
            ProofStep(delete=True, literals=(1, -2)),
            ProofStep(delete=False, literals=()),
        ]
        assert incomplete is False

    def test_incomplete_comment_sets_flag(self):
        steps, incomplete = parse_proof("1 0\nc incomplete timeout\n")
        assert len(steps) == 1
        assert incomplete is True

    def test_accepts_iterable_of_lines(self):
        steps, _ = parse_proof(["1 0", "", "d 1 0"])
        assert len(steps) == 2

    def test_torn_line_rejected(self):
        with pytest.raises(ProofError, match="torn"):
            parse_proof("1 0\n-1 2")

    def test_bad_token_rejected(self):
        with pytest.raises(ProofError, match="bad token"):
            parse_proof("1 x 0\n")

    def test_tokens_after_terminator_rejected(self):
        with pytest.raises(ProofError, match="after terminating"):
            parse_proof("1 0 2\n")

    def test_bare_deletion_rejected(self):
        with pytest.raises(ProofError, match="deletion"):
            parse_proof("d\n")

    def test_file_roundtrip_and_missing_file(self, tmp_path):
        path = tmp_path / "p.drat"
        path.write_text(GOOD_PROOF)
        steps, incomplete = parse_proof_file(path)
        assert len(steps) == 3 and incomplete is False
        with pytest.raises(ProofError, match="cannot read"):
            parse_proof_file(tmp_path / "missing.drat")


class TestCheckProof:
    def test_correct_refutation_verifies(self):
        result = check_proof(FOUR_CLAUSE_UNSAT, GOOD_PROOF)
        assert result
        assert result.status == "VERIFIED"
        assert result.steps_checked == 3
        assert result.additions == 3

    def test_deletions_do_not_break_verification(self):
        proof = "1 0\nd 1 2 0\nd 1 -2 0\n-1 0\n0\n"
        assert check_proof(FOUR_CLAUSE_UNSAT, proof)

    def test_no_empty_clause_rejected(self):
        result = check_proof(FOUR_CLAUSE_UNSAT, "1 0\n-1 0\n")
        assert not result
        assert "without deriving the empty clause" in result.reason

    def test_premature_empty_clause_rejected(self):
        result = check_proof(FOUR_CLAUSE_UNSAT, "0\n")
        assert not result
        assert result.failed_step == ProofStep(delete=False, literals=())

    def test_reordered_proof_rejected(self):
        # The empty clause moved to the front: nothing implies it yet.
        result = check_proof(FOUR_CLAUSE_UNSAT, "0\n1 0\n-1 0\n")
        assert not result
        assert result.steps_checked == 1

    def test_non_rup_addition_rejected(self):
        # On a satisfiable formula no unit is implied, so "1 0" is neither
        # RUP nor RAT (clauses with -1 exist and resolve to non-RUP).
        satisfiable = CNFFormula.from_ints([[1, 2], [-1, 2], [-1, -2]], 2)
        result = check_proof(satisfiable, "2 0\n1 0\n0\n")
        assert not result
        assert "neither RUP nor RAT" in result.reason
        assert result.failed_step == ProofStep(delete=False, literals=(1,))

    def test_delete_then_rely_rejected(self):
        # Deleting "1 2" first removes the clause the first step needs.
        proof = "d 1 2 0\n1 0\n-1 0\n0\n"
        assert not check_proof(FOUR_CLAUSE_UNSAT, proof)

    def test_rat_addition_accepted(self):
        # x3 is a fresh variable: "3 0" has no resolution partners on -3,
        # so it is vacuously RAT even though it is not RUP.
        formula = CNFFormula.from_ints([[1, 2], [1, -2], [-1, 2], [-1, -2]], 3)
        assert check_proof(formula, "3 0\n1 0\n-1 0\n0\n")

    def test_incomplete_flag_carried_into_rejection(self):
        result = check_proof(FOUR_CLAUSE_UNSAT, "1 0\nc incomplete timeout\n")
        assert not result
        assert result.incomplete is True
        assert "incomplete" in result.reason

    def test_empty_clause_in_formula_trivially_verified(self):
        formula = CNFFormula.from_ints([[1], []], 1)
        assert check_proof(formula, "")

    def test_preparsed_steps_accepted(self):
        steps, incomplete = parse_proof(GOOD_PROOF)
        assert check_proof(FOUR_CLAUSE_UNSAT, steps, incomplete=incomplete)

    def test_check_proof_file(self, tmp_path):
        path = tmp_path / "good.drat"
        path.write_text(GOOD_PROOF)
        assert check_proof_file(FOUR_CLAUSE_UNSAT, path)


class TestEndToEnd:
    def test_cdcl_proof_roundtrip(self):
        from repro.solvers.registry import make_solver

        formula = pigeonhole_formula(4, 3)
        log = ProofLog()
        result = make_solver("cdcl").solve(formula, proof=log)
        assert result.is_unsat
        verdict = check_proof(formula, log.text())
        assert verdict, verdict.reason

    def test_preprocessed_cdcl_proof_roundtrip(self):
        from repro.solvers.registry import make_solver

        formula = pigeonhole_formula(5, 4)
        log = ProofLog()
        result = make_solver("cdcl").solve(formula, preprocess=True, proof=log)
        assert result.is_unsat
        verdict = check_proof(formula, log.text())
        assert verdict, verdict.reason

    def test_corrupted_real_proof_rejects(self):
        """Tampering with a real CDCL proof must not survive checking."""
        from repro.solvers.registry import make_solver

        formula = pigeonhole_formula(4, 3)
        log = ProofLog()
        make_solver("cdcl").solve(formula, proof=log)
        lines = log.lines()
        assert lines[-1] == "0"
        # Strip the derivation: the bare empty clause is not implied by
        # unit propagation over PHP(4,3) alone.
        assert not check_proof(formula, "0\n")
        # Reorder: moving the empty clause to the front asks it to be
        # implied before any learned clause exists.
        assert not check_proof(formula, "\n".join(["0"] + lines[:-1]) + "\n")
        # Truncate: dropping the final step leaves no refutation.
        assert not check_proof(formula, "\n".join(lines[:-1]) + "\n")

    def test_proof_check_telemetry(self):
        from repro import telemetry

        telemetry.enable_metrics()
        try:
            check_proof(FOUR_CLAUSE_UNSAT, GOOD_PROOF)
            snapshot = telemetry.get_metrics().to_json()
            assert "repro_proof_checks_total" in snapshot
            assert "repro_proof_check_seconds" in snapshot
        finally:
            telemetry.disable_metrics()
