"""Tests for the experiment drivers (reduced budgets — shape checks only)."""

from __future__ import annotations

import pytest

from repro.experiments.assignment_validation import run_assignment_validation
from repro.experiments.baseline_comparison import run_baseline_comparison
from repro.experiments.checker_validation import (
    default_validation_suite,
    run_checker_validation,
)
from repro.experiments.figure1 import run_figure1
from repro.experiments.hybrid_comparison import default_hybrid_suite, run_hybrid_comparison
from repro.experiments.recording import ExperimentRecord
from repro.experiments.snr_scaling import run_snr_scaling
from repro.cnf.generators import random_ksat


class TestExperimentRecord:
    def test_add_row_and_render(self):
        record = ExperimentRecord("id", "Title", ["a", "b"])
        record.add_row(1, 2)
        record.add_note("a note")
        text = record.to_text()
        markdown = record.to_markdown()
        assert "Title" in text and "a note" in text
        assert markdown.startswith("### Title")
        assert "| 1 | 2 |" in markdown

    def test_row_width_checked(self):
        record = ExperimentRecord("id", "Title", ["a", "b"])
        with pytest.raises(ValueError):
            record.add_row(1)


class TestFigure1:
    def test_reproduces_paper_shape(self):
        result = run_figure1(max_samples=400_000, seed=0)
        # Both decisions correct (SAT judged SAT, UNSAT judged UNSAT).
        assert result.record.rows[0][-1] is True
        assert result.record.rows[1][-1] is True
        # The SAT trace settles above the decision threshold (half the exact
        # asymptote) and the UNSAT trace stays within the noise envelope.
        sat_final = result.sat_trace[1][-1]
        unsat_final = result.unsat_trace[1][-1]
        assert sat_final > 0.5 * result.expected_sat_mean
        assert abs(unsat_final) < 4.0 * result.expected_sat_mean
        assert result.expected_sat_mean == pytest.approx((1.0 / 12.0) ** 8)

    def test_traces_recorded(self):
        result = run_figure1(max_samples=100_000, seed=1)
        assert len(result.sat_trace[0]) == len(result.sat_trace[1]) >= 5
        assert result.sat_trace[0][-1] == 100_000

    def test_ascii_plot_renders(self):
        result = run_figure1(max_samples=60_000, seed=2)
        plot = result.ascii_plot(width=40, height=10)
        assert "SAT" in plot and "UNSAT" in plot


class TestValidationDrivers:
    def test_checker_validation_symbolic_always_agrees(self):
        record = run_checker_validation(num_samples=20_000, seed=0, max_sampled_nm=8)
        assert record.rows
        for row in record.rows:
            truth, symbolic = row[3], row[4]
            assert symbolic == truth

    def test_checker_validation_custom_suite(self):
        suite = [("tiny", random_ksat(2, 3, 2, seed=0))]
        record = run_checker_validation(suite, num_samples=20_000, seed=0)
        assert len(record.rows) == 1

    def test_default_suite_contains_paper_instances(self):
        names = [name for name, _ in default_validation_suite()]
        assert "section4_sat" in names and "section4_unsat" in names

    def test_assignment_validation_all_verified(self):
        record = run_assignment_validation(num_samples=20_000, seed=0, max_sampled_nm=8)
        for row in record.rows:
            assert row[5] is True  # symbolic verified
            n = row[1]
            assert row[4] == n + 1  # n+1 checks


class TestComparisonDrivers:
    def test_baseline_comparison_complete_agreement(self):
        record = run_baseline_comparison(seed=0)
        for row in record.rows:
            assert row[-1] is True

    def test_hybrid_comparison_agreement(self):
        suite = default_hybrid_suite(num_variables=10, ratios=(4.0,), instances_per_ratio=2, seed=0)
        record = run_hybrid_comparison(suite, seed=0)
        for row in record.rows:
            assert row[-1] is True

    def test_snr_scaling_shape(self):
        record = run_snr_scaling(
            sizes=((2, 2), (2, 4)), num_samples=20_000, repetitions=3, seed=0
        )
        assert len(record.rows) == 2
        # Analytic SNR must decay with the instance size.
        assert record.rows[0][3] > record.rows[1][3]
        # Required sample budget must grow.
        assert record.rows[1][6] > record.rows[0][6]
