"""Tests for the experiment suite runner's parallel mode."""

from __future__ import annotations

from repro.experiments import runner as runner_module
from repro.experiments.figure1 import run_figure1
from repro.experiments.runner import _suite_plan, run_all_experiments


def _tiny_plan(fast, seed):
    """A two-entry plan with minimal budgets (figure1 must stay first)."""
    return [
        (run_figure1, {"max_samples": 20_000, "seed": seed}),
        (runner_module.run_baseline_comparison, {"seed": seed}),
    ]


class TestSuitePlan:
    def test_plan_shape(self):
        plan = _suite_plan(fast=True, seed=0)
        assert len(plan) == 7
        assert plan[0][0] is run_figure1
        for driver, kwargs in plan:
            assert callable(driver)
            assert isinstance(kwargs, dict)

    def test_fast_budgets_are_smaller(self):
        fast = _suite_plan(fast=True, seed=0)
        slow = _suite_plan(fast=False, seed=0)
        assert fast[0][1]["max_samples"] < slow[0][1]["max_samples"]


class TestParallelMode:
    def test_parallel_matches_sequential(self, monkeypatch):
        monkeypatch.setattr(runner_module, "_suite_plan", _tiny_plan)
        sequential = run_all_experiments(seed=0)
        parallel = run_all_experiments(seed=0, parallel=True, max_workers=2)
        assert len(parallel.records) == len(sequential.records) == 2
        assert parallel.figure1_plot == sequential.figure1_plot
        assert [r.to_text() for r in parallel.records] == [
            r.to_text() for r in sequential.records
        ]
