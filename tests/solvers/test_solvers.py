"""Tests for the baseline SAT solvers."""

from __future__ import annotations

import pytest

from repro.cnf.clause import Clause
from repro.cnf.evaluate import count_models
from repro.cnf.formula import CNFFormula
from repro.cnf.generators import planted_ksat, random_ksat
from repro.cnf.paper_instances import (
    example7_instance,
    section4_sat_instance,
    section4_unsat_instance,
)
from repro.cnf.structured import graph_coloring_formula, cycle_graph_edges, pigeonhole_formula
from repro.exceptions import SolverError
from repro.solvers.base import SAT, UNKNOWN, UNSAT
from repro.solvers.brute_force import BruteForceSolver
from repro.solvers.cdcl import CDCLSolver
from repro.solvers.dpll import DPLLSolver, most_frequent_variable
from repro.solvers.gsat import GSATSolver
from repro.solvers.registry import available_solvers, make_solver
from repro.solvers.walksat import WalkSATSolver

COMPLETE_SOLVERS = [BruteForceSolver, DPLLSolver, CDCLSolver]


class TestBruteForce:
    def test_paper_instances(self):
        solver = BruteForceSolver()
        assert solver.solve(section4_sat_instance()).is_sat
        assert solver.solve(section4_unsat_instance()).is_unsat

    def test_model_count(self):
        assert BruteForceSolver().model_count(section4_sat_instance()) == 1
        assert BruteForceSolver().model_count(section4_unsat_instance()) == 0

    def test_refuses_large_instances(self):
        big = CNFFormula.from_ints([[1]], num_variables=30)
        with pytest.raises(SolverError):
            BruteForceSolver().solve(big)

    def test_empty_formula(self):
        assert BruteForceSolver().solve(CNFFormula([])).is_sat
        falsum = CNFFormula([Clause([])], num_variables=0)
        assert BruteForceSolver().solve(falsum).is_unsat


class TestDPLL:
    def test_paper_instances(self):
        solver = DPLLSolver()
        assert solver.solve(section4_sat_instance()).is_sat
        assert solver.solve(example7_instance()).is_unsat

    def test_pigeonhole(self):
        assert DPLLSolver().solve(pigeonhole_formula(4, 3)).is_unsat
        assert DPLLSolver().solve(pigeonhole_formula(3, 3)).is_sat

    def test_model_is_complete_and_satisfying(self):
        formula = random_ksat(9, 30, 3, seed=2)
        result = DPLLSolver().solve(formula)
        if result.is_sat:
            assert result.assignment.is_complete(9)
            assert formula.evaluate(result.assignment.as_dict())

    def test_custom_branching_respected(self):
        calls = []

        def heuristic(residual, assignment):
            calls.append(len(assignment))
            return None  # fall back to default

        DPLLSolver(branching=heuristic).solve(random_ksat(8, 30, 3, seed=4))
        assert calls  # the heuristic was consulted

    def test_most_frequent_variable_heuristic(self):
        formula = CNFFormula.from_ints([[1, 2], [1, 3], [1, -2]])
        variable, value = most_frequent_variable(formula, {})
        assert variable == 1 and value is True

    def test_without_pure_literals(self):
        formula = random_ksat(8, 25, 3, seed=6)
        with_pure = DPLLSolver(use_pure_literals=True).solve(formula)
        without = DPLLSolver(use_pure_literals=False).solve(formula)
        assert with_pure.status == without.status

    def test_stats_populated(self):
        result = DPLLSolver().solve(pigeonhole_formula(4, 3))
        assert result.stats.decisions > 0
        assert result.stats.conflicts > 0
        assert result.stats.elapsed_seconds >= 0.0

    def test_invalid_configuration(self):
        with pytest.raises(SolverError):
            DPLLSolver(max_decisions=0)


class TestCDCL:
    def test_paper_instances(self):
        solver = CDCLSolver()
        assert solver.solve(section4_sat_instance()).is_sat
        assert solver.solve(section4_unsat_instance()).is_unsat

    def test_pigeonhole_unsat_with_learning(self):
        result = CDCLSolver().solve(pigeonhole_formula(4, 3))
        assert result.is_unsat
        assert result.stats.learned_clauses > 0

    def test_coloring_instances(self):
        assert CDCLSolver().solve(
            graph_coloring_formula(cycle_graph_edges(5), 5, 2)
        ).is_unsat
        assert CDCLSolver().solve(
            graph_coloring_formula(cycle_graph_edges(5), 5, 3)
        ).is_sat

    def test_empty_and_unit_handling(self):
        assert CDCLSolver().solve(CNFFormula([Clause([])], num_variables=1)).is_unsat
        assert CDCLSolver().solve(CNFFormula.from_ints([[1], [-2]])).is_sat
        assert CDCLSolver().solve(CNFFormula.from_ints([[1], [-1]])).is_unsat

    def test_tautological_clauses_ignored(self):
        formula = CNFFormula.from_ints([[1, -1], [2]])
        result = CDCLSolver().solve(formula)
        assert result.is_sat

    def test_restarts_occur_on_hard_instance(self):
        result = CDCLSolver(restart_base=5).solve(pigeonhole_formula(5, 4))
        assert result.is_unsat
        assert result.stats.restarts > 0

    def test_invalid_configuration(self):
        with pytest.raises(SolverError):
            CDCLSolver(vsids_decay=1.5)
        with pytest.raises(SolverError):
            CDCLSolver(restart_base=0)

    @pytest.mark.parametrize("seed", range(10))
    def test_agrees_with_brute_force_random(self, seed):
        formula = random_ksat(8, 34, 3, seed=seed)
        assert CDCLSolver().solve(formula).status == BruteForceSolver().solve(formula).status


class TestLocalSearch:
    def test_walksat_finds_planted_model(self):
        formula, _ = planted_ksat(10, 30, 3, seed=1)
        result = WalkSATSolver(seed=1).solve(formula)
        assert result.is_sat

    def test_gsat_finds_planted_model(self):
        formula, _ = planted_ksat(8, 24, 3, seed=2)
        result = GSATSolver(seed=2).solve(formula)
        assert result.is_sat

    def test_unsat_returns_unknown(self):
        solver = WalkSATSolver(max_flips=200, max_tries=2, seed=0)
        assert solver.solve(section4_unsat_instance()).status == UNKNOWN
        gsat = GSATSolver(max_flips=200, max_tries=2, seed=0)
        assert gsat.solve(section4_unsat_instance()).status == UNKNOWN

    def test_empty_clause_returns_unknown(self):
        formula = CNFFormula([Clause([])], num_variables=1)
        assert WalkSATSolver(seed=0).solve(formula).status == UNKNOWN

    def test_flip_counters(self):
        formula, _ = planted_ksat(8, 24, 3, seed=3)
        result = WalkSATSolver(seed=3).solve(formula)
        assert result.stats.flips >= 0 and result.stats.restarts >= 1

    def test_invalid_parameters(self):
        with pytest.raises(SolverError):
            WalkSATSolver(max_flips=0)
        with pytest.raises(SolverError):
            WalkSATSolver(noise=1.5)
        with pytest.raises(SolverError):
            GSATSolver(walk_probability=-0.1)


class TestRegistry:
    def test_available(self):
        names = available_solvers()
        assert set(names) == {
            "brute-force",
            "dpll",
            "cdcl",
            "walksat",
            "gsat",
            "hybrid",
        }

    def test_make_solver(self):
        assert isinstance(make_solver("cdcl"), CDCLSolver)
        assert isinstance(make_solver("walksat", seed=1), WalkSATSolver)

    def test_unknown_solver(self):
        with pytest.raises(SolverError):
            make_solver("minisat")


class TestCrossSolverAgreement:
    @pytest.mark.parametrize("seed", range(6))
    def test_all_complete_solvers_agree(self, seed):
        formula = random_ksat(7, 29, 3, seed=seed)
        expected = SAT if count_models(formula) > 0 else UNSAT
        for solver_class in COMPLETE_SOLVERS:
            result = solver_class().solve(formula)
            assert result.status == expected
            if result.is_sat:
                assert formula.evaluate(result.assignment.as_dict())
