"""Cooperative-timeout coverage: every classical solver degrades gracefully.

A solver handed an instance it cannot finish within its wall-clock budget
must return ``UNKNOWN`` with ``timed_out=True`` — never hang and never
raise — and the result must still carry its :class:`SolverStats` so callers
can see how far the run got. The instances here are pigeonhole formulas
(exponentially hard for resolution-based search, UNSAT so local search
never terminates early) sized per solver so the budget expires mid-search.
"""

from __future__ import annotations

import pytest

from repro.cnf.structured import pigeonhole_formula
from repro.solvers.base import UNKNOWN
from repro.solvers.registry import available_solvers, make_solver

#: Per-solver timeout scenario: constructor kwargs, instance, and budget.
#: Search solvers get a budget that allows real work before expiring;
#: brute force enumerates in one vectorised step, so only its up-front
#: checkpoint can fire — it gets a budget that is already spent on entry.
#: The hybrid solver's symbolic coprocessor scores minterm masks per
#: decision, which is exactly the kind of slow checkpoint-free stretch the
#: budget must survive (its inner DPLL owns the checkpoints).
TIMEOUT_SCENARIOS = {
    "dpll": (dict(), pigeonhole_formula(8, 7), 0.05),
    "cdcl": (dict(), pigeonhole_formula(8, 7), 0.05),
    "walksat": (
        dict(max_flips=10_000_000, max_tries=1, seed=1),
        pigeonhole_formula(5, 4),
        0.05,
    ),
    "gsat": (
        dict(max_flips=10_000_000, max_tries=1, seed=1),
        pigeonhole_formula(5, 4),
        0.05,
    ),
    "brute-force": (dict(), pigeonhole_formula(4, 3), 1e-9),
    "hybrid": (dict(), pigeonhole_formula(4, 3), 1e-9),
}

#: Scenarios whose budget permits measurable work before expiring.
WORKING_SCENARIOS = ("dpll", "cdcl", "walksat", "gsat")


def test_every_registry_solver_has_a_timeout_scenario():
    """New solvers must be added to the timeout coverage table."""
    assert sorted(TIMEOUT_SCENARIOS) == available_solvers()


@pytest.mark.parametrize("name", sorted(TIMEOUT_SCENARIOS))
def test_timeout_returns_unknown_not_exception(name):
    kwargs, formula, budget = TIMEOUT_SCENARIOS[name]
    solver = make_solver(name, **kwargs)
    result = solver.solve(formula, timeout=budget)
    assert result.status == UNKNOWN
    assert result.timed_out is True
    assert result.assignment is None
    assert result.solver_name == solver.name
    # The stats object must survive the timeout path with the elapsed time
    # recorded (the run did happen, however briefly).
    assert result.stats is not None
    assert result.stats.elapsed_seconds > 0.0


@pytest.mark.parametrize("name", WORKING_SCENARIOS)
def test_timed_out_stats_show_partial_work(name):
    kwargs, formula, budget = TIMEOUT_SCENARIOS[name]
    result = make_solver(name, **kwargs).solve(formula, timeout=budget)
    assert result.timed_out is True
    stats = result.stats
    work = (
        stats.decisions
        + stats.propagations
        + stats.conflicts
        + stats.flips
        + stats.evaluations
    )
    assert work > 0, f"{name} timed out without recording any work"


@pytest.mark.parametrize("name", WORKING_SCENARIOS)
def test_timed_out_elapsed_tracks_wall_clock(name):
    """Regression: ``elapsed_seconds`` on the timeout path must measure the
    actual run, not default to 0.0 or the full budget. The cooperative
    checkpoints may overshoot by a loop iteration, so only loose bounds
    hold: at least (almost) the budget, and well under a hard cap."""
    kwargs, formula, budget = TIMEOUT_SCENARIOS[name]
    result = make_solver(name, **kwargs).solve(formula, timeout=budget)
    assert result.timed_out is True
    assert result.stats.elapsed_seconds >= budget * 0.5
    assert result.stats.elapsed_seconds < budget + 30.0


def test_timed_out_elapsed_matches_trace_span():
    """With tracing on, the solve span's duration and the stats' elapsed
    time must describe the same run (elapsed is stamped inside the span)."""
    from repro import telemetry

    kwargs, formula, budget = TIMEOUT_SCENARIOS["cdcl"]
    tracer = telemetry.start_tracing()
    try:
        result = make_solver("cdcl", **kwargs).solve(formula, timeout=budget)
    finally:
        telemetry.stop_tracing()
    assert result.timed_out is True
    (root,) = tracer.finished
    assert root.attributes["timed_out"] is True
    assert root.attributes["elapsed_seconds"] == result.stats.elapsed_seconds
    assert root.duration_seconds >= result.stats.elapsed_seconds


def test_incremental_solve_stamps_elapsed_on_timeout():
    """Regression: ``CDCLSolver.solve_incremental`` stamps elapsed time on
    the timeout path too (it bypasses ``SATSolver.solve`` entirely)."""
    from repro.solvers.cdcl import CDCLSolver

    formula = pigeonhole_formula(8, 7)
    solver = CDCLSolver()
    solver.begin_incremental(formula.num_variables)
    for clause in formula:
        solver.attach_clause(clause.to_ints())
    result = solver.solve_incremental(timeout=0.05)
    assert result.status == UNKNOWN
    assert result.timed_out is True
    assert result.stats.elapsed_seconds >= 0.025


def test_incremental_session_timeout():
    """The CDCL session path reports timeouts the same way, and the
    session stays usable for subsequent (easier) queries."""
    from repro.incremental import make_session

    session = make_session("cdcl", base_formula=pigeonhole_formula(8, 7))
    timed_out = session.solve(timeout=0.05)
    assert timed_out.status == UNKNOWN
    assert timed_out.timed_out is True
    # A later query with a satisfying-by-construction assumption set must
    # still work on the same (post-timeout) solver state.
    easy = make_session("cdcl", base_formula=pigeonhole_formula(3, 3))
    assert easy.solve().is_sat


def test_timeout_mid_search_leaves_valid_truncated_proof():
    """Regression: a CDCL run killed mid-conflict must leave a proof file
    that parses cleanly — whole lines only, never a torn last line — and
    that is flagged ``incomplete`` so a checker rejects rather than
    mis-verifies it."""
    from repro.proofs import ProofLog, check_proof, parse_proof

    log = ProofLog()
    result = make_solver("cdcl").solve(
        pigeonhole_formula(8, 7), timeout=0.05, proof=log
    )
    assert result.timed_out is True
    assert log.incomplete is True
    # Every recorded line must parse: a torn line raises ProofError here.
    steps, incomplete = parse_proof(log.text())
    assert incomplete is True
    assert len(steps) == log.additions + log.deletions
    # The truncated derivation never verifies as a refutation, and the
    # rejection reason names the incomplete flag.
    verdict = check_proof(pigeonhole_formula(8, 7), log.text())
    assert not verdict
    assert "incomplete" in verdict.reason


def test_timeout_file_backed_proof_has_no_torn_line(tmp_path):
    """The same guarantee through a real file sink (one write per line)."""
    from repro.proofs import parse_proof_file

    path = tmp_path / "timeout.drat"
    result = make_solver("cdcl").solve(
        pigeonhole_formula(8, 7), timeout=0.05, proof=str(path)
    )
    assert result.timed_out is True
    text = path.read_text()
    assert text == "" or text.endswith("\n")
    steps, incomplete = parse_proof_file(path)
    assert incomplete is True


@pytest.mark.slow
@pytest.mark.parametrize("name", WORKING_SCENARIOS)
def test_timeout_with_generous_budget_still_expires(name):
    """Same scenarios at a 10x budget — the instances are hard enough that
    the verdict is still a clean timeout, not a hang or a crash."""
    kwargs, formula, budget = TIMEOUT_SCENARIOS[name]
    result = make_solver(name, **kwargs).solve(formula, timeout=budget * 10)
    assert result.status == UNKNOWN
    assert result.timed_out is True
