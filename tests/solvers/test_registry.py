"""Tests for the solver registry extension point and the timeout hook."""

from __future__ import annotations

import pytest

from repro.cnf.formula import CNFFormula
from repro.cnf.generators import random_ksat
from repro.exceptions import SolverError
from repro.hybrid.solver import HybridNBLSolver
from repro.solvers.base import SAT, UNKNOWN, SATSolver, SolverResult, SolverStats
from repro.solvers.registry import available_solvers, make_solver, register_solver


class TestRegisterSolver:
    def test_hybrid_is_registered_by_default(self):
        assert "hybrid" in available_solvers()
        solver = make_solver("hybrid")
        assert isinstance(solver, HybridNBLSolver)

    def test_hybrid_solves_by_name(self):
        result = make_solver("hybrid").solve(
            CNFFormula.from_ints([[1, 2], [-1, -2]])
        )
        assert result.status == SAT

    def test_register_and_make(self):
        class ToySolver(SATSolver):
            name = "toy-registry-test"

            def _solve(self, formula):
                return SolverResult(UNKNOWN, None, SolverStats())

        try:
            register_solver(ToySolver)
            assert "toy-registry-test" in available_solvers()
            assert isinstance(make_solver("toy-registry-test"), ToySolver)
        finally:
            from repro.solvers import registry

            registry._SOLVERS.pop("toy-registry-test", None)

    def test_duplicate_registration_rejected_without_override(self):
        with pytest.raises(SolverError):
            register_solver(HybridNBLSolver, name="dpll")

    def test_non_solver_class_rejected(self):
        with pytest.raises(SolverError):
            register_solver(dict, name="not-a-solver")

    def test_default_name_rejected(self):
        class Nameless(SATSolver):
            def _solve(self, formula):
                return SolverResult(UNKNOWN)

        with pytest.raises(SolverError):
            register_solver(Nameless)


class TestTimeoutHook:
    @pytest.mark.parametrize("name", ["dpll", "cdcl", "walksat", "gsat"])
    def test_expired_budget_yields_unknown(self, name):
        formula = random_ksat(20, 85, seed=0)
        solver = make_solver(name, **({"seed": 0} if name in ("walksat", "gsat") else {}))
        # A budget this small expires at the first cooperative checkpoint.
        result = solver.solve(formula, timeout=1e-9)
        assert result.status == UNKNOWN
        assert result.timed_out
        assert result.solver_name == solver.name

    def test_generous_budget_does_not_interfere(self):
        formula = CNFFormula.from_ints([[1, 2], [-1, -2]])
        result = make_solver("dpll").solve(formula, timeout=60.0)
        assert result.status == SAT
        assert not result.timed_out

    def test_deadline_is_cleared_between_runs(self):
        solver = make_solver("dpll")
        formula = random_ksat(12, 50, seed=1)
        timed = solver.solve(formula, timeout=1e-9)
        assert timed.timed_out
        fresh = solver.solve(formula)
        assert fresh.status in (SAT, "UNSAT")
        assert not fresh.timed_out

    def test_non_positive_timeout_rejected(self):
        with pytest.raises(ValueError):
            make_solver("dpll").solve(CNFFormula.from_ints([[1]]), timeout=0)

    def test_hybrid_forwards_timeout_to_inner_search(self):
        formula = random_ksat(20, 85, seed=0)
        result = make_solver("hybrid").solve(formula, timeout=1e-9)
        assert result.status == UNKNOWN
        assert result.timed_out
        assert result.solver_name == "hybrid-nbl"
