"""Unit tests of the kernel's restart schedule, LBD scoring and the
interaction of DB reduction / inprocessing with proofs and cores."""

from __future__ import annotations

import numpy as np

from repro.cnf.generators import random_ksat
from repro.cnf.structured import pigeonhole_formula
from repro.proofs import ProofLog, check_proof
from repro.solvers.base import SolverStats
from repro.solvers.cdcl import CDCLSolver, luby
from repro.solvers.cdcl.kernel import ArenaKernel


class TestLuby:
    def test_prefix(self):
        assert [luby(i) for i in range(1, 16)] == [
            1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8,
        ]

    def test_power_boundaries(self):
        # The sequence peaks at 2**(k-1) exactly at positions 2**k - 1.
        for k in range(1, 12):
            assert luby((1 << k) - 1) == 1 << (k - 1)
            assert luby(1 << k) == 1  # ...and restarts from 1 right after

    def test_restarts_follow_the_schedule(self):
        """With restart_base=3 a pigeonhole instance restarts repeatedly;
        conflict counts stay bounded by the Luby-scheduled budget."""
        solver = CDCLSolver(restart_base=3)
        result = solver.solve(pigeonhole_formula(5, 4))
        assert result.status == "UNSAT"
        assert result.stats.restarts > 0
        budget = sum(3 * luby(i) for i in range(1, result.stats.restarts + 2))
        assert result.stats.conflicts <= budget


class TestLBD:
    """LBD on hand-built trails: learn() recomputes the literal block
    distance (distinct decision levels, asserting literal's level counted
    once) when analyze's stamp is absent."""

    @staticmethod
    def _kernel_with_levels(levels: dict[int, int]) -> ArenaKernel:
        kernel = ArenaKernel(max(levels) + 2)
        for var, level in levels.items():
            kernel.level[var] = level
        return kernel

    @staticmethod
    def _stored_lbd(kernel: ArenaKernel) -> int:
        return kernel.arena[kernel.learned_refs[-1] + 2]

    def test_distinct_levels_count(self):
        # Tail literals at levels {1, 1, 2} plus the asserting literal:
        # 2 distinct tail levels + 1 = 3.
        kernel = self._kernel_with_levels({2: 1, 3: 1, 4: 2})
        learned = [1 << 1, (2 << 1) | 1, (3 << 1) | 1, (4 << 1) | 1]
        kernel.learn(learned, SolverStats())
        assert self._stored_lbd(kernel) == 3

    def test_glue_clause_has_lbd_two(self):
        # All tail literals on one level: 1 + 1 = 2 — a glue clause.
        kernel = self._kernel_with_levels({2: 3, 3: 3, 4: 3})
        learned = [1 << 1, (2 << 1) | 1, (3 << 1) | 1, (4 << 1) | 1]
        kernel.learn(learned, SolverStats())
        assert self._stored_lbd(kernel) == 2

    def test_all_distinct_levels(self):
        kernel = self._kernel_with_levels({2: 1, 3: 2, 4: 3, 5: 4})
        learned = [1 << 1] + [(v << 1) | 1 for v in (2, 3, 4, 5)]
        kernel.learn(learned, SolverStats())
        assert self._stored_lbd(kernel) == 5

    def test_explicit_stamp_wins(self):
        # analyze() passes its own stamp; learn must store it verbatim.
        kernel = self._kernel_with_levels({2: 1, 3: 1})
        kernel.learn([1 << 1, (2 << 1) | 1, (3 << 1) | 1], SolverStats(), lbd=7)
        assert self._stored_lbd(kernel) == 7


class TestReductionAndProofs:
    def test_reduction_deletions_land_in_a_checkable_proof(self):
        """Aggressive reduction emits DRAT ``d`` lines; the checker must
        still verify the proof end to end."""
        formula = pigeonhole_formula(5, 4)
        solver = CDCLSolver(restart_base=3, reduce_interval=8, keep_lbd=1)
        solver.begin_incremental(num_variables=formula.num_variables)
        for clause in formula.to_ints():
            solver.attach_clause(clause)
        log = ProofLog()
        solver.set_proof_log(log)
        result = solver.solve_incremental()
        assert result.status == "UNSAT"
        assert solver._kernel.reductions > 0, "reduction path not exercised"
        verdict = check_proof(formula, log.text())
        assert verdict, f"proof rejected after reductions: {verdict.reason}"
        assert verdict.deletions > 0

    def test_inprocessing_never_drops_a_core_clause(self, seed):
        """Regression: queries that trigger inprocessing between calls must
        not strengthen away clauses a later ``unsat_core`` depends on."""
        rng = np.random.default_rng(seed + 7)
        session = CDCLSolver(
            restart_base=3,
            reduce_interval=8,
            keep_lbd=1,
            inprocess_interval=1,
            inprocess_budget=64,
        ).make_session(base_formula=pigeonhole_formula(4, 3))
        fresh = CDCLSolver()
        cores_checked = 0
        for _ in range(12):
            assumptions = [
                int(v) if rng.integers(2) else -int(v)
                for v in rng.choice(
                    np.arange(1, 13), size=int(rng.integers(1, 4)), replace=False
                )
            ]
            result = session.solve(assumptions=assumptions)
            if not result.is_unsat:
                continue
            core = session.unsat_core()
            assert core is not None
            assert set(core) <= set(assumptions)
            recheck = fresh.solve(
                session.formula().with_assumptions(core)
            )
            assert recheck.is_unsat, (
                f"core {core} does not explain UNSAT after inprocessing"
            )
            cores_checked += 1
        assert session.solver._kernel.inprocessings > 0, (
            "inprocessing path not exercised"
        )
        assert cores_checked >= 1

    def test_assumption_levels_survive_extreme_restarts(self, seed):
        """Assumption-prefix retention across restarts: with restarts after
        every conflict, incremental verdicts and cores must still match
        fresh solves of the assumption-strengthened formula."""
        rng = np.random.default_rng(seed + 9)
        fresh = CDCLSolver()
        unsat_seen = 0
        for _ in range(10):
            num_vars = int(rng.integers(6, 12))
            formula = random_ksat(
                num_vars,
                round(4.5 * num_vars),
                3,
                seed=int(rng.integers(0, 2**31)),
            )
            session = CDCLSolver(
                restart_base=1,
                reduce_interval=8,
                keep_lbd=1,
                inprocess_interval=1,
                inprocess_budget=32,
            ).make_session(base_formula=formula)
            for _ in range(4):
                size = int(rng.integers(1, 5))
                assumptions = [
                    int(v) if rng.integers(2) else -int(v)
                    for v in rng.choice(
                        np.arange(1, num_vars + 1), size=size, replace=False
                    )
                ]
                result = session.solve(assumptions=assumptions)
                reference = fresh.solve(formula.with_assumptions(assumptions))
                assert result.status == reference.status
                assert session.solver._kernel.check_invariants() == []
                if result.is_unsat:
                    unsat_seen += 1
                    core = session.unsat_core()
                    assert set(core) <= set(assumptions)
                    if core:
                        assert fresh.solve(
                            formula.with_assumptions(core)
                        ).is_unsat
        assert unsat_seen >= 1

    def test_reduction_and_inprocessing_keep_verdicts_honest(self, seed):
        """Differential spot-check: extreme knobs vs default knobs agree on
        a batch of random formulas near the phase transition."""
        rng = np.random.default_rng(seed + 8)
        aggressive = CDCLSolver(
            restart_base=3,
            reduce_interval=8,
            keep_lbd=1,
            inprocess_interval=1,
            inprocess_budget=32,
        )
        plain = CDCLSolver()
        for _ in range(25):
            formula = random_ksat(
                10, 43, 3, seed=int(rng.integers(0, 2**31))
            )
            assert aggressive.solve(formula).status == plain.solve(formula).status
