"""Tests for the hybrid CPU + NBL-coprocessor solver."""

from __future__ import annotations

import pytest

from repro.cnf.evaluate import count_models
from repro.cnf.formula import CNFFormula
from repro.cnf.generators import random_ksat
from repro.cnf.paper_instances import section4_sat_instance, section4_unsat_instance
from repro.cnf.structured import pigeonhole_formula
from repro.exceptions import EngineError
from repro.hybrid.guidance import NBLGuidance
from repro.hybrid.solver import HybridNBLSolver
from repro.solvers.brute_force import BruteForceSolver


class TestGuidance:
    def test_score_bindings_matches_model_counts(self, example6):
        guidance = NBLGuidance(engine="symbolic", mode="variable", top_variables=2)
        scores = guidance.score_bindings(example6)
        # Example 6 has one model in each half-space of each variable.
        signal = 1.0 / 12.0 ** (2 * 2)
        for value in scores.values():
            assert value == pytest.approx(1.0 * (1.0 / 12.0) ** 4)
        assert guidance.checks_issued == 4

    def test_value_mode_picks_satisfiable_polarity(self, sat_instance):
        guidance = NBLGuidance(engine="symbolic", mode="value")
        variable, value = guidance.propose_branch(sat_instance, {})
        # The only model is ~x1 x2, so whatever variable is chosen the value
        # must keep that model reachable.
        model = {1: False, 2: True}
        assert model[variable] == value

    def test_variable_mode_returns_best_pair(self):
        # x1 = True keeps 2 models; x1 = False keeps 1; x2 likewise asymmetric.
        formula = CNFFormula.from_ints([[1, 2], [1, -2], [2, -1]], num_variables=2)
        guidance = NBLGuidance(engine="symbolic", mode="variable", top_variables=2)
        variable, value = guidance.propose_branch(formula, {})
        assert value is True  # positive subspaces hold more models

    def test_empty_formula_returns_none(self):
        guidance = NBLGuidance(engine="symbolic")
        assert guidance.propose_branch(CNFFormula([], num_variables=2), {}) is None

    def test_checks_issued_counter(self, sat_instance):
        guidance = NBLGuidance(engine="symbolic", mode="value")
        guidance.propose_branch(sat_instance, {})
        assert guidance.checks_issued == 2

    def test_invalid_configuration(self):
        with pytest.raises(EngineError):
            NBLGuidance(engine="analog")
        with pytest.raises(EngineError):
            NBLGuidance(mode="polarity")
        with pytest.raises(EngineError):
            NBLGuidance(top_variables=0)


class TestHybridSolver:
    def test_paper_instances(self):
        solver = HybridNBLSolver()
        assert solver.solve(section4_sat_instance()).is_sat
        assert solver.solve(section4_unsat_instance()).is_unsat

    def test_pigeonhole_unsat(self):
        assert HybridNBLSolver().solve(pigeonhole_formula(4, 3)).is_unsat

    @pytest.mark.parametrize("seed", range(5))
    def test_agrees_with_brute_force(self, seed):
        formula = random_ksat(8, 33, 3, seed=seed)
        expected = BruteForceSolver().solve(formula).status
        assert HybridNBLSolver().solve(formula).status == expected

    def test_returned_models_satisfy(self):
        formula = random_ksat(9, 30, 3, seed=7)
        result = HybridNBLSolver().solve(formula)
        if result.is_sat:
            assert formula.evaluate(result.assignment.as_dict())

    def test_coprocessor_traffic_reported(self):
        solver = HybridNBLSolver()
        result = solver.solve(random_ksat(8, 34, 3, seed=1))
        assert result.stats.evaluations == solver.guidance.checks_issued
        assert result.solver_name == "hybrid-nbl"

    def test_variable_mode_also_complete(self):
        solver = HybridNBLSolver(guidance_mode="variable", top_variables=3)
        formula = random_ksat(7, 30, 3, seed=3)
        expected = BruteForceSolver().solve(formula).status
        assert solver.solve(formula).status == expected

    def test_never_descends_into_empty_subspace(self):
        """With the exact coprocessor in value mode, every decision keeps at
        least one model reachable on satisfiable instances."""
        formula = random_ksat(8, 32, 3, seed=11)
        if count_models(formula) == 0:
            pytest.skip("instance is UNSAT for this seed")

        decisions = []

        class RecordingGuidance(NBLGuidance):
            def propose_branch(self, residual, assignment):
                branch = super().propose_branch(residual, assignment)
                if branch is not None:
                    decisions.append((residual, branch))
                return branch

        from repro.solvers.dpll import DPLLSolver

        solver = DPLLSolver(branching=RecordingGuidance(engine="symbolic", mode="value"))
        result = solver.solve(formula)
        assert result.is_sat
        for residual, (variable, value) in decisions:
            conditioned = residual.condition(variable, value)
            assert count_models(conditioned) > 0
