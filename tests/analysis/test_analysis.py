"""Tests for the analysis subpackage (SNR measurement, convergence, planning)."""

from __future__ import annotations

import math

import pytest

from repro.analysis.convergence import analyze_trace, significant_digit_convergence
from repro.analysis.discrimination import discrimination_sweep, measure_discrimination
from repro.analysis.sample_planning import PRACTICAL_SAMPLE_LIMIT, plan_samples
from repro.analysis.snr_empirical import measure_empirical_snr
from repro.cnf.generators import random_ksat
from repro.cnf.paper_instances import section4_sat_instance, section4_unsat_instance
from repro.core.config import NBLConfig
from repro.exceptions import ExperimentError
from repro.noise.telegraph import BipolarCarrier
from repro.noise.uniform import UniformCarrier


class TestEmpiricalSNR:
    def test_measures_positive_snr_on_easy_pair(self):
        config = NBLConfig(
            carrier=BipolarCarrier(), max_samples=40_000, block_size=10_000, seed=0
        )
        measurement = measure_empirical_snr(
            section4_sat_instance(), section4_unsat_instance(), config, repetitions=4
        )
        assert len(measurement.sat_means) == 4
        assert len(measurement.unsat_means) == 4
        assert measurement.paper_model_snr > 0
        assert measurement.sqrt_model_snr > measurement.paper_model_snr
        # SAT means should on average exceed UNSAT means.
        assert sum(measurement.sat_means) > sum(measurement.unsat_means)

    def test_requires_matching_shapes(self):
        config = NBLConfig(carrier=BipolarCarrier(), max_samples=10_000)
        with pytest.raises(ExperimentError):
            measure_empirical_snr(
                section4_sat_instance(), random_ksat(3, 5, 2, seed=0), config
            )

    def test_requires_two_repetitions(self):
        config = NBLConfig(carrier=BipolarCarrier(), max_samples=10_000)
        with pytest.raises(ExperimentError):
            measure_empirical_snr(
                section4_sat_instance(), section4_unsat_instance(), config, repetitions=1
            )


class TestConvergence:
    def test_significant_digit_detection(self):
        samples = [100, 200, 300, 400, 500]
        means = [1.0, 1.26, 1.234, 1.2341, 1.2339]
        converged = significant_digit_convergence(samples, means, digits=3, window=3)
        assert converged == 300

    def test_never_converges(self):
        samples = [1, 2, 3, 4]
        means = [1.0, 2.0, 3.0, 4.0]
        assert significant_digit_convergence(samples, means) is None

    def test_short_trace(self):
        assert significant_digit_convergence([1], [1.0]) is None

    def test_invalid_inputs(self):
        with pytest.raises(ExperimentError):
            significant_digit_convergence([1, 2], [1.0])
        with pytest.raises(ExperimentError):
            significant_digit_convergence([1, 2], [1.0, 2.0], digits=0)
        with pytest.raises(ExperimentError):
            analyze_trace([], [])

    def test_analyze_trace_report(self):
        samples = list(range(100, 1100, 100))
        means = [2.0 + 0.01 / k for k in range(1, 11)]
        report = analyze_trace(samples, means)
        assert report.final_samples == 1000
        assert report.final_mean == pytest.approx(means[-1])
        assert report.relative_fluctuation < 0.01

    def test_analyze_trace_zero_mean(self):
        report = analyze_trace([1, 2, 3, 4], [0.1, -0.05, 0.02, 0.0])
        assert report.final_mean == 0.0
        assert report.relative_fluctuation >= 0.0


class TestDiscrimination:
    def test_error_rates_low_with_unit_power_carrier(self):
        config = NBLConfig(
            carrier=BipolarCarrier(), max_samples=40_000, block_size=10_000, seed=1
        )
        report = measure_discrimination(
            section4_sat_instance(), section4_unsat_instance(), config, trials=5
        )
        assert report.trials == 5
        assert report.false_negative_rate <= 0.2
        assert report.false_positive_rate <= 0.2
        assert 0.0 <= report.accuracy <= 1.0

    def test_sweep_budgets(self):
        config = NBLConfig(
            carrier=BipolarCarrier(), max_samples=10_000, block_size=5_000, seed=2
        )
        reports = discrimination_sweep(
            section4_sat_instance(),
            section4_unsat_instance(),
            [5_000, 20_000],
            config,
            trials=3,
        )
        assert [r.num_samples for r in reports] == [5_000, 20_000]

    def test_invalid_inputs(self):
        config = NBLConfig(carrier=BipolarCarrier(), max_samples=5_000)
        with pytest.raises(ExperimentError):
            measure_discrimination(
                section4_sat_instance(), section4_unsat_instance(), config, trials=0
            )
        with pytest.raises(ExperimentError):
            discrimination_sweep(
                section4_sat_instance(), section4_unsat_instance(), [0], config
            )


class TestSamplePlanning:
    def test_small_instance_is_practical(self):
        plan = plan_samples(section4_sat_instance(), target_snr=1.0)
        assert plan.practical
        assert plan.samples_sqrt_model < plan.samples_paper_model
        assert "sampled engine" in plan.recommendation

    def test_large_instance_flagged_impractical(self):
        formula = random_ksat(10, 42, 3, seed=0)
        plan = plan_samples(formula)
        assert not plan.practical
        assert plan.samples_sqrt_model > PRACTICAL_SAMPLE_LIMIT
        assert "symbolic" in plan.recommendation

    def test_invalid_target(self):
        with pytest.raises(ExperimentError):
            plan_samples(section4_sat_instance(), target_snr=0.0)

    def test_carrier_argument_accepted(self):
        plan = plan_samples(section4_sat_instance(), carrier=UniformCarrier())
        assert plan.target_snr == 1.0
