"""Unit tests for the inprocessing pipeline (repro.preprocess)."""

from __future__ import annotations

import pytest

from repro.cnf.dimacs import parse_dimacs, to_dimacs
from repro.cnf.formula import CNFFormula
from repro.cnf.structured import all_equal_formula, pigeonhole_formula
from repro.exceptions import PreprocessError
from repro.preprocess import (
    ClauseDatabase,
    Preprocessor,
    preprocess_formula,
    resolve_preprocessor,
)


class TestClauseDatabase:
    def test_load_occurrence_and_removal(self):
        formula = CNFFormula.from_ints([[1, 2], [-1, 3], [2, 3]])
        db, tautologies = ClauseDatabase.from_formula(formula)
        assert tautologies == 0
        assert len(db) == 3
        assert db.occurrences(2) == {0, 2}
        assert db.occurrences(-1) == {1}
        db.remove(0)
        assert len(db) == 2
        assert db.occurrences(2) == {2}
        assert not db.is_alive(0)

    def test_tautologies_dropped_on_load(self):
        formula = CNFFormula.from_ints([[1, -1], [2]])
        db, tautologies = ClauseDatabase.from_formula(formula)
        assert tautologies == 1
        assert len(db) == 1

    def test_strengthen_to_empty_is_reported(self):
        db = ClauseDatabase()
        cid = db.add([5])
        assert db.strengthen(cid, 5) == frozenset()

    def test_dead_clause_access_raises(self):
        db = ClauseDatabase()
        cid = db.add([1, 2])
        db.remove(cid)
        with pytest.raises(PreprocessError):
            db.clause(cid)


class TestUnitsAndPure:
    def test_unit_propagation_chain(self):
        # x1 forces x2 forces x3; the remaining clause is satisfied.
        formula = CNFFormula.from_ints([[1], [-1, 2], [-2, 3], [3, 4]])
        result = preprocess_formula(formula, techniques=["units"])
        assert result.status == "SAT"
        assert result.stats.units_propagated == 3
        model = result.reconstruct()
        assert formula.evaluate(model.as_dict())
        assert model[1] and model[2] and model[3]

    def test_unit_conflict_detected(self):
        formula = CNFFormula.from_ints([[1], [-1]])
        result = preprocess_formula(formula, techniques=["units"])
        assert result.status == "UNSAT"
        with pytest.raises(PreprocessError):
            result.reconstruct()

    def test_pure_literal_cascade(self):
        # x1 is pure; removing its clauses makes x2 pure as well.
        formula = CNFFormula.from_ints([[1, 2], [1, -2], [2, 3], [-3, 2]])
        result = preprocess_formula(formula, techniques=["pure"])
        assert result.status == "SAT"
        assert result.stats.pure_literals >= 2
        assert formula.evaluate(result.reconstruct().as_dict())

    def test_input_empty_clause_is_unsat(self):
        formula = CNFFormula([[1, 2], []], num_variables=2)
        result = preprocess_formula(formula)
        assert result.status == "UNSAT"


class TestSubsumption:
    def test_subsumed_clause_removed(self):
        formula = CNFFormula.from_ints([[1, 2], [1, 2, 3], [1, 2, 4]])
        result = preprocess_formula(formula, techniques=["subsumption"])
        assert result.stats.subsumed_clauses == 2
        assert result.formula.num_clauses == 1

    def test_duplicate_clauses_collapse(self):
        formula = CNFFormula.from_ints([[1, 2], [2, 1], [1, 2]])
        result = preprocess_formula(formula, techniques=["subsumption"])
        assert result.formula.num_clauses == 1

    def test_self_subsuming_resolution_strengthens(self):
        # (1 2) and (-1 2 3): resolving on 1 gives (2 3) ⊂ (-1 2 3),
        # so the second clause loses the -1 literal.
        formula = CNFFormula.from_ints([[1, 2], [-1, 2, 3]])
        result = preprocess_formula(formula, techniques=["subsumption"])
        assert result.stats.strengthened_literals == 1
        assert sorted(len(c) for c in result.formula) == [2, 2]

    def test_contradictory_units_conflict_via_strengthening(self):
        formula = CNFFormula.from_ints([[4], [-4]])
        result = preprocess_formula(formula, techniques=["subsumption"])
        assert result.status == "UNSAT"


class TestBlockedClauses:
    def test_mutually_blocked_pair(self):
        # Every resolvent of (1 2) with (-1 -2) is tautological: both
        # clauses are blocked, and reconstruction must still find a model.
        formula = CNFFormula.from_ints([[1, 2], [-1, -2]])
        result = preprocess_formula(formula, techniques=["bce"])
        assert result.status == "SAT"
        assert result.stats.blocked_clauses == 2
        assert formula.evaluate(result.reconstruct().as_dict())

    def test_blocked_clause_with_survivors(self):
        # (1 2 3) is blocked on 3: its only partner (-3 -2) resolves to a
        # tautology. (1 2) keeps constraining the reduced formula.
        formula = CNFFormula.from_ints([[1, 2, 3], [-3, -2], [1, 2]])
        result = preprocess_formula(formula, techniques=["bce"])
        assert result.stats.blocked_clauses >= 1
        # Solve the reduced formula by brute force over its few variables.
        from repro.cnf.evaluate import enumerate_models

        models = list(enumerate_models(result.formula))
        assert models, "reduced formula should stay satisfiable"
        model = result.reconstruct(models[0].as_dict())
        assert formula.evaluate(model.as_dict())


class TestVariableElimination:
    def test_chain_collapses_completely(self):
        formula = all_equal_formula(12)
        result = preprocess_formula(formula, techniques=["bve"])
        assert result.status == "SAT"
        assert formula.evaluate(result.reconstruct().as_dict())

    def test_unsat_via_elimination(self):
        result = preprocess_formula(pigeonhole_formula(3, 2))
        assert result.status == "UNSAT"

    def test_occurrence_limit_skips_dense_variables(self):
        formula = pigeonhole_formula(5, 4)
        strict = preprocess_formula(formula, bve_occurrence_limit=1)
        assert strict.stats.eliminated_variables == 0

    def test_growth_budget_zero_never_grows(self):
        formula = all_equal_formula(10)
        result = preprocess_formula(formula, techniques=["bve"], bve_growth=0)
        assert result.formula.num_clauses <= formula.num_clauses


class TestFrozenVariables:
    def test_frozen_variables_survive(self):
        # x1 is pure and x3 only occurs in a unit clause: both would be
        # eliminated, but freezing keeps them in the reduced universe.
        formula = CNFFormula.from_ints([[1, 2], [1, -2], [3]])
        result = preprocess_formula(formula, frozen=[1, 3])
        assert 1 in result.variable_map and 3 in result.variable_map

    def test_unmentioned_frozen_variable_kept_in_map(self):
        formula = CNFFormula.from_ints([[1, 2]], num_variables=5)
        result = preprocess_formula(formula, frozen=[5])
        assert 5 in result.variable_map

    def test_map_assumptions_roundtrip(self):
        formula = CNFFormula.from_ints([[1, 2], [2, 3], [3, 4]])
        result = preprocess_formula(formula, frozen=[2, 4])
        mapped = result.map_assumptions([2, -4])
        assert mapped == (result.variable_map[2], -result.variable_map[4])

    def test_map_assumptions_rejects_eliminated_variable(self):
        formula = CNFFormula.from_ints([[1, 2], [1, -2]])
        result = preprocess_formula(formula)  # nothing frozen
        if 1 not in result.variable_map:
            with pytest.raises(PreprocessError):
                result.map_assumptions([1])


class TestResultAndConfig:
    def test_reduced_formula_is_compactly_renumbered(self):
        formula = CNFFormula.from_ints([[1], [-1, 5], [5, 9], [-9, 5], [9, -5]])
        result = preprocess_formula(formula, techniques=["units"])
        if result.status == "REDUCED":
            used = result.formula.variables()
            assert used == set(range(1, len(used) + 1))

    def test_reduced_dimacs_roundtrip(self):
        formula = pigeonhole_formula(4, 4)
        result = preprocess_formula(formula, techniques=["subsumption"])
        text = to_dimacs(result.formula)
        assert parse_dimacs(text) == result.formula

    def test_stats_reduction_fractions(self):
        result = preprocess_formula(all_equal_formula(10))
        assert result.stats.clause_reduction == 1.0
        assert result.stats.variable_reduction == 1.0
        assert "clauses" in result.stats.to_text()

    def test_unknown_technique_rejected(self):
        with pytest.raises(PreprocessError):
            Preprocessor(techniques=["units", "magic"])

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_rounds": 0},
            {"bve_growth": -1},
            {"bve_occurrence_limit": 0},
        ],
    )
    def test_invalid_configuration_rejected(self, kwargs):
        with pytest.raises(PreprocessError):
            Preprocessor(**kwargs)

    def test_resolve_preprocessor_spellings(self):
        assert resolve_preprocessor(None) is None
        assert resolve_preprocessor(False) is None
        assert isinstance(resolve_preprocessor(True), Preprocessor)
        custom = Preprocessor(max_rounds=3)
        assert resolve_preprocessor(custom) is custom
        with pytest.raises(PreprocessError):
            resolve_preprocessor("yes")

    def test_reconstruct_rejects_unknown_reduced_variable(self):
        formula = CNFFormula.from_ints([[1, 2], [-1, 2], [1, -2]])
        result = preprocess_formula(formula, techniques=["subsumption"])
        if result.status == "REDUCED":
            with pytest.raises(PreprocessError):
                result.reconstruct({result.formula.num_variables + 7: True})

    def test_empty_formula_is_trivially_sat(self):
        result = preprocess_formula(CNFFormula([], num_variables=4))
        assert result.status == "SAT"
        assert result.reconstruct().is_complete(4)


class TestDeadline:
    def test_expired_deadline_interrupts_soundly(self):
        import time

        from repro.cnf.generators import random_ksat
        from repro.solvers.cdcl import CDCLSolver

        formula = random_ksat(20, 60, 3, seed=5)
        result = Preprocessor().preprocess(formula, deadline=time.monotonic())
        assert result.stats.interrupted
        assert result.status == "REDUCED"
        # The untouched (merely renumbered) formula is still the same
        # problem: a model of the reduction reconstructs to a model of
        # the original.
        inner = CDCLSolver().solve(result.formula)
        assert inner.is_sat
        model = result.reconstruct(inner.assignment.as_dict())
        assert formula.evaluate(model.as_dict())

    def test_generous_deadline_reaches_fixpoint(self):
        import time

        formula = pigeonhole_formula(5, 4)
        bounded = Preprocessor().preprocess(
            formula, deadline=time.monotonic() + 60.0
        )
        unbounded = Preprocessor().preprocess(formula)
        assert not bounded.stats.interrupted
        assert bounded.formula == unbounded.formula

    def test_solver_timeout_bounds_preprocessing(self):
        # solve(timeout=...) forwards its deadline into the pipeline: a
        # pathological budget must not hang in preprocessing (and the
        # result is UNKNOWN/timed_out or a genuine verdict, never a crash).
        from repro.cnf.generators import random_ksat
        from repro.solvers.cdcl import CDCLSolver

        formula = random_ksat(30, 120, 3, seed=6)
        result = CDCLSolver().solve(formula, timeout=1e-6, preprocess=True)
        assert result.status in ("SAT", "UNSAT", "UNKNOWN")
