"""Unit tests for the model reconstruction stack."""

from __future__ import annotations

from repro.preprocess import (
    BlockedClause,
    EliminatedVariable,
    ForcedLiteral,
    ReconstructionStack,
)


def test_forced_literals_overwrite_in_reverse_order():
    stack = ReconstructionStack()
    stack.push_forced(3)
    stack.push_forced(-5)
    model = stack.extend({1: True})
    assert model == {1: True, 3: True, 5: False}


def test_blocked_clause_flips_witness_only_when_needed():
    stack = ReconstructionStack()
    stack.push_blocked([1, 2], witness=1)
    # Clause already satisfied by x2 — the witness keeps its value.
    assert stack.extend({1: False, 2: True}) == {1: False, 2: True}
    # Clause falsified — the witness is flipped to true.
    assert stack.extend({1: False, 2: False}) == {1: True, 2: False}


def test_mutually_blocked_clauses_replay_sequentially():
    # (1 2) then (-1 -2) were both removed by BCE; reverse replay fixes
    # the later removal first and the earlier one reacts to the result.
    stack = ReconstructionStack()
    stack.push_blocked([1, 2], witness=1)
    stack.push_blocked([-1, -2], witness=-1)
    model = stack.extend({})

    def holds(clause):  # unassigned variables default to False
        return any(model.get(abs(lit), False) == (lit > 0) for lit in clause)

    assert holds([1, 2]) and holds([-1, -2])


def test_eliminated_variable_picks_satisfying_value():
    # x1 was eliminated from (1 2) and (-1 3): whichever value works given
    # the surviving variables must be chosen.
    stack = ReconstructionStack()
    stack.push_eliminated(1, [[1, 2], [-1, 3]])
    model = stack.extend({2: False, 3: True})
    assert model[1] is True  # (1 2) needs x1 when x2 is false
    model = stack.extend({2: True, 3: False})
    assert model[1] is False  # (-1 3) needs ~x1 when x3 is false


def test_steps_are_recorded_chronologically():
    stack = ReconstructionStack()
    stack.push_forced(1)
    stack.push_blocked([2, 3], witness=2)
    stack.push_eliminated(4, [[4, 5]])
    kinds = [type(step) for step in stack.steps]
    assert kinds == [ForcedLiteral, BlockedClause, EliminatedVariable]
    assert len(stack) == 3


def test_extend_does_not_mutate_input():
    stack = ReconstructionStack()
    stack.push_forced(2)
    original = {1: True}
    stack.extend(original)
    assert original == {1: True}
