"""Tests for the sinusoid-based-logic (SBL) realization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cnf.paper_instances import section4_sat_instance, section4_unsat_instance
from repro.exceptions import EngineError, FrequencyPlanError, NoiseConfigError
from repro.sbl.carriers import SinusoidBank
from repro.sbl.engine import SBLNBLEngine
from repro.sbl.frequency_plan import FrequencyPlan


class TestFrequencyPlan:
    def test_allocates_requested_sources(self):
        plan = FrequencyPlan(num_sources=16)
        assert plan.frequencies.shape == (16,)
        assert plan.frequencies.max() <= plan.max_frequency

    def test_spaced_strategy_is_equally_spaced(self):
        plan = FrequencyPlan(num_sources=5, strategy="spaced", min_frequency=0.1, max_frequency=0.5)
        diffs = np.diff(plan.frequencies)
        assert np.allclose(diffs, diffs[0])

    def test_dithered_stays_in_band(self):
        plan = FrequencyPlan(num_sources=20, strategy="dithered", seed=1)
        assert plan.frequencies.min() > 0
        assert plan.frequencies.max() <= plan.max_frequency

    def test_dither_reproducible(self):
        a = FrequencyPlan(num_sources=8, seed=2).frequencies
        b = FrequencyPlan(num_sources=8, seed=2).frequencies
        assert np.allclose(a, b)

    def test_spacing_and_variable_budget(self):
        plan = FrequencyPlan(num_sources=11, min_frequency=0.0001, max_frequency=1.0, strategy="spaced")
        assert plan.spacing == pytest.approx((1.0 - 0.0001) / 10)
        assert plan.variable_budget == int(1.0 // plan.spacing)

    def test_recommended_quantities_positive(self):
        plan = FrequencyPlan(num_sources=6)
        assert plan.recommended_observation_time() > 0
        assert plan.recommended_sample_rate() > 2 * plan.max_frequency

    def test_frequency_of_bounds(self):
        plan = FrequencyPlan(num_sources=4)
        assert plan.frequency_of(0) > 0
        with pytest.raises(FrequencyPlanError):
            plan.frequency_of(4)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_sources": 4, "min_frequency": 2.0, "max_frequency": 1.0},
            {"num_sources": 4, "strategy": "random"},
            {"num_sources": 4, "dither_fraction": 0.7},
        ],
    )
    def test_invalid_plans(self, kwargs):
        with pytest.raises(FrequencyPlanError):
            FrequencyPlan(**kwargs)


class TestSinusoidBank:
    def test_block_shape_and_range(self):
        bank = SinusoidBank(num_clauses=2, num_variables=2, seed=0)
        block = bank.sample_block(500)
        assert block.shape == (2, 2, 2, 500)
        assert np.abs(block).max() <= 1.0 + 1e-12

    def test_time_axis_continues_across_blocks(self):
        bank_a = SinusoidBank(1, 1, seed=0)
        whole = bank_a.sample_block(200)
        bank_b = SinusoidBank(1, 1, seed=0)
        first = bank_b.sample_block(120)
        second = bank_b.sample_block(80)
        assert np.allclose(whole, np.concatenate([first, second], axis=-1))

    def test_carrier_power_is_half_amplitude_squared(self):
        bank = SinusoidBank(1, 2, amplitude=2.0, seed=0)
        assert bank.carrier_power == pytest.approx(2.0)
        block = bank.sample_block(200_000)
        assert np.mean(block[0, 0, 0] ** 2) == pytest.approx(2.0, rel=0.05)

    def test_distinct_carriers_nearly_orthogonal(self):
        bank = SinusoidBank(2, 2, seed=3)
        block = bank.sample_block(100_000)
        flat = block.reshape(8, -1)
        cross = np.mean(flat[0] * flat[1])
        assert abs(cross) < 0.05

    def test_plan_size_mismatch_rejected(self):
        plan = FrequencyPlan(num_sources=4)
        with pytest.raises(NoiseConfigError):
            SinusoidBank(num_clauses=2, num_variables=2, plan=plan)

    def test_sub_nyquist_rate_rejected(self):
        with pytest.raises(NoiseConfigError):
            SinusoidBank(1, 1, sample_rate=0.5)


class TestSBLEngine:
    def test_decisions_on_paper_instances(self):
        sat_engine = SBLNBLEngine(section4_sat_instance(), seed=1, max_samples=150_000)
        unsat_engine = SBLNBLEngine(section4_unsat_instance(), seed=1, max_samples=150_000)
        assert sat_engine.check().satisfiable
        assert not unsat_engine.check().satisfiable

    def test_minterm_signal_scaling(self):
        engine = SBLNBLEngine(section4_sat_instance(), amplitude=1.0)
        assert engine.minterm_signal == pytest.approx(0.5**8)

    def test_binding_support(self):
        engine = SBLNBLEngine(section4_sat_instance(), seed=2, max_samples=150_000)
        assert not engine.check({1: True}).satisfiable
        assert engine.check({1: False}).satisfiable

    def test_result_metadata(self):
        result = SBLNBLEngine(section4_sat_instance(), seed=3, max_samples=50_000).check()
        assert result.engine == "sbl"
        assert result.samples_used == 50_000

    def test_invalid_configuration(self):
        with pytest.raises(EngineError):
            SBLNBLEngine(section4_sat_instance(), max_samples=0)
        with pytest.raises(EngineError):
            SBLNBLEngine(section4_sat_instance(), decision_fraction=1.5)
