"""Tests for the CNF → analog netlist compiler and the AnalogNBLEngine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analog.compiler import (
    OUTPUT_WIRE,
    SN_WIRE,
    AnalogNBLEngine,
    compile_nbl_sat_netlist,
)
from repro.analog.engine import AnalogSimulator
from repro.cnf.formula import CNFFormula
from repro.cnf.paper_instances import (
    example6_instance,
    example7_instance,
    section4_sat_instance,
    section4_unsat_instance,
)
from repro.core.assignment import find_satisfying_assignment
from repro.exceptions import EngineError
from repro.noise.telegraph import BipolarCarrier


class TestCompiler:
    def test_bill_of_materials_scales_with_instance(self):
        netlist = compile_nbl_sat_netlist(section4_sat_instance(), seed=0)
        counts = netlist.component_counts()
        # 2·m·n = 16 noise sources for n=2, m=4.
        assert counts["NoiseSourceBlock"] == 16
        assert counts["CorrelatorBlock"] == 1
        assert counts["MultiplierBlock"] >= 4

    def test_netlist_is_acyclic_and_connected(self):
        netlist = compile_nbl_sat_netlist(example6_instance(), seed=1)
        order = netlist.topological_order()
        assert len(order) == len(netlist.blocks)

    def test_lowpass_probe_optional(self):
        with_filter = compile_nbl_sat_netlist(
            example6_instance(), seed=0, include_lowpass=True
        )
        without = compile_nbl_sat_netlist(example6_instance(), seed=0)
        assert "LowPassFilterBlock" in with_filter.component_counts()
        assert "LowPassFilterBlock" not in without.component_counts()

    def test_tautological_clause_handled(self):
        formula = CNFFormula.from_ints([[1, -1], [2]], num_variables=2)
        netlist = compile_nbl_sat_netlist(formula, seed=0)
        assert netlist.topological_order()

    def test_invalid_inputs(self):
        with pytest.raises(EngineError):
            compile_nbl_sat_netlist(CNFFormula([]), seed=0)
        with pytest.raises(EngineError):
            compile_nbl_sat_netlist(example6_instance(), seed=0, bindings={9: True})

    def test_correlator_matches_direct_product_probe(self):
        """The correlator output equals the running mean of the s_n wire."""
        netlist = compile_nbl_sat_netlist(
            example6_instance(), carrier=BipolarCarrier(), seed=3
        )
        simulator = AnalogSimulator(netlist)
        probes = simulator.run_block(20_000, probes=[SN_WIRE, OUTPUT_WIRE])
        assert probes[OUTPUT_WIRE][-1] == pytest.approx(np.mean(probes[SN_WIRE]))


class TestAnalogNBLEngine:
    def test_decisions_on_paper_instances(self):
        sat_engine = AnalogNBLEngine(
            section4_sat_instance(), carrier=BipolarCarrier(), seed=1, max_samples=120_000
        )
        unsat_engine = AnalogNBLEngine(
            section4_unsat_instance(), carrier=BipolarCarrier(), seed=1, max_samples=120_000
        )
        assert sat_engine.check().satisfiable
        assert not unsat_engine.check().satisfiable

    def test_minimal_unsat(self):
        engine = AnalogNBLEngine(
            example7_instance(), carrier=BipolarCarrier(), seed=2, max_samples=60_000
        )
        assert not engine.check().satisfiable

    def test_mean_consistent_with_model_count(self):
        engine = AnalogNBLEngine(
            example6_instance(), carrier=BipolarCarrier(), seed=4, max_samples=200_000,
            block_size=50_000,
        )
        result = engine.check()
        # Example 6 has two models; unit-power carriers make the mean ≈ 2.
        assert result.mean == pytest.approx(2.0, abs=1.0)

    def test_binding_support_and_algorithm2(self):
        engine = AnalogNBLEngine(
            section4_sat_instance(), carrier=BipolarCarrier(), seed=5, max_samples=120_000
        )
        assert not engine.check({1: True}).satisfiable
        result = find_satisfying_assignment(engine)
        assert result.satisfiable and result.verified
        assert result.assignment == {1: False, 2: True}

    def test_component_counts_exposed(self):
        engine = AnalogNBLEngine(example6_instance(), seed=0)
        assert engine.component_counts()["NoiseSourceBlock"] == 8

    def test_result_metadata(self):
        engine = AnalogNBLEngine(
            example6_instance(), carrier=BipolarCarrier(), seed=6, max_samples=30_000
        )
        result = engine.check()
        assert result.engine == "analog"
        assert result.samples_used <= 30_000

    def test_invalid_configuration(self):
        with pytest.raises(EngineError):
            AnalogNBLEngine(example6_instance(), max_samples=0)
        with pytest.raises(EngineError):
            AnalogNBLEngine(example6_instance(), decision_fraction=2.0)
