"""Tests for the analog block library and netlist machinery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analog.blocks import (
    AdderBlock,
    ConstantBlock,
    CorrelatorBlock,
    GainBlock,
    LowPassFilterBlock,
    MultiplierBlock,
    NoiseSourceBlock,
)
from repro.analog.engine import AnalogSimulator
from repro.analog.netlist import Netlist
from repro.exceptions import NetlistError
from repro.noise.telegraph import BipolarCarrier


class TestBlocks:
    def test_noise_source_statistics(self):
        block = NoiseSourceBlock("src", "w", seed=0)
        samples = block.process([], 50_000)
        assert samples.shape == (50_000,)
        assert abs(samples.mean()) < 0.01

    def test_constant_block(self):
        block = ConstantBlock("c", "w", value=2.5)
        assert np.allclose(block.process([], 4), 2.5)

    def test_adder(self):
        block = AdderBlock("a", ["x", "y"], "w")
        out = block.process([np.array([1.0, 2.0]), np.array([3.0, -2.0])], 2)
        assert np.allclose(out, [4.0, 0.0])

    def test_adder_requires_inputs(self):
        with pytest.raises(NetlistError):
            AdderBlock("a", [], "w")

    def test_multiplier(self):
        block = MultiplierBlock("m", ["x", "y"], "w")
        out = block.process([np.array([2.0, 3.0]), np.array([4.0, -1.0])], 2)
        assert np.allclose(out, [8.0, -3.0])

    def test_gain(self):
        block = GainBlock("g", ["x"], "w", gain=-2.0)
        assert np.allclose(block.process([np.array([1.0, -3.0])], 2), [-2.0, 6.0])

    def test_gain_single_input_only(self):
        with pytest.raises(NetlistError):
            GainBlock("g", ["x", "y"], "w")

    def test_lowpass_tracks_dc(self):
        block = LowPassFilterBlock("f", ["x"], "w", alpha=0.1)
        out = block.process([np.ones(200)], 200)
        assert out[-1] == pytest.approx(1.0, abs=1e-6)
        assert out[0] == pytest.approx(0.1)

    def test_lowpass_state_persists_and_resets(self):
        block = LowPassFilterBlock("f", ["x"], "w", alpha=0.5)
        block.process([np.ones(10)], 10)
        continued = block.process([np.ones(1)], 1)
        assert continued[0] > 0.99
        block.reset()
        restarted = block.process([np.ones(1)], 1)
        assert restarted[0] == pytest.approx(0.5)

    def test_lowpass_alpha_validation(self):
        with pytest.raises(NetlistError):
            LowPassFilterBlock("f", ["x"], "w", alpha=0.0)

    def test_correlator_running_mean(self):
        block = CorrelatorBlock("c", ["x", "y"], "w")
        x = np.array([1.0, 2.0, 3.0])
        y = np.array([1.0, 1.0, 1.0])
        out = block.process([x, y], 3)
        assert np.allclose(out, [1.0, 1.5, 2.0])
        assert block.mean == pytest.approx(2.0)
        assert block.samples_integrated == 3

    def test_correlator_streams_across_calls(self):
        block = CorrelatorBlock("c", ["x"], "w")
        block.process([np.array([1.0, 1.0])], 2)
        block.process([np.array([4.0, 4.0])], 2)
        assert block.mean == pytest.approx(2.5)

    def test_block_name_validation(self):
        with pytest.raises(NetlistError):
            ConstantBlock("", "w")
        with pytest.raises(NetlistError):
            ConstantBlock("c", "")


class TestNetlist:
    def _simple_netlist(self) -> Netlist:
        netlist = Netlist()
        netlist.add(ConstantBlock("one", "a", 1.0))
        netlist.add(ConstantBlock("two", "b", 2.0))
        netlist.add(AdderBlock("sum", ["a", "b"], "c"))
        return netlist

    def test_component_counts(self):
        counts = self._simple_netlist().component_counts()
        assert counts == {"ConstantBlock": 2, "AdderBlock": 1}

    def test_duplicate_block_name_rejected(self):
        netlist = self._simple_netlist()
        with pytest.raises(NetlistError):
            netlist.add(ConstantBlock("one", "z", 0.0))

    def test_duplicate_wire_rejected(self):
        netlist = self._simple_netlist()
        with pytest.raises(NetlistError):
            netlist.add(ConstantBlock("other", "a", 0.0))

    def test_undriven_input_detected(self):
        netlist = Netlist()
        netlist.add(AdderBlock("sum", ["missing"], "out"))
        with pytest.raises(NetlistError):
            netlist.validate()

    def test_topological_order(self):
        order = [b.name for b in self._simple_netlist().topological_order()]
        assert order.index("sum") > order.index("one")
        assert order.index("sum") > order.index("two")

    def test_driver_and_block_lookup(self):
        netlist = self._simple_netlist()
        assert netlist.driver_of("c").name == "sum"
        assert netlist.block("one").output == "a"
        with pytest.raises(NetlistError):
            netlist.driver_of("zzz")
        with pytest.raises(NetlistError):
            netlist.block("zzz")

    def test_simulator_evaluates(self):
        simulator = AnalogSimulator(self._simple_netlist())
        probes = simulator.run_block(5, probes=["c"])
        assert np.allclose(probes["c"], 3.0)

    def test_simulator_all_wires_when_no_probes(self):
        simulator = AnalogSimulator(self._simple_netlist())
        wires = simulator.run_block(2)
        assert set(wires) == {"a", "b", "c"}

    def test_simulator_missing_probe(self):
        simulator = AnalogSimulator(self._simple_netlist())
        with pytest.raises(NetlistError):
            simulator.run_block(2, probes=["nope"])

    def test_simulator_run_streams(self):
        netlist = Netlist()
        netlist.add(ConstantBlock("one", "x", 1.0))
        netlist.add(CorrelatorBlock("corr", ["x"], "mean"))
        simulator = AnalogSimulator(netlist)
        simulator.run(1_000, block_size=100, probes=["mean"])
        assert netlist.block("corr").samples_integrated == 1_000

    def test_noise_sources_in_netlist_are_independent(self):
        netlist = Netlist()
        netlist.add(NoiseSourceBlock("n1", "a", carrier=BipolarCarrier(), seed=1))
        netlist.add(NoiseSourceBlock("n2", "b", carrier=BipolarCarrier(), seed=2))
        netlist.add(MultiplierBlock("prod", ["a", "b"], "p"))
        netlist.add(CorrelatorBlock("corr", ["p"], "mean"))
        AnalogSimulator(netlist).run(50_000, probes=["mean"])
        assert abs(netlist.block("corr").mean) < 0.05
