"""Integration tests exercising the public API across subsystems."""

from __future__ import annotations

import pytest

from repro import NBLConfig, NBLSATSolver, nbl_sat_check, nbl_sat_solve
from repro.analog.compiler import AnalogNBLEngine
from repro.cnf import (
    CNFFormula,
    graph_coloring_formula,
    cycle_graph_edges,
    parse_dimacs,
    planted_ksat,
    to_dimacs,
)
from repro.core.assignment import find_satisfying_assignment
from repro.core.symbolic import SymbolicNBLEngine
from repro.hybrid import HybridNBLSolver
from repro.noise import BipolarCarrier
from repro.rtw import RTWNBLEngine
from repro.sbl import SBLNBLEngine
from repro.solvers import CDCLSolver, DPLLSolver


class TestDimacsToNBLPipeline:
    DIMACS = """c tiny EDA-flavoured instance
p cnf 3 4
1 2 0
-1 3 0
-2 3 0
-3 1 0
"""

    def test_parse_check_solve(self):
        formula = parse_dimacs(self.DIMACS)
        check = nbl_sat_check(formula, engine="symbolic")
        assert check.satisfiable
        solved = nbl_sat_solve(formula, engine="symbolic")
        assert solved.verified
        assert formula.evaluate(solved.assignment.as_dict())

    def test_roundtrip_preserves_decisions(self):
        formula = parse_dimacs(self.DIMACS)
        reparsed = parse_dimacs(to_dimacs(formula))
        assert nbl_sat_check(reparsed, engine="symbolic").satisfiable


class TestEngineAgreementAcrossRealizations:
    """All realizations must agree on the paper's two instances."""

    def test_all_engines_agree(self, sat_instance, unsat_instance):
        config = NBLConfig(
            carrier=BipolarCarrier(), max_samples=100_000, block_size=25_000,
            min_samples=25_000, seed=5,
        )
        engines_sat = [
            NBLSATSolver("symbolic").check(sat_instance),
            NBLSATSolver("sampled", config).check(sat_instance),
            AnalogNBLEngine(sat_instance, carrier=BipolarCarrier(), seed=5, max_samples=100_000).check(),
            RTWNBLEngine(sat_instance, seed=5, max_samples=100_000).check(),
            SBLNBLEngine(sat_instance, seed=5, max_samples=150_000).check(),
        ]
        engines_unsat = [
            NBLSATSolver("symbolic").check(unsat_instance),
            NBLSATSolver("sampled", config).check(unsat_instance),
            AnalogNBLEngine(unsat_instance, carrier=BipolarCarrier(), seed=5, max_samples=100_000).check(),
            RTWNBLEngine(unsat_instance, seed=5, max_samples=100_000).check(),
            SBLNBLEngine(unsat_instance, seed=5, max_samples=150_000).check(),
        ]
        assert all(result.satisfiable for result in engines_sat)
        assert all(not result.satisfiable for result in engines_unsat)


class TestNBLVersusClassicalSolvers:
    @pytest.mark.parametrize("seed", range(4))
    def test_planted_instances_end_to_end(self, seed):
        formula, planted = planted_ksat(6, 18, 3, seed=seed)
        nbl = nbl_sat_solve(formula, engine="symbolic")
        dpll = DPLLSolver().solve(formula)
        cdcl = CDCLSolver().solve(formula)
        hybrid = HybridNBLSolver().solve(formula)
        assert nbl.satisfiable and dpll.is_sat and cdcl.is_sat and hybrid.is_sat
        assert formula.evaluate(nbl.assignment.as_dict())
        assert formula.evaluate(planted.as_dict())

    def test_graph_coloring_workflow(self):
        # The intro's EDA motivation: feasibility questions become SAT calls.
        triangle = graph_coloring_formula(cycle_graph_edges(3), 3, 3)
        infeasible = graph_coloring_formula(cycle_graph_edges(3), 3, 2)
        assert nbl_sat_check(triangle, engine="symbolic").satisfiable
        assert not nbl_sat_check(infeasible, engine="symbolic").satisfiable
        assert CDCLSolver().solve(infeasible).is_unsat


class TestAlgorithm2AcrossEngines:
    def test_analog_engine_drives_algorithm2(self, sat_instance):
        engine = AnalogNBLEngine(
            sat_instance, carrier=BipolarCarrier(), seed=9, max_samples=120_000
        )
        result = find_satisfying_assignment(engine)
        assert result.verified

    def test_symbolic_engine_counts_checks(self):
        formula = CNFFormula.from_ints([[1, 2, 3], [-1, -2], [2, -3]])
        engine = SymbolicNBLEngine(formula)
        result = find_satisfying_assignment(engine)
        assert result.verified
        assert result.num_checks == formula.num_variables + 1
