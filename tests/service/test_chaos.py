"""Chaos tests: multiple servers, one cache, seeded faults, SIGKILL.

The acceptance scenario for fault-tolerant serving: two ``repro serve``
processes share a cache directory while a deterministic fault plan drops
responses and fails fsyncs, one server is SIGKILLed mid-run, and a
retrying client still completes every job — with zero acknowledged
verdicts lost and no corrupt shard left behind.

The fault plans are asymmetric on purpose. The server that gets
SIGKILLed only ever suffers *response drops* (a dropped response was
never acknowledged, so losing it is allowed); fsync failures — which
trade durability for availability — go to the server that shuts down
gracefully, whose final compaction folds the unpersisted verdicts into
the snapshot.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.exceptions import ServiceError
from repro.runtime.jobs import solve_cache_key
from repro.runtime.shards import ShardedResultCache
from repro.service import RetryPolicy, ServiceClient

SRC = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, os.pardir, "src")
)


def _start_server(*extra_args: str) -> tuple[subprocess.Popen, int]:
    env = dict(os.environ, PYTHONPATH=SRC)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0", *extra_args],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    line = proc.stdout.readline()
    assert "service listening on" in line, (
        f"no announce line, got {line!r}; stderr: {proc.stderr.read()}"
    )
    return proc, int(line.rsplit(":", 1)[1])


def _reap(proc: subprocess.Popen) -> None:
    proc.kill()
    proc.wait(timeout=10)
    proc.stdout.close()
    proc.stderr.close()


def _sat_dimacs(i: int) -> str:
    literals = [(1 if (i >> bit) & 1 else -1) * (bit + 1) for bit in range(6)]
    clauses = "".join(f"{lit} 0\n" for lit in literals)
    return f"p cnf 6 6\n{clauses}"


def _write_plan(path, rules, seed: int) -> str:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"seed": seed, "rules": rules}, handle)
    return str(path)


def _ack(acked: dict, response: dict) -> None:
    result = response["result"]
    key = solve_cache_key(result["fingerprint"], tuple(result["assumptions"]))
    acked[key] = result["status"]


def _solve_with_failover(primary, fallback, dimacs: str, label: str) -> dict:
    """Complete one job no matter which server is still alive."""
    try:
        return primary.solve(dimacs=dimacs, label=label)
    except (ServiceError, OSError):
        return fallback.solve(dimacs=dimacs, label=label)


RETRY = dict(base_delay=0.005, max_delay=0.1)


class TestChaos:
    def test_two_servers_sigkill_and_faults_lose_nothing(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        # Server A (the SIGKILL victim): dropped responses + slow locks.
        plan_a = _write_plan(
            tmp_path / "plan-a.json",
            [
                {"point": "server.response", "kind": "drop",
                 "after": 1, "every": 4, "times": 2},
                {"point": "shards.lock.acquire", "kind": "delay",
                 "delay_seconds": 0.02, "every": 3, "times": 4},
            ],
            seed=11,
        )
        # Server B (graceful shutdown): fsync failures + dropped responses.
        plan_b = _write_plan(
            tmp_path / "plan-b.json",
            [
                {"point": "server.response", "kind": "drop",
                 "after": 2, "every": 5, "times": 2},
                {"point": "shards.wal.fsync", "kind": "error",
                 "after": 3, "every": 4, "times": 2},
            ],
            seed=12,
        )
        shared = (
            "--solver", "cdcl", "--cache-dir", cache_dir, "--shards", "4",
            "--fsync", "--lease-timeout", "2",
        )
        proc_a, port_a = _start_server(*shared, "--fault-plan", plan_a)
        proc_b, port_b = _start_server(*shared, "--fault-plan", plan_b)
        acked: dict[str, str] = {}
        try:
            client_a = ServiceClient(
                "127.0.0.1", port_a, retry=RetryPolicy(retries=8, seed=1, **RETRY)
            )
            client_b = ServiceClient(
                "127.0.0.1", port_b, retry=RetryPolicy(retries=8, seed=2, **RETRY)
            )
            with client_a, client_b:
                # Phase 1: both servers serve, writes interleave in the
                # shared shards, response drops force reconnect+resubmit.
                for i in range(16):
                    client = client_a if i % 2 == 0 else client_b
                    _ack(acked, client.solve(dimacs=_sat_dimacs(i), label=f"p1-{i}"))

                # Phase 2: SIGKILL server A mid-run. The client keeps
                # routing to it; failover completes every job on B.
                proc_a.kill()
                proc_a.wait(timeout=10)
                for i in range(16, 24):
                    primary = client_a if i % 2 == 0 else client_b
                    _ack(
                        acked,
                        _solve_with_failover(
                            primary, client_b, _sat_dimacs(i), f"p2-{i}"
                        ),
                    )

                assert len(acked) == 24, "a retried job was silently dropped"
                stats = client_b.stats()
                assert stats["service"]["persist_failures"] >= 1, (
                    "the fsync fault plan never fired on server B"
                )
                # B rides through its injected fsync failures degraded but
                # serving; its graceful shutdown heals them below.
                try:
                    client_b.shutdown()
                except (ServiceError, OSError):
                    pass  # the goodbye itself fell to a response drop
            assert proc_b.wait(timeout=30) == 0
        finally:
            _reap(proc_a)
            _reap(proc_b)

        # Zero acked verdicts lost — across a SIGKILL, fsync faults and
        # compaction by two concurrent writers.
        recovered = ShardedResultCache(
            directory=cache_dir, shards=4, lease_timeout=2.0
        )
        for key, status in acked.items():
            hit = recovered.get(key)
            assert hit is not None, f"acked verdict {key[:16]}... lost in chaos"
            assert hit.status == status
        # And no corrupt shard: recovery trimmed any torn tail, so a
        # second open replays clean.
        again = ShardedResultCache(
            directory=cache_dir, shards=4, lease_timeout=2.0
        )
        assert again.torn_records == 0


@pytest.mark.slow
class TestChaosSoak:
    def test_probabilistic_fault_soak(self, tmp_path):
        """Nightly soak: probabilistic faults over a longer two-server run."""
        cache_dir = str(tmp_path / "cache")
        plan_a = _write_plan(
            tmp_path / "plan-a.json",
            [
                {"point": "server.response", "kind": "drop",
                 "probability": 0.1, "times": 0},
                {"point": "shards.lock.acquire", "kind": "delay",
                 "delay_seconds": 0.01, "probability": 0.2, "times": 0},
            ],
            seed=101,
        )
        plan_b = _write_plan(
            tmp_path / "plan-b.json",
            [
                {"point": "server.response", "kind": "drop",
                 "probability": 0.08, "times": 0},
                {"point": "shards.wal.fsync", "kind": "error",
                 "probability": 0.15, "times": 0},
            ],
            seed=102,
        )
        shared = (
            "--solver", "cdcl", "--cache-dir", cache_dir, "--shards", "8",
            "--fsync", "--lease-timeout", "2",
        )
        proc_a, port_a = _start_server(*shared, "--fault-plan", plan_a)
        proc_b, port_b = _start_server(*shared, "--fault-plan", plan_b)
        acked: dict[str, str] = {}
        try:
            client_a = ServiceClient(
                "127.0.0.1", port_a,
                retry=RetryPolicy(retries=20, seed=3, **RETRY),
            )
            client_b = ServiceClient(
                "127.0.0.1", port_b,
                retry=RetryPolicy(retries=20, seed=4, **RETRY),
            )
            with client_a, client_b:
                for i in range(40):
                    client = client_a if i % 2 == 0 else client_b
                    _ack(acked, client.solve(dimacs=_sat_dimacs(i), label=f"s1-{i}"))
                proc_a.kill()
                proc_a.wait(timeout=10)
                for i in range(40, 60):
                    primary = client_a if i % 2 == 0 else client_b
                    _ack(
                        acked,
                        _solve_with_failover(
                            primary, client_b, _sat_dimacs(i), f"s2-{i}"
                        ),
                    )
                assert len(acked) == 60
                try:
                    client_b.shutdown()
                except (ServiceError, OSError):
                    pass
            assert proc_b.wait(timeout=60) == 0
        finally:
            _reap(proc_a)
            _reap(proc_b)

        recovered = ShardedResultCache(
            directory=cache_dir, shards=8, lease_timeout=2.0
        )
        missing = [key for key in acked if recovered.get(key) is None]
        assert not missing, f"lost {len(missing)} acked verdicts: {missing[:3]}"
        again = ShardedResultCache(
            directory=cache_dir, shards=8, lease_timeout=2.0
        )
        assert again.torn_records == 0
