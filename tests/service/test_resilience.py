"""Tests for service fault tolerance: degradation, drain, retry, transports.

Covers the failure contract end to end: persist failures degrade to
serve-without-persist (never a 500), bounded shutdown answers stragglers
with a clean 503, SIGTERM drains gracefully, abrupt stdio EOF exits
cleanly, concurrent TCP clients interleave safely, and the retrying
client rides out dropped connections and 429/503 backpressure.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro import faults
from repro.exceptions import ServiceError
from repro.faults import FaultPlan
from repro.runtime.jobs import SolveOutcome
from repro.runtime.shards import ShardedResultCache
from repro.service import (
    RetryPolicy,
    ServiceClient,
    ServiceConfig,
    SolveService,
)
from repro.service.protocol import OK, UNAVAILABLE

SRC = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, os.pardir, "src")
)

DIMACS = "p cnf 2 2\n1 2 0\n-1 0\n"
DIMACS_B = "p cnf 2 1\n1 0\n"


@pytest.fixture(autouse=True)
def _isolated_plan():
    faults.clear_plan()
    yield
    faults.clear_plan()


class InstantExecutor:
    """Returns a definitive SAT outcome for every job, immediately."""

    def __init__(self) -> None:
        self.gate = threading.Event()
        self.gate.set()
        self._threads = concurrent.futures.ThreadPoolExecutor(max_workers=8)

    def submit(self, job):
        return self._threads.submit(self._run, job)

    def _run(self, job) -> SolveOutcome:
        assert self.gate.wait(timeout=30), "test gate never opened"
        return SolveOutcome(
            job_id=job.job_id,
            status="SAT",
            solver=job.solver,
            label=job.label,
            fingerprint=job.fingerprint,
            assumptions=job.assumptions,
            winner="fake",
            assignment=(1,),
            verified=True,
        )

    def shutdown(self, wait: bool = True) -> None:
        self.gate.set()
        self._threads.shutdown(wait=False)


def _solve_line(request_id: str, dimacs: str = DIMACS) -> str:
    return json.dumps({"op": "solve", "id": request_id, "dimacs": dimacs})


class TestGracefulDegradation:
    def test_persist_failure_still_serves_200(self, tmp_path):
        faults.install_plan(
            FaultPlan([dict(point="shards.wal.append", kind="error", times=0)])
        )
        service = SolveService(
            ServiceConfig(),
            cache=ShardedResultCache(directory=str(tmp_path / "c"), shards=1),
            executor=InstantExecutor(),
        )

        async def run():
            solved = await service.handle_line(_solve_line("s1"))
            stats = await service.handle_line('{"op": "stats", "id": "st"}')
            return solved, stats

        solved, stats = asyncio.run(run())
        assert solved["code"] == OK, "persist failure must not fail the request"
        assert solved["status"] == "SAT"
        assert service.degraded
        assert stats["stats"]["degraded"] is True
        assert stats["stats"]["service"]["persist_failures"] >= 1
        assert service.stats.failures == 0  # degraded, not failed

    def test_degraded_clears_on_next_successful_persist(self, tmp_path):
        faults.install_plan(
            FaultPlan([dict(point="shards.wal.append", kind="error", times=1)])
        )
        service = SolveService(
            ServiceConfig(),
            cache=ShardedResultCache(directory=str(tmp_path / "c"), shards=1),
            executor=InstantExecutor(),
        )

        async def run():
            await service.handle_line(_solve_line("s1", DIMACS))
            first = service.degraded
            await service.handle_line(_solve_line("s2", DIMACS_B))
            return first, service.degraded

        was_degraded, still_degraded = asyncio.run(run())
        assert was_degraded
        assert not still_degraded, "flag must auto-clear on successful persist"

    def test_degraded_verdict_served_warm_from_memory(self, tmp_path):
        faults.install_plan(
            FaultPlan([dict(point="shards.wal.append", kind="error", times=0)])
        )
        service = SolveService(
            ServiceConfig(),
            cache=ShardedResultCache(directory=str(tmp_path / "c"), shards=1),
            executor=InstantExecutor(),
        )

        async def run():
            await service.handle_line(_solve_line("s1"))
            return await service.handle_line(_solve_line("s2"))

        repeat = asyncio.run(run())
        assert repeat["code"] == OK and repeat["from_cache"], (
            "unpersisted verdicts must still serve warm from memory"
        )


class TestBoundedDrain:
    def test_shutdown_cancels_stragglers_with_503(self):
        executor = InstantExecutor()
        executor.gate.clear()  # park every solve
        service = SolveService(
            ServiceConfig(drain_timeout=0.3),
            cache=ShardedResultCache(directory=None, shards=2),
            executor=executor,
        )
        ready = threading.Event()
        address = {}

        def on_ready(host, port):
            address["port"] = port
            ready.set()

        thread = threading.Thread(
            target=lambda: service.run_tcp(port=0, ready=on_ready), daemon=True
        )
        thread.start()
        assert ready.wait(timeout=10)

        with ServiceClient("127.0.0.1", address["port"]) as client:
            solve_id = client.send_solve(dimacs=DIMACS)
            time.sleep(0.1)  # let the solve reach the executor and park
            shutdown_id = client.send({"op": "shutdown"})
            bye = client.wait(shutdown_id)
            assert bye["code"] == OK
            straggler = client.wait(solve_id)
            assert straggler["code"] == UNAVAILABLE
            assert straggler["id"] == solve_id
            assert "safe to resend" in straggler["error"]
        thread.join(timeout=10)
        assert not thread.is_alive()
        assert service.stats.drained == 1
        executor.shutdown()

    def test_shutdown_without_timeout_finishes_inflight(self):
        executor = InstantExecutor()
        executor.gate.clear()
        service = SolveService(
            ServiceConfig(),  # drain_timeout=None: wait for the work
            cache=ShardedResultCache(directory=None, shards=2),
            executor=executor,
        )
        ready = threading.Event()
        address = {}

        def on_ready(host, port):
            address["port"] = port
            ready.set()

        thread = threading.Thread(
            target=lambda: service.run_tcp(port=0, ready=on_ready), daemon=True
        )
        thread.start()
        assert ready.wait(timeout=10)

        with ServiceClient("127.0.0.1", address["port"]) as client:
            solve_id = client.send_solve(dimacs=DIMACS)
            time.sleep(0.1)
            shutdown_id = client.send({"op": "shutdown"})
            assert client.wait(shutdown_id)["code"] == OK
            # Open the gate only now: the drain is already in progress and
            # must wait for (not cancel) the in-flight solve.
            executor.gate.set()
            finished = client.wait(solve_id)
            assert finished["code"] == OK and finished["status"] == "SAT"
        thread.join(timeout=10)
        assert service.stats.drained == 0
        executor.shutdown()


class TestSigterm:
    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        env = dict(os.environ, PYTHONPATH=SRC)
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--port", "0", "--solver", "cdcl",
                "--cache-dir", cache_dir, "--drain-timeout", "5",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            line = proc.stdout.readline()
            assert "service listening on" in line
            port = int(line.rsplit(":", 1)[1])
            with ServiceClient("127.0.0.1", port) as client:
                assert client.solve(dimacs=DIMACS)["status"] == "SAT"
            proc.send_signal(signal.SIGTERM)
            code = proc.wait(timeout=30)
        finally:
            proc.kill()
            proc.stdout.close()
            proc.stderr.close()
        assert code == 0, "SIGTERM must trigger a clean graceful drain"
        # The graceful path compacted the cache: snapshots, empty WALs.
        recovered = ShardedResultCache(directory=cache_dir, shards=8)
        assert recovered.replayed_records == 0
        assert recovered.torn_records == 0


class TestStdioEof:
    def _spawn_stdio(self):
        env = dict(os.environ, PYTHONPATH=SRC)
        return subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--stdio", "--solver", "cdcl",
            ],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )

    def test_abrupt_eof_mid_request_exits_cleanly(self):
        proc = self._spawn_stdio()
        try:
            # One complete request...
            proc.stdin.write(_solve_line("ok") + "\n")
            proc.stdin.flush()
            response = json.loads(proc.stdout.readline())
            assert response["id"] == "ok" and response["code"] == OK
            # ...then a *torn* one: half a line, no newline, EOF. The
            # parent crashed mid-write; the server must not hang or die
            # with a traceback.
            proc.stdin.write('{"op": "solve", "id": "torn", "dim')
            proc.stdin.close()
            code = proc.wait(timeout=30)
            stderr = proc.stderr.read()
        finally:
            proc.kill()
            proc.stdout.close()
            proc.stderr.close()
        assert code == 0, f"stdio server died on EOF: {stderr}"
        assert "Traceback" not in stderr

    def test_immediate_eof_exits_cleanly(self):
        proc = self._spawn_stdio()
        try:
            proc.stdin.close()
            code = proc.wait(timeout=30)
        finally:
            proc.kill()
            proc.stdout.close()
            proc.stderr.close()
        assert code == 0


class TestConcurrentClients:
    def test_two_tcp_clients_interleave_pipelined_requests(self):
        service = SolveService(
            ServiceConfig(solver="cdcl", max_inflight=4),
            cache=ShardedResultCache(directory=None, shards=2),
        )
        ready = threading.Event()
        address = {}

        def on_ready(host, port):
            address["port"] = port
            ready.set()

        thread = threading.Thread(
            target=lambda: service.run_tcp(port=0, ready=on_ready), daemon=True
        )
        thread.start()
        assert ready.wait(timeout=10)

        def sat(i: int) -> str:
            lits = [(1 if (i >> b) & 1 else -1) * (b + 1) for b in range(4)]
            return "p cnf 4 4\n" + "".join(f"{lit} 0\n" for lit in lits)

        results: dict[str, list] = {}
        errors: list[BaseException] = []

        def worker(name: str, offset: int) -> None:
            try:
                with ServiceClient("127.0.0.1", address["port"]) as client:
                    # Pipeline everything first so the two connections'
                    # requests genuinely interleave inside the server.
                    ids = [
                        client.send_solve(dimacs=sat((offset + i) % 6))
                        for i in range(8)
                    ]
                    results[name] = [client.wait(rid) for rid in ids]
            except BaseException as exc:  # noqa: BLE001 — surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=("a", 0)),
            threading.Thread(target=worker, args=("b", 3)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors, f"client failed: {errors}"
        for name in ("a", "b"):
            assert len(results[name]) == 8
            assert all(r["code"] == OK for r in results[name])
            assert all(r["status"] == "SAT" for r in results[name])

        with ServiceClient("127.0.0.1", address["port"]) as client:
            # The overlapping formulas were shared across connections.
            stats = client.stats()
            hits = stats["service"]["cache_hits"] + stats["service"]["dedup_hits"]
            assert hits >= 10  # 16 requests over 6 distinct formulas
            assert client.shutdown()
        thread.join(timeout=10)


class ScriptedServer:
    """A tiny TCP server whose per-connection behaviour is scripted.

    Each accepted connection runs the next behaviour from the list; the
    last behaviour repeats for any further connections (reconnects).
    """

    def __init__(self, *behaviours) -> None:
        self._behaviours = list(behaviours)
        self._stop = False
        self._sock = socket.socket()
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        self._sock.settimeout(0.1)  # so close() can interrupt accept()
        self.port = self._sock.getsockname()[1]
        self.connections = 0
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self) -> None:
        index = 0
        while not self._stop:
            try:
                conn, _ = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            behaviour = self._behaviours[min(index, len(self._behaviours) - 1)]
            index += 1
            self.connections += 1
            try:
                behaviour(conn)
            except (OSError, ValueError):
                pass
            finally:
                try:
                    conn.close()
                except OSError:
                    pass

    def close(self) -> None:
        self._stop = True
        self._thread.join(timeout=5)
        self._sock.close()


def _read_request(conn) -> dict:
    reader = conn.makefile("r", encoding="utf-8", newline="\n")
    return json.loads(reader.readline())


def _respond(conn, payload: dict) -> None:
    conn.sendall((json.dumps(payload) + "\n").encode("utf-8"))


def _vanish_after_read(conn) -> None:
    _read_request(conn)  # swallow the request, then drop the connection


def _answer_pings(conn) -> None:
    reader = conn.makefile("r", encoding="utf-8", newline="\n")
    while True:
        line = reader.readline()
        if not line:
            return
        request = json.loads(line)
        _respond(conn, {"id": request["id"], "code": 200, "op": "ping",
                        "ok": True})


class TestClientRetry:
    def test_default_fail_fast_raises_service_error_with_pending(self):
        server = ScriptedServer(_vanish_after_read)
        try:
            with ServiceClient("127.0.0.1", server.port) as client:
                request_id = client.send({"op": "ping"})
                with pytest.raises(ServiceError) as excinfo:
                    client.wait(request_id)
                assert excinfo.value.pending == (request_id,)
        finally:
            server.close()

    def test_reconnect_and_resubmit_after_drop(self):
        server = ScriptedServer(_vanish_after_read, _answer_pings)
        try:
            client = ServiceClient(
                "127.0.0.1",
                server.port,
                retry=RetryPolicy(retries=3, base_delay=0.001, seed=1),
            )
            with client:
                assert client.ping(), "retry must absorb the dropped connection"
                assert client.reconnects == 1
                assert client.retries >= 1
                assert client.pending == ()
        finally:
            server.close()

    def test_429_backs_off_and_resends(self):
        def reject_then_accept(conn):
            reader = conn.makefile("r", encoding="utf-8", newline="\n")
            request = json.loads(reader.readline())
            _respond(conn, {"id": request["id"], "code": 429,
                            "error": "queue full"})
            resent = json.loads(reader.readline())
            assert resent["id"] == request["id"]
            _respond(conn, {"id": resent["id"], "code": 200, "op": "ping",
                            "ok": True})
            reader.readline()  # hold the connection until the client closes

        server = ScriptedServer(reject_then_accept)
        try:
            client = ServiceClient(
                "127.0.0.1",
                server.port,
                retry=RetryPolicy(retries=3, base_delay=0.001, seed=1),
            )
            with client:
                assert client.ping()
                assert client.retries == 1
                assert client.reconnects == 0  # same connection throughout
        finally:
            server.close()

    def test_429_returned_to_caller_when_retries_exhausted(self):
        def always_reject(conn):
            reader = conn.makefile("r", encoding="utf-8", newline="\n")
            while True:
                line = reader.readline()
                if not line:
                    return
                request = json.loads(line)
                _respond(conn, {"id": request["id"], "code": 429,
                                "error": "queue full"})

        server = ScriptedServer(always_reject)
        try:
            client = ServiceClient(
                "127.0.0.1",
                server.port,
                retry=RetryPolicy(retries=2, base_delay=0.001, seed=1),
            )
            with client:
                response = client.call({"op": "ping"})
                assert response["code"] == 429  # surfaced, not swallowed
                assert client.retries == 2
        finally:
            server.close()

    def test_deadline_bounds_the_whole_wait(self):
        def read_but_never_answer(conn):
            reader = conn.makefile("r", encoding="utf-8", newline="\n")
            while reader.readline():
                pass

        server = ScriptedServer(read_but_never_answer)
        try:
            client = ServiceClient(
                "127.0.0.1",
                server.port,
                timeout=0.05,
                retry=RetryPolicy(
                    retries=1000, base_delay=0.001, deadline=0.5, seed=1
                ),
            )
            with client:
                started = time.monotonic()
                with pytest.raises(ServiceError, match="deadline|no response"):
                    client.call({"op": "ping"})
                assert time.monotonic() - started < 5.0
        finally:
            server.close()

    def test_injected_recv_drop_recovers(self):
        faults.install_plan(
            FaultPlan([dict(point="client.recv", kind="drop", times=1)])
        )
        server = ScriptedServer(_answer_pings)
        try:
            client = ServiceClient(
                "127.0.0.1",
                server.port,
                retry=RetryPolicy(retries=2, base_delay=0.001, seed=1),
            )
            with client:
                assert client.ping()
                assert client.reconnects == 1
        finally:
            server.close()

    def test_torn_response_line_treated_as_connection_loss(self):
        def torn_then_answer(conn):
            reader = conn.makefile("r", encoding="utf-8", newline="\n")
            reader.readline()
            conn.sendall(b'{"id": "req-1", "co')  # torn: crash mid-write
            # then the connection dies with it

        server = ScriptedServer(torn_then_answer, _answer_pings)
        try:
            client = ServiceClient(
                "127.0.0.1",
                server.port,
                retry=RetryPolicy(retries=3, base_delay=0.001, seed=1),
            )
            with client:
                assert client.ping()
                assert client.reconnects >= 1
        finally:
            server.close()
