"""Tests for repro.service.server: dedup, backpressure, failure isolation."""

from __future__ import annotations

import asyncio
import concurrent.futures
import json
import threading

import pytest

from repro.exceptions import RuntimeSubsystemError
from repro.runtime.jobs import SolveOutcome
from repro.runtime.shards import ShardedResultCache
from repro.service import ServiceConfig, SolveService
from repro.service.protocol import BAD_REQUEST, FAILED, OK, REJECTED

DIMACS = "p cnf 2 2\n1 2 0\n-1 0\n"
DIMACS_B = "p cnf 2 1\n1 0\n"
DIMACS_C = "p cnf 2 1\n2 0\n"


class GatedExecutor:
    """A JobExecutor stand-in that counts submissions and can hold them.

    ``gate.clear()`` parks every submitted job until ``gate.set()``, which
    is how the tests pin jobs "in flight" deterministically.
    """

    def __init__(self) -> None:
        self.gate = threading.Event()
        self.gate.set()
        self.submitted = []
        self._threads = concurrent.futures.ThreadPoolExecutor(max_workers=8)

    def submit(self, job):
        self.submitted.append(job)
        return self._threads.submit(self._run, job)

    def _run(self, job) -> SolveOutcome:
        assert self.gate.wait(timeout=10), "test gate never opened"
        return SolveOutcome(
            job_id=job.job_id,
            status="SAT",
            solver=job.solver,
            label=job.label,
            fingerprint=job.fingerprint,
            assumptions=job.assumptions,
            winner="fake",
            assignment=(1,),
            verified=True,
        )

    def shutdown(self, wait: bool = True) -> None:
        self._threads.shutdown(wait=False)


class ExplodingExecutor:
    """Fails at submit time — the infrastructure-failure path."""

    def __init__(self) -> None:
        self.submitted = 0

    def submit(self, job):
        self.submitted += 1
        raise RuntimeError("executor exploded")

    def shutdown(self, wait: bool = True) -> None:
        pass


def _service(executor=None, **config) -> SolveService:
    return SolveService(
        ServiceConfig(**config),
        cache=ShardedResultCache(directory=None, shards=2),
        executor=executor,
    )


def _solve_line(request_id: str, dimacs: str = DIMACS, **fields) -> str:
    return json.dumps({"op": "solve", "id": request_id, "dimacs": dimacs, **fields})


class TestOps:
    def test_ping_stats_shutdown(self):
        service = _service(executor=GatedExecutor())

        async def run():
            ping = await service.handle_line('{"op": "ping", "id": "p"}')
            stats = await service.handle_line('{"op": "stats", "id": "s"}')
            bye = await service.handle_line('{"op": "shutdown", "id": "q"}')
            return ping, stats, bye

        ping, stats, bye = asyncio.run(run())
        assert ping == {"id": "p", "code": OK, "op": "ping", "ok": True}
        assert stats["code"] == OK
        assert stats["stats"]["cache"]["shards"] == 2
        assert stats["stats"]["service"]["requests"] == 1  # the ping
        assert bye["code"] == OK and bye["op"] == "shutdown"

    def test_bad_request_is_400_and_survivable(self):
        service = _service(executor=GatedExecutor())

        async def run():
            bad = await service.handle_line("this is not json")
            unknown = await service.handle_line('{"op": "solve", "id": "u"}')
            ping = await service.handle_line('{"op": "ping", "id": "p"}')
            return bad, unknown, ping

        bad, unknown, ping = asyncio.run(run())
        assert bad["code"] == BAD_REQUEST
        assert unknown["code"] == BAD_REQUEST and unknown["id"] == "u"
        assert ping["code"] == OK
        assert service.stats.bad_requests == 2

    def test_config_validation(self):
        with pytest.raises(RuntimeSubsystemError):
            ServiceConfig(solver="made-up")
        with pytest.raises(RuntimeSubsystemError):
            ServiceConfig(workers=0)
        with pytest.raises(RuntimeSubsystemError):
            ServiceConfig(max_inflight=0)
        with pytest.raises(RuntimeSubsystemError):
            ServiceConfig(queue_limit=-1)


class TestDedup:
    def test_concurrent_identical_jobs_share_one_solve(self):
        """The acceptance property: N identical in-flight jobs, ONE solve."""
        executor = GatedExecutor()
        service = _service(executor=executor)

        async def run():
            executor.gate.clear()  # pin the representative in flight
            tasks = [
                asyncio.ensure_future(
                    service.handle_line(_solve_line(f"r{i}"))
                )
                for i in range(5)
            ]
            await asyncio.sleep(0.05)  # all five must have registered
            executor.gate.set()
            return await asyncio.gather(*tasks)

        responses = asyncio.run(run())
        assert len(executor.submitted) == 1  # exactly one underlying solve
        assert all(r["code"] == OK and r["status"] == "SAT" for r in responses)
        deduped = [r for r in responses if r["deduped"]]
        assert len(deduped) == 4
        assert service.stats.dedup_hits == 4
        assert service.stats.executed == 1

    def test_different_formulas_not_deduped(self):
        executor = GatedExecutor()
        service = _service(executor=executor)

        async def run():
            executor.gate.clear()
            tasks = [
                asyncio.ensure_future(service.handle_line(_solve_line("a", DIMACS))),
                asyncio.ensure_future(service.handle_line(_solve_line("b", DIMACS_B))),
            ]
            await asyncio.sleep(0.05)
            executor.gate.set()
            return await asyncio.gather(*tasks)

        responses = asyncio.run(run())
        assert len(executor.submitted) == 2
        assert not any(r["deduped"] for r in responses)

    def test_different_solver_not_deduped(self):
        executor = GatedExecutor()
        service = _service(executor=executor)

        async def run():
            executor.gate.clear()
            tasks = [
                asyncio.ensure_future(
                    service.handle_line(_solve_line("a", solver="cdcl"))
                ),
                asyncio.ensure_future(
                    service.handle_line(_solve_line("b", solver="dpll"))
                ),
            ]
            await asyncio.sleep(0.05)
            executor.gate.set()
            return await asyncio.gather(*tasks)

        responses = asyncio.run(run())
        assert len(executor.submitted) == 2
        assert not any(r["deduped"] for r in responses)

    def test_dedup_waiter_resolved_on_representative_failure(self):
        """A dedup'd request must never hang when its representative dies."""

        class FailLater(GatedExecutor):
            def _run(self, job):
                assert self.gate.wait(timeout=10)
                raise RuntimeError("worker died")

        executor = FailLater()
        service = _service(executor=executor)

        async def run():
            executor.gate.clear()
            tasks = [
                asyncio.ensure_future(service.handle_line(_solve_line(f"r{i}")))
                for i in range(2)
            ]
            await asyncio.sleep(0.05)
            executor.gate.set()
            return await asyncio.gather(*tasks)

        first, second = asyncio.run(run())
        assert first["code"] == FAILED  # the representative reports failure
        assert second["code"] == OK and second["result"]["status"] == "ERROR"


class TestCacheFront:
    def test_second_request_served_from_cache(self):
        executor = GatedExecutor()
        service = _service(executor=executor)

        async def run():
            first = await service.handle_line(_solve_line("a"))
            second = await service.handle_line(_solve_line("b"))
            return first, second

        first, second = asyncio.run(run())
        assert len(executor.submitted) == 1
        assert not first["from_cache"] and second["from_cache"]
        assert second["result"]["status"] == "SAT"
        assert service.stats.cache_hits == 1

    def test_assumptions_key_separately(self):
        executor = GatedExecutor()
        service = _service(executor=executor)

        async def run():
            plain = await service.handle_line(_solve_line("a", DIMACS))
            assumed = await service.handle_line(
                _solve_line("b", DIMACS, assumptions=[2])
            )
            return plain, assumed

        plain, assumed = asyncio.run(run())
        assert len(executor.submitted) == 2  # different cache keys
        assert not assumed["from_cache"]


class TestBackpressure:
    def test_queue_full_rejects_with_429(self):
        executor = GatedExecutor()
        service = _service(executor=executor, max_inflight=1, queue_limit=1)

        async def run():
            executor.gate.clear()
            # First job takes the executor slot, second fills the queue.
            running = asyncio.ensure_future(
                service.handle_line(_solve_line("run", DIMACS))
            )
            await asyncio.sleep(0.05)
            queued = asyncio.ensure_future(
                service.handle_line(_solve_line("queue", DIMACS_B))
            )
            await asyncio.sleep(0.05)
            rejected = await service.handle_line(_solve_line("reject", DIMACS_C))
            executor.gate.set()
            return await running, await queued, rejected

        running, queued, rejected = asyncio.run(run())
        assert running["code"] == OK and queued["code"] == OK
        assert rejected["code"] == REJECTED
        assert "queue full" in rejected["error"]
        assert service.stats.rejected == 1
        # The rejected job never reached the executor.
        assert len(executor.submitted) == 2

    def test_rejection_does_not_poison_dedup(self):
        """After a 429, resending the same formula solves normally."""
        executor = GatedExecutor()
        service = _service(executor=executor, max_inflight=1, queue_limit=0)

        async def run():
            executor.gate.clear()
            running = asyncio.ensure_future(
                service.handle_line(_solve_line("run", DIMACS))
            )
            await asyncio.sleep(0.05)
            rejected = await service.handle_line(_solve_line("rej", DIMACS_B))
            executor.gate.set()
            first = await running
            retried = await service.handle_line(_solve_line("retry", DIMACS_B))
            return first, rejected, retried

        first, rejected, retried = asyncio.run(run())
        assert first["code"] == OK
        assert rejected["code"] == REJECTED
        assert retried["code"] == OK and retried["status"] == "SAT"


class TestFailureIsolation:
    def test_executor_failure_is_500_and_survivable(self):
        executor = ExplodingExecutor()
        service = _service(executor=executor)

        async def run():
            failed = await service.handle_line(_solve_line("x"))
            ping = await service.handle_line('{"op": "ping", "id": "p"}')
            return failed, ping

        failed, ping = asyncio.run(run())
        assert failed["code"] == FAILED and "exploded" in failed["error"]
        assert ping["code"] == OK
        assert service.stats.failures == 1

    def test_error_outcome_not_cached(self):
        executor = ExplodingExecutor()
        service = _service(executor=executor)

        async def run():
            await service.handle_line(_solve_line("x"))
            return await service.handle_line(_solve_line("y"))

        second = asyncio.run(run())
        # The failure was not persisted: the retry reaches the executor.
        assert executor.submitted == 2
        assert second["code"] == FAILED


class TestTcpRoundTrip:
    def test_real_solver_over_socket(self):
        """Full stack: TCP transport, real cdcl solves, client pipelining."""
        from repro.service import ServiceClient

        service = SolveService(
            ServiceConfig(solver="cdcl", workers=1),
            cache=ShardedResultCache(directory=None, shards=2),
        )
        ready = threading.Event()
        address = {}

        def on_ready(host, port):
            address["port"] = port
            ready.set()

        thread = threading.Thread(
            target=lambda: service.run_tcp(port=0, ready=on_ready), daemon=True
        )
        thread.start()
        assert ready.wait(timeout=10)

        with ServiceClient("127.0.0.1", address["port"]) as client:
            assert client.ping()
            sat = client.solve(dimacs=DIMACS)
            assert sat["status"] == "SAT" and sat["result"]["verified"]
            unsat = client.solve(clauses=[[1], [-1]])
            assert unsat["status"] == "UNSAT"
            again = client.solve(dimacs=DIMACS)
            assert again["from_cache"]
            stats = client.stats()
            assert stats["service"]["cache_hits"] == 1
            assert client.shutdown()
        thread.join(timeout=10)
        assert not thread.is_alive()
