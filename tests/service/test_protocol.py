"""Tests for repro.service.protocol: parsing, validation, encoding."""

from __future__ import annotations

import json

import pytest

from repro.service.protocol import (
    BAD_REQUEST,
    OK,
    REJECTED,
    JobDefaults,
    ProtocolError,
    build_job,
    encode_message,
    error_response,
    known_solver_specs,
    ok_response,
    parse_request,
)
from repro.runtime.jobs import SolveOutcome

DIMACS = "p cnf 2 2\n1 2 0\n-1 0\n"


class TestParseRequest:
    def test_valid(self):
        payload = parse_request('{"op": "ping", "id": "a"}')
        assert payload == {"op": "ping", "id": "a"}

    def test_id_optional(self):
        assert parse_request('{"op": "stats"}')["op"] == "stats"

    @pytest.mark.parametrize(
        "line",
        [
            "not json",
            "[1, 2]",
            '{"op": "fly"}',
            '{"no_op": 1}',
            '{"op": "ping", "id": 7}',
        ],
    )
    def test_invalid_is_400(self, line):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(line)
        assert excinfo.value.code == BAD_REQUEST


class TestBuildJob:
    def test_dimacs_with_defaults(self):
        job = build_job({"op": "solve", "dimacs": DIMACS}, JobDefaults())
        assert job.formula.num_variables == 2
        assert job.solver == "portfolio"
        assert not job.preprocess

    def test_clauses_form(self):
        job = build_job(
            {"op": "solve", "clauses": [[1, 2], [-1]], "num_variables": 3},
            JobDefaults(),
        )
        assert job.formula.num_variables == 3

    def test_field_overrides(self):
        job = build_job(
            {
                "op": "solve",
                "dimacs": DIMACS,
                "solver": "cdcl",
                "assumptions": [2],
                "timeout": 1.5,
                "samples": 1000,
                "seed": 42,
                "preprocess": True,
                "label": "mine",
            },
            JobDefaults(),
        )
        assert job.solver == "cdcl" and job.assumptions == (2,)
        assert job.timeout == 1.5 and job.samples == 1000
        assert job.seed == 42 and job.preprocess and job.label == "mine"

    @pytest.mark.parametrize(
        "payload",
        [
            {"op": "solve"},  # no formula
            {"op": "solve", "dimacs": DIMACS, "clauses": [[1]]},  # both
            {"op": "solve", "dimacs": 3},
            {"op": "solve", "dimacs": "p cnf oops"},
            {"op": "solve", "clauses": "nope"},
            {"op": "solve", "dimacs": DIMACS, "solver": "unknown-solver"},
            {"op": "solve", "dimacs": DIMACS, "assumptoins": [1]},  # typo
            {"op": "solve", "dimacs": DIMACS, "timeout": -1},
            {"op": "solve", "dimacs": DIMACS, "timeout": "fast"},
            {"op": "solve", "dimacs": DIMACS, "samples": 1.5},
            {"op": "solve", "dimacs": DIMACS, "seed": "x"},
            {"op": "solve", "dimacs": DIMACS, "preprocess": "yes"},
            {"op": "solve", "dimacs": DIMACS, "label": 7},
            {"op": "solve", "dimacs": DIMACS, "assumptions": [0]},
            {"op": "solve", "dimacs": DIMACS, "assumptions": [99]},  # out of range
        ],
    )
    def test_invalid_is_400(self, payload):
        with pytest.raises(ProtocolError) as excinfo:
            build_job(payload, JobDefaults())
        assert excinfo.value.code == BAD_REQUEST

    def test_proof_dir_attaches_for_classical(self, tmp_path):
        defaults = JobDefaults(proof_dir=str(tmp_path))
        job = build_job(
            {"op": "solve", "dimacs": DIMACS, "solver": "cdcl"}, defaults
        )
        assert job.proof is not None and job.proof.endswith(".drat")
        assert job.proof.startswith(str(tmp_path))

    def test_proof_dir_skipped_for_portfolio_and_nbl(self, tmp_path):
        defaults = JobDefaults(proof_dir=str(tmp_path))
        for solver in ("portfolio", "nbl-symbolic"):
            job = build_job(
                {"op": "solve", "dimacs": DIMACS, "solver": solver}, defaults
            )
            assert job.proof is None

    def test_known_specs_include_all_frontends(self):
        specs = known_solver_specs()
        assert {"portfolio", "nbl-symbolic", "nbl-sampled", "cdcl"} <= specs


class TestEncoding:
    def test_encode_message_single_line(self):
        text = encode_message({"id": "a", "code": OK})
        assert text.endswith("\n") and "\n" not in text[:-1]
        assert json.loads(text) == {"id": "a", "code": OK}

    def test_ok_response_shape(self):
        outcome = SolveOutcome(
            job_id="j", status="SAT", solver="cdcl", fingerprint="fp",
            verified=True, assignment=(1,),
        )
        response = ok_response("req-1", outcome, from_cache=True)
        assert response["code"] == OK and response["status"] == "SAT"
        assert response["from_cache"] and not response["deduped"]
        assert response["result"]["fingerprint"] == "fp"

    def test_error_response_shape(self):
        response = error_response("req-2", REJECTED, "queue full")
        assert response == {"id": "req-2", "code": REJECTED, "error": "queue full"}
