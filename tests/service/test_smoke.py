"""End-to-end service tests: the real CLI server as a subprocess.

These tests exercise the same path as production: ``repro serve`` in its
own process, ``ServiceClient`` over TCP, SIGKILL for crash recovery.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro.runtime.jobs import solve_cache_key
from repro.runtime.shards import ShardedResultCache
from repro.service import ServiceClient

SRC = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, os.pardir, "src")
)


def _start_server(*extra_args: str) -> tuple[subprocess.Popen, int]:
    """Start ``repro serve --port 0`` and return (process, bound port)."""
    env = dict(os.environ, PYTHONPATH=SRC)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0", *extra_args],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    line = proc.stdout.readline()
    assert "service listening on" in line, (
        f"no announce line, got {line!r}; stderr: {proc.stderr.read()}"
    )
    return proc, int(line.rsplit(":", 1)[1])


def _sat_dimacs(i: int) -> str:
    """A distinct satisfiable instance per index (units signed by i's bits)."""
    literals = [(1 if (i >> bit) & 1 else -1) * (bit + 1) for bit in range(6)]
    clauses = "".join(f"{lit} 0\n" for lit in literals)
    return f"p cnf 6 6\n{clauses}"


UNSAT_DIMACS = "p cnf 1 2\n1 0\n-1 0\n"


class TestServiceSmoke:
    def test_twenty_mixed_jobs_and_clean_shutdown(self):
        """The CI smoke scenario: 20 mixed jobs, verdicts, clean exit."""
        proc, port = _start_server("--solver", "cdcl")
        try:
            with ServiceClient("127.0.0.1", port) as client:
                requests = []
                for i in range(20):
                    if i % 5 == 4:
                        requests.append({"dimacs": UNSAT_DIMACS})
                    else:
                        # i and i+10 repeat formulas: dedup/cache fodder.
                        requests.append({"dimacs": _sat_dimacs(i % 10)})
                responses = client.solve_many(requests)
                statuses = [r.get("status") for r in responses]
                assert all(r["code"] == 200 for r in responses)
                assert statuses.count("UNSAT") == 4
                assert statuses.count("SAT") == 16
                served_twice = [
                    r for r in responses if r["from_cache"] or r["deduped"]
                ]
                assert served_twice, "repeated formulas were all re-solved"
                stats = client.stats()
                assert stats["service"]["requests"] >= 20
                assert client.shutdown()
        finally:
            code = proc.wait(timeout=30)
            proc.stdout.close()
            proc.stderr.close()
        assert code == 0

    def test_bad_requests_do_not_kill_server(self):
        proc, port = _start_server("--solver", "cdcl")
        try:
            with ServiceClient("127.0.0.1", port) as client:
                bad = client.call({"op": "solve"})
                assert bad["code"] == 400
                good = client.solve(dimacs=_sat_dimacs(0))
                assert good["status"] == "SAT"
                assert client.shutdown()
        finally:
            assert proc.wait(timeout=30) == 0
            proc.stdout.close()
            proc.stderr.close()


class TestServiceCrashRecovery:
    def test_sigkill_loses_no_acknowledged_verdict(self, tmp_path):
        """Kill the serving process; every acked verdict must survive.

        The write-ahead contract under test: a response is only written
        after the verdict's WAL record was flushed, so SIGKILL at any
        point loses nothing a client ever saw — and recovery leaves no
        torn records behind.
        """
        cache_dir = str(tmp_path / "cache")
        proc, port = _start_server(
            "--solver", "cdcl", "--cache-dir", cache_dir, "--shards", "4"
        )
        acked = {}
        try:
            with ServiceClient("127.0.0.1", port) as client:
                for i in range(12):
                    response = client.solve(dimacs=_sat_dimacs(i), label=f"j{i}")
                    result = response["result"]
                    key = solve_cache_key(
                        result["fingerprint"],
                        tuple(result["assumptions"]),
                    )
                    acked[key] = result["status"]
        finally:
            proc.kill()  # SIGKILL: no atexit, no compaction, no close()
            proc.wait(timeout=10)
            proc.stdout.close()
            proc.stderr.close()

        recovered = ShardedResultCache(directory=cache_dir, shards=4)
        for key, status in acked.items():
            hit = recovered.get(key)
            assert hit is not None, f"acked verdict {key} lost in crash"
            assert hit.status == status
        # Recovery trimmed any torn tail: a reopen is clean.
        again = ShardedResultCache(directory=cache_dir, shards=4)
        assert again.torn_records == 0

    def test_restart_serves_previous_verdicts_from_cache(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        proc, port = _start_server("--solver", "cdcl", "--cache-dir", cache_dir)
        try:
            with ServiceClient("127.0.0.1", port) as client:
                first = client.solve(dimacs=_sat_dimacs(3))
                assert not first["from_cache"]
        finally:
            proc.kill()
            proc.wait(timeout=10)
            proc.stdout.close()
            proc.stderr.close()

        proc, port = _start_server("--solver", "cdcl", "--cache-dir", cache_dir)
        try:
            with ServiceClient("127.0.0.1", port) as client:
                replay = client.solve(dimacs=_sat_dimacs(3))
                assert replay["from_cache"], "restart lost the verdict"
                assert client.shutdown()
        finally:
            assert proc.wait(timeout=30) == 0
            proc.stdout.close()
            proc.stderr.close()


@pytest.mark.slow
class TestServiceSoak:
    def test_five_hundred_jobs_four_workers(self, tmp_path):
        """Nightly soak: 500 mixed jobs through a 4-worker process pool."""
        cache_dir = str(tmp_path / "cache")
        proc, port = _start_server(
            "--solver",
            "cdcl",
            "--workers",
            "4",
            "--max-inflight",
            "8",
            "--queue-limit",
            "600",
            "--cache-dir",
            cache_dir,
        )
        try:
            with ServiceClient("127.0.0.1", port) as client:
                requests = []
                for i in range(500):
                    if i % 10 == 9:
                        requests.append({"dimacs": UNSAT_DIMACS})
                    else:
                        # 45 distinct formulas (residues ending in 9 are
                        # the UNSAT slots), each repeated ~10x.
                        requests.append({"dimacs": _sat_dimacs(i % 50)})
                responses = client.solve_many(requests)
                assert len(responses) == 500
                assert all(r["code"] == 200 for r in responses)
                statuses = [r["status"] for r in responses]
                assert statuses.count("UNSAT") == 50
                assert statuses.count("SAT") == 450
                stats = client.stats()
                service = stats["service"]
                # Most repeats were answered without a fresh solve.
                assert service["cache_hits"] + service["dedup_hits"] >= 400
                assert service["executed"] <= 100
                assert stats["cache"]["entries"] >= 46  # 45 SAT + 1 UNSAT
                assert client.shutdown()
        finally:
            try:
                code = proc.wait(timeout=60)
            except subprocess.TimeoutExpired:
                proc.kill()
                raise
            finally:
                proc.stdout.close()
                proc.stderr.close()
        assert code == 0
