"""Instrumentation wiring: solvers, preprocessing, runtime and sessions.

These tests exercise the real library paths with telemetry enabled and
assert (a) the span trees and metric values faithfully mirror the solver
statistics, and (b) the disabled path stays allocation-free.
"""

from __future__ import annotations

from repro.cnf.generators import random_ksat
from repro.cnf.structured import pigeonhole_formula
from repro.runtime import BatchRunner, ResultCache
from repro.solvers.cdcl import CDCLSolver
from repro.solvers.dpll import DPLLSolver
from repro.solvers.walksat import WalkSATSolver
from repro.telemetry import (
    NULL_SPAN,
    disable_metrics,
    enable_metrics,
    get_metrics,
    instrument,
    start_tracing,
    stop_tracing,
)


def _span_names(tracer):
    return [
        span.name for root in tracer.finished for span in root.walk()
    ]


class TestSolverSpans:
    def test_cdcl_solve_span_mirrors_stats(self):
        tracer = start_tracing()
        formula = random_ksat(16, 68, seed=5)
        result = CDCLSolver().solve(formula)
        stop_tracing()
        (root,) = tracer.finished
        assert root.name == "solve"
        assert root.attributes["solver"] == "cdcl"
        assert root.attributes["status"] == result.status
        assert root.attributes["decisions"] == result.stats.decisions
        assert root.attributes["propagations"] == result.stats.propagations
        assert root.duration_seconds > 0.0

    def test_cdcl_propagate_spans_count_loop_iterations(self):
        tracer = start_tracing()
        CDCLSolver().solve(pigeonhole_formula(4, 3))
        stop_tracing()
        (root,) = tracer.finished
        propagates = [
            span for span in root.walk() if span.name == "propagate"
        ]
        assert propagates  # the search loop always propagates at least once
        assert any(span.attributes.get("conflict") for span in propagates)

    def test_preprocess_span_nests_inside_solve(self):
        tracer = start_tracing()
        CDCLSolver().solve(random_ksat(12, 40, seed=2), preprocess=True)
        stop_tracing()
        (root,) = tracer.finished
        assert root.name == "solve"
        assert "preprocess" in [child.name for child in root.children]

    def test_restart_events_from_local_search(self):
        tracer = start_tracing()
        # An UNSAT-ish hard instance forces WalkSAT through all restarts.
        WalkSATSolver(max_flips=5, max_tries=3, seed=0).solve(
            random_ksat(10, 60, seed=0)
        )
        stop_tracing()
        restarts = [
            span
            for root in tracer.finished
            for span in root.walk()
            if span.name == "restart"
        ]
        assert [span.attributes["attempt"] for span in restarts] == [1, 2, 3]

    def test_session_solve_wraps_solver_span(self):
        tracer = start_tracing()
        session = DPLLSolver().make_session(
            base_formula=random_ksat(8, 20, seed=1)
        )
        session.solve([1])
        stop_tracing()
        (root,) = tracer.finished
        assert root.name == "session.solve"
        assert root.attributes["assumptions"] == 1
        assert "solve" in [child.name for child in root.children]


class TestSolverMetrics:
    def test_counters_match_solver_stats(self):
        enable_metrics()
        formula = random_ksat(16, 68, seed=5)
        result = CDCLSolver().solve(formula)
        registry = get_metrics()
        disable_metrics()
        runs = registry.get(
            "repro_solver_runs_total", solver="cdcl", status=result.status
        )
        assert runs.value == 1.0
        decisions = registry.get("repro_solver_decisions_total", solver="cdcl")
        assert decisions.value == float(result.stats.decisions)
        wall = registry.get("repro_solver_wall_seconds", solver="cdcl")
        assert wall.count == 1
        assert wall.sum > 0.0

    def test_timeout_is_counted(self):
        enable_metrics()
        CDCLSolver().solve(pigeonhole_formula(7, 6), timeout=1e-6)
        registry = get_metrics()
        disable_metrics()
        timeouts = registry.get("repro_solver_timeouts_total", solver="cdcl")
        assert timeouts is not None and timeouts.value == 1.0


class TestRuntimeInstrumentation:
    def test_cache_lookup_metrics_and_stats_property(self):
        enable_metrics()
        cache = ResultCache(max_size=4)
        cache.get("missing")
        registry = get_metrics()
        disable_metrics()
        assert registry.get("repro_cache_misses_total").value == 1.0
        stats = cache.stats
        assert stats.misses == 1 and stats.lookups == 1
        assert stats.hit_rate == 0.0

    def test_batch_run_records_outcomes_and_snapshot(self):
        enable_metrics()
        tracer = start_tracing()
        runner = BatchRunner(solver="cdcl", workers=1)
        jobs = [
            runner.make_job(random_ksat(8, 24, seed=seed), label=f"j{seed}")
            for seed in range(3)
        ]
        report = runner.run_jobs(jobs)
        stop_tracing()
        registry = get_metrics()
        disable_metrics()
        assert report.total == 3
        outcomes = [
            metric
            for metric in registry.collect()
            if metric.name == "repro_batch_outcomes_total"
        ]
        assert sum(metric.value for metric in outcomes) == 3.0
        assert registry.get("repro_cache_size").value == float(
            report.cache_stats.size
        )
        names = _span_names(tracer)
        assert "pool.task" in names
        assert "cache.lookup" in names

    def test_lifetime_cache_line_in_batch_report(self):
        runner = BatchRunner(solver="cdcl", workers=1)
        jobs = [runner.make_job(random_ksat(8, 24, seed=0))]
        report = runner.run_jobs(jobs)
        assert "lifetime" in report.to_text()


class TestDisabledFastPath:
    def test_active_is_false_by_default(self):
        assert not instrument.active()
        assert not instrument.tracing_active()

    def test_disabled_span_allocates_nothing(self):
        # Identity check: every disabled span() call returns the singleton.
        spans = {id(instrument.span("solve")) for _ in range(100)}
        assert spans == {id(NULL_SPAN)}

    def test_disabled_solve_leaves_no_telemetry(self):
        result = CDCLSolver().solve(random_ksat(10, 30, seed=7))
        assert result.status in ("SAT", "UNSAT")
        assert len(get_metrics()) == 0

    def test_record_helpers_early_return_when_disabled(self):
        instrument.record_cache_lookup(True)
        instrument.record_pool_task("SAT", 0.1)
        instrument.record_batch_outcome("SAT", False)
        assert len(get_metrics()) == 0
