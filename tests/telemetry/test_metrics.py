"""MetricsRegistry behaviour: instruments, exporters, enable/disable."""

from __future__ import annotations

import json
import math

import pytest

from repro.exceptions import ReproError
from repro.telemetry import (
    DEFAULT_TIME_BUCKETS,
    MetricsRegistry,
    disable_metrics,
    enable_metrics,
    get_metrics,
    metrics_active,
    write_metrics,
)


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_test_total", "help")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5.0

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        with pytest.raises(ReproError):
            registry.counter("repro_test_total").inc(-1)

    def test_gauge_moves_both_ways(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("repro_depth")
        gauge.set(10)
        gauge.dec(3)
        gauge.inc(1)
        assert gauge.value == 8.0

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("repro_seconds", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            histogram.observe(value)
        assert histogram.bucket_counts() == {0.1: 1, 1.0: 2, math.inf: 3}
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(5.55)

    def test_histogram_rejects_duplicate_buckets(self):
        registry = MetricsRegistry()
        with pytest.raises(ReproError):
            registry.histogram("repro_dupes", buckets=(1.0, 1.0))

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_TIME_BUCKETS) == sorted(DEFAULT_TIME_BUCKETS)


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("repro_x_total", solver="cdcl")
        b = registry.counter("repro_x_total", solver="cdcl")
        assert a is b

    def test_label_sets_are_independent(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", solver="cdcl").inc()
        registry.counter("repro_x_total", solver="dpll").inc(2)
        assert registry.get("repro_x_total", solver="cdcl").value == 1.0
        assert registry.get("repro_x_total", solver="dpll").value == 2.0

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total")
        with pytest.raises(ReproError):
            registry.gauge("repro_x_total")

    def test_invalid_names_raise(self):
        registry = MetricsRegistry()
        with pytest.raises(ReproError):
            registry.counter("bad name")
        with pytest.raises(ReproError):
            registry.counter("repro_ok_total", **{"0bad": "x"})

    def test_reset_clears_everything(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total").inc()
        registry.reset()
        assert len(registry) == 0
        assert registry.get("repro_x_total") is None


class TestPrometheusExport:
    def test_counter_and_gauge_format(self):
        registry = MetricsRegistry()
        registry.counter("repro_runs_total", "Completed runs.", solver="cdcl").inc(3)
        registry.gauge("repro_size", "Current size.").set(7)
        text = registry.to_prometheus()
        assert "# HELP repro_runs_total Completed runs.\n" in text
        assert "# TYPE repro_runs_total counter\n" in text
        assert 'repro_runs_total{solver="cdcl"} 3\n' in text
        assert "# TYPE repro_size gauge\n" in text
        assert "repro_size 7\n" in text

    def test_histogram_format_has_inf_sum_count(self):
        registry = MetricsRegistry()
        registry.histogram("repro_secs", buckets=(0.5,)).observe(0.25)
        text = registry.to_prometheus()
        assert 'repro_secs_bucket{le="0.5"} 1' in text
        assert 'repro_secs_bucket{le="+Inf"} 1' in text
        assert "repro_secs_sum 0.25" in text
        assert "repro_secs_count 1" in text

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", label='quo"te\\slash').inc()
        text = registry.to_prometheus()
        assert 'label="quo\\"te\\\\slash"' in text

    def test_every_sample_line_parses(self):
        registry = MetricsRegistry()
        registry.counter("repro_a_total", solver="cdcl").inc()
        registry.histogram("repro_b_seconds").observe(0.1)
        for line in registry.to_prometheus().splitlines():
            if line.startswith("#") or not line:
                continue
            name_part, value = line.rsplit(" ", 1)
            assert name_part
            float(value.replace("+Inf", "inf"))  # must be numeric

    def test_empty_registry_exports_empty_string(self):
        assert MetricsRegistry().to_prometheus() == ""


class TestJSONExport:
    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", "help", solver="cdcl").inc(2)
        registry.histogram("repro_y_seconds", buckets=(1.0,)).observe(0.5)
        snapshot = registry.to_json()
        assert snapshot["repro_x_total"]["type"] == "counter"
        assert snapshot["repro_x_total"]["samples"] == [
            {"labels": {"solver": "cdcl"}, "value": 2.0}
        ]
        histogram = snapshot["repro_y_seconds"]["samples"][0]
        assert histogram["count"] == 1
        assert histogram["buckets"]["+Inf"] == 1
        json.dumps(snapshot)  # must be JSON-serialisable


class TestProcessWideSwitch:
    def test_disabled_by_default(self):
        assert not metrics_active()

    def test_enable_disable_round_trip(self):
        registry = enable_metrics()
        assert metrics_active()
        assert get_metrics() is registry
        disable_metrics()
        assert not metrics_active()

    def test_enable_can_swap_registry(self):
        fresh = MetricsRegistry()
        assert enable_metrics(fresh) is fresh
        assert get_metrics() is fresh
        disable_metrics()

    def test_write_metrics_prometheus_and_json(self, tmp_path):
        enable_metrics()
        get_metrics().counter("repro_x_total").inc()
        prom_path = tmp_path / "out.prom"
        json_path = tmp_path / "out.json"
        assert write_metrics(prom_path) == "prometheus"
        assert write_metrics(json_path) == "json"
        assert "repro_x_total 1" in prom_path.read_text()
        assert json.loads(json_path.read_text())["repro_x_total"]
        disable_metrics()
