"""BenchRecord / BENCH_*.json trajectory persistence."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ReproError
from repro.telemetry import (
    BENCH_SCHEMA_VERSION,
    BenchRecord,
    append_bench_record,
    load_bench_records,
)


def _record(**overrides) -> BenchRecord:
    fields = dict(
        benchmark="cdcl-kernel",
        metrics={"decisions_per_sec": 1234.5},
        workload={"instances": 10},
        meta={"python": "3.11"},
    )
    fields.update(overrides)
    return BenchRecord(**fields)


class TestBenchRecord:
    def test_round_trip(self):
        record = _record(timestamp="2026-08-07T00:00:00Z")
        clone = BenchRecord.from_dict(record.to_dict())
        assert clone == record
        assert clone.schema == BENCH_SCHEMA_VERSION

    def test_benchmark_name_required(self):
        with pytest.raises(ReproError):
            _record(benchmark="")

    def test_to_text_mentions_headline_metrics(self):
        text = _record(timestamp="2026-08-07T00:00:00Z").to_text()
        assert "cdcl-kernel" in text
        assert "decisions_per_sec=1234.5" in text


class TestTrajectoryFile:
    def test_append_creates_and_stamps(self, tmp_path):
        path = tmp_path / "BENCH_cdcl.json"
        assert append_bench_record(path, _record()) == 1
        (entry,) = load_bench_records(path)
        assert entry.benchmark == "cdcl-kernel"
        assert entry.timestamp  # stamped by append
        assert entry.schema == BENCH_SCHEMA_VERSION

    def test_append_is_append_only(self, tmp_path):
        path = tmp_path / "BENCH_cdcl.json"
        append_bench_record(path, _record(timestamp="t1"))
        assert append_bench_record(path, _record(timestamp="t2")) == 2
        entries = load_bench_records(path)
        assert [entry.timestamp for entry in entries] == ["t1", "t2"]

    def test_explicit_timestamp_is_kept(self, tmp_path):
        path = tmp_path / "BENCH_cdcl.json"
        append_bench_record(path, _record(timestamp="2020-01-01T00:00:00Z"))
        (entry,) = load_bench_records(path)
        assert entry.timestamp == "2020-01-01T00:00:00Z"

    def test_file_carries_schema_header(self, tmp_path):
        path = tmp_path / "BENCH_cdcl.json"
        append_bench_record(path, _record())
        payload = json.loads(path.read_text())
        assert payload["schema"] == BENCH_SCHEMA_VERSION
        assert isinstance(payload["entries"], list)

    def test_corrupt_file_raises(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text("{not json")
        with pytest.raises(ReproError):
            load_bench_records(path)
        with pytest.raises(ReproError):
            append_bench_record(path, _record())

    def test_structurally_wrong_file_raises(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text(json.dumps({"schema": 1}))  # no "entries"
        with pytest.raises(ReproError):
            load_bench_records(path)

    def test_missing_file_raises_on_load(self, tmp_path):
        with pytest.raises(ReproError):
            load_bench_records(tmp_path / "BENCH_none.json")
