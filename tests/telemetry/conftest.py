"""Telemetry test fixtures: isolate the process-wide tracer/registry state."""

from __future__ import annotations

import pytest

from repro.telemetry import metrics as metrics_module
from repro.telemetry import trace as trace_module
from repro.telemetry.metrics import MetricsRegistry


@pytest.fixture(autouse=True)
def clean_telemetry():
    """Reset the module-level tracer and metrics registry around each test.

    Telemetry is process-global by design; tests must never leak an enabled
    tracer or a warm registry into the rest of the suite (the hard tier-1
    requirement is that everything stays zero-cost-disabled by default).
    """
    previous_tracer = trace_module._current_tracer
    previous_registry = metrics_module._registry
    previous_enabled = metrics_module._enabled
    trace_module._current_tracer = trace_module.NULL_TRACER
    metrics_module._registry = MetricsRegistry()
    metrics_module._enabled = False
    yield
    trace_module._current_tracer = previous_tracer
    metrics_module._registry = previous_registry
    metrics_module._enabled = previous_enabled
