"""Tracer/Span behaviour: nesting, ring buffer, sink round-trip, null path."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ReproError
from repro.telemetry import (
    NULL_SPAN,
    NULL_TRACER,
    Span,
    Tracer,
    get_tracer,
    load_trace,
    span,
    start_tracing,
    stop_tracing,
    tracing_active,
)


class TestSpanNesting:
    def test_children_nest_in_entry_order(self):
        tracer = Tracer()
        with tracer.span("solve"):
            with tracer.span("preprocess"):
                pass
            with tracer.span("propagate"):
                pass
        (root,) = tracer.finished
        assert root.name == "solve"
        assert [child.name for child in root.children] == [
            "preprocess",
            "propagate",
        ]

    def test_deep_nesting_files_under_innermost(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                tracer.event("c")
        (root,) = tracer.finished
        assert root.children[0].name == "b"
        assert root.children[0].children[0].name == "c"

    def test_durations_are_monotonic_and_ordered(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        (root,) = tracer.finished
        inner = root.children[0]
        assert root.duration_seconds >= inner.duration_seconds >= 0.0
        assert root.start_seconds <= inner.start_seconds
        assert inner.end_seconds <= root.end_seconds

    def test_sibling_roots_are_separate_trees(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [root.name for root in tracer.finished] == ["first", "second"]

    def test_exception_marks_span_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("solve"):
                raise ValueError("boom")
        (root,) = tracer.finished
        assert root.attributes["error"] == "ValueError"

    def test_child_cap_counts_overflow(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            for index in range(Span.max_children + 5):
                tracer.event("e", index=index)
        assert len(root.children) == Span.max_children
        assert root.truncated_children == 5


class TestRingBuffer:
    def test_capacity_evicts_oldest(self):
        tracer = Tracer(capacity=2)
        for name in ("a", "b", "c"):
            with tracer.span(name):
                pass
        assert [root.name for root in tracer.finished] == ["b", "c"]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ReproError):
            Tracer(capacity=0)

    def test_clear_empties_buffer(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        tracer.clear()
        assert tracer.finished == ()


class TestJSONLSink:
    def test_round_trip_via_load_trace(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(sink=path)
        with tracer.span("solve") as outer:
            outer.set(solver="cdcl", decisions=7)
            with tracer.span("propagate"):
                pass
        tracer.close()
        (root,) = load_trace(path)
        assert root.name == "solve"
        assert root.attributes == {"solver": "cdcl", "decisions": 7}
        assert [child.name for child in root.children] == ["propagate"]
        assert root.duration_seconds > 0.0

    def test_one_json_object_per_root(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(sink=path)
        for name in ("a", "b"):
            with tracer.span(name):
                pass
        tracer.close()
        lines = path.read_text().strip().splitlines()
        assert [json.loads(line)["name"] for line in lines] == ["a", "b"]

    def test_load_trace_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json at all\n")
        with pytest.raises(ReproError):
            load_trace(path)

    def test_load_trace_rejects_non_span_objects(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"no_name": true}\n')
        with pytest.raises(ReproError):
            load_trace(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ReproError):
            load_trace(tmp_path / "nope.jsonl")


class TestDisabledPath:
    def test_default_tracer_is_null(self):
        assert get_tracer() is NULL_TRACER
        assert not tracing_active()

    def test_disabled_span_is_the_shared_singleton(self):
        # Identity, not just equality: the disabled hot path must not
        # allocate a new object per call.
        assert span("solve") is NULL_SPAN
        assert span("anything") is NULL_SPAN

    def test_null_span_is_inert(self):
        with span("solve") as inert:
            assert inert is NULL_SPAN
            assert not inert.recording
            assert inert.set(ignored=True) is NULL_SPAN

    def test_null_tracer_drops_everything(self):
        assert NULL_TRACER.event("restart") is None
        assert NULL_TRACER.finished == ()

    def test_start_stop_round_trip(self):
        tracer = start_tracing()
        assert tracing_active()
        with span("solve"):
            pass
        stopped = stop_tracing()
        assert stopped is tracer
        assert not tracing_active()
        assert [root.name for root in stopped.finished] == ["solve"]
