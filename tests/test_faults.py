"""Tests for repro.faults: deterministic plans, rule selection, injection."""

from __future__ import annotations

import json
import time

import pytest

from repro import faults
from repro.exceptions import FaultPlanError
from repro.faults import FaultPlan, FaultRule, InjectedFault


@pytest.fixture(autouse=True)
def _isolated_plan():
    faults.clear_plan()
    yield
    faults.clear_plan()


class TestRuleValidation:
    def test_unknown_point_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault point"):
            FaultRule(point="no.such.point", kind="error")

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault kind"):
            FaultRule(point="shards.wal.append", kind="explode")

    def test_bad_numbers_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultRule(point="client.send", kind="drop", after=-1)
        with pytest.raises(FaultPlanError):
            FaultRule(point="client.send", kind="drop", every=0)
        with pytest.raises(FaultPlanError):
            FaultRule(point="client.send", kind="drop", probability=1.5)

    def test_every_point_documented(self):
        for point, description in faults.FAULT_POINTS.items():
            assert description, f"fault point {point} lacks a description"


class TestSelection:
    def test_after_every_times_schedule(self):
        plan = FaultPlan(
            [dict(point="shards.wal.append", kind="torn", after=2, every=3, times=2)]
        )
        fired = [
            plan.fire("shards.wal.append") is not None for _ in range(12)
        ]
        # Eligible at indices 2, 5, 8, 11; capped at two firings.
        assert fired == [
            False, False, True, False, False, True,
            False, False, False, False, False, False,
        ]

    def test_times_zero_is_unlimited(self):
        plan = FaultPlan(
            [dict(point="client.recv", kind="drop", every=2, times=0)]
        )
        fired = sum(
            plan.fire("client.recv") is not None for _ in range(10)
        )
        assert fired == 5

    def test_probability_deterministic_per_seed(self):
        def schedule(seed: int) -> list[bool]:
            plan = FaultPlan(
                [dict(point="pool.execute", kind="delay",
                      probability=0.5, times=0)],
                seed=seed,
            )
            return [
                plan.fire("pool.execute") is not None for _ in range(50)
            ]

        first = schedule(7)
        assert first == schedule(7)  # same seed, same faults
        assert first != schedule(8)  # different seed, different schedule
        assert 5 < sum(first) < 45  # and it is actually probabilistic

    def test_points_count_independently(self):
        plan = FaultPlan(
            [
                dict(point="client.send", kind="drop", after=1),
                dict(point="client.recv", kind="drop", after=1),
            ]
        )
        assert plan.fire("client.send") is None
        assert plan.fire("client.recv") is None
        assert plan.fire("client.send") is not None
        assert plan.fire("client.recv") is not None

    def test_unknown_point_at_fire_time(self):
        plan = FaultPlan()
        with pytest.raises(FaultPlanError):
            plan.fire("not.a.point")

    def test_injected_counts(self):
        plan = FaultPlan([dict(point="client.send", kind="drop", times=2)])
        for _ in range(5):
            plan.fire("client.send")
        assert plan.injected == {"client.send": 2}


class TestModuleFire:
    def test_noop_without_plan(self):
        assert faults.fire("shards.wal.append") is None

    def test_error_kind_raises_injected_fault(self):
        faults.install_plan(
            FaultPlan([dict(point="shards.wal.fsync", kind="error",
                            message="disk on fire")])
        )
        with pytest.raises(InjectedFault, match="disk on fire"):
            faults.fire("shards.wal.fsync")
        assert faults.fire("shards.wal.fsync") is None  # times=1 spent

    def test_injected_fault_is_oserror(self):
        # Fault points sit at IO boundaries; the handlers that catch the
        # real failure must catch the injected one.
        assert issubclass(InjectedFault, OSError)

    def test_delay_kind_sleeps(self):
        faults.install_plan(
            FaultPlan([dict(point="pool.execute", kind="delay",
                            delay_seconds=0.05)])
        )
        started = time.perf_counter()
        rule = faults.fire("pool.execute")
        assert rule is not None and rule.kind == "delay"
        assert time.perf_counter() - started >= 0.05

    def test_site_specific_kinds_returned_not_executed(self):
        faults.install_plan(
            FaultPlan(
                [
                    dict(point="shards.wal.append", kind="torn"),
                    dict(point="server.response", kind="drop"),
                ]
            )
        )
        assert faults.fire("shards.wal.append").kind == "torn"
        assert faults.fire("server.response").kind == "drop"

    def test_clear_plan_deactivates(self):
        faults.install_plan(
            FaultPlan([dict(point="client.send", kind="error", times=0)])
        )
        with pytest.raises(InjectedFault):
            faults.fire("client.send")
        faults.clear_plan()
        assert faults.fire("client.send") is None


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        plan = FaultPlan(
            [
                dict(point="shards.wal.append", kind="torn", after=3),
                dict(point="client.recv", kind="drop", every=2, times=5),
            ],
            seed=42,
        )
        path = tmp_path / "plan.json"
        plan.save(path)
        loaded = FaultPlan.load(path)
        assert loaded.seed == 42
        assert [rule.to_dict() for rule in loaded.rules] == [
            rule.to_dict() for rule in plan.rules
        ]

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(FaultPlanError, match="unknown fault-plan fields"):
            FaultPlan.from_dict({"seed": 0, "rule": []})
        with pytest.raises(FaultPlanError, match="bad fault rule"):
            FaultPlan.from_dict({"rules": [{"point": "client.send",
                                            "kind": "drop",
                                            "typo": 1}]})

    def test_from_json_rejects_garbage(self):
        with pytest.raises(FaultPlanError, match="unparsable"):
            FaultPlan.from_json("{not json")
        with pytest.raises(FaultPlanError, match="JSON object"):
            FaultPlan.from_json("[1, 2]")

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(FaultPlanError, match="cannot read"):
            FaultPlan.load(tmp_path / "absent.json")

    def test_env_var_loads_lazily(self, tmp_path, monkeypatch):
        path = tmp_path / "plan.json"
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(
                {"seed": 1, "rules": [
                    {"point": "client.send", "kind": "drop"}]},
                handle,
            )
        monkeypatch.setenv(faults.FAULT_PLAN_ENV, str(path))
        # clear_plan marked the env as checked; reset the latch the way a
        # fresh process (a pool worker) would see it.
        faults.plan._env_checked = False
        faults.plan._plan = None
        plan = faults.active_plan()
        assert plan is not None and plan.seed == 1
        assert faults.fire("client.send").kind == "drop"
