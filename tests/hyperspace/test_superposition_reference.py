"""Tests for the sampled superposition builders and the τ_N reference hyperspace.

These tests verify the central orthogonality identities of the paper on
finite sample windows: correlations that should vanish are small, and
correlations that should equal a power of E[x²] match it within sampling
tolerance.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cnf.literal import Literal
from repro.exceptions import HyperspaceError
from repro.hyperspace.minterm import MintermSet
from repro.hyperspace.reference import reference_hyperspace, reference_minterms
from repro.hyperspace.superposition import (
    clause_cube_subspace,
    clause_full_superposition,
    clause_literal_subspace,
    minterm_noise_product,
)
from repro.noise.bank import NoiseBank
from repro.noise.telegraph import BipolarCarrier
from repro.noise.uniform import UniformCarrier

SAMPLES = 120_000


@pytest.fixture(scope="module")
def small_block():
    """One clause, two variables, bipolar carriers — exact unit powers."""
    bank = NoiseBank(num_clauses=1, num_variables=2, carrier=BipolarCarrier(), seed=0)
    return bank.sample_block(SAMPLES)


@pytest.fixture(scope="module")
def two_clause_block():
    bank = NoiseBank(num_clauses=2, num_variables=2, carrier=BipolarCarrier(), seed=1)
    return bank.sample_block(SAMPLES)


class TestClauseSuperpositions:
    def test_full_superposition_is_sum_of_minterm_products(self, small_block):
        total = clause_full_superposition(small_block, 1)
        by_minterm = sum(
            minterm_noise_product(small_block, 1, index) for index in range(4)
        )
        assert np.allclose(total, by_minterm)

    def test_cube_subspace_with_full_binding_is_minterm(self, small_block):
        cube = clause_cube_subspace(small_block, 1, {1: True, 2: False})
        minterm = minterm_noise_product(small_block, 1, 0b01)
        assert np.allclose(cube, minterm)

    def test_literal_subspace_is_half_of_full(self, small_block):
        positive = clause_literal_subspace(small_block, 1, Literal(1, True))
        negative = clause_literal_subspace(small_block, 1, Literal(1, False))
        assert np.allclose(positive + negative, clause_full_superposition(small_block, 1))

    def test_distinct_minterms_are_orthogonal(self, small_block):
        a = minterm_noise_product(small_block, 1, 0)
        b = minterm_noise_product(small_block, 1, 3)
        assert abs(np.mean(a * b)) < 0.02

    def test_minterm_self_correlation_is_power(self, small_block):
        a = minterm_noise_product(small_block, 1, 2)
        assert np.mean(a * a) == pytest.approx(1.0)  # bipolar power = 1

    def test_minterm_self_correlation_uniform(self):
        bank = NoiseBank(1, 2, carrier=UniformCarrier(), seed=2)
        block = bank.sample_block(SAMPLES)
        a = minterm_noise_product(block, 1, 1)
        assert np.mean(a * a) == pytest.approx((1.0 / 12.0) ** 2, rel=0.1)

    def test_invalid_clause_index(self, small_block):
        with pytest.raises(HyperspaceError):
            clause_full_superposition(small_block, 2)
        with pytest.raises(HyperspaceError):
            clause_full_superposition(small_block, 0)

    def test_invalid_binding_variable(self, small_block):
        with pytest.raises(HyperspaceError):
            clause_cube_subspace(small_block, 1, {5: True})

    def test_invalid_minterm_index(self, small_block):
        with pytest.raises(HyperspaceError):
            minterm_noise_product(small_block, 1, 4)

    def test_invalid_block_shape(self):
        with pytest.raises(HyperspaceError):
            clause_full_superposition(np.zeros((2, 2, 3, 10)), 1)


class TestReferenceHyperspace:
    def test_tau_is_sum_of_valid_minterm_products(self, two_clause_block):
        """Equation 2: τ_N expands into the 2^n all-clause minterm products."""
        tau = reference_hyperspace(two_clause_block)
        expansion = np.zeros(two_clause_block.shape[-1])
        for index in range(4):
            product = np.ones(two_clause_block.shape[-1])
            for clause in (1, 2):
                product = product * minterm_noise_product(two_clause_block, clause, index)
            expansion += product
        assert np.allclose(tau, expansion)

    def test_binding_halves_the_expansion(self, two_clause_block):
        bound = reference_hyperspace(two_clause_block, {1: True})
        expansion = np.zeros(two_clause_block.shape[-1])
        for index in (0b01, 0b11):  # x1 = 1 minterms
            product = np.ones(two_clause_block.shape[-1])
            for clause in (1, 2):
                product = product * minterm_noise_product(two_clause_block, clause, index)
            expansion += product
        assert np.allclose(bound, expansion)

    def test_invalid_binding(self, two_clause_block):
        with pytest.raises(HyperspaceError):
            reference_hyperspace(two_clause_block, {7: False})

    def test_invalid_shape(self):
        with pytest.raises(HyperspaceError):
            reference_hyperspace(np.zeros((2, 2, 10)))

    def test_reference_minterms_symbolic(self):
        assert reference_minterms(3) == MintermSet.full(3)
        bound = reference_minterms(3, {2: False})
        assert bound.count() == 4
        assert all((index >> 1) & 1 == 0 for index in bound.indices())
