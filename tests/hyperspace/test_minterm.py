"""Tests for repro.hyperspace.minterm (the exact hyperspace algebra)."""

from __future__ import annotations

import pytest

from repro.cnf.clause import Clause
from repro.cnf.literal import Literal
from repro.exceptions import HyperspaceError
from repro.hyperspace.minterm import MintermSet, cube_minterms, minterm_index_of


class TestMintermIndex:
    def test_index_of_assignment(self):
        assert minterm_index_of({1: True, 2: False, 3: True}, 3) == 0b101

    def test_missing_variable_raises(self):
        with pytest.raises(HyperspaceError):
            minterm_index_of({1: True}, 2)


class TestCubeMinterms:
    def test_unbound_selects_all(self):
        assert cube_minterms({}, 2).sum() == 4

    def test_single_binding_halves(self):
        mask = cube_minterms({1: False}, 3)
        assert mask.sum() == 4
        assert all((index & 1) == 0 for index in range(8) if mask[index])

    def test_full_binding_selects_one(self):
        mask = cube_minterms({1: True, 2: True}, 2)
        assert mask.sum() == 1 and mask[0b11]

    def test_out_of_range_binding(self):
        with pytest.raises(HyperspaceError):
            cube_minterms({4: True}, 3)


class TestMintermSetConstruction:
    def test_empty_and_full(self):
        assert MintermSet.empty(3).count() == 0
        assert MintermSet.full(3).count() == 8

    def test_from_indices(self):
        mset = MintermSet.from_indices(3, [0, 5])
        assert 0 in mset and 5 in mset and 3 not in mset

    def test_from_indices_out_of_range(self):
        with pytest.raises(HyperspaceError):
            MintermSet.from_indices(2, [4])

    def test_from_literal(self):
        mset = MintermSet.from_literal(2, Literal(2, False))
        assert set(mset.indices()) == {0b00, 0b01}

    def test_from_clause(self):
        mset = MintermSet.from_clause(2, Clause([1, 2]))
        assert mset.count() == 3
        assert 0 not in mset  # only x1=x2=0 falsifies (x1+x2)

    def test_from_empty_clause(self):
        assert MintermSet.from_clause(2, Clause([])).count() == 0

    def test_from_cube(self):
        mset = MintermSet.from_cube(3, {1: True})
        assert mset.count() == 4

    def test_variable_limit(self):
        with pytest.raises(HyperspaceError):
            MintermSet.empty(30)

    def test_bad_mask_shape(self):
        import numpy as np

        with pytest.raises(HyperspaceError):
            MintermSet(2, np.ones(3, dtype=bool))


class TestMintermSetAlgebra:
    def test_union_is_superposition(self):
        a = MintermSet.from_indices(2, [0])
        b = MintermSet.from_indices(2, [3])
        assert set((a | b).indices()) == {0, 3}

    def test_intersection_counts_common(self):
        a = MintermSet.from_indices(2, [0, 1, 2])
        b = MintermSet.from_indices(2, [1, 2, 3])
        assert (a & b).count() == 2
        assert a.correlation_count(b) == 2

    def test_difference_and_complement(self):
        a = MintermSet.full(2)
        b = MintermSet.from_indices(2, [0])
        assert (a - b).count() == 3
        assert b.complement().count() == 3

    def test_restrict(self):
        full = MintermSet.full(3)
        assert full.restrict({1: True}).count() == 4
        assert full.restrict({1: True, 2: False}).count() == 2

    def test_incompatible_sizes_raise(self):
        with pytest.raises(HyperspaceError):
            MintermSet.full(2) | MintermSet.full(3)

    def test_equality_and_hash(self):
        assert MintermSet.from_indices(2, [1]) == MintermSet.from_indices(2, [1])
        assert hash(MintermSet.from_indices(2, [1])) == hash(
            MintermSet.from_indices(2, [1])
        )
        assert MintermSet.from_indices(2, [1]) != MintermSet.from_indices(2, [2])

    def test_bool_len_iter(self):
        empty = MintermSet.empty(2)
        assert not empty and len(empty) == 0
        some = MintermSet.from_indices(2, [2])
        assert some and list(some) == [2]

    def test_assignments_iterate_members(self):
        mset = MintermSet.from_indices(2, [0b10])
        assignments = list(mset.assignments())
        assert len(assignments) == 1
        assert assignments[0] == {1: False, 2: True}

    def test_mask_is_copy(self):
        mset = MintermSet.full(2)
        mask = mset.mask
        mask[:] = False
        assert mset.count() == 4
