"""Unit tests of the incremental session layer (repro.incremental)."""

from __future__ import annotations

import pytest

from repro.cnf.formula import CNFFormula
from repro.cnf.structured import graph_coloring_formula, pigeonhole_formula
from repro.exceptions import SolverError
from repro.incremental import (
    CDCLSession,
    IncrementalSession,
    NBLSession,
    PortfolioSession,
    ResolveSession,
    make_session,
)
from repro.solvers.cdcl import CDCLSolver
from repro.solvers.dpll import DPLLSolver
from repro.solvers.registry import available_solvers


def simple_formula() -> CNFFormula:
    return CNFFormula.from_ints([[1, 2], [-1, -2]])


class TestSessionBasics:
    def test_factory_covers_every_registry_solver(self):
        for name in available_solvers():
            session = make_session(name, base_formula=simple_formula(), seed=5)
            assert isinstance(session, IncrementalSession)
            result = session.solve()
            assert result.is_sat  # every solver finds this model

    def test_cdcl_gets_the_native_session(self):
        assert isinstance(make_session("cdcl"), CDCLSession)
        assert isinstance(make_session("dpll"), ResolveSession)
        assert isinstance(make_session("nbl-symbolic"), NBLSession)
        assert isinstance(make_session("portfolio"), PortfolioSession)

    def test_solver_make_session_hook(self):
        assert isinstance(CDCLSolver().make_session(), CDCLSession)
        fallback = DPLLSolver().make_session(base_formula=simple_formula())
        assert isinstance(fallback, ResolveSession)
        assert fallback.solve().is_sat

    def test_add_clause_grows_universe(self):
        session = make_session("cdcl")
        assert session.num_variables == 0
        session.add_clause([1, 2])
        session.add_clause([-3])
        assert session.num_variables == 3
        assert session.num_clauses == 2
        model = session.solve().assignment.as_dict()
        assert model[3] is False

    def test_formula_roundtrip(self):
        formula = pigeonhole_formula(3, 3)
        session = make_session("cdcl", base_formula=formula)
        assert session.formula().fingerprint() == formula.fingerprint()

    def test_empty_session_is_sat(self):
        assert make_session("cdcl").solve().is_sat
        assert make_session("cdcl", num_variables=3).solve().is_sat


class TestAssumptions:
    @pytest.mark.parametrize("spec", ["cdcl", "dpll", "brute-force"])
    def test_unsat_under_assumptions_is_not_global(self, spec):
        session = make_session(spec, base_formula=simple_formula())
        assert session.solve(assumptions=[1, 2]).is_unsat
        assert session.solve().is_sat  # the formula itself is untouched

    def test_contradictory_assumptions(self):
        session = make_session("cdcl", base_formula=simple_formula())
        assert session.solve(assumptions=[1, -1]).is_unsat
        assert session.solve().is_sat

    def test_model_respects_assumptions(self):
        session = make_session("cdcl", base_formula=simple_formula())
        model = session.solve(assumptions=[-2]).assignment.as_dict()
        assert model[2] is False and model[1] is True

    def test_incomplete_solver_reports_unknown_not_unsat(self):
        session = make_session("walksat", base_formula=simple_formula(), seed=7)
        result = session.solve(assumptions=[1, 2])
        assert result.status == "UNKNOWN"

    def test_assumption_validation(self):
        session = make_session("cdcl", base_formula=simple_formula())
        with pytest.raises(SolverError):
            session.solve(assumptions=[0])
        with pytest.raises(SolverError):
            session.solve(assumptions=[99])
        with pytest.raises(SolverError):
            session.solve(assumptions=["1"])

    def test_root_unsat_sticks(self):
        session = make_session("cdcl", num_variables=1)
        session.add_clause([1])
        session.add_clause([-1])
        assert session.solve().is_unsat
        assert session.solve(assumptions=[1]).is_unsat
        assert session.solver.root_unsat


class TestScopes:
    @pytest.mark.parametrize("spec", ["cdcl", "dpll"])
    def test_push_pop_restores_satisfiability(self, spec):
        session = make_session(spec, base_formula=simple_formula())
        session.push()
        session.add_clause([1])
        session.add_clause([2])
        assert session.solve().is_unsat
        session.pop()
        assert session.solve().is_sat
        assert session.num_clauses == 2

    def test_nested_scopes(self):
        session = make_session("cdcl", num_variables=2)
        session.add_clause([1, 2])
        with session.scope():
            session.add_clause([-1])
            with session.scope():
                session.add_clause([-2])
                assert session.solve().is_unsat
                assert session.scope_depth == 2
            assert session.solve().is_sat
        assert session.scope_depth == 0
        assert session.num_clauses == 1

    def test_pop_without_push_raises(self):
        with pytest.raises(SolverError):
            make_session("cdcl").pop()

    def test_pop_keeps_variable_universe(self):
        session = make_session("cdcl", num_variables=1)
        session.push()
        session.add_clause([2, 3])
        session.pop()
        assert session.num_variables == 3
        assert session.solve(assumptions=[3]).is_sat


class TestWarmState:
    def test_learned_clauses_survive_across_queries(self):
        formula = pigeonhole_formula(5, 4)  # UNSAT, needs real learning
        session = make_session("cdcl", base_formula=formula)
        first = session.solve()
        assert first.is_unsat and first.stats.learned_clauses > 0
        second = session.solve()
        assert second.is_unsat
        # The root-level refutation is remembered: re-asking is free.
        assert second.stats.conflicts <= first.stats.conflicts

    def test_k_sweep_uses_fewer_decisions_than_fresh(self):
        """Tier-1 guard for the bench_incremental acceptance criterion."""
        edges, n = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)], 5
        for _ in range(2):  # Mycielski twice: chromatic number 5
            edges = (
                list(edges)
                + [(u, n + v) for u, v in edges]
                + [(v, n + u) for u, v in edges]
                + [(n + i, 2 * n) for i in range(n)]
            )
            n = 2 * n + 1
        K = 6
        formula = graph_coloring_formula(edges, n, K)

        def blocked(k):
            return [
                -(v * K + c + 1) for v in range(n) for c in range(k, K)
            ]

        session = make_session("cdcl", base_formula=formula)
        warm = [session.solve(assumptions=blocked(k)) for k in range(2, K + 1)]
        fresh = [
            CDCLSolver().solve(formula.with_assumptions(blocked(k)))
            for k in range(2, K + 1)
        ]
        assert [r.status for r in warm] == [r.status for r in fresh]
        assert sum(r.stats.decisions for r in warm) < sum(
            r.stats.decisions for r in fresh
        )

    def test_total_stats_accumulate(self):
        session = make_session("cdcl", base_formula=pigeonhole_formula(4, 3))
        session.solve()
        session.solve(assumptions=[1])
        assert session.num_queries == 2
        assert session.total_stats.conflicts >= 1
        assert session.total_stats.elapsed_seconds >= 0.0


class TestFrontends:
    def test_nbl_symbolic_session(self):
        session = make_session("nbl-symbolic", base_formula=simple_formula())
        assert session.solve().is_sat
        assert session.solve(assumptions=[1, 2]).is_unsat

    def test_nbl_sampled_session_never_says_unsat(self):
        session = make_session(
            "nbl-sampled",
            base_formula=CNFFormula.from_ints([[1], [-1]]),
            seed=3,
            samples=20_000,
        )
        assert session.solve().status in ("UNKNOWN",)

    def test_portfolio_session_records_last_race(self):
        session = make_session("portfolio", base_formula=simple_formula(), seed=9)
        result = session.solve()
        assert result.is_sat
        assert session.last_result is not None
        assert session.last_result.winner
        assert result.solver_name.startswith("portfolio:")

    def test_portfolio_solver_make_session(self):
        from repro.runtime.portfolio import PortfolioSolver

        session = PortfolioSolver().make_session(
            base_formula=simple_formula(), seed=2
        )
        assert session.solve(assumptions=[-1]).is_sat
