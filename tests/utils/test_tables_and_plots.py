"""Tests for repro.utils.tables and repro.utils.ascii_plot."""

from __future__ import annotations

import pytest

from repro.utils.ascii_plot import ascii_histogram, ascii_line_plot
from repro.utils.tables import format_markdown_table, format_table


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(["a", "bb"], [[1, 2], [30, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "bb" in lines[0]
        assert "30" in lines[2] or "30" in lines[3]

    def test_float_formatting(self):
        text = format_table(["x"], [[1.23456789e-9]])
        assert "1.23457e-09" in text

    def test_row_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestFormatMarkdownTable:
    def test_structure(self):
        text = format_markdown_table(["a", "b"], [[1, 2]])
        lines = text.splitlines()
        assert lines[0].startswith("| a")
        assert set(lines[1]) <= {"|", "-"}
        assert "| 1 | 2 |" == lines[2]

    def test_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_markdown_table(["a"], [[1, 2]])


class TestAsciiLinePlot:
    def test_contains_legend_and_title(self):
        text = ascii_line_plot(
            {"s": ([1, 2, 3], [1.0, 2.0, 3.0])}, title="hello", width=30, height=8
        )
        assert "hello" in text
        assert "legend" in text
        assert "* = s" in text

    def test_multiple_series_get_distinct_marks(self):
        text = ascii_line_plot(
            {"a": ([1, 2], [0.0, 1.0]), "b": ([1, 2], [1.0, 0.0])},
            width=20,
            height=6,
        )
        assert "* = a" in text and "o = b" in text

    def test_logx_requires_positive(self):
        with pytest.raises(ValueError):
            ascii_line_plot({"a": ([0, 1], [1.0, 2.0])}, logx=True)

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            ascii_line_plot({})
        with pytest.raises(ValueError):
            ascii_line_plot({"a": ([], [])})

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ascii_line_plot({"a": ([1, 2], [1.0])})

    def test_constant_series_does_not_crash(self):
        text = ascii_line_plot({"a": ([1, 2, 3], [5.0, 5.0, 5.0])})
        assert "y_max" in text


class TestAsciiHistogram:
    def test_counts_sum(self):
        text = ascii_histogram([0.0, 0.1, 0.9, 1.0], bins=2, title="h")
        assert "h" in text
        assert text.count("\n") == 2  # title + 2 bins -> 3 lines

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_histogram([])
