"""Tests for repro.utils.rng."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.rng import RandomState, as_generator, spawn_generators


class TestAsGenerator:
    def test_none_returns_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_is_reproducible(self):
        a = as_generator(42).random(5)
        b = as_generator(42).random(5)
        assert np.allclose(a, b)

    def test_different_seeds_differ(self):
        a = as_generator(1).random(5)
        b = as_generator(2).random(5)
        assert not np.allclose(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(3)
        gen = as_generator(seq)
        assert isinstance(gen, np.random.Generator)


class TestSpawnGenerators:
    def test_count(self):
        gens = spawn_generators(0, 5)
        assert len(gens) == 5

    def test_children_are_independent_streams(self):
        gens = spawn_generators(0, 2)
        assert not np.allclose(gens[0].random(10), gens[1].random(10))

    def test_reproducible_from_seed(self):
        a = spawn_generators(9, 3)
        b = spawn_generators(9, 3)
        for ga, gb in zip(a, b):
            assert np.allclose(ga.random(4), gb.random(4))

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)

    def test_zero_count(self):
        assert spawn_generators(0, 0) == []


class TestRandomState:
    def test_generators_differ_between_calls(self):
        state = RandomState(5)
        a = state.generator("x").random(8)
        b = state.generator("x").random(8)
        assert not np.allclose(a, b)

    def test_reproducible_across_instances(self):
        a = RandomState(5).generator().random(8)
        b = RandomState(5).generator().random(8)
        assert np.allclose(a, b)

    def test_integers_in_range(self):
        state = RandomState(1)
        values = state.integers(0, 10, size=100)
        assert values.min() >= 0 and values.max() < 10

    def test_choice_returns_member(self):
        state = RandomState(1)
        assert state.choice([1, 2, 3]) in (1, 2, 3)

    def test_seed_sequence_property(self):
        state = RandomState(4)
        assert isinstance(state.seed_sequence, np.random.SeedSequence)
