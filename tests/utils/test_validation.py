"""Tests for repro.utils.validation."""

from __future__ import annotations

import pytest

from repro.utils.validation import (
    check_in_choices,
    check_nonnegative_int,
    check_positive_float,
    check_positive_int,
    check_probability,
)


class TestPositiveInt:
    def test_accepts_positive(self):
        assert check_positive_int(3, "x") == 3

    @pytest.mark.parametrize("value", [0, -1])
    def test_rejects_nonpositive(self, value):
        with pytest.raises(ValueError):
            check_positive_int(value, "x")

    @pytest.mark.parametrize("value", [1.5, "3", True])
    def test_rejects_wrong_type(self, value):
        with pytest.raises(TypeError):
            check_positive_int(value, "x")

    def test_error_message_names_parameter(self):
        with pytest.raises(ValueError, match="my_param"):
            check_positive_int(-2, "my_param")


class TestNonNegativeInt:
    def test_accepts_zero(self):
        assert check_nonnegative_int(0, "x") == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_nonnegative_int(-1, "x")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_nonnegative_int(True, "x")


class TestPositiveFloat:
    def test_accepts_int_and_float(self):
        assert check_positive_float(2, "x") == 2.0
        assert check_positive_float(0.5, "x") == 0.5

    @pytest.mark.parametrize("value", [0.0, -0.1])
    def test_rejects_nonpositive(self, value):
        with pytest.raises(ValueError):
            check_positive_float(value, "x")

    def test_rejects_string(self):
        with pytest.raises(TypeError):
            check_positive_float("1.0", "x")


class TestProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, value):
        assert check_probability(value, "p") == value

    @pytest.mark.parametrize("value", [-0.01, 1.01])
    def test_rejects_outside(self, value):
        with pytest.raises(ValueError):
            check_probability(value, "p")


class TestChoices:
    def test_accepts_member(self):
        assert check_in_choices("a", "x", ["a", "b"]) == "a"

    def test_rejects_non_member(self):
        with pytest.raises(ValueError):
            check_in_choices("c", "x", ["a", "b"])
