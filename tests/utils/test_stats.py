"""Tests for repro.utils.stats (RunningStats and confidence helpers)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.stats import (
    RunningStats,
    confidence_interval,
    mean_confidence_halfwidth,
)


class TestRunningStatsBasics:
    def test_empty(self):
        stats = RunningStats()
        assert stats.count == 0
        assert stats.mean == 0.0
        assert stats.variance == 0.0
        assert stats.std_error == 0.0

    def test_single_value(self):
        stats = RunningStats()
        stats.push(4.0)
        assert stats.count == 1
        assert stats.mean == 4.0
        assert stats.variance == 0.0

    def test_push_matches_numpy(self):
        values = [1.5, -2.0, 0.25, 7.75, 3.0]
        stats = RunningStats()
        for value in values:
            stats.push(value)
        assert stats.mean == pytest.approx(np.mean(values))
        assert stats.variance == pytest.approx(np.var(values, ddof=1))

    def test_push_batch_matches_numpy(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=1000)
        stats = RunningStats()
        stats.push_batch(values)
        assert stats.count == 1000
        assert stats.mean == pytest.approx(values.mean())
        assert stats.std == pytest.approx(values.std(ddof=1))

    def test_batched_equals_unbatched(self):
        rng = np.random.default_rng(1)
        values = rng.normal(size=500)
        batched = RunningStats()
        batched.push_batch(values[:200])
        batched.push_batch(values[200:])
        whole = RunningStats()
        whole.push_batch(values)
        assert batched.mean == pytest.approx(whole.mean)
        assert batched.variance == pytest.approx(whole.variance)

    def test_empty_batch_is_noop(self):
        stats = RunningStats()
        stats.push_batch(np.array([]))
        assert stats.count == 0

    def test_merge(self):
        rng = np.random.default_rng(2)
        values = rng.normal(size=400)
        left = RunningStats()
        right = RunningStats()
        left.push_batch(values[:150])
        right.push_batch(values[150:])
        left.merge(right)
        assert left.count == 400
        assert left.mean == pytest.approx(values.mean())
        assert left.variance == pytest.approx(values.var(ddof=1))

    def test_merge_with_empty(self):
        stats = RunningStats()
        stats.push_batch(np.arange(10.0))
        stats.merge(RunningStats())
        assert stats.count == 10

    def test_std_error(self):
        stats = RunningStats()
        stats.push_batch(np.arange(100.0))
        assert stats.std_error == pytest.approx(stats.std / 10.0)


class TestConfidenceHelpers:
    def test_halfwidth_scales_with_z(self):
        stats = RunningStats()
        stats.push_batch(np.random.default_rng(0).normal(size=100))
        assert mean_confidence_halfwidth(stats, 6.0) == pytest.approx(
            2.0 * mean_confidence_halfwidth(stats, 3.0)
        )

    def test_interval_contains_mean(self):
        stats = RunningStats()
        stats.push_batch(np.random.default_rng(0).normal(size=100))
        low, high = confidence_interval(stats)
        assert low <= stats.mean <= high


class TestRunningStatsProperties:
    @given(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=2,
            max_size=200,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_matches_numpy_on_arbitrary_data(self, values):
        stats = RunningStats()
        stats.push_batch(np.array(values))
        assert stats.mean == pytest.approx(np.mean(values), rel=1e-9, abs=1e-9)
        assert stats.variance == pytest.approx(
            np.var(values, ddof=1), rel=1e-7, abs=1e-7
        )

    @given(
        st.lists(
            st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
            min_size=1,
            max_size=50,
        ),
        st.lists(
            st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
            min_size=1,
            max_size=50,
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_merge_equals_concatenation(self, left_values, right_values):
        left = RunningStats()
        left.push_batch(np.array(left_values))
        right = RunningStats()
        right.push_batch(np.array(right_values))
        left.merge(right)
        combined = RunningStats()
        combined.push_batch(np.array(left_values + right_values))
        assert left.count == combined.count
        assert left.mean == pytest.approx(combined.mean, rel=1e-9, abs=1e-9)
        assert left.variance == pytest.approx(combined.variance, rel=1e-7, abs=1e-7)
