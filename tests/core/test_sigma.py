"""Tests for the Σ_N construction (repro.core.sigma)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cnf.clause import Clause
from repro.cnf.evaluate import satisfying_minterm_mask
from repro.cnf.formula import CNFFormula
from repro.cnf.generators import random_ksat
from repro.cnf.paper_instances import example6_instance, example7_instance
from repro.core.sigma import (
    clause_minterm_sets,
    clause_superposition_samples,
    satisfying_minterms,
    sigma_samples,
)
from repro.exceptions import EngineError
from repro.hyperspace.superposition import minterm_noise_product
from repro.noise.bank import NoiseBank
from repro.noise.telegraph import BipolarCarrier


class TestSymbolicSigma:
    def test_clause_minterm_sets_match_clause_masks(self):
        formula = example6_instance()
        sets = clause_minterm_sets(formula)
        assert len(sets) == formula.num_clauses
        for clause_set, clause in zip(sets, formula):
            assert clause_set.count() == 3  # each 2-literal clause over n=2

    def test_satisfying_minterms_equal_brute_force(self):
        for seed in range(3):
            formula = random_ksat(5, 12, 3, seed=seed)
            mask = satisfying_minterm_mask(formula)
            assert np.array_equal(satisfying_minterms(formula).mask, mask)

    def test_unsat_instance_has_empty_set(self):
        assert satisfying_minterms(example7_instance()).count() == 0

    def test_empty_clause_forces_empty_set(self):
        formula = CNFFormula([Clause([1, 2]), Clause([])], num_variables=2)
        assert satisfying_minterms(formula).count() == 0


class TestSampledSigma:
    def test_example6_expansion_matches_paper(self):
        """Example 6: Σ_N expands into 3 minterm products per clause."""
        formula = example6_instance()
        bank = NoiseBank(2, 2, carrier=BipolarCarrier(), seed=0)
        block = bank.sample_block(2_000)
        z1 = clause_superposition_samples(block, 1, formula)
        # Clause 1 = (x1 + x2): satisfied by minterms 0b01, 0b10, 0b11.
        expansion = sum(minterm_noise_product(block, 1, idx) for idx in (1, 2, 3))
        assert np.allclose(z1, expansion)

    def test_sigma_is_product_of_clause_superpositions(self):
        formula = example6_instance()
        bank = NoiseBank(2, 2, carrier=BipolarCarrier(), seed=1)
        block = bank.sample_block(1_000)
        sigma = sigma_samples(block, formula)
        manual = clause_superposition_samples(block, 1, formula) * \
            clause_superposition_samples(block, 2, formula)
        assert np.allclose(sigma, manual)

    def test_empty_clause_zeroes_sigma(self):
        formula = CNFFormula([Clause([1]), Clause([])], num_variables=1)
        bank = NoiseBank(2, 1, carrier=BipolarCarrier(), seed=2)
        block = bank.sample_block(100)
        assert np.allclose(sigma_samples(block, formula), 0.0)

    def test_shape_mismatch_raises(self):
        formula = example6_instance()
        bank = NoiseBank(3, 2, carrier=BipolarCarrier(), seed=0)
        block = bank.sample_block(10)
        with pytest.raises(EngineError):
            sigma_samples(block, formula)

    def test_variable_mismatch_raises(self):
        formula = example6_instance()
        bank = NoiseBank(2, 3, carrier=BipolarCarrier(), seed=0)
        block = bank.sample_block(10)
        with pytest.raises(EngineError):
            sigma_samples(block, formula)

    def test_bad_block_shape_raises(self):
        with pytest.raises(EngineError):
            sigma_samples(np.zeros((2, 2, 10)), example6_instance())
