"""Tests for the exact/symbolic NBL-SAT engine."""

from __future__ import annotations

import pytest

from repro.cnf.evaluate import count_models
from repro.cnf.formula import CNFFormula
from repro.cnf.generators import random_ksat
from repro.core.symbolic import SymbolicNBLEngine
from repro.exceptions import EngineError
from repro.noise.telegraph import BipolarCarrier
from repro.noise.uniform import UniformCarrier


class TestDecisions:
    def test_paper_instances(self, sat_instance, unsat_instance):
        assert SymbolicNBLEngine(sat_instance).check().satisfiable
        assert not SymbolicNBLEngine(unsat_instance).check().satisfiable

    def test_matches_brute_force_on_random_instances(self):
        for seed in range(10):
            formula = random_ksat(6, 20, 3, seed=seed)
            expected = count_models(formula) > 0
            assert SymbolicNBLEngine(formula).check().satisfiable == expected

    def test_zero_variable_rejected(self):
        with pytest.raises(EngineError):
            SymbolicNBLEngine(CNFFormula([]))


class TestMeans:
    def test_mean_is_model_count_times_signal(self, example6):
        engine = SymbolicNBLEngine(example6, UniformCarrier())
        expected_signal = (1.0 / 12.0) ** (2 * 2)
        assert engine.minterm_signal == pytest.approx(expected_signal)
        assert engine.expected_mean() == pytest.approx(2 * expected_signal)

    def test_section4_sat_asymptote(self, sat_instance):
        engine = SymbolicNBLEngine(sat_instance, UniformCarrier())
        assert engine.expected_mean() == pytest.approx((1.0 / 12.0) ** 8)

    def test_bipolar_signal_is_one(self, example6):
        engine = SymbolicNBLEngine(example6, BipolarCarrier())
        assert engine.minterm_signal == pytest.approx(1.0)
        assert engine.expected_mean() == pytest.approx(2.0)

    def test_unsat_mean_is_zero(self, unsat_instance):
        assert SymbolicNBLEngine(unsat_instance).expected_mean() == 0.0

    def test_estimated_model_count_roundtrip(self, example6):
        result = SymbolicNBLEngine(example6).check()
        assert result.estimated_model_count == pytest.approx(2.0)


class TestBindings:
    def test_binding_restricts_count(self, example6):
        engine = SymbolicNBLEngine(example6)
        # models of example6: x1~x2 and ~x1x2
        assert engine.model_count({1: True}) == 1
        assert engine.model_count({1: True, 2: True}) == 0
        assert engine.model_count({1: False, 2: True}) == 1

    def test_binding_check_verdicts(self, example6):
        engine = SymbolicNBLEngine(example6)
        assert engine.check({1: True}).satisfiable
        assert not engine.check({1: True, 2: True}).satisfiable

    def test_result_records_bindings(self, example6):
        result = SymbolicNBLEngine(example6).check({2: False})
        assert result.bindings == {2: False}

    def test_invalid_binding_raises(self, example6):
        with pytest.raises(EngineError):
            SymbolicNBLEngine(example6).check({3: True})

    def test_check_uses_zero_samples(self, example6):
        result = SymbolicNBLEngine(example6).check()
        assert result.samples_used == 0
        assert result.converged
        assert result.engine == "symbolic"
