"""Tests for Algorithm 2 (and its cube / prime-implicant variants)."""

from __future__ import annotations

import pytest

from repro.cnf.evaluate import count_models, enumerate_models
from repro.cnf.generators import planted_ksat, random_ksat
from repro.cnf.structured import all_equal_formula, parity_chain_formula
from repro.core.assignment import (
    find_prime_implicant_cube,
    find_satisfying_assignment,
    find_satisfying_cube,
    nbl_sat_solve,
)
from repro.core.checker import make_engine
from repro.core.config import NBLConfig
from repro.core.symbolic import SymbolicNBLEngine
from repro.noise.telegraph import BipolarCarrier


class TestMintermVariantSymbolic:
    def test_paper_example8_walkthrough(self, example6):
        """Example 8: binding x1=1 stays SAT, then x2=1 goes UNSAT -> x1 ~x2."""
        engine = SymbolicNBLEngine(example6)
        result = find_satisfying_assignment(engine)
        assert result.satisfiable and result.verified
        assert result.assignment == {1: True, 2: False}
        # One initial check plus one per variable.
        assert result.num_checks == example6.num_variables + 1

    def test_section4_instance(self, sat_instance):
        result = find_satisfying_assignment(SymbolicNBLEngine(sat_instance))
        assert result.assignment == {1: False, 2: True}
        assert result.verified

    def test_unsat_returns_no_assignment(self, unsat_instance):
        result = find_satisfying_assignment(SymbolicNBLEngine(unsat_instance))
        assert not result.satisfiable
        assert result.assignment is None
        assert result.num_checks == 1

    def test_check_count_bound(self):
        for seed in range(5):
            formula, _ = planted_ksat(6, 15, 3, seed=seed)
            result = find_satisfying_assignment(SymbolicNBLEngine(formula))
            assert result.verified
            assert result.num_checks == formula.num_variables + 1

    @pytest.mark.parametrize("seed", range(8))
    def test_random_instances_verified(self, seed):
        formula = random_ksat(7, 20, 3, seed=seed)
        engine = SymbolicNBLEngine(formula)
        result = find_satisfying_assignment(engine)
        assert result.satisfiable == (count_models(formula) > 0)
        if result.satisfiable:
            assert result.verified
            assert formula.evaluate(result.assignment.as_dict())

    def test_initial_check_reuse(self, example6):
        engine = SymbolicNBLEngine(example6)
        initial = engine.check()
        result = find_satisfying_assignment(engine, initial_check=initial)
        # The provided initial check is not re-run, so only n checks follow.
        assert result.num_checks == example6.num_variables

    def test_requires_formula_attribute(self):
        class Broken:
            def check(self, bindings=None):  # pragma: no cover - never called
                raise AssertionError

        with pytest.raises(TypeError):
            find_satisfying_assignment(Broken())


class TestMintermVariantSampled:
    def test_sampled_engine_recovers_model(self, sat_instance, fast_bipolar_config):
        engine = make_engine(sat_instance, "sampled", fast_bipolar_config)
        result = find_satisfying_assignment(engine)
        assert result.satisfiable and result.verified
        assert result.total_samples > 0

    def test_total_samples_accumulates(self, example6, fast_bipolar_config):
        engine = make_engine(example6, "sampled", fast_bipolar_config)
        result = find_satisfying_assignment(engine)
        assert result.total_samples == sum(c.samples_used for c in result.checks)


class TestCubeVariant:
    def test_unsat_short_circuits(self, unsat_instance):
        result = find_satisfying_cube(SymbolicNBLEngine(unsat_instance))
        assert not result.satisfiable

    def test_example6_all_dont_cares(self, example6):
        """Both polarities of each variable keep a model, so the paper's rule
        drops every variable — the cube covers a model but is not an implicant."""
        result = find_satisfying_cube(SymbolicNBLEngine(example6))
        assert result.satisfiable
        assert sorted(result.dont_care_variables) == [1, 2]
        assert result.verified  # the (empty) cube still contains a model

    def test_single_model_instance_yields_full_minterm(self, sat_instance):
        result = find_satisfying_cube(SymbolicNBLEngine(sat_instance))
        assert result.assignment == {1: False, 2: True}
        assert result.dont_care_variables == []
        assert result.verified

    def test_check_count(self, sat_instance):
        result = find_satisfying_cube(SymbolicNBLEngine(sat_instance))
        # one initial check + two per variable
        assert result.num_checks == 1 + 2 * sat_instance.num_variables


class TestPrimeImplicantVariant:
    def test_parity_has_no_reducible_variables(self):
        formula = parity_chain_formula(3)
        result = find_prime_implicant_cube(SymbolicNBLEngine(formula))
        assert result.satisfiable and result.verified
        assert result.dont_care_variables == []

    def test_all_equal_formula_keeps_chain(self):
        formula = all_equal_formula(3)
        result = find_prime_implicant_cube(SymbolicNBLEngine(formula))
        assert result.verified

    def test_unconstrained_variable_dropped(self):
        # x3 is unconstrained: (x1+x2)(~x1+~x2) over three declared variables.
        from repro.cnf.formula import CNFFormula

        formula = CNFFormula.from_ints([[1, 2], [-1, -2]], num_variables=3)
        result = find_prime_implicant_cube(SymbolicNBLEngine(formula))
        assert result.verified
        assert 3 in result.dont_care_variables
        assert 3 not in result.assignment.assigned_variables()

    def test_unsat_passthrough(self, unsat_instance):
        result = find_prime_implicant_cube(SymbolicNBLEngine(unsat_instance))
        assert not result.satisfiable


class TestNblSatSolve:
    def test_symbolic_solve(self, sat_instance):
        result = nbl_sat_solve(sat_instance, engine="symbolic")
        assert result.satisfiable and result.verified

    def test_cube_flag(self, example6):
        result = nbl_sat_solve(example6, engine="symbolic", cube=True)
        assert result.satisfiable
        assert result.dont_care_variables

    def test_sampled_solve(self, sat_instance):
        config = NBLConfig(
            carrier=BipolarCarrier(), max_samples=60_000, block_size=15_000,
            min_samples=15_000, seed=21,
        )
        result = nbl_sat_solve(sat_instance, engine="sampled", config=config)
        assert result.satisfiable and result.verified

    def test_every_model_reported_is_a_model(self):
        for seed in range(4):
            formula = random_ksat(5, 12, 3, seed=seed)
            result = nbl_sat_solve(formula, engine="symbolic")
            if result.satisfiable:
                assert formula.evaluate(result.assignment.as_dict())
                models = {m.to_minterm_index(5) for m in enumerate_models(formula)}
                assert result.assignment.to_minterm_index(5) in models
