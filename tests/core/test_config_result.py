"""Tests for repro.core.config and repro.core.result."""

from __future__ import annotations

import pytest

from repro.core.config import NBLConfig, paper_figure1_config
from repro.core.result import AssignmentResult, CheckResult
from repro.exceptions import EngineError
from repro.noise.telegraph import BipolarCarrier
from repro.noise.uniform import UniformCarrier


class TestNBLConfig:
    def test_defaults(self):
        config = NBLConfig()
        assert isinstance(config.carrier, UniformCarrier)
        assert config.convergence == "adaptive"

    def test_block_size_clamped_to_max_samples(self):
        config = NBLConfig(max_samples=500, block_size=10_000)
        assert config.block_size == 500

    def test_min_samples_clamped(self):
        config = NBLConfig(max_samples=500, min_samples=10_000)
        assert config.min_samples == 500

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"carrier": "uniform"},
            {"max_samples": 0},
            {"block_size": -1},
            {"convergence": "never"},
            {"confidence_z": 0.0},
            {"decision_fraction": 0.0},
            {"decision_fraction": 1.0},
            {"min_samples": 0},
        ],
    )
    def test_invalid_configuration(self, kwargs):
        with pytest.raises(EngineError):
            NBLConfig(**kwargs)

    def test_replace_overrides_and_preserves(self):
        base = NBLConfig(max_samples=1000, seed=4)
        replaced = base.replace(max_samples=2000)
        assert replaced.max_samples == 2000
        assert replaced.seed == 4
        assert base.max_samples == 1000

    def test_replace_carrier(self):
        replaced = NBLConfig().replace(carrier=BipolarCarrier())
        assert isinstance(replaced.carrier, BipolarCarrier)

    def test_paper_figure1_config(self):
        config = paper_figure1_config(max_samples=50_000, seed=1)
        assert config.convergence == "fixed"
        assert config.record_trace
        assert config.carrier.power == pytest.approx(1.0 / 12.0)


class TestCheckResult:
    def test_estimated_model_count(self):
        result = CheckResult(
            satisfiable=True, mean=4.0e-9, threshold=1.0e-9,
            expected_minterm_signal=2.0e-9,
        )
        assert result.estimated_model_count == pytest.approx(2.0)

    def test_zero_signal_guard(self):
        result = CheckResult(
            satisfiable=False, mean=0.0, threshold=0.0, expected_minterm_signal=0.0
        )
        assert result.estimated_model_count == 0.0

    def test_str_mentions_verdict(self):
        sat = CheckResult(satisfiable=True, mean=1.0, threshold=0.5)
        unsat = CheckResult(satisfiable=False, mean=0.0, threshold=0.5)
        assert "SATISFIABLE" in str(sat)
        assert "UNSATISFIABLE" in str(unsat)


class TestAssignmentResult:
    def test_num_checks(self):
        result = AssignmentResult(
            satisfiable=True,
            assignment=None,
            checks=[CheckResult(True, 1.0, 0.5), CheckResult(False, 0.0, 0.5)],
        )
        assert result.num_checks == 2

    def test_str_unsat(self):
        assert "UNSATISFIABLE" in str(AssignmentResult(False, None))
