"""Tests for the Section III-F SNR model (repro.core.snr)."""

from __future__ import annotations

import math

import pytest

from repro.cnf.paper_instances import section4_sat_instance
from repro.core.snr import (
    SNRParameters,
    empirical_snr,
    log2_num_products,
    noise_sigma_paper,
    samples_for_target_snr,
    single_minterm_mean,
    snr_paper_model,
    snr_sqrt_model,
)
from repro.noise.telegraph import BipolarCarrier
from repro.noise.uniform import UniformCarrier


class TestParameters:
    def test_from_formula(self):
        params = SNRParameters.from_formula(section4_sat_instance())
        assert params.num_variables == 2
        assert params.num_clauses == 4
        assert params.clause_size == 2

    def test_invalid_parameters(self):
        with pytest.raises((ValueError, TypeError)):
            SNRParameters(0, 1)
        with pytest.raises(ValueError):
            SNRParameters(1, 1, satisfying_minterms=-1)


class TestAnalyticFormulas:
    def test_single_minterm_mean_uniform(self):
        params = SNRParameters(2, 4)
        assert single_minterm_mean(params, UniformCarrier()) == pytest.approx(
            (1.0 / 12.0) ** 8
        )

    def test_single_minterm_mean_bipolar(self):
        assert single_minterm_mean(SNRParameters(3, 5), BipolarCarrier()) == 1.0

    def test_log2_num_products_matches_paper_count(self):
        # (2^n) * (2^n - 2^{n-k})^m for 3-SAT
        params = SNRParameters(4, 3, clause_size=3)
        expected = math.log2((2**4) * (2**4 - 2**1) ** 3)
        assert log2_num_products(params) == pytest.approx(expected)

    def test_paper_snr_expression(self):
        """For k = n the paper's closed form sqrt(N-1)/(3·2^{nm}) is recovered
        up to the (2^n - 2^{n-k})^m ≈ 2^{nm} approximation made in the paper."""
        params = SNRParameters(2, 2, clause_size=2)
        n_samples = 10_001
        value = snr_paper_model(params, n_samples)
        # #products = 2^2 * 3^2 = 36 (paper approximates as 2^{nm} = 16)
        expected = math.sqrt(n_samples - 1) / (3.0 * 36.0)
        assert value == pytest.approx(expected)

    def test_snr_scales_with_sqrt_samples(self):
        params = SNRParameters(2, 4)
        assert snr_paper_model(params, 40_001) == pytest.approx(
            2.0 * snr_paper_model(params, 10_001), rel=1e-3
        )

    def test_snr_scales_with_model_count(self):
        base = SNRParameters(2, 4, satisfying_minterms=1)
        doubled = SNRParameters(2, 4, satisfying_minterms=2)
        assert snr_paper_model(doubled, 10_000) == pytest.approx(
            2.0 * snr_paper_model(base, 10_000)
        )

    def test_sqrt_model_is_larger(self):
        params = SNRParameters(3, 6)
        assert snr_sqrt_model(params, 100_000) > snr_paper_model(params, 100_000)

    def test_snr_collapses_with_nm(self):
        small = snr_paper_model(SNRParameters(2, 2), 100_000)
        large = snr_paper_model(SNRParameters(3, 6), 100_000)
        assert large < small

    def test_degenerate_inputs(self):
        params = SNRParameters(2, 2)
        assert snr_paper_model(params, 1) == 0.0
        assert snr_paper_model(SNRParameters(2, 2, satisfying_minterms=0), 100) == 0.0
        assert noise_sigma_paper(params, 1) == math.inf

    def test_carrier_independence_of_snr(self):
        params = SNRParameters(2, 3)
        assert snr_paper_model(params, 5_000, UniformCarrier()) == pytest.approx(
            snr_paper_model(params, 5_000, BipolarCarrier())
        )


class TestSamplePlanning:
    def test_budget_reaches_target(self):
        params = SNRParameters(2, 2, clause_size=2)
        budget = samples_for_target_snr(params, 1.0, model="paper")
        assert snr_paper_model(params, budget) >= 1.0
        assert snr_paper_model(params, budget // 2) < 1.0

    def test_sqrt_budget_smaller(self):
        params = SNRParameters(2, 4)
        assert samples_for_target_snr(params, 1.0, model="sqrt") < samples_for_target_snr(
            params, 1.0, model="paper"
        )

    def test_budget_grows_with_size(self):
        small = samples_for_target_snr(SNRParameters(2, 2), 1.0)
        large = samples_for_target_snr(SNRParameters(3, 6), 1.0)
        assert large > small

    def test_clamped_for_huge_instances(self):
        assert samples_for_target_snr(SNRParameters(10, 40), 1.0) == 10**18

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            samples_for_target_snr(SNRParameters(2, 2), 0.0)
        with pytest.raises(ValueError):
            samples_for_target_snr(SNRParameters(2, 2), 1.0, model="other")


class TestEmpiricalSNR:
    def test_perfect_separation_is_infinite(self):
        assert empirical_snr([1.0, 1.01, 0.99], [0.0, 0.0, 0.0]) == math.inf

    def test_finite_value(self):
        value = empirical_snr([1.0, 1.2, 0.8], [0.1, -0.1, 0.05])
        assert math.isfinite(value)

    def test_requires_two_repetitions(self):
        with pytest.raises(ValueError):
            empirical_snr([1.0], [0.0, 0.0])
