"""Tests for the Monte-Carlo (sampled) NBL-SAT engine.

These are the core reproduction tests: the sampled mean of
``S_N = τ_N · Σ_N`` must converge to the exact value predicted by the
symbolic engine, and Algorithm 1's decisions must be correct on the paper's
instances with realistic sample budgets.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cnf.formula import CNFFormula
from repro.cnf.paper_instances import example6_instance
from repro.core.config import NBLConfig
from repro.core.sampled import SampledNBLEngine
from repro.core.symbolic import SymbolicNBLEngine
from repro.exceptions import EngineError
from repro.noise.telegraph import BipolarCarrier
from repro.noise.uniform import UniformCarrier


class TestConstruction:
    def test_rejects_empty_formula(self):
        with pytest.raises(EngineError):
            SampledNBLEngine(CNFFormula([]))
        with pytest.raises(EngineError):
            SampledNBLEngine(CNFFormula([], num_variables=2))

    def test_minterm_signal_and_threshold(self, sat_instance):
        engine = SampledNBLEngine(sat_instance, NBLConfig(carrier=UniformCarrier()))
        assert engine.minterm_signal == pytest.approx((1.0 / 12.0) ** 8)
        assert engine.decision_threshold == pytest.approx(0.5 * (1.0 / 12.0) ** 8)

    def test_invalid_binding(self, sat_instance, fast_bipolar_config):
        engine = SampledNBLEngine(sat_instance, fast_bipolar_config)
        with pytest.raises(EngineError):
            engine.check({9: True})


class TestDecisions:
    def test_paper_instances_uniform_carrier(
        self, sat_instance, unsat_instance, fast_uniform_config
    ):
        sat_result = SampledNBLEngine(sat_instance, fast_uniform_config).check()
        unsat_result = SampledNBLEngine(unsat_instance, fast_uniform_config).check()
        assert sat_result.satisfiable
        assert not unsat_result.satisfiable

    def test_paper_instances_bipolar_carrier(
        self, sat_instance, unsat_instance, fast_bipolar_config
    ):
        assert SampledNBLEngine(sat_instance, fast_bipolar_config).check().satisfiable
        assert not SampledNBLEngine(unsat_instance, fast_bipolar_config).check().satisfiable

    def test_example7_minimal_unsat(self, example7, fast_bipolar_config):
        assert not SampledNBLEngine(example7, fast_bipolar_config).check().satisfiable

    def test_binding_reduces_to_unsat_subspace(self, sat_instance, fast_bipolar_config):
        # The only model of the Section IV SAT instance is ~x1 x2, so binding
        # x1 = 1 must make the reduced instance unsatisfiable.
        engine = SampledNBLEngine(sat_instance, fast_bipolar_config)
        assert engine.check({1: False}).satisfiable
        assert not engine.check({1: True}).satisfiable


class TestMeanConvergence:
    def test_sat_mean_matches_symbolic_prediction(self, example6):
        config = NBLConfig(
            carrier=BipolarCarrier(),
            max_samples=200_000,
            block_size=50_000,
            convergence="fixed",
            seed=3,
        )
        sampled = SampledNBLEngine(example6, config).check()
        exact = SymbolicNBLEngine(example6, BipolarCarrier()).expected_mean()
        assert exact == pytest.approx(2.0)
        assert sampled.mean == pytest.approx(exact, abs=4.0 * sampled.std_error)

    def test_uniform_mean_matches_scaled_prediction(self, sat_instance):
        config = NBLConfig(
            carrier=UniformCarrier(),
            max_samples=300_000,
            block_size=50_000,
            convergence="fixed",
            seed=5,
        )
        sampled = SampledNBLEngine(sat_instance, config).check()
        exact = (1.0 / 12.0) ** 8
        assert sampled.mean == pytest.approx(exact, abs=4.0 * sampled.std_error)

    def test_std_error_shrinks_with_samples(self, example6):
        small = NBLConfig(
            carrier=BipolarCarrier(), max_samples=20_000, convergence="fixed", seed=7
        )
        large = NBLConfig(
            carrier=BipolarCarrier(), max_samples=160_000, convergence="fixed", seed=7
        )
        se_small = SampledNBLEngine(example6, small).check().std_error
        se_large = SampledNBLEngine(example6, large).check().std_error
        assert se_large < se_small


class TestEngineMechanics:
    def test_fixed_budget_uses_exact_sample_count(self, example6):
        config = NBLConfig(
            carrier=BipolarCarrier(), max_samples=35_000, block_size=10_000,
            convergence="fixed", seed=1,
        )
        result = SampledNBLEngine(example6, config).check()
        assert result.samples_used == 35_000
        assert result.converged

    def test_adaptive_can_stop_early(self, example6):
        config = NBLConfig(
            carrier=BipolarCarrier(),
            max_samples=400_000,
            block_size=20_000,
            min_samples=20_000,
            convergence="adaptive",
            seed=2,
        )
        result = SampledNBLEngine(example6, config).check()
        assert result.samples_used < 400_000
        assert result.converged

    def test_trace_recording(self, example6):
        config = NBLConfig(
            carrier=BipolarCarrier(), max_samples=30_000, block_size=10_000,
            convergence="fixed", record_trace=True, seed=1,
        )
        result = SampledNBLEngine(example6, config).check()
        assert result.trace_samples == [10_000, 20_000, 30_000]
        assert len(result.trace_means) == 3
        assert result.trace_means[-1] == pytest.approx(result.mean)

    def test_no_trace_by_default(self, example6, fast_bipolar_config):
        result = SampledNBLEngine(example6, fast_bipolar_config).check()
        assert result.trace_samples == []

    def test_reproducible_with_seed(self, example6):
        config = NBLConfig(
            carrier=BipolarCarrier(), max_samples=20_000, convergence="fixed", seed=9
        )
        a = SampledNBLEngine(example6, config).check()
        b = SampledNBLEngine(example6, config).check()
        assert a.mean == pytest.approx(b.mean)

    def test_sn_block_shape(self, example6, fast_bipolar_config):
        engine = SampledNBLEngine(example6, fast_bipolar_config)
        samples = engine.sn_block(block_size=500)
        assert samples.shape == (500,)

    def test_result_metadata(self, example6, fast_bipolar_config):
        result = SampledNBLEngine(example6, fast_bipolar_config).check({1: True})
        assert result.engine == "sampled"
        assert result.bindings == {1: True}
        assert result.samples_used > 0


class TestCrossEngineAgreement:
    """The sampled engine must agree with the exact engine on small instances.

    The instances are kept at n·m = 12 with unit-power carriers so the
    decision margin is several standard errors wide at the test budget; the
    paper instances (including UNSAT ones) are covered by TestDecisions.
    """

    @pytest.mark.parametrize("seed", range(5))
    def test_random_small_instances(self, seed):
        from repro.cnf.generators import random_ksat

        formula = random_ksat(3, 4, 2, seed=seed)
        exact = SymbolicNBLEngine(formula, BipolarCarrier())
        config = NBLConfig(
            carrier=BipolarCarrier(),
            max_samples=240_000,
            block_size=40_000,
            min_samples=40_000,
            seed=seed + 100,
        )
        sampled = SampledNBLEngine(formula, config).check()
        assert sampled.satisfiable == exact.check().satisfiable
        # The estimate must also be statistically consistent with the exact
        # model count (mean = K for unit-power carriers).
        assert sampled.mean == pytest.approx(
            exact.expected_mean(), abs=6.0 * max(sampled.std_error, 1e-12)
        )
