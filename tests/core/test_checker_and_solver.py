"""Tests for Algorithm 1 entry points and the NBLSATSolver facade."""

from __future__ import annotations

import pytest

from repro.cnf.formula import CNFFormula
from repro.core.checker import ENGINE_NAMES, make_engine, nbl_sat_check
from repro.core.config import NBLConfig
from repro.core.sampled import SampledNBLEngine
from repro.core.solver import NBLSATSolver
from repro.core.symbolic import SymbolicNBLEngine
from repro.exceptions import EngineError
from repro.noise.telegraph import BipolarCarrier


class TestMakeEngine:
    def test_engine_names_constant(self):
        assert set(ENGINE_NAMES) == {"sampled", "symbolic"}

    def test_sampled(self, sat_instance, fast_bipolar_config):
        engine = make_engine(sat_instance, "sampled", fast_bipolar_config)
        assert isinstance(engine, SampledNBLEngine)
        assert engine.config is fast_bipolar_config

    def test_symbolic_uses_config_carrier(self, sat_instance, fast_bipolar_config):
        engine = make_engine(sat_instance, "symbolic", fast_bipolar_config)
        assert isinstance(engine, SymbolicNBLEngine)
        assert isinstance(engine.carrier, BipolarCarrier)

    def test_unknown_engine(self, sat_instance):
        with pytest.raises(EngineError):
            make_engine(sat_instance, "quantum")


class TestNblSatCheck:
    def test_symbolic_decisions(self, sat_instance, unsat_instance):
        assert nbl_sat_check(sat_instance, engine="symbolic").satisfiable
        assert not nbl_sat_check(unsat_instance, engine="symbolic").satisfiable

    def test_sampled_decision(self, sat_instance, fast_bipolar_config):
        result = nbl_sat_check(sat_instance, engine="sampled", config=fast_bipolar_config)
        assert result.satisfiable
        assert result.samples_used > 0

    def test_bindings_forwarded(self, sat_instance):
        result = nbl_sat_check(sat_instance, engine="symbolic", bindings={1: True})
        assert not result.satisfiable  # only model is ~x1 x2


class TestSolverFacade:
    def test_invalid_engine_rejected(self):
        with pytest.raises(EngineError):
            NBLSATSolver(engine="other")

    def test_check_and_solve_symbolic(self, sat_instance, unsat_instance):
        solver = NBLSATSolver(engine="symbolic")
        assert solver.check(sat_instance).satisfiable
        result = solver.solve(sat_instance)
        assert result.satisfiable and result.verified
        assert result.assignment == {1: False, 2: True}
        assert not solver.solve(unsat_instance).satisfiable

    def test_solve_sampled(self, sat_instance, fast_bipolar_config):
        solver = NBLSATSolver(engine="sampled", config=fast_bipolar_config)
        result = solver.solve(sat_instance)
        assert result.satisfiable and result.verified

    def test_solve_cube_variant(self, example6):
        solver = NBLSATSolver(engine="symbolic")
        result = solver.solve(example6, cube=True)
        assert result.satisfiable
        # Example 6 has models x1~x2 and ~x1x2: each variable individually is
        # a don't-care under the paper's rule.
        assert sorted(result.dont_care_variables) == [1, 2]

    def test_solver_reusable_across_instances(self, sat_instance, example7):
        solver = NBLSATSolver(engine="symbolic")
        assert solver.check(sat_instance).satisfiable
        assert not solver.check(example7).satisfiable

    def test_properties(self, fast_bipolar_config):
        solver = NBLSATSolver(engine="sampled", config=fast_bipolar_config)
        assert solver.engine_name == "sampled"
        assert solver.config is fast_bipolar_config


class TestEmptyFormulaHandling:
    def test_zero_clause_formula_rejected_by_sampled(self):
        formula = CNFFormula([], num_variables=2)
        config = NBLConfig(carrier=BipolarCarrier(), max_samples=1000)
        with pytest.raises(EngineError):
            make_engine(formula, "sampled", config)
