"""Tests for the carrier families in repro.noise."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import NoiseConfigError
from repro.noise.base import available_carriers, carrier_from_name
from repro.noise.gaussian import GaussianCarrier
from repro.noise.telegraph import BipolarCarrier, TelegraphCarrier
from repro.noise.uniform import UniformCarrier

ALL_CARRIERS = [
    UniformCarrier(),
    UniformCarrier(normalized=True),
    GaussianCarrier(),
    GaussianCarrier(std=2.0),
    BipolarCarrier(),
    BipolarCarrier(amplitude=0.5),
    TelegraphCarrier(switch_probability=0.2),
]


class TestRegistry:
    def test_all_families_registered(self):
        names = available_carriers()
        for expected in ("uniform", "gaussian", "bipolar", "telegraph"):
            assert expected in names

    def test_carrier_from_name(self):
        assert isinstance(carrier_from_name("uniform"), UniformCarrier)
        assert carrier_from_name("gaussian", std=3.0).std == 3.0

    def test_unknown_name_raises(self):
        with pytest.raises(NoiseConfigError):
            carrier_from_name("does-not-exist")


class TestStatisticalProperties:
    @pytest.mark.parametrize("carrier", ALL_CARRIERS, ids=lambda c: repr(c))
    def test_zero_mean(self, carrier, rng):
        samples = carrier.sample(rng, (50_000,))
        tolerance = 4.0 * np.sqrt(carrier.power / samples.size)
        assert abs(samples.mean()) < tolerance

    @pytest.mark.parametrize("carrier", ALL_CARRIERS, ids=lambda c: repr(c))
    def test_power_matches_declaration(self, carrier, rng):
        samples = carrier.sample(rng, (60_000,))
        measured = float(np.mean(samples**2))
        assert measured == pytest.approx(carrier.power, rel=0.05)

    @pytest.mark.parametrize("carrier", ALL_CARRIERS, ids=lambda c: repr(c))
    def test_fourth_moment_matches_declaration(self, carrier, rng):
        samples = carrier.sample(rng, (120_000,))
        measured = float(np.mean(samples**4))
        assert measured == pytest.approx(carrier.fourth_moment, rel=0.1)

    @pytest.mark.parametrize("carrier", ALL_CARRIERS, ids=lambda c: repr(c))
    def test_shape_respected(self, carrier, rng):
        assert carrier.sample(rng, (3, 4, 5)).shape == (3, 4, 5)


class TestUniformCarrier:
    def test_paper_default_power_is_one_twelfth(self):
        assert UniformCarrier().power == pytest.approx(1.0 / 12.0)

    def test_normalized_has_unit_power(self):
        assert UniformCarrier(normalized=True).power == pytest.approx(1.0)

    def test_samples_within_interval(self, rng):
        carrier = UniformCarrier(half_width=0.5)
        samples = carrier.sample(rng, (10_000,))
        assert samples.min() >= -0.5 and samples.max() <= 0.5

    def test_invalid_half_width(self):
        with pytest.raises(NoiseConfigError):
            UniformCarrier(half_width=0.0)


class TestBipolarAndTelegraph:
    def test_bipolar_values(self, rng):
        samples = BipolarCarrier(amplitude=2.0).sample(rng, (1_000,))
        assert set(np.unique(samples)) <= {-2.0, 2.0}

    def test_bipolar_square_is_constant(self, rng):
        samples = BipolarCarrier().sample(rng, (1_000,))
        assert np.allclose(samples**2, 1.0)

    def test_telegraph_values(self, rng):
        samples = TelegraphCarrier(switch_probability=0.3).sample(rng, (4, 500))
        assert set(np.unique(samples)) <= {-1.0, 1.0}

    def test_telegraph_temporal_correlation(self, rng):
        # With low switch probability, adjacent samples agree most of the time.
        samples = TelegraphCarrier(switch_probability=0.05).sample(rng, (1, 20_000))[0]
        agreement = np.mean(samples[1:] == samples[:-1])
        assert agreement > 0.9

    def test_telegraph_p_half_is_iid(self, rng):
        samples = TelegraphCarrier(switch_probability=0.5).sample(rng, (1, 50_000))[0]
        agreement = np.mean(samples[1:] == samples[:-1])
        assert agreement == pytest.approx(0.5, abs=0.02)

    def test_telegraph_sources_independent(self, rng):
        samples = TelegraphCarrier(switch_probability=0.1).sample(rng, (2, 50_000))
        correlation = np.mean(samples[0] * samples[1])
        assert abs(correlation) < 0.05

    def test_invalid_parameters(self):
        with pytest.raises(NoiseConfigError):
            BipolarCarrier(amplitude=0.0)
        with pytest.raises(NoiseConfigError):
            TelegraphCarrier(switch_probability=0.0)
        with pytest.raises(NoiseConfigError):
            TelegraphCarrier(switch_probability=1.5)


class TestEqualityAndDescription:
    def test_equality(self):
        assert UniformCarrier() == UniformCarrier()
        assert UniformCarrier() != UniformCarrier(half_width=1.0)
        assert GaussianCarrier() != BipolarCarrier()

    def test_describe_mentions_power(self):
        assert "power" in UniformCarrier().describe()
