"""Tests for repro.noise.bank and repro.noise.correlation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import NoiseConfigError
from repro.noise.bank import NEGATIVE, POSITIVE, NoiseBank, SourceIndex
from repro.noise.correlation import (
    correlation,
    correlation_matrix,
    max_off_diagonal_correlation,
    normalized_correlation,
)
from repro.noise.telegraph import BipolarCarrier
from repro.noise.uniform import UniformCarrier


class TestSourceIndex:
    def test_array_index(self):
        assert SourceIndex(2, 3, True).array_index() == (1, 2, POSITIVE)
        assert SourceIndex(1, 1, False).array_index() == (0, 0, NEGATIVE)

    def test_str(self):
        assert str(SourceIndex(1, 2, True)) == "N^1_x2"
        assert str(SourceIndex(3, 1, False)) == "N^3_~x1"


class TestNoiseBank:
    def test_block_shape(self):
        bank = NoiseBank(num_clauses=3, num_variables=2, seed=0)
        block = bank.sample_block(100)
        assert block.shape == (3, 2, 2, 100)

    def test_num_sources(self):
        assert NoiseBank(4, 5).num_sources == 40

    def test_samples_drawn_accumulates(self):
        bank = NoiseBank(1, 1, seed=0)
        bank.sample_block(10)
        bank.sample_block(5)
        assert bank.samples_drawn == 15

    def test_reproducible_with_seed(self):
        a = NoiseBank(2, 2, seed=3).sample_block(50)
        b = NoiseBank(2, 2, seed=3).sample_block(50)
        assert np.allclose(a, b)

    def test_consecutive_blocks_differ(self):
        bank = NoiseBank(2, 2, seed=3)
        assert not np.allclose(bank.sample_block(50), bank.sample_block(50))

    def test_default_carrier_is_paper_uniform(self):
        bank = NoiseBank(1, 1)
        assert isinstance(bank.carrier, UniformCarrier)
        assert bank.carrier.power == pytest.approx(1.0 / 12.0)

    def test_source_extraction(self):
        bank = NoiseBank(2, 3, seed=0)
        block = bank.sample_block(20)
        source = bank.source(SourceIndex(2, 3, False), block)
        assert np.array_equal(source, block[1, 2, NEGATIVE])

    def test_source_index_validation(self):
        bank = NoiseBank(2, 2, seed=0)
        block = bank.sample_block(5)
        with pytest.raises(NoiseConfigError):
            bank.source(SourceIndex(3, 1, True), block)
        with pytest.raises(NoiseConfigError):
            bank.source(SourceIndex(1, 5, True), block)

    def test_all_indices_cover_every_source(self):
        bank = NoiseBank(2, 3)
        indices = bank.all_indices()
        assert len(indices) == bank.num_sources
        assert len(set(indices)) == bank.num_sources

    def test_invalid_construction(self):
        with pytest.raises((ValueError, TypeError)):
            NoiseBank(0, 2)
        with pytest.raises(NoiseConfigError):
            NoiseBank(1, 1, carrier="uniform")

    def test_invalid_block_size(self):
        with pytest.raises((ValueError, TypeError)):
            NoiseBank(1, 1).sample_block(0)

    def test_pairwise_orthogonality_of_sources(self):
        """Definition 7/8: distinct basis sources are (empirically) uncorrelated."""
        bank = NoiseBank(2, 2, carrier=BipolarCarrier(), seed=1)
        block = bank.sample_block(60_000)
        flat = block.reshape(bank.num_sources, -1)
        assert max_off_diagonal_correlation(flat) < 0.03


class TestCorrelationHelpers:
    def test_correlation_of_identical_signal_is_power(self, rng):
        x = rng.uniform(-0.5, 0.5, 10_000)
        assert correlation(x, x) == pytest.approx(np.mean(x**2))

    def test_correlation_shape_mismatch(self):
        with pytest.raises(ValueError):
            correlation(np.ones(3), np.ones(4))

    def test_correlation_empty(self):
        with pytest.raises(ValueError):
            correlation(np.array([]), np.array([]))

    def test_normalized_correlation_bounds(self, rng):
        x = rng.normal(size=5_000)
        assert normalized_correlation(x, x) == pytest.approx(1.0)
        assert abs(normalized_correlation(x, rng.normal(size=5_000))) < 0.1

    def test_normalized_correlation_zero_signal(self):
        assert normalized_correlation(np.zeros(10), np.zeros(10)) == 0.0

    def test_correlation_matrix_diagonal(self, rng):
        sources = rng.normal(size=(3, 20_000))
        matrix = correlation_matrix(sources)
        assert matrix.shape == (3, 3)
        for i in range(3):
            assert matrix[i, i] == pytest.approx(np.mean(sources[i] ** 2))

    def test_correlation_matrix_requires_2d(self):
        with pytest.raises(ValueError):
            correlation_matrix(np.ones(5))

    def test_product_of_two_sources_orthogonal_to_each(self, rng):
        """The hyperspace property: Z_ij = V_i*V_j is orthogonal to V_k."""
        v = rng.uniform(-0.5, 0.5, (3, 200_000))
        product = v[0] * v[1]
        for k in range(3):
            assert abs(normalized_correlation(product, v[k])) < 0.02
