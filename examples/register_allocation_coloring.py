"""Register allocation as graph colouring, swept through one incremental session.

Another workload from the paper's motivation (EDA/compilers): deciding
whether an interference graph can be coloured with k registers is a SAT
question, and finding the *minimum* feasible register count is a sweep of
closely related SAT questions. This example runs that k-sweep the way a
register allocator would:

1. encode the interference graph once with the maximum register budget K;
2. open a single incremental CDCL session over that encoding;
3. for each candidate k, *assume* (rather than assert) that the registers
   ``k .. K-1`` are unused — one ``solve(assumptions=...)`` per k, with
   learned clauses and branching activity carried from query to query;
4. cross-check every verdict against a fresh classical solve and, for the
   encodings small enough, the exact NBL engine.

Run with::

    python examples/register_allocation_coloring.py
"""

from __future__ import annotations

from repro import NBLSATSolver
from repro.cnf import graph_coloring_formula
from repro.incremental import make_session
from repro.solvers import CDCLSolver

#: Live ranges of a small straight-line program; an edge means the two
#: values are live at the same time and cannot share a register.
INTERFERENCE_EDGES = [
    (0, 1), (0, 2), (1, 2),      # a triangle of long-lived temporaries
    (2, 3), (3, 4), (4, 0),      # a cycle closing back on the first value
    (3, 5), (4, 5),              # a short-lived value overlapping the tail
]
NUM_VALUES = 6
VALUE_NAMES = ["t0", "t1", "t2", "t3", "t4", "t5"]
#: Maximum register budget encoded up front; the sweep explores 2..K.
MAX_REGISTERS = 4
#: The symbolic NBL engine enumerates minterms, so cross-check with it
#: only while the per-k encoding stays this small.
NBL_VARIABLE_LIMIT = 20


def color_var(value: int, color: int) -> int:
    """CNF variable of "value takes register color" in the K-encoding."""
    return value * MAX_REGISTERS + color + 1


def blocked_registers(k: int) -> list[int]:
    """Assumptions restricting the K-register encoding to k registers."""
    return [
        -color_var(value, color)
        for value in range(NUM_VALUES)
        for color in range(k, MAX_REGISTERS)
    ]


def registers_of(assignment, num_colors: int) -> dict[str, int]:
    """Decode the colouring variables back into a value -> register map."""
    allocation = {}
    for value in range(NUM_VALUES):
        for color in range(num_colors):
            if assignment[value * MAX_REGISTERS + color + 1]:
                allocation[VALUE_NAMES[value]] = color
                break
    return allocation


def main() -> None:
    print(
        f"Interference graph: {NUM_VALUES} values, "
        f"{len(INTERFERENCE_EDGES)} conflicts"
    )
    formula = graph_coloring_formula(
        INTERFERENCE_EDGES, NUM_VALUES, MAX_REGISTERS
    )
    print(
        f"One encoding with K={MAX_REGISTERS} registers: "
        f"n={formula.num_variables}, m={formula.num_clauses}; "
        f"sweeping k by assumption"
    )
    session = make_session("cdcl", base_formula=formula)

    for num_registers in range(2, MAX_REGISTERS + 1):
        assumptions = blocked_registers(num_registers)
        result = session.solve(assumptions=assumptions)

        # Cross-checks: a cold classical solve of the same query, and the
        # exact NBL engine on the dedicated k-register encoding.
        fresh = CDCLSolver().solve(formula.with_assumptions(assumptions))
        per_k = graph_coloring_formula(
            INTERFERENCE_EDGES, NUM_VALUES, num_registers
        )
        agreement = f"fresh CDCL agrees: {fresh.status == result.status}"
        if per_k.num_variables <= NBL_VARIABLE_LIMIT:
            check = NBLSATSolver(engine="symbolic").check(per_k)
            agreement += f", NBL-SAT agrees: {check.satisfiable == result.is_sat}"
        status = "feasible" if result.is_sat else "infeasible"
        print(
            f"  {num_registers} registers: session says {status:<10} "
            f"({result.stats.decisions} decisions, "
            f"{result.stats.conflicts} conflicts; {agreement})"
        )
        if result.is_sat:
            allocation = registers_of(result.assignment, num_registers)
            print(f"     allocation found by the session: {allocation}")
            break

    totals = session.total_stats
    print(
        f"Session totals over {session.num_queries} queries: "
        f"{totals.decisions} decisions, {totals.conflicts} conflicts, "
        f"{totals.learned_clauses} learned clauses retained"
    )


if __name__ == "__main__":
    main()
