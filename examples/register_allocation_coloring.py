"""Register allocation as graph colouring, solved with NBL-SAT and baselines.

Another workload from the paper's motivation (EDA/compilers): deciding
whether an interference graph can be coloured with k registers is a SAT
question. The example builds a small interference graph, asks NBL-SAT for
the minimum feasible register count, and cross-checks the verdicts with the
classical CDCL baseline.

Run with::

    python examples/register_allocation_coloring.py
"""

from __future__ import annotations

from repro import NBLSATSolver
from repro.cnf import graph_coloring_formula
from repro.solvers import CDCLSolver

#: Live ranges of a small straight-line program; an edge means the two
#: values are live at the same time and cannot share a register.
INTERFERENCE_EDGES = [
    (0, 1), (0, 2), (1, 2),      # a triangle of long-lived temporaries
    (2, 3), (3, 4), (4, 0),      # a cycle closing back on the first value
    (3, 5), (4, 5),              # a short-lived value overlapping the tail
]
NUM_VALUES = 6
VALUE_NAMES = ["t0", "t1", "t2", "t3", "t4", "t5"]


def registers_of(assignment, num_colors: int) -> dict[str, int]:
    """Decode the colouring variables back into a value -> register map."""
    allocation = {}
    for value in range(NUM_VALUES):
        for color in range(num_colors):
            variable = value * num_colors + color + 1
            if assignment[variable]:
                allocation[VALUE_NAMES[value]] = color
                break
    return allocation


def main() -> None:
    print(
        f"Interference graph: {NUM_VALUES} values, {len(INTERFERENCE_EDGES)} conflicts"
    )
    nbl = NBLSATSolver(engine="symbolic")
    cdcl = CDCLSolver()

    for num_registers in (2, 3, 4):
        formula = graph_coloring_formula(INTERFERENCE_EDGES, NUM_VALUES, num_registers)
        check = nbl.check(formula)
        classical = cdcl.solve(formula)
        status = "feasible" if check.satisfiable else "infeasible"
        print(
            f"  {num_registers} registers: NBL-SAT says {status:<10} "
            f"(n={formula.num_variables}, m={formula.num_clauses}; "
            f"CDCL agrees: {classical.is_sat == check.satisfiable})"
        )
        if check.satisfiable:
            solution = nbl.solve(formula)
            allocation = registers_of(solution.assignment, num_registers)
            print(f"     allocation found by Algorithm 2: {allocation}")
            break


if __name__ == "__main__":
    main()
