"""Quickstart: the NBL-SAT checker and solver on the paper's own instances.

Run with::

    python examples/quickstart.py

The script
1. builds the Section IV SAT/UNSAT instances,
2. runs the single-operation satisfiability check (Algorithm 1) with both
   the exact (symbolic) engine and the Monte-Carlo (sampled) engine,
3. recovers the satisfying assignment with Algorithm 2,
4. prints a miniature version of the paper's Figure 1.
"""

from __future__ import annotations

from repro import NBLConfig, NBLSATSolver
from repro.cnf import section4_sat_instance, section4_unsat_instance
from repro.experiments import run_figure1
from repro.noise import UniformCarrier


def main() -> None:
    sat_formula = section4_sat_instance()
    unsat_formula = section4_unsat_instance()
    print("S_SAT   =", sat_formula)
    print("S_UNSAT =", unsat_formula)
    print()

    # --- Algorithm 1 with the exact engine (the ideal correlator) ----------
    exact = NBLSATSolver(engine="symbolic")
    print("[symbolic] S_SAT   ->", exact.check(sat_formula))
    print("[symbolic] S_UNSAT ->", exact.check(unsat_formula))

    # --- Algorithm 1 with the sampled engine (the paper's MATLAB setup) ----
    config = NBLConfig(
        carrier=UniformCarrier(),  # uniform [-0.5, 0.5], as in the paper
        max_samples=400_000,
        block_size=50_000,
        seed=2026,
    )
    sampled = NBLSATSolver(engine="sampled", config=config)
    print("[sampled ] S_SAT   ->", sampled.check(sat_formula))
    print("[sampled ] S_UNSAT ->", sampled.check(unsat_formula))
    print()

    # --- Algorithm 2: recover the satisfying assignment --------------------
    solution = exact.solve(sat_formula)
    print(
        f"Algorithm 2 found {solution.assignment} in {solution.num_checks} "
        f"NBL check operations (verified={solution.verified})"
    )
    print()

    # --- A miniature Figure 1 ----------------------------------------------
    figure = run_figure1(max_samples=300_000, seed=0)
    print(figure.record.to_text())
    print()
    print(figure.ascii_plot(width=70, height=16))


if __name__ == "__main__":
    main()
