"""Section V realizations: analog engine, carrier families, and the hybrid solver.

This example exercises the "realizing an NBL-based SAT engine" part of the
paper:

1. compiles the Section IV SAT instance into the analog block diagram and
   prints its bill of materials (noise sources, adders, multipliers,
   correlator) before running the check on the simulated hardware;
2. compares the carrier families (uniform noise, RTW/bipolar, sinusoids)
   on the same instance;
3. runs the hybrid CPU + NBL-coprocessor solver on a random 3-SAT instance
   and reports the coprocessor traffic.

Run with::

    python examples/hardware_realizations.py
"""

from __future__ import annotations

from repro.analog import AnalogNBLEngine
from repro.cnf import random_ksat, section4_sat_instance
from repro.core import NBLConfig, SampledNBLEngine
from repro.hybrid import HybridNBLSolver
from repro.noise import BipolarCarrier, UniformCarrier
from repro.rtw import RTWNBLEngine
from repro.sbl import SBLNBLEngine
from repro.solvers import DPLLSolver


def analog_demo() -> None:
    formula = section4_sat_instance()
    engine = AnalogNBLEngine(
        formula, carrier=BipolarCarrier(), seed=7, max_samples=120_000
    )
    print("Analog NBL-SAT engine for S_SAT — bill of materials:")
    for component, count in sorted(engine.component_counts().items()):
        print(f"  {component:<22} x {count}")
    result = engine.check()
    print(f"  correlator output: mean={result.mean:.3f} -> "
          f"{'SAT' if result.satisfiable else 'UNSAT'} "
          f"({result.samples_used} samples)\n")


def carrier_demo() -> None:
    formula = section4_sat_instance()
    print("Carrier families on S_SAT (mean in one-minterm units, exact value is 1):")
    realizations = [
        ("uniform [-0.5, 0.5] noise", SampledNBLEngine(
            formula, NBLConfig(carrier=UniformCarrier(), max_samples=300_000,
                               convergence="fixed", seed=3))),
        ("bipolar (+-1) noise", SampledNBLEngine(
            formula, NBLConfig(carrier=BipolarCarrier(), max_samples=100_000,
                               convergence="fixed", seed=3))),
        ("random telegraph wave", RTWNBLEngine(formula, switch_probability=0.2, seed=3)),
        ("sinusoids (dithered plan)", SBLNBLEngine(formula, seed=3, max_samples=150_000)),
    ]
    for name, engine in realizations:
        result = engine.check()
        units = result.mean / result.expected_minterm_signal
        print(f"  {name:<28} mean={units:6.2f}  verdict="
              f"{'SAT' if result.satisfiable else 'UNSAT'}")
    print()


def hybrid_demo() -> None:
    formula = random_ksat(14, 59, 3, seed=5)
    plain = DPLLSolver().solve(formula)
    hybrid = HybridNBLSolver().solve(formula)
    print("Hybrid CPU + NBL-coprocessor solver on random 3-SAT (n=14, m=59):")
    print(f"  plain DPLL : {plain.status}, {plain.stats.decisions} decisions")
    print(f"  hybrid     : {hybrid.status}, {hybrid.stats.decisions} decisions, "
          f"{hybrid.stats.evaluations} coprocessor checks")


def main() -> None:
    analog_demo()
    carrier_demo()
    hybrid_demo()


if __name__ == "__main__":
    main()
