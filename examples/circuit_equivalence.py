"""Combinational equivalence checking with NBL-SAT (an EDA workload).

The paper motivates SAT with logic-synthesis and formal-verification
applications. This example builds that workload from scratch:

1. two small gate-level netlists that should implement the same function
   (a reference two-bit comparator and an "optimised" version), plus a
   deliberately buggy variant;
2. a Tseitin transformation of the miter circuit (XOR of the two outputs)
   into CNF;
3. an NBL-SAT equivalence check: the miter is satisfiable iff the circuits
   differ on some input, so UNSAT means "equivalent".

Run with::

    python examples/circuit_equivalence.py
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import NBLSATSolver
from repro.cnf import CNFFormula
from repro.solvers import CDCLSolver


@dataclass
class CircuitBuilder:
    """Tiny structural netlist builder with a Tseitin CNF encoder.

    Gates are encoded on the fly: every signal is a CNF variable, and each
    gate adds the clauses that force its output variable to equal the gate
    function of its input variables.
    """

    num_variables: int = 0
    clauses: list[list[int]] = field(default_factory=list)

    def new_signal(self) -> int:
        """Allocate a fresh signal (CNF variable)."""
        self.num_variables += 1
        return self.num_variables

    def primary_inputs(self, count: int) -> list[int]:
        """Allocate ``count`` primary inputs."""
        return [self.new_signal() for _ in range(count)]

    def gate_and(self, a: int, b: int) -> int:
        out = self.new_signal()
        self.clauses += [[-a, -b, out], [a, -out], [b, -out]]
        return out

    def gate_or(self, a: int, b: int) -> int:
        out = self.new_signal()
        self.clauses += [[a, b, -out], [-a, out], [-b, out]]
        return out

    def gate_not(self, a: int) -> int:
        out = self.new_signal()
        self.clauses += [[-a, -out], [a, out]]
        return out

    def gate_xor(self, a: int, b: int) -> int:
        out = self.new_signal()
        self.clauses += [
            [-a, -b, -out],
            [a, b, -out],
            [a, -b, out],
            [-a, b, out],
        ]
        return out

    def gate_xnor(self, a: int, b: int) -> int:
        return self.gate_not(self.gate_xor(a, b))

    def assert_true(self, signal: int) -> None:
        """Constrain a signal to 1 (used for the miter output)."""
        self.clauses.append([signal])

    def formula(self) -> CNFFormula:
        return CNFFormula.from_ints(self.clauses, num_variables=self.num_variables)


def equality_comparator_reference(builder: CircuitBuilder, a: list[int], b: list[int]) -> int:
    """Reference 2-bit equality comparator: (a0 XNOR b0) AND (a1 XNOR b1)."""
    eq0 = builder.gate_xnor(a[0], b[0])
    eq1 = builder.gate_xnor(a[1], b[1])
    return builder.gate_and(eq0, eq1)


def equality_comparator_optimized(builder: CircuitBuilder, a: list[int], b: list[int]) -> int:
    """"Optimised" comparator: NOR of the per-bit differences."""
    diff0 = builder.gate_xor(a[0], b[0])
    diff1 = builder.gate_xor(a[1], b[1])
    any_diff = builder.gate_or(diff0, diff1)
    return builder.gate_not(any_diff)


def equality_comparator_buggy(builder: CircuitBuilder, a: list[int], b: list[int]) -> int:
    """Buggy comparator: the second bit is compared with XOR instead of XNOR."""
    eq0 = builder.gate_xnor(a[0], b[0])
    bad1 = builder.gate_xor(a[1], b[1])
    return builder.gate_and(eq0, bad1)


def build_miter(variant) -> CNFFormula:
    """CNF of the miter between the reference comparator and ``variant``."""
    builder = CircuitBuilder()
    a = builder.primary_inputs(2)
    b = builder.primary_inputs(2)
    reference_out = equality_comparator_reference(builder, a, b)
    variant_out = variant(builder, a, b)
    miter = builder.gate_xor(reference_out, variant_out)
    builder.assert_true(miter)
    return builder.formula()


def report(name: str, formula: CNFFormula) -> None:
    nbl = NBLSATSolver(engine="symbolic").check(formula)
    cdcl = CDCLSolver().solve(formula)
    verdict = "NOT equivalent (counterexample exists)" if nbl.satisfiable else "equivalent"
    print(
        f"{name:<22} n={formula.num_variables:>2} m={formula.num_clauses:>2}  "
        f"NBL: {'SAT' if nbl.satisfiable else 'UNSAT'}  CDCL: {cdcl.status:<5}  -> {verdict}"
    )


def main() -> None:
    print("Combinational equivalence checking via NBL-SAT (miter is SAT <=> circuits differ)\n")
    report("optimised comparator", build_miter(equality_comparator_optimized))
    report("buggy comparator", build_miter(equality_comparator_buggy))

    # Show the counterexample for the buggy circuit using Algorithm 2.
    buggy = build_miter(equality_comparator_buggy)
    solution = NBLSATSolver(engine="symbolic").solve(buggy)
    inputs = {f"a{i}": solution.assignment[i + 1] for i in range(2)}
    inputs |= {f"b{i}": solution.assignment[i + 3] for i in range(2)}
    print("\nCounterexample input found by Algorithm 2 for the buggy circuit:", inputs)


if __name__ == "__main__":
    main()
