"""Combinational equivalence checking through one incremental session.

The paper motivates SAT with logic-synthesis and formal-verification
applications. This example builds that workload from scratch:

1. two small gate-level netlists that should implement the same function
   (a reference two-bit comparator and an "optimised" version), plus a
   deliberately buggy variant;
2. a Tseitin transformation of *all three* circuits over shared primary
   inputs into one CNF, with one miter output (XOR against the reference)
   per candidate circuit;
3. equivalence queries against a single incremental CDCL session: asserting
   miter output ``m`` as an *assumption* asks "does the candidate differ
   from the reference on some input?" — SAT means "not equivalent", UNSAT
   means "equivalent", and consecutive queries share learned clauses about
   the common reference circuit;
4. a scoped (``push``/``pop``) query pinning specific input values, and an
   NBL-SAT + fresh-CDCL cross-check of every verdict.

Run with::

    python examples/circuit_equivalence.py
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import NBLSATSolver
from repro.cnf import CNFFormula
from repro.incremental import make_session
from repro.solvers import CDCLSolver


@dataclass
class CircuitBuilder:
    """Tiny structural netlist builder with a Tseitin CNF encoder.

    Gates are encoded on the fly: every signal is a CNF variable, and each
    gate adds the clauses that force its output variable to equal the gate
    function of its input variables.
    """

    num_variables: int = 0
    clauses: list[list[int]] = field(default_factory=list)

    def new_signal(self) -> int:
        """Allocate a fresh signal (CNF variable)."""
        self.num_variables += 1
        return self.num_variables

    def primary_inputs(self, count: int) -> list[int]:
        """Allocate ``count`` primary inputs."""
        return [self.new_signal() for _ in range(count)]

    def gate_and(self, a: int, b: int) -> int:
        out = self.new_signal()
        self.clauses += [[-a, -b, out], [a, -out], [b, -out]]
        return out

    def gate_or(self, a: int, b: int) -> int:
        out = self.new_signal()
        self.clauses += [[a, b, -out], [-a, out], [-b, out]]
        return out

    def gate_not(self, a: int) -> int:
        out = self.new_signal()
        self.clauses += [[-a, -out], [a, out]]
        return out

    def gate_xor(self, a: int, b: int) -> int:
        out = self.new_signal()
        self.clauses += [
            [-a, -b, -out],
            [a, b, -out],
            [a, -b, out],
            [-a, b, out],
        ]
        return out

    def gate_xnor(self, a: int, b: int) -> int:
        return self.gate_not(self.gate_xor(a, b))

    def assert_true(self, signal: int) -> None:
        """Constrain a signal to 1 (used for the miter output)."""
        self.clauses.append([signal])

    def formula(self) -> CNFFormula:
        return CNFFormula.from_ints(self.clauses, num_variables=self.num_variables)


def equality_comparator_reference(builder: CircuitBuilder, a: list[int], b: list[int]) -> int:
    """Reference 2-bit equality comparator: (a0 XNOR b0) AND (a1 XNOR b1)."""
    eq0 = builder.gate_xnor(a[0], b[0])
    eq1 = builder.gate_xnor(a[1], b[1])
    return builder.gate_and(eq0, eq1)


def equality_comparator_optimized(builder: CircuitBuilder, a: list[int], b: list[int]) -> int:
    """"Optimised" comparator: NOR of the per-bit differences."""
    diff0 = builder.gate_xor(a[0], b[0])
    diff1 = builder.gate_xor(a[1], b[1])
    any_diff = builder.gate_or(diff0, diff1)
    return builder.gate_not(any_diff)


def equality_comparator_buggy(builder: CircuitBuilder, a: list[int], b: list[int]) -> int:
    """Buggy comparator: the second bit is compared with XOR instead of XNOR."""
    eq0 = builder.gate_xnor(a[0], b[0])
    bad1 = builder.gate_xor(a[1], b[1])
    return builder.gate_and(eq0, bad1)


def build_miter(variant) -> CNFFormula:
    """CNF of the standalone miter between the reference and ``variant``.

    Used for the NBL-SAT cross-check; the session path instead shares one
    multi-miter encoding across all candidates (see :func:`build_shared`).
    """
    builder = CircuitBuilder()
    a = builder.primary_inputs(2)
    b = builder.primary_inputs(2)
    reference_out = equality_comparator_reference(builder, a, b)
    variant_out = variant(builder, a, b)
    miter = builder.gate_xor(reference_out, variant_out)
    builder.assert_true(miter)
    return builder.formula()


CANDIDATES = [
    ("optimised comparator", equality_comparator_optimized),
    ("buggy comparator", equality_comparator_buggy),
]


def build_shared() -> tuple[CNFFormula, list[int], list[int]]:
    """One CNF holding the reference and every candidate over shared inputs.

    Returns ``(formula, input_signals, miter_signals)`` where
    ``miter_signals[i]`` is true iff candidate ``i`` differs from the
    reference on the (shared) primary inputs. Nothing asserts any miter —
    each equivalence query *assumes* one of them instead.
    """
    builder = CircuitBuilder()
    a = builder.primary_inputs(2)
    b = builder.primary_inputs(2)
    reference_out = equality_comparator_reference(builder, a, b)
    miters = [
        builder.gate_xor(reference_out, variant(builder, a, b))
        for _, variant in CANDIDATES
    ]
    return builder.formula(), a + b, miters


def main() -> None:
    print(
        "Combinational equivalence checking via one incremental session\n"
        "(assuming a miter output is SAT <=> that candidate differs from "
        "the reference)\n"
    )
    formula, inputs, miters = build_shared()
    session = make_session("cdcl", base_formula=formula)
    print(
        f"Shared encoding: n={formula.num_variables}, m={formula.num_clauses}, "
        f"{len(miters)} candidate miters, one CDCL session\n"
    )

    for (name, variant), miter in zip(CANDIDATES, miters):
        result = session.solve(assumptions=[miter])
        # Cross-check against the exact NBL engine and a cold CDCL solve of
        # the standalone miter for this candidate.
        standalone = build_miter(variant)
        nbl = NBLSATSolver(engine="symbolic").check(standalone)
        cdcl = CDCLSolver().solve(standalone)
        verdict = (
            "NOT equivalent (counterexample exists)"
            if result.is_sat
            else "equivalent"
        )
        print(
            f"{name:<22} session: {result.status:<5} "
            f"NBL: {'SAT' if nbl.satisfiable else 'UNSAT':<5} "
            f"cold CDCL: {cdcl.status:<5} -> {verdict}"
        )
        if result.is_sat:
            counterexample = {
                label: result.assignment[signal]
                for label, signal in zip(("a0", "a1", "b0", "b1"), inputs)
            }
            print(f"     counterexample input: {counterexample}")

    # Scoped query: are the circuits equivalent on the diagonal a == b?
    # push/pop retracts the input pinning afterwards without disturbing
    # what the session learned about the shared circuitry.
    buggy_miter = miters[1]
    with session.scope():
        a0, a1, b0, b1 = inputs
        for bit_a, bit_b in ((a0, b0), (a1, b1)):
            session.add_clause([-bit_a, bit_b])
            session.add_clause([bit_a, -bit_b])
        scoped = session.solve(assumptions=[buggy_miter])
        print(
            f"\nbuggy comparator restricted to a == b: {scoped.status} "
            f"(differs even on equal inputs: {scoped.is_sat})"
        )
    unrestricted = session.solve(assumptions=[buggy_miter])
    print(f"after pop, unrestricted again: {unrestricted.status}")
    totals = session.total_stats
    print(
        f"\nSession totals over {session.num_queries} queries: "
        f"{totals.decisions} decisions, {totals.conflicts} conflicts, "
        f"{totals.learned_clauses} learned clauses"
    )


if __name__ == "__main__":
    main()
