"""Pytest rootdir hook: make ``src/`` importable even without installation.

The project uses a src-layout; installing with ``pip install -e .`` (or
``python setup.py develop`` on offline machines without the ``wheel``
package) is the normal route, but adding ``src`` to ``sys.path`` here lets
``pytest`` and the benchmark harness run straight from a fresh checkout.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
