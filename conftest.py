"""Pytest rootdir hooks: src-layout imports and the ``slow`` marker.

The project uses a src-layout; installing with ``pip install -e .`` (or
``python setup.py develop`` on offline machines without the ``wheel``
package) is the normal route, but adding ``src`` to ``sys.path`` here lets
``pytest`` and the benchmark harness run straight from a fresh checkout.

Tests marked ``@pytest.mark.slow`` (extended fuzzing rounds, generous
timeout budgets) are skipped by default so the tier-1 run stays fast; run
them with ``pytest --runslow`` (the nightly CI job does) or deselect them
explicitly with ``-m "not slow"``.
"""

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


def pytest_addoption(parser):
    parser.addoption(
        "--runslow",
        action="store_true",
        default=False,
        help="run tests marked 'slow' (extended fuzz/timeout suites)",
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "slow: long-running fuzz/timeout tests, skipped unless --runslow is given",
    )


def pytest_collection_modifyitems(config, items):
    if config.getoption("--runslow"):
        return
    skip_slow = pytest.mark.skip(reason="slow test: pass --runslow to run it")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)
