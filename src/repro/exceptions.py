"""Exception hierarchy for the NBL-SAT reproduction library.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything raised by this package with a single ``except`` clause while
still being able to discriminate the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the :mod:`repro` package."""


class CNFError(ReproError):
    """Raised for malformed CNF objects (bad literals, empty variables, ...)."""


class DimacsParseError(CNFError):
    """Raised when a DIMACS CNF file or string cannot be parsed."""


class AssignmentError(ReproError):
    """Raised for inconsistent or incomplete variable assignments."""


class NoiseConfigError(ReproError):
    """Raised when a noise carrier or noise bank is configured incorrectly."""


class HyperspaceError(ReproError):
    """Raised for invalid hyperspace constructions (bad bindings, sizes)."""


class EngineError(ReproError):
    """Raised when an NBL-SAT engine is used inconsistently."""


class ConvergenceError(EngineError):
    """Raised when a sampled check fails to reach its convergence target."""


class SolverError(ReproError):
    """Raised by the baseline SAT solvers for invalid inputs or states."""


class SolverTimeoutError(SolverError):
    """Raised inside a solver when its cooperative wall-clock budget expires.

    :meth:`repro.solvers.base.SATSolver.solve` catches this and converts it
    into an ``UNKNOWN`` result, so callers only see the exception if they
    invoke the internal search directly.
    """


class PreprocessError(ReproError):
    """Raised by the inprocessing pipeline for invalid configurations or maps."""


class ProofError(ReproError):
    """Raised for malformed DRAT proofs or misused proof logs."""


class RuntimeSubsystemError(ReproError):
    """Raised by the batch/portfolio runtime for invalid jobs or pool states."""


class CacheLockError(RuntimeSubsystemError):
    """Raised when a cross-process shard lease cannot be acquired in time.

    The solve service treats this as a *degradation* signal (serve the
    verdict without persisting it), never as a request failure.
    """


class CachePersistError(RuntimeSubsystemError):
    """Raised when a verdict could not be durably appended to its shard.

    The entry is still inserted into the in-memory cache before this is
    raised — the process keeps serving warm — and the next successful
    compaction folds the unpersisted entry into the snapshot, healing
    the gap. Callers (the solve service) degrade instead of failing.
    """


class FaultPlanError(ReproError):
    """Raised for malformed fault plans or unknown fault points/kinds."""


class ServiceError(ReproError):
    """Raised by :class:`repro.service.ServiceClient` for transport failures.

    Wraps connection resets, timeouts, abrupt EOF and torn response lines
    in one typed error, with the request ids still awaiting responses
    attached as :attr:`pending` so callers can re-submit them (safe:
    the server's cache/dedup layer absorbs duplicate solves).
    """

    def __init__(self, message: str, pending: tuple = ()) -> None:
        super().__init__(message)
        self.pending = tuple(pending)


class NetlistError(ReproError):
    """Raised for malformed analog netlists (dangling ports, cycles, ...)."""


class FrequencyPlanError(ReproError):
    """Raised when a sinusoid-based-logic frequency plan cannot be built."""


class ExperimentError(ReproError):
    """Raised by the experiment harness for invalid experiment setups."""
