"""Cross-process file leases for shared cache directories.

:class:`FileLease` is the lock-per-shard primitive that lets N ``repro
serve`` processes share one cache directory safely: every WAL append,
compaction and recovery replay happens under the shard's lease, so no
process ever reads a half-written record of another or truncates a log
someone else is appending to.

The protocol is a classic lock-file lease:

* **Acquire** — atomically create ``shard-NNN.lock`` with
  ``O_CREAT | O_EXCL`` and write the holder's identity (PID, a unique
  nonce, acquire + heartbeat timestamps) into it. ``O_EXCL`` makes the
  create itself the mutual exclusion: exactly one process wins.
* **Heartbeat** — a holder doing slow work (a large compaction)
  refreshes the heartbeat timestamp in place so waiters keep treating
  the lease as live.
* **Stale takeover** — a waiter that finds the lock held checks the
  holder: a PID that no longer exists, or a heartbeat older than
  ``lease_timeout``, marks the lease stale (its holder crashed while
  holding it — SIGKILL leaves lock files behind by design). Takeover is
  raced through an atomic ``os.rename`` to a unique name, so exactly
  one waiter reclaims the lock; everyone else just retries the create.

Leases are deliberately *short-critical-section* locks: hold one for a
single append or one compaction, never across a solve. Waiters poll with
a small sleep; :func:`repro.faults.fire` is threaded through acquisition
(point ``shards.lock.acquire``) so chaos tests can inject contention,
delays and acquisition failures deterministically.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Optional

from repro import faults as _faults
from repro.exceptions import CacheLockError

#: Default staleness threshold (seconds): a lease whose heartbeat is
#: older than this is treated as abandoned by a dead holder.
DEFAULT_LEASE_TIMEOUT = 10.0

#: Poll interval (seconds) while waiting for a held lease.
_RETRY_INTERVAL = 0.005


def _pid_alive(pid: int) -> bool:
    """Best-effort liveness probe for a PID on this host."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    except OSError:
        return True  # unknown — err on the side of "alive"
    return True


class FileLease:
    """One cross-process lease backed by an ``O_EXCL`` lock file.

    Not reentrant: one instance holds or does not hold; callers (the
    sharded cache) serialise per-shard work behind a thread lock first,
    so the lease only mediates *between* processes (or between
    independent cache instances in one process, which behave exactly
    like two processes here).

    Parameters
    ----------
    path:
        The lock-file path (conventionally ``<resource>.lock``).
    lease_timeout:
        Heartbeat age (seconds) after which a held lease counts as stale
        and may be taken over; also the default acquire-wait bound.
    """

    def __init__(
        self,
        path,
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
    ) -> None:
        if lease_timeout <= 0:
            raise CacheLockError(
                f"lease_timeout must be positive, got {lease_timeout}"
            )
        self.path = os.fspath(path)
        self.lease_timeout = float(lease_timeout)
        self._nonce = f"{os.getpid()}-{id(self):x}"
        self._held = False
        self._mutex = threading.Lock()
        self.takeovers = 0  # stale leases this instance reclaimed

    @property
    def held(self) -> bool:
        """``True`` while this instance holds the lease."""
        return self._held

    def _payload(self, acquired_at: float) -> bytes:
        now = time.time()
        return json.dumps(
            {
                "pid": os.getpid(),
                "nonce": self._nonce,
                "acquired": acquired_at,
                "heartbeat": now,
            }
        ).encode("utf-8")

    def _read_holder(self) -> Optional[dict]:
        """The current lock file's holder record; ``None`` when unreadable."""
        try:
            with open(self.path, "rb") as handle:
                return json.loads(handle.read().decode("utf-8"))
        except FileNotFoundError:
            raise
        except Exception:  # noqa: BLE001 — a torn lock write is possible
            return None

    def _is_stale(self, holder: Optional[dict]) -> bool:
        if holder is None:
            # Unreadable lock file: fall back to its mtime as a heartbeat.
            try:
                age = time.time() - os.stat(self.path).st_mtime
            except OSError:
                return False  # vanished — the create retry will decide
            return age > self.lease_timeout
        try:
            pid = int(holder.get("pid", 0))
            heartbeat = float(holder.get("heartbeat", 0.0))
        except (TypeError, ValueError):
            return True
        if not _pid_alive(pid):
            return True
        return (time.time() - heartbeat) > self.lease_timeout

    def _takeover(self) -> bool:
        """Atomically remove a stale lock; ``True`` when this call won."""
        stale_path = f"{self.path}.stale.{self._nonce}.{self.takeovers}"
        try:
            os.rename(self.path, stale_path)
        except OSError:
            return False  # another waiter won the rename race
        try:
            os.unlink(stale_path)
        except OSError:
            pass
        self.takeovers += 1
        return True

    def try_acquire(self) -> bool:
        """One non-blocking acquisition attempt (no stale handling)."""
        try:
            fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        try:
            os.write(fd, self._payload(time.time()))
        finally:
            os.close(fd)
        self._held = True
        return True

    def acquire(self, timeout: Optional[float] = None) -> None:
        """Block until the lease is held; raises on timeout.

        ``timeout`` bounds the wait; ``None`` uses ``2 * lease_timeout``,
        which by construction is long enough to outwait any live short
        critical section *and* to watch a crashed holder's heartbeat go
        stale and reclaim it. Raises
        :class:`~repro.exceptions.CacheLockError` when the lease is
        still held past the deadline.
        """
        with self._mutex:
            if self._held:
                raise CacheLockError(f"lease {self.path!r} already held")
            _faults.fire("shards.lock.acquire")
            budget = (
                2 * self.lease_timeout if timeout is None else float(timeout)
            )
            deadline = time.monotonic() + budget
            while True:
                if self.try_acquire():
                    return
                try:
                    holder = self._read_holder()
                except FileNotFoundError:
                    continue  # released between create and read — retry now
                if self._is_stale(holder):
                    self._takeover()
                    continue
                if time.monotonic() >= deadline:
                    raise CacheLockError(
                        f"could not acquire lease {self.path!r} within "
                        f"{budget:.1f}s (held by {holder and holder.get('pid')})"
                    )
                time.sleep(_RETRY_INTERVAL)

    def refresh(self) -> None:
        """Re-stamp the heartbeat so a long critical section stays live."""
        if not self._held:
            raise CacheLockError(
                f"cannot refresh lease {self.path!r}: not held"
            )
        try:
            with open(self.path, "wb") as handle:
                handle.write(self._payload(time.time()))
        except OSError:
            pass  # losing a heartbeat is survivable; losing the op is not

    def release(self) -> None:
        """Drop the lease (idempotent; missing lock files are tolerated)."""
        if not self._held:
            return
        self._held = False
        try:
            os.unlink(self.path)
        except OSError:
            pass

    def __enter__(self) -> "FileLease":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()
