"""The unit of work of the batch runtime: jobs and their outcomes.

A :class:`SolveJob` is a fully self-describing, picklable request — the
formula plus every knob needed to solve it — so it can cross a process
boundary. A :class:`SolveOutcome` is the transportable result: plain
strings, numbers and integer tuples only, so it round-trips through both
``pickle`` (worker processes) and JSON (the persistent result cache).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cnf.formula import CNFFormula
from repro.core.config import NBLConfig
from repro.exceptions import RuntimeSubsystemError

#: Solver specs understood by the runtime, beyond the classical-solver
#: registry names: the two NBL engine frontends and the portfolio racer.
NBL_SPECS = ("nbl-symbolic", "nbl-sampled")
PORTFOLIO_SPEC = "portfolio"

#: Outcome statuses. ``SAT``/``UNSAT``/``UNKNOWN`` mirror the solver
#: verdicts; ``ERROR`` marks jobs that raised instead of answering and
#: ``SKIPPED`` marks portfolio contenders that never ran (over a variable
#: limit, or out of time).
ERROR = "ERROR"
SKIPPED = "SKIPPED"


def solve_cache_key(fingerprint: str, assumptions: tuple[int, ...] = ()) -> str:
    """The result-cache key of one solve request.

    Satisfiability under assumptions is a property of ``(formula,
    assumption set)``, so the key combines the canonical formula
    fingerprint with the canonically-sorted assumption literals. Without
    assumptions the key is the bare fingerprint (compatible with caches
    persisted before assumptions existed); with them, the signed integers
    are appended after a ``"#"`` separator — an encoding that is injective
    in the assumption set, so different assumption sets can never collide.
    """
    if not assumptions:
        return fingerprint
    return fingerprint + "#" + ",".join(str(lit) for lit in sorted(assumptions))


def _normalise_assumptions(assumptions) -> tuple[int, ...]:
    """Validate and canonicalise an assumption sequence (sorted, unique)."""
    seen = set()
    for lit in assumptions:
        if not isinstance(lit, int) or isinstance(lit, bool) or lit == 0:
            raise RuntimeSubsystemError(
                f"assumptions must be non-zero DIMACS literals, got {lit!r}"
            )
        seen.add(lit)
    return tuple(sorted(seen))


@dataclass
class SolveJob:
    """One solve request.

    Attributes
    ----------
    formula:
        The CNF instance to solve.
    job_id:
        Unique identifier within a batch; defaults to the formula
        fingerprint (prefixed) when empty. Feeds per-job seed derivation.
    label:
        Human-readable origin (typically the DIMACS file path).
    solver:
        Solver spec: ``"portfolio"``, ``"nbl-symbolic"``, ``"nbl-sampled"``
        or any classical-solver registry name (``"dpll"``, ``"cdcl"``,
        ``"walksat"``, ``"gsat"``, ``"brute-force"``, ``"hybrid"``, ...).
    samples:
        Sample budget per check for the sampled NBL engine.
    carrier:
        Carrier family name for the sampled NBL engine.
    timeout:
        Optional per-job wall-clock budget in seconds. Enforced
        cooperatively by the classical solvers (and, in multi-worker
        pools, by a parent-side grace window). The NBL engines are bounded
        differently: the sampled engine by its ``samples`` budget, the
        symbolic engine by the pool's variable limit
        (:data:`repro.runtime.portfolio.EXPONENTIAL_LIMITS`) — so pick
        ``samples``, not ``timeout``, to cap sampled-NBL jobs in a serial
        pool.
    assumptions:
        DIMACS-signed literals that must hold for this job only (they are
        not part of the formula). Canonicalised to a sorted tuple; an
        ``UNSAT`` outcome then means "unsatisfiable under the
        assumptions", and the cache keys on ``(fingerprint, assumptions)``
        so jobs for the same formula under different assumption sets never
        share an answer.
    seed:
        Explicit per-job seed. ``None`` (the default) derives a
        deterministic seed from the pool's master seed, the job id and the
        formula fingerprint — see :func:`repro.runtime.pool.derive_job_seed`.
    nbl_config:
        Full :class:`~repro.core.config.NBLConfig` for NBL engine jobs.
        When set it overrides ``samples``/``carrier`` entirely (only the
        seed is replaced by the per-job seed), preserving every knob —
        carrier parameters, convergence policy, thresholds — that the
        name-based fields cannot express.
    preprocess:
        Run the :mod:`repro.preprocess` inprocessing pipeline (with the
        assumption variables frozen) before dispatching to the solver; the
        solver then sees the reduced formula, SAT models are reconstructed
        over the original variables, and the cache key pairs the *reduced*
        fingerprint with the assumptions *mapped into the reduced
        numbering* (:attr:`solve_assumptions`) — so any two jobs that
        simplify to the same core under the same reduced-space assumptions
        share one cached verdict.
    proof:
        Optional file path to record a DRAT proof of this job into (a
        path, not a log object, so the job stays picklable across the
        worker-process boundary). Requires a proof-capable solver spec —
        a classical registry name — and is rejected for the NBL engine
        and portfolio specs, which cannot emit derivations. With
        ``preprocess`` the pipeline's elimination lines come first and
        the residual solver's lines are translated back into the original
        numbering, so the file checks against the job's input formula.
    """

    formula: CNFFormula
    job_id: str = ""
    label: str = ""
    solver: str = PORTFOLIO_SPEC
    samples: int = 200_000
    carrier: str = "uniform"
    timeout: Optional[float] = None
    assumptions: tuple[int, ...] = ()
    seed: Optional[int] = None
    nbl_config: Optional[NBLConfig] = None
    preprocess: bool = False
    proof: Optional[str] = None

    def __post_init__(self) -> None:
        if not isinstance(self.formula, CNFFormula):
            raise RuntimeSubsystemError(
                f"SolveJob.formula must be a CNFFormula, got {type(self.formula).__name__}"
            )
        if self.samples <= 0:
            raise RuntimeSubsystemError(
                f"SolveJob.samples must be positive, got {self.samples}"
            )
        if self.timeout is not None and self.timeout <= 0:
            raise RuntimeSubsystemError(
                f"SolveJob.timeout must be positive, got {self.timeout}"
            )
        self.assumptions = _normalise_assumptions(self.assumptions)
        for lit in self.assumptions:
            if abs(lit) > self.formula.num_variables:
                raise RuntimeSubsystemError(
                    f"assumption {lit} mentions x{abs(lit)} beyond the "
                    f"formula's {self.formula.num_variables} variables"
                )
        if self.proof is not None and (
            self.solver in NBL_SPECS or self.solver == PORTFOLIO_SPEC
        ):
            raise RuntimeSubsystemError(
                f"SolveJob(proof=...) requires a classical solver spec; "
                f"{self.solver!r} cannot emit DRAT derivations"
            )
        if not self.job_id:
            self.job_id = f"job-{self.formula.fingerprint()[:16]}"
        self._reduction = None

    @property
    def fingerprint(self) -> str:
        """Canonical fingerprint of the job's formula."""
        return self.formula.fingerprint()

    def preprocessed(self, deadline: Optional[float] = None, proof=None):
        """The job's :class:`~repro.preprocess.PreprocessResult` (cached).

        Only meaningful when ``preprocess`` is set; the pipeline runs once
        with the assumption variables frozen and the result is reused for
        both the cache key and the dispatch (it also travels with the job
        across the worker-process boundary). ``deadline`` (a
        ``time.monotonic()`` value) bounds the first computation; cached
        reductions return immediately. ``proof`` (an open
        :class:`~repro.proofs.ProofLog`) records the pipeline's
        elimination lines; since the pipeline is deterministic, a call
        with a proof re-runs it even over a cached reduction — the
        coordinator may have computed the reduction for the cache key
        before the executing side asks for the proof lines.
        """
        if not self.preprocess:
            raise RuntimeSubsystemError(
                "preprocessed() requires SolveJob(preprocess=True)"
            )
        if self._reduction is None or proof is not None:
            from repro.preprocess.pipeline import Preprocessor

            self._reduction = Preprocessor().preprocess(
                self.formula,
                frozen={abs(lit) for lit in self.assumptions},
                deadline=deadline,
                proof=proof,
            )
        return self._reduction

    @property
    def solve_fingerprint(self) -> str:
        """The fingerprint the cache keys on: reduced when preprocessing."""
        if self.preprocess:
            return self.preprocessed().formula.fingerprint()
        return self.fingerprint

    @property
    def solve_assumptions(self) -> tuple[int, ...]:
        """The assumptions in the numbering of the formula actually solved.

        Without preprocessing these are the job's own assumptions. With it,
        they are translated through the reduction's variable map, because
        the cache key must describe the problem the solver saw: two
        different originals can share a reduced core yet map the same
        original literal to different reduced variables, and keying on the
        original literals would let their verdicts collide unsoundly. When
        preprocessing refutes the formula outright the assumptions played
        no part (they are frozen, not asserted), so the key carries none.
        """
        if not self.preprocess:
            return self.assumptions
        reduction = self.preprocessed()
        if reduction.status == "UNSAT":
            return ()
        return reduction.map_assumptions(self.assumptions)

    @property
    def cache_key(self) -> str:
        """Result-cache key: (solve) fingerprint plus canonical assumptions."""
        return solve_cache_key(self.solve_fingerprint, self.solve_assumptions)


@dataclass
class SolveOutcome:
    """The transportable result of one :class:`SolveJob`.

    Attributes
    ----------
    job_id / label / fingerprint / assumptions:
        Copied from the job so outcomes are self-identifying (and so the
        cache can reconstruct the ``(fingerprint, assumptions)`` key).
    solved_assumptions:
        Set by preprocessed execution: the assumptions translated into the
        reduced formula's numbering (``fingerprint`` is then the reduced
        fingerprint). ``None`` for direct solves. :attr:`cache_key` prefers
        this over ``assumptions`` so keys never mix numberings.
    status:
        ``"SAT"``, ``"UNSAT"``, ``"UNKNOWN"`` or ``"ERROR"``.
    solver:
        The solver spec the job requested.
    winner:
        The concrete engine/solver that produced the answer (equals
        ``solver`` outside portfolio mode).
    assignment:
        Satisfying assignment as DIMACS-signed integers when SAT.
    verified:
        ``True`` when the answer was checked (SAT models are evaluated
        against the formula; UNSAT verdicts from exact/complete engines).
    elapsed_seconds / samples_used:
        Work accounting for the job.
    from_cache:
        ``True`` when the outcome was served by the result cache.
    timed_out:
        ``True`` when the job's wall-clock budget expired.
    error:
        Exception text when ``status == "ERROR"``.
    contender_seconds / contender_status:
        Per-contender timings and verdicts (portfolio mode only).
    core:
        Minimized failing assumption core when the verdict is UNSAT under
        assumptions; the empty tuple when the formula is UNSAT regardless
        of the assumptions; ``None`` otherwise (mirrors
        :attr:`repro.solvers.base.SolverResult.core`).
    proof:
        Path of the DRAT proof file the job wrote (``""`` when no proof
        was requested). Cached replays of the outcome keep the path of the
        run that produced the verdict.
    """

    job_id: str
    status: str
    solver: str
    label: str = ""
    fingerprint: str = ""
    assumptions: tuple[int, ...] = ()
    solved_assumptions: Optional[tuple[int, ...]] = None
    winner: str = ""
    assignment: Optional[tuple[int, ...]] = None
    verified: bool = False
    elapsed_seconds: float = 0.0
    samples_used: int = 0
    from_cache: bool = False
    timed_out: bool = False
    error: str = ""
    contender_seconds: dict[str, float] = field(default_factory=dict)
    contender_status: dict[str, str] = field(default_factory=dict)
    core: Optional[tuple[int, ...]] = None
    proof: str = ""

    @property
    def is_definitive(self) -> bool:
        """``True`` for a verified SAT/UNSAT answer (the cacheable ones)."""
        return self.status in ("SAT", "UNSAT") and self.verified

    @property
    def cache_key(self) -> str:
        """Result-cache key (empty when the outcome has no fingerprint).

        ``solved_assumptions`` — the assumptions in the numbering of the
        formula ``fingerprint`` describes (set by preprocessed execution,
        see :attr:`SolveJob.solve_assumptions`) — takes precedence over the
        job-facing ``assumptions`` so the key always pairs a fingerprint
        with literals in that formula's own numbering.
        """
        if not self.fingerprint:
            return ""
        assumptions = (
            self.assumptions
            if self.solved_assumptions is None
            else self.solved_assumptions
        )
        return solve_cache_key(self.fingerprint, assumptions)

    def assignment_dict(self) -> Optional[dict[int, bool]]:
        """The SAT model as a ``variable -> bool`` mapping (``None`` otherwise)."""
        if self.assignment is None:
            return None
        return {abs(v): v > 0 for v in self.assignment}

    def to_dict(self) -> dict:
        """JSON-serialisable encoding (used by the persistent cache)."""
        return {
            "job_id": self.job_id,
            "status": self.status,
            "solver": self.solver,
            "label": self.label,
            "fingerprint": self.fingerprint,
            "assumptions": list(self.assumptions),
            "solved_assumptions": (
                list(self.solved_assumptions)
                if self.solved_assumptions is not None
                else None
            ),
            "winner": self.winner,
            "assignment": list(self.assignment) if self.assignment is not None else None,
            "verified": self.verified,
            "elapsed_seconds": self.elapsed_seconds,
            "samples_used": self.samples_used,
            "timed_out": self.timed_out,
            "error": self.error,
            "contender_seconds": dict(self.contender_seconds),
            "contender_status": dict(self.contender_status),
            "core": list(self.core) if self.core is not None else None,
            "proof": self.proof,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SolveOutcome":
        """Inverse of :meth:`to_dict` (``from_cache`` always starts False)."""
        assignment = data.get("assignment")
        solved = data.get("solved_assumptions")
        return cls(
            job_id=data["job_id"],
            status=data["status"],
            solver=data["solver"],
            label=data.get("label", ""),
            fingerprint=data.get("fingerprint", ""),
            assumptions=tuple(data.get("assumptions", ())),
            solved_assumptions=tuple(solved) if solved is not None else None,
            winner=data.get("winner", ""),
            assignment=tuple(assignment) if assignment is not None else None,
            verified=data.get("verified", False),
            elapsed_seconds=data.get("elapsed_seconds", 0.0),
            samples_used=data.get("samples_used", 0),
            timed_out=data.get("timed_out", False),
            error=data.get("error", ""),
            contender_seconds=dict(data.get("contender_seconds", {})),
            contender_status=dict(data.get("contender_status", {})),
            core=tuple(data["core"]) if data.get("core") is not None else None,
            proof=data.get("proof", ""),
        )

    def copy(self, **overrides) -> "SolveOutcome":
        """An independent copy (dict round-trip) with fields overridden.

        The round-trip keeps this the single place that defines what a
        transported outcome carries; ``from_cache`` resets to ``False``
        unless overridden.
        """
        duplicate = SolveOutcome.from_dict(self.to_dict())
        for key, value in overrides.items():
            setattr(duplicate, key, value)
        return duplicate

    def __str__(self) -> str:
        origin = self.label or self.job_id
        suffix = " [cache]" if self.from_cache else ""
        winner = f" by {self.winner}" if self.winner else ""
        return f"{origin}: {self.status}{winner}{suffix}"
