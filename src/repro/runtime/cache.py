"""LRU result cache keyed by ``(formula fingerprint, assumptions)``.

Satisfiability is a property of the formula and the assumption set alone,
so a definitive (verified SAT/UNSAT) outcome obtained by *any* solver
answers every later job for a structurally identical formula under the
same assumptions — regardless of clause order, literal order or which
solver the later job asked for. The cache therefore keys on
:func:`repro.runtime.jobs.solve_cache_key`, which combines
:meth:`repro.cnf.formula.CNFFormula.fingerprint` with the canonically
sorted assumption literals (the bare fingerprint when there are none, so
pre-assumption cache files stay valid). Different assumption sets can
never collide. Only definitive outcomes are stored; UNKNOWN/ERROR results
are never cached.

The cache can persist to a JSON file so separate CLI invocations share a
warm cache (``repro.cli batch --cache-file``).
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Optional, Union

from repro.exceptions import RuntimeSubsystemError
from repro.runtime.jobs import SolveOutcome
from repro.telemetry import instrument as _telemetry

PathLike = Union[str, os.PathLike]


def atomic_write_json(path: PathLike, payload) -> None:
    """Crash-safe JSON write: temp file in the target directory, then rename.

    The payload is written to a uniquely-named temporary file next to
    ``path``, flushed and fsynced, and moved into place with
    :func:`os.replace` — so a reader never observes a half-written file
    and a crash at any point leaves either the old contents or the new,
    never a torn mix. Used by :meth:`ResultCache.save` and by
    :meth:`~repro.runtime.shards.ShardedResultCache.compact` for shard
    snapshots.
    """
    target = os.fspath(path)
    directory = os.path.dirname(target) or "."
    fd, temp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(target) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, target)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss/eviction counters of one :class:`ResultCache`.

    Instances are immutable snapshots: the live counters are owned by the
    cache that produced them and mutated only under that cache's lock, so
    a snapshot taken from any thread (the service event loop, executor
    callbacks, worker collectors) can never expose torn counts.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    size: int = 0
    max_size: int = 0

    @property
    def lookups(self) -> int:
        """Total number of :meth:`ResultCache.get` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """``hits / lookups`` (0.0 when nothing was looked up yet)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    @classmethod
    def merged(cls, parts: Iterable["CacheStats"]) -> "CacheStats":
        """The aggregate snapshot of several caches (e.g. all shards)."""
        hits = misses = evictions = size = max_size = 0
        for part in parts:
            hits += part.hits
            misses += part.misses
            evictions += part.evictions
            size += part.size
            max_size += part.max_size
        return cls(
            hits=hits,
            misses=misses,
            evictions=evictions,
            size=size,
            max_size=max_size,
        )


class ResultCache:
    """A bounded, thread-safe LRU map ``cache key -> SolveOutcome``.

    Keys are :attr:`repro.runtime.jobs.SolveJob.cache_key` strings —
    the formula fingerprint, extended with the canonical assumption
    literals when a job solves under assumptions.

    Parameters
    ----------
    max_size:
        Maximum number of cached outcomes; the least-recently-used entry is
        evicted beyond that.
    """

    def __init__(self, max_size: int = 4096) -> None:
        if max_size <= 0:
            raise RuntimeSubsystemError(
                f"cache max_size must be positive, got {max_size}"
            )
        self._max_size = max_size
        self._entries: "OrderedDict[str, SolveOutcome]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @property
    def max_size(self) -> int:
        """The configured capacity."""
        return self._max_size

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str) -> Optional[SolveOutcome]:
        """Look up a cached outcome by cache key, refreshing its recency.

        ``key`` is a :attr:`SolveJob.cache_key` (the bare fingerprint for
        assumption-free jobs). The returned outcome is a copy with
        ``from_cache=True`` and zero elapsed time, so callers can aggregate
        timings without double counting the original solve.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                hit = False
            else:
                self._entries.move_to_end(key)
                self._hits += 1
                hit = True
        # Instrumentation stays outside the lock: the tracer and registry
        # take their own locks, and nothing here needs this cache's state.
        if _telemetry.active():
            if _telemetry.tracing_active():
                _telemetry.event("cache.lookup", hit=hit)
            _telemetry.record_cache_lookup(hit)
        if entry is None:
            return None
        return entry.copy(from_cache=True, elapsed_seconds=0.0)

    def put(self, outcome: SolveOutcome, key: Optional[str] = None) -> bool:
        """Insert a definitive outcome; returns ``False`` when not cacheable.

        Only verified SAT/UNSAT outcomes with a fingerprint are stored —
        caching an UNKNOWN or ERROR would pin a transient failure onto every
        future occurrence of the formula. The key defaults to the outcome's
        own ``(fingerprint, assumptions)`` cache key; an explicit ``key``
        stores the outcome under an alias (the batch runner aliases
        preprocessed outcomes under each job's *original* key so warm
        lookups never re-run the pipeline).
        """
        key = key if key is not None else outcome.cache_key
        if not key or not outcome.is_definitive:
            return False
        evicted = 0
        with self._lock:
            self._entries[key] = outcome
            self._entries.move_to_end(key)
            while len(self._entries) > self._max_size:
                self._entries.popitem(last=False)
                self._evictions += 1
                evicted += 1
        if evicted and _telemetry.active():
            _telemetry.record_cache_eviction(evicted)
        return True

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def entries(self) -> list[tuple[str, SolveOutcome]]:
        """A consistent ``(key, outcome)`` snapshot in LRU order (oldest first).

        Taken under the cache lock, so a concurrent writer can never tear
        the listing; used by shard merge-compaction to fold this cache's
        view into the on-disk state without going through the WAL.
        """
        with self._lock:
            return list(self._entries.items())

    @property
    def stats(self) -> CacheStats:
        """A snapshot of the cache counters (hits/misses/evictions/size)."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
                max_size=self._max_size,
            )

    def reset_stats(self) -> None:
        """Zero the hit/miss/eviction counters (entries are kept)."""
        with self._lock:
            self._hits = self._misses = self._evictions = 0

    # -- persistence ----------------------------------------------------------
    def save(self, path: PathLike) -> int:
        """Write the cache contents to ``path`` as JSON; returns entry count.

        The write goes through :func:`atomic_write_json` (unique temp file
        in the same directory, fsync, ``os.replace``) so a crash mid-save
        can never corrupt or truncate an existing cache file. Outcome
        payloads carry whatever :meth:`SolveOutcome.to_dict` defines —
        including the assumption ``core`` and ``proof`` path — and files
        written before a field existed load with that field at its default.
        """
        with self._lock:
            # Keys are stored explicitly: an entry may live under an alias
            # (the batch runner's original-fingerprint keys for
            # preprocessed outcomes), which ``outcome.cache_key`` alone
            # could not reconstruct.
            payload = {
                "version": 2,
                "entries": [
                    {"key": key, "outcome": outcome.to_dict()}
                    for key, outcome in self._entries.items()
                ],
            }
        atomic_write_json(path, payload)
        return len(payload["entries"])

    def load(self, path: PathLike) -> int:
        """Merge entries from a :meth:`save` file; returns how many loaded.

        Unreadable or structurally wrong files raise
        :class:`RuntimeSubsystemError`; a missing file is the caller's check.
        """
        # Broad catch by design: a cache file is untrusted persisted state,
        # and any structural surprise must surface as the library's own
        # error (which callers degrade on), never as a raw traceback.
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            entries: list[tuple[Optional[str], SolveOutcome]] = []
            for data in payload["entries"]:
                if "outcome" in data:
                    entries.append(
                        (data["key"], SolveOutcome.from_dict(data["outcome"]))
                    )
                else:
                    # Version-1 files stored bare outcomes; their key is
                    # reconstructed from the outcome itself.
                    entries.append((None, SolveOutcome.from_dict(data)))
        except Exception as exc:  # noqa: BLE001 — persistence boundary
            raise RuntimeSubsystemError(
                f"cannot load cache file {path!r}: {exc}"
            ) from exc
        return sum(1 for key, outcome in entries if self.put(outcome, key=key))
