"""repro.runtime — high-throughput batch & portfolio solving subsystem.

The rest of the library solves one formula at a time in-process; this
package is the serving layer in front of it:

* :mod:`repro.runtime.jobs` — :class:`SolveJob` / :class:`SolveOutcome`,
  the picklable unit of work and its transportable result;
* :mod:`repro.runtime.cache` — :class:`ResultCache`, an LRU keyed by the
  canonical ``(formula fingerprint, assumptions)`` pair, with optional
  JSON persistence;
* :mod:`repro.runtime.shards` — :class:`ShardedResultCache`, the
  concurrent-safe persistent cache: entries split across N shard files
  with per-shard write-ahead logs and merge-compaction (what
  :mod:`repro.service` serves from);
* :mod:`repro.runtime.locks` — :class:`FileLease`, the cross-process
  lock-file lease (atomic ``O_EXCL`` create, heartbeats, stale
  takeover) that lets several server processes share one cache
  directory;
* :mod:`repro.runtime.pool` — :class:`WorkerPool`, deterministic
  multi-process job execution with per-job seed derivation and timeouts,
  and :class:`JobExecutor`, the reusable submit/collect core shared by
  the batch runner and the solve service;
* :mod:`repro.runtime.portfolio` — :class:`PortfolioSolver`, racing the
  NBL engines against the classical baselines;
* :mod:`repro.runtime.batch` — :class:`BatchRunner`, directory/glob
  ingestion of DIMACS files with aggregate statistics.

Quickstart::

    from repro.runtime import BatchRunner

    runner = BatchRunner(solver="portfolio", workers=4)
    report = runner.run(["instances/"])
    print(report.to_text())
"""

from repro.runtime.batch import BatchReport, BatchRunner, discover_instances
from repro.runtime.cache import CacheStats, ResultCache, atomic_write_json
from repro.runtime.jobs import SolveJob, SolveOutcome, solve_cache_key
from repro.runtime.locks import FileLease
from repro.runtime.pool import (
    JobExecutor,
    WorkerPool,
    derive_job_seed,
    execute_job,
)
from repro.runtime.portfolio import (
    DEFAULT_CONTENDERS,
    ContenderReport,
    PortfolioResult,
    PortfolioSolver,
)
from repro.runtime.shards import ShardedResultCache, shard_index

__all__ = [
    "BatchReport",
    "BatchRunner",
    "CacheStats",
    "ContenderReport",
    "DEFAULT_CONTENDERS",
    "FileLease",
    "JobExecutor",
    "PortfolioResult",
    "PortfolioSolver",
    "ResultCache",
    "ShardedResultCache",
    "SolveJob",
    "SolveOutcome",
    "WorkerPool",
    "atomic_write_json",
    "derive_job_seed",
    "discover_instances",
    "execute_job",
    "shard_index",
    "solve_cache_key",
]
