"""Process-parallel job execution with deterministic seeding.

:func:`execute_job` is the single entry point that turns a
:class:`~repro.runtime.jobs.SolveJob` into a
:class:`~repro.runtime.jobs.SolveOutcome`; it is a module-level function so
``concurrent.futures.ProcessPoolExecutor`` can pickle it to workers.

Determinism contract: a job without an explicit seed gets one *derived*
from ``(master seed, job id, formula fingerprint)`` via SHA-256 — stable
across processes, Python hash randomisation and worker scheduling order —
so the same batch with the same master seed produces the same outcomes
regardless of the worker count.
"""

from __future__ import annotations

import concurrent.futures
import hashlib
import time
from typing import Callable, Optional, Sequence

from repro import faults as _faults
from repro.cnf.assignment import Assignment
from repro.exceptions import RuntimeSubsystemError
from repro.runtime.jobs import ERROR, NBL_SPECS, PORTFOLIO_SPEC, SolveJob, SolveOutcome
from repro.proofs.log import resolve_proof_log
from repro.runtime.portfolio import (
    SEEDED_SOLVERS,
    PortfolioSolver,
    refusal_reason,
    solve_with_nbl,
)
from repro.solvers.registry import make_solver
from repro.telemetry import instrument as _telemetry

#: Extra parent-side wall-clock grace (seconds) on top of a job's own
#: timeout before the pool gives up waiting on its worker.
_TIMEOUT_GRACE = 10.0


def derive_job_seed(master_seed: int, job_id: str, fingerprint: str) -> int:
    """Deterministic 63-bit per-job seed from the pool's master seed.

    Hash-based (SHA-256) rather than ``SeedSequence.spawn`` so the seed of a
    job depends only on its identity, not on how many jobs ran before it.
    """
    digest = hashlib.sha256(
        f"{master_seed}\x1f{job_id}\x1f{fingerprint}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def _assignment_ints(assignment: Optional[Assignment]) -> Optional[tuple[int, ...]]:
    if assignment is None:
        return None
    return tuple(lit.to_int() for lit in assignment.to_literals())


def execute_job(job: SolveJob, master_seed: int = 0) -> SolveOutcome:
    """Run one job to completion and return its outcome.

    Never raises for solver-level failures — any exception (including
    non-library ones such as ``RecursionError``) becomes an ``"ERROR"``
    outcome so one bad instance cannot take down a batch.
    """
    seed = (
        job.seed
        if job.seed is not None
        else derive_job_seed(master_seed, job.job_id, job.fingerprint)
    )
    # Telemetry note: with workers > 1 this body runs inside a worker
    # process, whose tracer/registry are process-local and start disabled —
    # parallel batches then only record parent-side events. The serial
    # (in-process) pool path is fully observable.
    task_span = _telemetry.span("pool.task")
    started = time.perf_counter()
    with task_span:
        if task_span.recording:
            task_span.set(
                job_id=job.job_id, solver=job.solver, label=job.label
            )
        try:
            # Chaos hook: `error` becomes an ERROR outcome below (a clean
            # worker failure), `kill` takes the whole worker process down
            # (the pool's abandoned-worker handling must recover), `delay`
            # stretches the solve. Inert without an installed fault plan.
            _faults.fire("pool.execute")
            if job.preprocess:
                outcome = _execute_preprocessed(job, seed)
            else:
                outcome = _execute_direct(job, seed)
        except Exception as exc:  # noqa: BLE001 — batch isolation boundary
            outcome = SolveOutcome(
                job_id=job.job_id,
                status=ERROR,
                solver=job.solver,
                label=job.label,
                fingerprint=job.fingerprint,
                assumptions=job.assumptions,
                error=f"{type(exc).__name__}: {exc}",
            )
        outcome.elapsed_seconds = time.perf_counter() - started
        if task_span.recording:
            task_span.set(
                status=outcome.status,
                winner=outcome.winner,
                elapsed_seconds=outcome.elapsed_seconds,
            )
    if _telemetry.active():
        _telemetry.record_pool_task(outcome.status, outcome.elapsed_seconds)
    return outcome


def _execute_direct(job: SolveJob, seed: int) -> SolveOutcome:
    refusal = refusal_reason(job.solver, job.formula)
    if refusal is not None:
        # Exponential-cost solvers would hang far past any timeout; fail
        # the job fast instead (the portfolio skips them the same way).
        return SolveOutcome(
            job_id=job.job_id,
            status=ERROR,
            solver=job.solver,
            label=job.label,
            fingerprint=job.fingerprint,
            assumptions=job.assumptions,
            error=f"{job.solver} refused: {refusal}",
        )
    if job.solver == PORTFOLIO_SPEC:
        return _execute_portfolio(job, seed)
    if job.solver in NBL_SPECS:
        return _execute_nbl(job, seed)
    return _execute_classical(job, seed)


def _assumption_values(assumptions: tuple[int, ...]) -> Optional[dict[int, bool]]:
    """Assumptions as ``variable -> value``; ``None`` when contradictory."""
    values: dict[int, bool] = {}
    for lit in assumptions:
        if values.get(abs(lit), lit > 0) != (lit > 0):
            return None
        values[abs(lit)] = lit > 0
    return values


def _contradictory_core(assumptions: tuple[int, ...]) -> tuple[int, ...]:
    """The first ``(lit, -lit)`` pair of a contradictory assumption tuple."""
    seen: set[int] = set()
    for lit in assumptions:
        if -lit in seen:
            return (-lit, lit)
        seen.add(lit)
    raise RuntimeSubsystemError("assumptions are not contradictory")


def _execute_preprocessed(job: SolveJob, seed: int) -> SolveOutcome:
    """Preprocess (assumption variables frozen), dispatch, reconstruct.

    The outcome's ``fingerprint`` is the *reduced* formula's, matching
    :attr:`SolveJob.cache_key`, so any job whose formula simplifies to the
    same core is answered from the cache. Verdicts reached without running
    a solver at all carry ``winner="preprocess"``.

    With ``job.proof`` the pipeline's elimination lines land in the file
    first (original numbering) and the residual solver writes through a
    translating view, so the file checks against the job's input formula.
    Failing cores from the residual solve are mapped back into the
    original numbering before they reach the outcome.
    """
    deadline = time.monotonic() + job.timeout if job.timeout else None
    log, owns_log = resolve_proof_log(job.proof)
    try:
        reduction = job.preprocessed(deadline=deadline, proof=log)
        identity = dict(
            job_id=job.job_id,
            solver=job.solver,
            label=job.label,
            fingerprint=reduction.formula.fingerprint(),
            assumptions=job.assumptions,
            solved_assumptions=job.solve_assumptions,
            proof=job.proof or "",
        )
        values = _assumption_values(job.assumptions)
        if values is None:
            # x and ~x assumed at once: unsatisfiable whatever the formula
            # says — there is no refutation of the formula to record.
            if log is not None:
                log.mark_incomplete("contradictory assumptions; no derivation")
            return SolveOutcome(
                status="UNSAT",
                winner="preprocess",
                verified=True,
                core=_contradictory_core(job.assumptions),
                **identity,
            )
        if reduction.status == "UNSAT":
            # The pipeline refuted the formula itself (assumption variables
            # are frozen, never assumed), so the core is empty.
            return SolveOutcome(
                status="UNSAT",
                winner="preprocess",
                verified=True,
                core=() if job.assumptions else None,
                **identity,
            )
        if reduction.status == "SAT":
            reduced_model = {
                reduction.variable_map[var]: value for var, value in values.items()
            }
            assignment = reduction.reconstruct(reduced_model)
            verified = job.formula.evaluate(assignment.as_dict())
            return SolveOutcome(
                status="SAT",
                winner="preprocess",
                assignment=_assignment_ints(assignment),
                verified=verified,
                **identity,
            )
        refusal = refusal_reason(job.solver, reduction.formula)
        if refusal is not None:
            return SolveOutcome(
                status=ERROR, error=f"{job.solver} refused: {refusal}", **identity
            )
        reduced_job = SolveJob(
            formula=reduction.formula,
            job_id=job.job_id,
            label=job.label,
            solver=job.solver,
            samples=job.samples,
            carrier=job.carrier,
            timeout=job.timeout,
            assumptions=reduction.map_assumptions(job.assumptions),
            seed=seed,
            nbl_config=job.nbl_config,
        )
        inverse = {new: old for old, new in reduction.variable_map.items()}
        if log is not None:
            # Proof-bearing jobs are always classical (validated at job
            # construction), so dispatch there directly with the
            # renaming view over the shared log.
            solved = _execute_classical(
                reduced_job, seed, proof_log=log.translated(inverse)
            )
        else:
            solved = _execute_direct(reduced_job, seed)
    finally:
        if owns_log and log is not None:
            log.close()
    outcome = solved.copy(**identity)
    if solved.core is not None:
        # The residual session reported the core in the reduced numbering;
        # assumption variables are frozen, so the inverse map covers them.
        outcome.core = tuple(
            (1 if lit > 0 else -1) * inverse[abs(lit)] for lit in solved.core
        )
    if solved.status == "SAT" and solved.assignment is not None:
        assignment = reduction.reconstruct(
            {abs(lit): lit > 0 for lit in solved.assignment}
        )
        model = assignment.as_dict()
        outcome.assignment = _assignment_ints(assignment)
        outcome.verified = job.formula.evaluate(model) and all(
            model.get(var) == value for var, value in values.items()
        )
    return outcome


def _execute_portfolio(job: SolveJob, seed: int) -> SolveOutcome:
    portfolio = PortfolioSolver(samples=job.samples, carrier=job.carrier)
    result = portfolio.solve(
        job.formula, seed=seed, timeout=job.timeout, assumptions=job.assumptions
    )
    return SolveOutcome(
        job_id=job.job_id,
        status=result.status,
        solver=job.solver,
        label=job.label,
        fingerprint=job.fingerprint,
        assumptions=job.assumptions,
        winner=result.winner,
        assignment=_assignment_ints(result.assignment),
        verified=result.verified,
        samples_used=result.samples_used,
        timed_out=result.timed_out,
        contender_seconds=result.contender_seconds,
        contender_status=result.contender_status,
    )


def _execute_nbl(job: SolveJob, seed: int) -> SolveOutcome:
    formula = (
        job.formula.with_assumptions(job.assumptions)
        if job.assumptions
        else job.formula
    )
    status, verified, assignment, samples_used = solve_with_nbl(
        job.solver, formula, job.samples, job.carrier, seed, job.nbl_config
    )
    return SolveOutcome(
        job_id=job.job_id,
        status=status,
        solver=job.solver,
        label=job.label,
        fingerprint=job.fingerprint,
        assumptions=job.assumptions,
        winner=job.solver,
        assignment=_assignment_ints(assignment),
        verified=verified,
        samples_used=samples_used,
    )


def _execute_classical(
    job: SolveJob, seed: int, proof_log=None
) -> SolveOutcome:
    kwargs = {"seed": seed} if job.solver in SEEDED_SOLVERS else {}
    solver = make_solver(job.solver, **kwargs)
    if proof_log is not None:
        log, owns_log = proof_log, False
    else:
        log, owns_log = resolve_proof_log(job.proof)
    try:
        if job.assumptions:
            # Route through the solver's incremental session so the assumption
            # semantics (and CDCL's native assumption handling) match a live
            # IncrementalSession answering the same query.
            session = solver.make_session(base_formula=job.formula)
            if log is not None:
                session.set_proof_log(log)
            result = session.solve(job.assumptions, timeout=job.timeout)
            core = session.unsat_core()
        else:
            result = solver.solve(job.formula, timeout=job.timeout, proof=log)
            core = result.core
    finally:
        if owns_log and log is not None:
            log.close()
    verified = result.is_sat or (result.is_unsat and solver.complete)
    return SolveOutcome(
        job_id=job.job_id,
        status=result.status,
        solver=job.solver,
        label=job.label,
        fingerprint=job.fingerprint,
        assumptions=job.assumptions,
        winner=job.solver,
        assignment=_assignment_ints(result.assignment),
        verified=verified,
        timed_out=result.timed_out,
        core=core,
        proof=job.proof or "",
    )


def _timeout_outcome(job: SolveJob) -> SolveOutcome:
    return SolveOutcome(
        job_id=job.job_id,
        status="UNKNOWN",
        solver=job.solver,
        label=job.label,
        fingerprint=job.fingerprint,
        assumptions=job.assumptions,
        timed_out=True,
        elapsed_seconds=job.timeout or 0.0,
        # The grace window also absorbs queue-wait time, so this can mean
        # "never started behind wedged workers", not only "ran too long".
        error="job did not finish within the timeout grace window "
        "(worker overran or queue starved)",
    )


def _infrastructure_outcome(job: SolveJob, exc: BaseException) -> SolveOutcome:
    return SolveOutcome(
        job_id=job.job_id,
        status=ERROR,
        solver=job.solver,
        label=job.label,
        fingerprint=job.fingerprint,
        assumptions=job.assumptions,
        error=f"worker process died: {exc}",
    )


class JobExecutor:
    """Long-lived submit/collect executor over one execution strategy.

    The reusable core under both :meth:`WorkerPool.run` (batch semantics:
    submit a list, collect in order) and the
    :class:`~repro.service.SolveService` event loop (streaming semantics:
    submit as requests arrive, await each future). Three strategies:

    * ``workers == 1`` *inline* (the default): :meth:`submit` executes the
      job synchronously and returns an already-resolved future — the
      serial batch path, with zero thread or pickling overhead.
    * ``workers == 1, inline=False``: a single worker thread, so
      :meth:`submit` returns immediately — what an event loop needs.
    * ``workers > 1``: a process pool (``inline`` must be left off).

    :meth:`submit` never raises for solver-level failures
    (:func:`execute_job` converts them to ``ERROR`` outcomes) and
    :meth:`collect` converts the remaining *infrastructure* failures —
    grace-window overruns, a died worker process — into outcomes too, so
    callers always receive one :class:`SolveOutcome` per job.
    """

    def __init__(
        self,
        workers: int = 1,
        master_seed: int = 0,
        inline: Optional[bool] = None,
    ) -> None:
        if workers <= 0:
            raise RuntimeSubsystemError(f"workers must be positive, got {workers}")
        if inline and workers > 1:
            raise RuntimeSubsystemError(
                "inline execution is single-worker by definition"
            )
        self._workers = workers
        self._master_seed = master_seed
        self._inline = (workers == 1) if inline is None else bool(inline)
        self._abandoned = False
        self._pool: Optional[concurrent.futures.Executor] = None
        if not self._inline:
            if workers == 1:
                self._pool = concurrent.futures.ThreadPoolExecutor(
                    max_workers=1, thread_name_prefix="repro-exec"
                )
            else:
                self._pool = concurrent.futures.ProcessPoolExecutor(
                    max_workers=workers
                )

    @property
    def workers(self) -> int:
        """Configured worker count."""
        return self._workers

    @property
    def inline(self) -> bool:
        """``True`` when :meth:`submit` executes synchronously in-process."""
        return self._inline

    @property
    def master_seed(self) -> int:
        """Root seed of the per-job seed derivation."""
        return self._master_seed

    def submit(self, job: SolveJob) -> "concurrent.futures.Future[SolveOutcome]":
        """Queue one job; returns a future resolving to its outcome."""
        if self._pool is None:
            future: concurrent.futures.Future = concurrent.futures.Future()
            future.set_result(execute_job(job, self._master_seed))
            return future
        return self._pool.submit(execute_job, job, self._master_seed)

    def collect(
        self,
        future: "concurrent.futures.Future[SolveOutcome]",
        job: SolveJob,
        grace: Optional[float] = None,
    ) -> SolveOutcome:
        """Wait for a submitted job, translating infrastructure failures.

        ``grace`` bounds the wait (seconds); overrunning it cancels the
        future, marks the executor's workers as abandoned (so
        :meth:`shutdown` kills instead of joining them) and returns a
        timed-out ``UNKNOWN`` outcome. A worker that died mid-job comes
        back as an ``ERROR`` outcome.
        """
        try:
            return future.result(timeout=grace)
        except concurrent.futures.TimeoutError:
            # The worker overran even the parent-side grace window (e.g.
            # it is stuck outside a cooperative checkpoint). Record the
            # timeout; the stuck worker is abandoned at shutdown instead
            # of being waited on.
            future.cancel()
            self._abandoned = True
            return _timeout_outcome(job)
        except concurrent.futures.CancelledError as exc:
            return _infrastructure_outcome(job, exc)
        except Exception as exc:  # noqa: BLE001 — BrokenProcessPool et al.
            return _infrastructure_outcome(job, exc)

    def shutdown(self, wait: bool = True) -> None:
        """Release the executor's workers (kill them when abandoned).

        A stuck worker must not block shutdown (or the executor's atexit
        join): once :meth:`collect` abandoned one, the join is skipped
        and worker processes are terminated outright.
        """
        if self._pool is None:
            return
        self._pool.shutdown(
            wait=wait and not self._abandoned, cancel_futures=True
        )
        if self._abandoned:
            for process in getattr(self._pool, "_processes", {}).values():
                process.terminate()


class WorkerPool:
    """Run :class:`SolveJob` lists across worker processes.

    Parameters
    ----------
    workers:
        Number of worker processes. ``1`` (the default) executes in-process,
        avoiding process start-up and pickling costs for small batches.
    master_seed:
        Root of the deterministic per-job seed derivation.

    Notes
    -----
    Outcomes are returned in job order regardless of completion order, and
    are identical for any worker count — parallelism never changes results,
    only wall-clock time.

    Jobs without a ``timeout`` are waited on indefinitely by design (there
    is no implicit budget); give every job a timeout when the batch must
    have a bounded wall-clock time even in the face of a wedged worker.
    """

    def __init__(self, workers: int = 1, master_seed: int = 0) -> None:
        if workers <= 0:
            raise RuntimeSubsystemError(f"workers must be positive, got {workers}")
        self._workers = workers
        self._master_seed = master_seed

    @property
    def workers(self) -> int:
        """Configured worker-process count."""
        return self._workers

    @property
    def master_seed(self) -> int:
        """Root seed of the per-job seed derivation."""
        return self._master_seed

    def executor(self, inline: Optional[bool] = None) -> JobExecutor:
        """A fresh :class:`JobExecutor` sharing this pool's configuration.

        ``inline`` defaults to in-process execution for a single worker
        (the batch path); pass ``inline=False`` for a non-blocking
        executor (the service event loop does, even at one worker).
        """
        return JobExecutor(
            workers=self._workers, master_seed=self._master_seed, inline=inline
        )

    def run(
        self,
        jobs: Sequence[SolveJob],
        on_outcome: Optional[Callable[[SolveOutcome], None]] = None,
    ) -> list[SolveOutcome]:
        """Execute every job and return outcomes in job order.

        Parameters
        ----------
        jobs:
            The work list.
        on_outcome:
            Optional progress callback, invoked once per finished job (in
            job order).
        """
        if not jobs:
            return []
        # Note: a single job still goes through the process pool when
        # workers > 1 — the parent-side grace window (the ability to abandon
        # a wedged worker) only exists on that path.
        executor = self.executor()
        try:
            if executor.inline:
                # Serial fast path: submit resolves synchronously, so
                # collect never waits and jobs run strictly in order.
                outcomes = []
                for job in jobs:
                    outcome = executor.collect(executor.submit(job), job)
                    if on_outcome is not None:
                        on_outcome(outcome)
                    outcomes.append(outcome)
                return outcomes
            return self._run_parallel(executor, jobs, on_outcome)
        finally:
            executor.shutdown()

    def _run_parallel(
        self,
        executor: JobExecutor,
        jobs: Sequence[SolveJob],
        on_outcome: Optional[Callable[[SolveOutcome], None]],
    ) -> list[SolveOutcome]:
        outcomes: list[SolveOutcome] = []
        futures = [executor.submit(job) for job in jobs]
        pending = len(futures)
        if _telemetry.active():
            _telemetry.record_pool_queue_depth(pending)
        for job, future in zip(jobs, futures):
            grace = (
                job.timeout + _TIMEOUT_GRACE if job.timeout is not None else None
            )
            outcome = executor.collect(future, job, grace=grace)
            if on_outcome is not None:
                on_outcome(outcome)
            outcomes.append(outcome)
            pending -= 1
            if _telemetry.active():
                _telemetry.record_pool_queue_depth(pending)
                # The parent-side record of a job solved in a worker
                # process (whose own telemetry is process-local).
                _telemetry.record_pool_task(
                    outcome.status, outcome.elapsed_seconds
                )
        return outcomes
