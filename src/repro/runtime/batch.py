"""Batch ingestion and aggregate reporting.

:class:`BatchRunner` is the top of the serving stack: it discovers DIMACS
files from directories, glob patterns and explicit paths, serves repeats
from the :class:`~repro.runtime.cache.ResultCache`, fans the misses out
over a :class:`~repro.runtime.pool.WorkerPool`, and aggregates everything
into a :class:`BatchReport` (throughput, cache hit rate, per-solver win
counts).
"""

from __future__ import annotations

import glob
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.cnf.dimacs import parse_dimacs_file
from repro.exceptions import ReproError, RuntimeSubsystemError
from repro.runtime.cache import CacheStats, ResultCache
from repro.runtime.jobs import (
    ERROR,
    NBL_SPECS,
    PORTFOLIO_SPEC,
    SolveJob,
    SolveOutcome,
    solve_cache_key,
)
from repro.runtime.pool import WorkerPool
from repro.solvers.registry import available_solvers
from repro.telemetry import instrument as _telemetry

PathLike = Union[str, os.PathLike]


def discover_instances(
    paths: Sequence[PathLike], pattern: str = "*.cnf"
) -> list[Path]:
    """Expand files, directories and glob patterns into a sorted file list.

    * a file path is taken as-is;
    * a directory is scanned recursively for ``pattern``;
    * anything else is tried as a glob pattern.

    The result is sorted and de-duplicated so a batch is independent of
    filesystem enumeration order. An input that matches nothing raises
    :class:`RuntimeSubsystemError` — a silently empty batch usually means a
    typo in the path.
    """
    found: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            found.add(path)
        elif path.is_dir():
            matched = [p for p in path.rglob(pattern) if p.is_file()]
            if not matched:
                raise RuntimeSubsystemError(
                    f"directory {str(raw)!r} contains no files matching {pattern!r}"
                )
            found.update(matched)
        else:
            matches = [
                p
                for p in (Path(m) for m in glob.glob(str(raw), recursive=True))
                if p.is_file()
            ]
            if not matches:
                raise RuntimeSubsystemError(
                    f"no DIMACS instances match {str(raw)!r}"
                )
            found.update(matches)
    return sorted(found)


def _hit_answers(job: SolveJob, hit: SolveOutcome) -> bool:
    """Whether a cached outcome genuinely answers ``job``.

    With preprocessing, jobs key on the *reduced* fingerprint plus the
    assumptions mapped into the reduced numbering, so two structurally
    different originals can share a cache entry. Their shared SAT/UNSAT
    verdict is sound (the key pins down the exact reduced problem that was
    solved), but a cached SAT *model* belongs to the formula that produced
    it — re-check it against this job's formula (and assumptions) and
    treat a mismatch as a miss.
    """
    if not job.preprocess:
        # The key is the exact original fingerprint plus the exact
        # assumption set: the cached outcome answers this very problem and
        # its model (verified at store time) needs no re-evaluation.
        return True
    if hit.status != "SAT" or hit.assignment is None:
        return True
    model = hit.assignment_dict()
    try:
        satisfied = job.formula.evaluate(model)
    except ReproError:
        return False
    return satisfied and all(
        model.get(abs(lit)) == (lit > 0) for lit in job.assumptions
    )


@dataclass
class BatchReport:
    """Aggregate view of one batch run."""

    outcomes: list[SolveOutcome] = field(default_factory=list)
    wall_seconds: float = 0.0
    workers: int = 1
    cache_stats: Optional[CacheStats] = None

    @property
    def total(self) -> int:
        """Number of instances processed."""
        return len(self.outcomes)

    @property
    def status_counts(self) -> dict[str, int]:
        """Instance count per final status."""
        counts: dict[str, int] = {}
        for outcome in self.outcomes:
            counts[outcome.status] = counts.get(outcome.status, 0) + 1
        return counts

    @property
    def cache_hits(self) -> int:
        """How many outcomes were served from the cache."""
        return sum(1 for o in self.outcomes if o.from_cache)

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of this batch served from the cache."""
        if not self.outcomes:
            return 0.0
        return self.cache_hits / len(self.outcomes)

    @property
    def win_counts(self) -> dict[str, int]:
        """Solved-instance count per winning engine/solver (cache hits excluded)."""
        counts: dict[str, int] = {}
        for outcome in self.outcomes:
            if outcome.winner and not outcome.from_cache and outcome.is_definitive:
                counts[outcome.winner] = counts.get(outcome.winner, 0) + 1
        return counts

    @property
    def throughput(self) -> float:
        """Instances per second of wall-clock time."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.total / self.wall_seconds

    def to_text(self) -> str:
        """Human-readable report (the CLI's output)."""
        lines = [
            f"batch: {self.total} instances in {self.wall_seconds:.3f}s "
            f"({self.throughput:.1f}/s, workers={self.workers})"
        ]
        for status in sorted(self.status_counts):
            lines.append(f"  {status:8s} {self.status_counts[status]}")
        lines.append(
            f"  cache    {self.cache_hits} hits "
            f"({self.cache_hit_rate:.0%} of batch)"
        )
        if self.cache_stats is not None:
            stats = self.cache_stats
            lines.append(
                f"  lifetime {stats.hits}/{stats.lookups} cache lookups hit "
                f"({stats.hit_rate:.0%}), {stats.evictions} evictions, "
                f"{stats.size}/{stats.max_size} entries held"
            )
        if self.win_counts:
            wins = ", ".join(
                f"{name}={count}"
                for name, count in sorted(
                    self.win_counts.items(), key=lambda item: (-item[1], item[0])
                )
            )
            lines.append(f"  wins     {wins}")
        for outcome in self.outcomes:
            if outcome.status == ERROR:
                lines.append(f"  error    {outcome.label or outcome.job_id}: {outcome.error}")
        return "\n".join(lines)


class BatchRunner:
    """Cache-fronted, pool-backed batch solving of DIMACS instances.

    Parameters
    ----------
    solver:
        Solver spec applied to every instance (see
        :class:`~repro.runtime.jobs.SolveJob`); default is the portfolio.
    workers:
        Worker-process count for the underlying pool.
    master_seed:
        Root of the deterministic per-job seed derivation.
    cache:
        A :class:`ResultCache` to serve repeats from; ``None`` builds a
        fresh one of ``cache_size``.
    cache_size:
        Capacity of the internally-built cache.
    samples / carrier / timeout:
        Forwarded to every job.
    preprocess:
        Run the inprocessing pipeline on every instance before solving
        (see :class:`~repro.runtime.jobs.SolveJob`); the cache then keys
        on the reduced fingerprint (with reduced-numbering assumptions),
        so instances that simplify to the same core share one cached
        verdict, and every outcome is aliased under the instance's
        original key so warm re-runs skip the pipeline entirely.
    proof_dir:
        Directory (created if missing) receiving one DRAT proof file per
        executed job, named ``<job_id>.drat``; each outcome records its
        file in :attr:`~repro.runtime.jobs.SolveOutcome.proof`. Requires
        a classical (proof-capable) solver spec — rejected up front for
        the NBL engine and the portfolio. Cache hits reuse the proof
        path of the run that produced the verdict.
    """

    def __init__(
        self,
        solver: str = "portfolio",
        workers: int = 1,
        master_seed: int = 0,
        cache: Optional[ResultCache] = None,
        cache_size: int = 4096,
        samples: int = 200_000,
        carrier: str = "uniform",
        timeout: Optional[float] = None,
        preprocess: bool = False,
        proof_dir: Optional[PathLike] = None,
    ) -> None:
        # Validate the spec up front: a typo'd solver name should fail the
        # batch immediately, not once per instance inside the workers.
        known = set(available_solvers()) | set(NBL_SPECS) | {PORTFOLIO_SPEC}
        if solver not in known:
            raise RuntimeSubsystemError(
                f"unknown solver spec {solver!r}; available: {sorted(known)}"
            )
        if proof_dir is not None and (
            solver in NBL_SPECS or solver == PORTFOLIO_SPEC
        ):
            raise RuntimeSubsystemError(
                f"proof_dir requires a classical solver spec; "
                f"{solver!r} cannot emit DRAT derivations"
            )
        self._solver = solver
        self._samples = samples
        self._carrier = carrier
        self._timeout = timeout
        self._preprocess = preprocess
        self._proof_dir = str(proof_dir) if proof_dir is not None else None
        if self._proof_dir is not None:
            os.makedirs(self._proof_dir, exist_ok=True)
        self._pool = WorkerPool(workers=workers, master_seed=master_seed)
        self._cache = cache if cache is not None else ResultCache(cache_size)

    @property
    def cache(self) -> ResultCache:
        """The result cache fronting the pool."""
        return self._cache

    @property
    def pool(self) -> WorkerPool:
        """The worker pool executing cache misses."""
        return self._pool

    def make_job(
        self, formula, label: str = "", assumptions: Sequence[int] = ()
    ) -> SolveJob:
        """Build one job carrying this runner's solver configuration."""
        job = SolveJob(
            formula=formula,
            label=label,
            solver=self._solver,
            samples=self._samples,
            carrier=self._carrier,
            timeout=self._timeout,
            assumptions=tuple(assumptions),
            preprocess=self._preprocess,
        )
        if self._proof_dir is not None:
            # Named after the (fingerprint-derived) job id once it exists;
            # in-flight deduplication means one file per distinct formula.
            job.proof = os.path.join(self._proof_dir, f"{job.job_id}.drat")
        return job

    def run(
        self, paths: Sequence[PathLike], pattern: str = "*.cnf"
    ) -> BatchReport:
        """Discover, parse and solve every instance under ``paths``."""
        files = discover_instances(paths, pattern)
        started = time.perf_counter()
        jobs: list[SolveJob] = []
        parse_failures: dict[str, SolveOutcome] = {}
        for path in files:
            label = str(path)
            try:
                formula = parse_dimacs_file(path)
            except (ReproError, OSError) as exc:
                parse_failures[label] = SolveOutcome(
                    job_id=f"parse-{label}",
                    status=ERROR,
                    solver=self._solver,
                    label=label,
                    error=f"{type(exc).__name__}: {exc}",
                )
                continue
            jobs.append(self.make_job(formula, label=label))
        report = self.run_jobs(jobs)
        if parse_failures:
            # Splice parse failures back at their sorted-path positions.
            by_label = {o.label: o for o in report.outcomes}
            by_label.update(parse_failures)
            report.outcomes = [by_label[str(path)] for path in files]
        report.wall_seconds = time.perf_counter() - started
        return report

    def _alias(self, job: SolveJob, outcome: SolveOutcome) -> None:
        """Also store a preprocessed outcome under ``job``'s original key.

        Preprocessed outcomes key on the reduced core, which a later run
        can only recompute by running the pipeline again. The alias under
        ``(original fingerprint, assumptions)`` makes warm re-runs of the
        same instance pure O(1) lookups. Harmless for duplicates: the
        alias entry is the same outcome object the semantic key holds.
        """
        if not job.preprocess:
            return
        original_key = solve_cache_key(job.fingerprint, job.assumptions)
        if original_key != outcome.cache_key:
            self._cache.put(outcome, key=original_key)

    def run_jobs(self, jobs: Sequence[SolveJob]) -> BatchReport:
        """Solve prepared jobs: cache front, pool for the misses.

        Cache misses are additionally de-duplicated in flight: structurally
        identical formulas under the same assumptions *requesting the same
        solver* are solved once and the outcome is fanned out to the
        duplicates (marked ``from_cache`` when definitive). Jobs for the
        same formula under different solvers or different assumption sets
        still run separately.
        """
        started = time.perf_counter()
        slots: list[Optional[SolveOutcome]] = [None] * len(jobs)
        misses: dict[tuple[str, str], list[tuple[int, SolveJob]]] = {}
        for index, job in enumerate(jobs):
            # Fast path first: the job's own (original fingerprint,
            # assumptions) key. Preprocessed outcomes are additionally
            # stored under this alias below, so a warm re-run of the same
            # instances is answered without running the pipeline in the
            # coordinator at all; only a never-seen original falls through
            # to the reduced-core key (whose one pipeline run is kept on
            # the job and reused by the worker).
            original_key = solve_cache_key(job.fingerprint, job.assumptions)
            hit = self._cache.get(original_key)
            if hit is None and job.preprocess:
                hit = self._cache.get(job.cache_key)
            if hit is not None and not _hit_answers(job, hit):
                hit = None
            if hit is not None:
                hit.job_id = job.job_id
                hit.label = job.label
                # ``solver`` documents what this job requested; ``winner``
                # keeps recording who originally solved the formula.
                hit.solver = job.solver
                slots[index] = hit
            else:
                misses.setdefault((job.cache_key, job.solver), []).append(
                    (index, job)
                )
        representatives = [entries[0][1] for entries in misses.values()]
        solved = self._pool.run(representatives)
        leftovers: list[tuple[int, SolveJob]] = []
        for entries, outcome in zip(misses.values(), solved):
            self._cache.put(outcome)
            self._alias(entries[0][1], outcome)
            slots[entries[0][0]] = outcome
            for index, job in entries[1:]:
                # A preprocessed key can group structurally different
                # formulas; fan a SAT model out only to jobs it actually
                # satisfies and re-solve the rest individually.
                if not _hit_answers(job, outcome):
                    leftovers.append((index, job))
                    continue
                self._alias(job, outcome)
                # Only definitive answers count as served-from-cache; a
                # duplicated ERROR/UNKNOWN will be re-solved next run.
                slots[index] = outcome.copy(
                    job_id=job.job_id,
                    label=job.label,
                    from_cache=outcome.is_definitive,
                    elapsed_seconds=0.0,
                )
        if leftovers:
            for (index, job), outcome in zip(
                leftovers, self._pool.run([job for _, job in leftovers])
            ):
                self._cache.put(outcome)
                self._alias(job, outcome)
                slots[index] = outcome
        report = BatchReport(
            outcomes=[o for o in slots if o is not None],
            wall_seconds=time.perf_counter() - started,
            workers=self._pool.workers,
            cache_stats=self._cache.stats,
        )
        if _telemetry.active():
            for outcome in report.outcomes:
                _telemetry.record_batch_outcome(
                    outcome.status, outcome.from_cache
                )
            _telemetry.record_cache_snapshot(report.cache_stats)
            if _telemetry.tracing_active():
                _telemetry.event(
                    "batch",
                    instances=report.total,
                    cache_hits=report.cache_hits,
                    wall_seconds=report.wall_seconds,
                    workers=report.workers,
                )
        return report
