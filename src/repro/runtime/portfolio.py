"""Portfolio racing: NBL engines vs. the classical baseline solvers.

The racer runs a deterministic roster of *contenders* over one formula and
returns the first **settled** answer:

* ``SAT`` with a model that was verified against the formula, or
* ``UNSAT`` from an exact/complete contender (the symbolic NBL engine or a
  complete classical solver).

Incomplete contenders (WalkSAT, GSAT, the sampled NBL engine's UNSAT
verdict) can win only via a verified SAT model; their other verdicts are
recorded but do not settle the race. Contenders run sequentially in roster
order with an even split of the remaining time budget, which keeps the
portfolio fully deterministic for a fixed seed — a requirement of the
worker pool's reproducibility contract.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.cnf.assignment import Assignment
from repro.cnf.formula import CNFFormula
from repro.core.config import NBLConfig
from repro.core.solver import NBLSATSolver
from repro.exceptions import RuntimeSubsystemError
from repro.noise.base import carrier_from_name
from repro.runtime.jobs import ERROR, SKIPPED
from repro.solvers.base import SAT, UNKNOWN, UNSAT
from repro.solvers.registry import available_solvers, make_solver

#: Default roster: the paper's exact NBL engine first, then complete
#: classical search, then stochastic local search as a SAT sprinter.
DEFAULT_CONTENDERS = ("nbl-symbolic", "dpll", "cdcl", "walksat")

#: Classical solvers that accept a ``seed`` constructor argument.
SEEDED_SOLVERS = ("walksat", "gsat")

#: Solvers whose cost is exponential in the variable count; the portfolio
#: skips them (status ``"SKIPPED"``) beyond their limit instead of hanging
#: the whole race, and the worker pool refuses direct jobs past it. The
#: hybrid solver is listed because its (default) symbolic guidance
#: enumerates the residual formula's minterms at every DPLL decision.
EXPONENTIAL_LIMITS = {"nbl-symbolic": 20, "brute-force": 24, "hybrid": 20}


def refusal_reason(solver: str, formula: CNFFormula) -> Optional[str]:
    """Why ``solver`` must not be run on ``formula``, or ``None`` if it may.

    Single source of the exponential-cost refusal policy, shared by the
    portfolio racer (which skips the contender) and the worker pool (which
    fails the job fast).
    """
    limit = EXPONENTIAL_LIMITS.get(solver)
    if limit is not None and formula.num_variables > limit:
        return (
            f"{formula.num_variables} variables exceed {solver}'s "
            f"{limit}-variable limit"
        )
    return None


def solve_with_nbl(
    spec: str,
    formula: CNFFormula,
    samples: int,
    carrier: str,
    seed: Optional[int],
    config: Optional[NBLConfig] = None,
) -> tuple[str, bool, Optional[Assignment], int]:
    """Run one NBL engine spec (``"nbl-symbolic"``/``"nbl-sampled"``).

    Shared by the portfolio racer and the worker pool so the engine recipe
    (block size policy, verification rules) cannot diverge between the two.
    A full ``config`` (see :attr:`SolveJob.nbl_config`) takes precedence
    over the ``samples``/``carrier`` names; only its seed is replaced.

    Returns ``(status, verified, assignment, samples_used)``: SAT is
    verified only when the model was checked against the formula, UNSAT
    only for the exact symbolic engine (the sampled engine's UNSAT is a
    statistical verdict).
    """
    engine = "symbolic" if spec == "nbl-symbolic" else "sampled"
    if config is not None:
        config = config.replace(seed=seed)
    else:
        config = NBLConfig(
            carrier=carrier_from_name(carrier),
            max_samples=samples,
            block_size=min(20_000, samples),
            seed=seed,
        )
    solution = NBLSATSolver(engine=engine, config=config).solve(formula)
    if solution.satisfiable:
        verified = solution.verified and solution.assignment is not None
        return SAT, verified, solution.assignment, solution.total_samples
    return UNSAT, engine == "symbolic", None, solution.total_samples


@dataclass
class ContenderReport:
    """What one contender did during a race."""

    name: str
    status: str
    elapsed_seconds: float = 0.0
    samples_used: int = 0
    settled: bool = False
    detail: str = ""
    assignment: Optional[Assignment] = field(default=None, repr=False)


@dataclass
class PortfolioResult:
    """Outcome of one portfolio race.

    ``status`` is ``"SAT"``/``"UNSAT"`` when some contender settled the
    race, else ``"UNKNOWN"``. ``winner`` names the settling contender.
    """

    status: str
    winner: str = ""
    assignment: Optional[Assignment] = None
    verified: bool = False
    elapsed_seconds: float = 0.0
    samples_used: int = 0
    reports: list[ContenderReport] = field(default_factory=list)

    @property
    def timed_out(self) -> bool:
        """``True`` when the race ended undecided because time ran out."""
        return self.status == UNKNOWN and any(
            report.detail in ("timed out", "no time left")
            for report in self.reports
        )

    @property
    def contender_seconds(self) -> dict[str, float]:
        """Per-contender wall times, keyed by contender name."""
        return {r.name: r.elapsed_seconds for r in self.reports}

    @property
    def contender_status(self) -> dict[str, str]:
        """Per-contender verdicts, keyed by contender name."""
        return {r.name: r.status for r in self.reports}


class PortfolioSolver:
    """Race NBL engines and classical solvers over single formulas.

    Parameters
    ----------
    contenders:
        Roster of contender names, raced in order. Valid names are
        ``"nbl-symbolic"``, ``"nbl-sampled"`` and every registry solver
        name (:func:`repro.solvers.registry.available_solvers`).
    samples:
        Sample budget per check for the sampled NBL engine.
    carrier:
        Carrier family name for the sampled NBL engine.
    """

    def __init__(
        self,
        contenders: Sequence[str] = DEFAULT_CONTENDERS,
        samples: int = 200_000,
        carrier: str = "uniform",
    ) -> None:
        if not contenders:
            raise RuntimeSubsystemError("portfolio needs at least one contender")
        known = set(available_solvers()) | {"nbl-symbolic", "nbl-sampled"}
        for name in contenders:
            if name not in known:
                raise RuntimeSubsystemError(
                    f"unknown portfolio contender {name!r}; available: {sorted(known)}"
                )
        self._contenders = tuple(contenders)
        self._samples = samples
        self._carrier = carrier

    @property
    def contenders(self) -> tuple[str, ...]:
        """The roster, in race order."""
        return self._contenders

    def make_session(
        self,
        base_formula: Optional[CNFFormula] = None,
        num_variables: int = 0,
        seed: Optional[int] = None,
    ):
        """An incremental session that races this portfolio per query."""
        from repro.incremental.frontends import PortfolioSession

        return PortfolioSession(
            self,
            base_formula=base_formula,
            num_variables=num_variables,
            seed=seed,
        )

    def solve(
        self,
        formula: CNFFormula,
        seed: Optional[int] = None,
        timeout: Optional[float] = None,
        assumptions: Sequence[int] = (),
    ) -> PortfolioResult:
        """Race the roster over ``formula`` and return the settled answer.

        Parameters
        ----------
        formula:
            The CNF instance.
        seed:
            Seed for the stochastic contenders (sampled engine, WalkSAT,
            GSAT); a fixed seed makes the whole race deterministic.
        timeout:
            Total wall-clock budget, split evenly across the contenders
            that have not yet run. Enforcement is cooperative: classical
            contenders honour their slice, but NBL contenders are bounded
            by their sample budget (sampled) or variable limit (symbolic)
            and can overshoot the slice — budget the roster accordingly
            (small ``samples``, NBL contenders late) when ``timeout``
            matters.
        assumptions:
            DIMACS-signed literals that must hold for this race only; the
            roster then solves the assumption-strengthened formula, so
            ``UNSAT`` means "unsatisfiable under the assumptions".
        """
        if assumptions:
            formula = formula.with_assumptions(assumptions)
        start = time.perf_counter()
        deadline = start + timeout if timeout is not None else None
        reports: list[ContenderReport] = []
        total_samples = 0
        result: Optional[PortfolioResult] = None

        for position, name in enumerate(self._contenders):
            slice_budget = self._time_slice(deadline, position)
            if slice_budget is not None and slice_budget <= 0:
                reports.append(ContenderReport(name, SKIPPED, detail="no time left"))
                continue
            report = self._run_contender(name, formula, seed, slice_budget)
            reports.append(report)
            total_samples += report.samples_used
            if report.settled:
                result = self._settled_result(report)
                break

        if result is None:
            result = PortfolioResult(status=UNKNOWN)
        result.reports = reports
        result.samples_used = total_samples
        result.elapsed_seconds = time.perf_counter() - start
        return result

    # -- internals -------------------------------------------------------------
    def _time_slice(
        self, deadline: Optional[float], position: int
    ) -> Optional[float]:
        """Even split of the remaining budget over the remaining contenders."""
        if deadline is None:
            return None
        remaining_time = deadline - time.perf_counter()
        remaining_contenders = len(self._contenders) - position
        return remaining_time / max(remaining_contenders, 1)

    def _settled_result(self, report: ContenderReport) -> PortfolioResult:
        return PortfolioResult(
            status=report.status,
            winner=report.name,
            verified=True,
            assignment=report.assignment,
        )

    def _run_contender(
        self,
        name: str,
        formula: CNFFormula,
        seed: Optional[int],
        budget: Optional[float],
    ) -> ContenderReport:
        refusal = refusal_reason(name, formula)
        if refusal is not None:
            return ContenderReport(name, SKIPPED, detail=refusal)
        started = time.perf_counter()
        try:
            if name in ("nbl-symbolic", "nbl-sampled"):
                report = self._run_nbl(name, formula, seed)
            else:
                report = self._run_classical(name, formula, seed, budget)
        except Exception as exc:  # noqa: BLE001 — contender isolation boundary
            # Any failure (library error, RecursionError, ...) eliminates
            # this contender only; the rest of the roster still races.
            report = ContenderReport(
                name, ERROR, detail=f"{type(exc).__name__}: {exc}"
            )
        report.elapsed_seconds = time.perf_counter() - started
        return report

    def _run_nbl(
        self, name: str, formula: CNFFormula, seed: Optional[int]
    ) -> ContenderReport:
        status, verified, assignment, samples_used = solve_with_nbl(
            name, formula, self._samples, self._carrier, seed
        )
        if status == SAT and not verified:
            return ContenderReport(
                name,
                UNKNOWN,
                samples_used=samples_used,
                detail="SAT claim without a verified model",
            )
        return ContenderReport(
            name,
            status,
            samples_used=samples_used,
            settled=verified,
            assignment=assignment,
            detail="" if verified else "statistical verdict",
        )

    def _run_classical(
        self,
        name: str,
        formula: CNFFormula,
        seed: Optional[int],
        budget: Optional[float],
    ) -> ContenderReport:
        kwargs = {"seed": seed} if name in SEEDED_SOLVERS else {}
        solver = make_solver(name, **kwargs)
        result = solver.solve(formula, timeout=budget)
        if result.is_sat:
            # The SATSolver base class has already verified the model.
            return ContenderReport(
                name, SAT, settled=True, assignment=result.assignment
            )
        if result.is_unsat:
            return ContenderReport(name, UNSAT, settled=solver.complete)
        detail = "timed out" if result.timed_out else ""
        return ContenderReport(name, UNKNOWN, detail=detail)
