"""Sharded, write-ahead persistent result cache for concurrent serving.

A single :class:`~repro.runtime.cache.ResultCache` JSON file works for
one-shot batch runs, but an always-on service needs verdicts to be
durable *as they arrive* and needs many shards so no single file becomes
a rewrite bottleneck. :class:`ShardedResultCache` splits entries across
``N`` shards by a stable hash of the cache key; each shard holds

* an in-memory :class:`~repro.runtime.cache.ResultCache`,
* a snapshot file ``shard-NNN.json`` (the cache's own atomic save
  format),
* a write-ahead log ``shard-NNN.wal`` — one JSON record per line,
  appended and flushed *before* the entry becomes visible in memory, so
  every verdict a caller ever observed survives a crash, and
* a lock file ``shard-NNN.lock`` — the shard's cross-process lease
  (:class:`~repro.runtime.locks.FileLease`), taken for every WAL
  append, compaction and recovery replay, so **N server processes can
  share one cache directory**: no process ever reads another's
  half-written record or truncates a log someone else is appending to.
  A holder that dies (SIGKILL) leaves its lock file behind; waiters
  reclaim it once its heartbeat goes stale.

Recovery (:meth:`ShardedResultCache.load`, run automatically when a
directory is given) loads each snapshot and replays its WAL. A torn
final record — the classic crash-mid-append artifact — is detected,
dropped and trimmed from the log; committed records are never lost
because each append is flushed to the OS before the entry is published.
:meth:`compact` *merges* under the shard lease: it folds the on-disk
snapshot, the full WAL (including records appended by other processes)
and this process's in-memory entries into a fresh snapshot (via
:func:`~repro.runtime.cache.atomic_write_json`) before truncating the
log — so a compaction by any writer preserves every writer's verdicts,
and an entry that failed to WAL-append during a degraded spell is healed
into the snapshot by the next successful compaction. Replay is
idempotent, so a crash between snapshot and truncation only leaves
duplicate records behind, never wrong ones.

Fault points (``shards.wal.append``, ``shards.wal.fsync``,
``shards.snapshot.write``, ``shards.lock.acquire``) are threaded through
every IO boundary via :func:`repro.faults.fire`, which is how the chaos
suite proves these guarantees under injected fsync failures, torn
writes and IO delays.
"""

from __future__ import annotations

import json
import os
import threading
import time
import zlib
from typing import Optional, Union

from repro import faults as _faults
from repro.exceptions import (
    CacheLockError,
    CachePersistError,
    RuntimeSubsystemError,
)
from repro.runtime.cache import CacheStats, ResultCache, atomic_write_json
from repro.runtime.jobs import SolveOutcome
from repro.runtime.locks import DEFAULT_LEASE_TIMEOUT, FileLease
from repro.telemetry import instrument as _telemetry

PathLike = Union[str, os.PathLike]


def shard_index(key: str, shards: int) -> int:
    """The shard a cache key lives in: a stable CRC-32 of the key.

    Independent of :envvar:`PYTHONHASHSEED` and of the Python version, so
    a cache directory written by one process is read back identically by
    any other.
    """
    return zlib.crc32(key.encode("utf-8")) % shards


class _Shard:
    """One shard: an in-memory cache plus its snapshot, WAL and lease."""

    def __init__(
        self,
        index: int,
        directory: Optional[str],
        max_size: int,
        fsync: bool,
        lease_timeout: float,
    ) -> None:
        self.index = index
        self.cache = ResultCache(max_size)
        self._max_size = max_size
        self._fsync = fsync
        self._lock = threading.Lock()
        self._handle = None
        self.pending = 0  # WAL records appended since the last compaction
        if directory is None:
            self.snapshot_path = None
            self.wal_path = None
            self.lease: Optional[FileLease] = None
        else:
            self.snapshot_path = os.path.join(directory, f"shard-{index:03d}.json")
            self.wal_path = os.path.join(directory, f"shard-{index:03d}.wal")
            self.lease = FileLease(
                os.path.join(directory, f"shard-{index:03d}.lock"),
                lease_timeout=lease_timeout,
            )

    @property
    def persistent(self) -> bool:
        return self.wal_path is not None

    def _acquire_lease(self) -> None:
        """Take the shard's cross-process lease (metrics on wait/takeover)."""
        takeovers_before = self.lease.takeovers
        waited = time.perf_counter()
        self.lease.acquire()
        if _telemetry.active():
            _telemetry.record_lock_wait(
                self.index, time.perf_counter() - waited
            )
            for _ in range(self.lease.takeovers - takeovers_before):
                _telemetry.record_lock_takeover(self.index)

    def load(self) -> tuple[int, int, int]:
        """Load snapshot + WAL; returns ``(snapshot, replayed, torn)`` counts.

        Runs under the shard lease: a record another process is appending
        right now must never be mistaken for a torn crash artifact and
        trimmed away.
        """
        if not self.persistent:
            return (0, 0, 0)
        self._acquire_lease()
        try:
            snapshot = 0
            if os.path.exists(self.snapshot_path):
                snapshot = self.cache.load(self.snapshot_path)
            replayed, torn = self._replay_wal(self.cache, trim=True)
            self.pending = replayed
            return (snapshot, replayed, torn)
        finally:
            self.lease.release()

    def _replay_wal(self, target: ResultCache, trim: bool) -> tuple[int, int]:
        """Replay the WAL into ``target``; returns ``(replayed, torn)``.

        Caller holds the lease. With ``trim``, a torn tail is cut back to
        the committed prefix so future appends never land after garbage.
        """
        if not os.path.exists(self.wal_path):
            return (0, 0)
        survivors: list[bytes] = []
        replayed = torn = 0
        with open(self.wal_path, "rb") as handle:
            lines = handle.read().split(b"\n")
        for position, raw in enumerate(lines):
            if not raw.strip():
                continue
            try:
                record = json.loads(raw.decode("utf-8"))
                key = record["key"]
                outcome = SolveOutcome.from_dict(record["outcome"])
                if not isinstance(key, str) or not key:
                    raise ValueError("record has no key")
            except Exception:  # noqa: BLE001 — persistence boundary
                # A torn append: this record (and anything after it —
                # the log is append-only, so later bytes are suspect
                # too) never committed. Drop it and stop replaying.
                torn += sum(1 for rest in lines[position:] if rest.strip())
                break
            target.put(outcome, key=key)
            survivors.append(raw)
            replayed += 1
        if torn and trim:
            # Trim the log back to its committed prefix so future
            # appends never land after garbage bytes.
            blob = b"".join(line + b"\n" for line in survivors)
            temp_path = self.wal_path + ".recover"
            with open(temp_path, "wb") as handle:
                handle.write(blob)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp_path, self.wal_path)
        return (replayed, torn)

    def append(self, key: str, outcome: SolveOutcome) -> None:
        """Append one committed verdict to the WAL (flushed before return).

        Takes the shard lease for the duration of the append. Any failure
        — a real IO error, a lost lease, an injected fault — leaves the
        WAL without a torn tail (the write is rolled back to its
        pre-append length when possible) and surfaces to the caller, who
        degrades to serve-without-persist.
        """
        if not self.persistent:
            return
        record = json.dumps(
            {"key": key, "outcome": outcome.to_dict()}, separators=(",", ":")
        )
        with self._lock:
            self._acquire_lease()
            try:
                if self._handle is None:
                    self._handle = open(self.wal_path, "a", encoding="utf-8")
                wal_size = os.path.getsize(self.wal_path)
                try:
                    rule = _faults.fire("shards.wal.append")
                    if rule is not None and rule.kind == "torn":
                        # A torn write: half the record reaches the file,
                        # then the "crash". The rollback below (and the
                        # torn-trim at recovery) must both cope.
                        self._handle.write(record[: max(1, len(record) // 2)])
                        self._handle.flush()
                        raise _faults.InjectedFault(
                            f"injected torn write at shards.wal.append "
                            f"(shard {self.index})"
                        )
                    self._handle.write(record + "\n")
                    # Flush to the OS so the record survives the *process*
                    # dying; fsync (off by default, it serialises on disk
                    # latency) also survives the machine dying.
                    self._handle.flush()
                    if self._fsync:
                        _faults.fire("shards.wal.fsync")
                        os.fsync(self._handle.fileno())
                except BaseException:
                    self._rollback(wal_size)
                    raise
                self.pending += 1
            finally:
                self.lease.release()

    def _rollback(self, wal_size: int) -> None:
        """Cut the WAL back to its pre-append length after a failed write."""
        try:
            self._handle.close()
        except OSError:
            pass
        self._handle = None
        try:
            os.truncate(self.wal_path, wal_size)
        except OSError:
            pass  # recovery's torn-record trim is the backstop

    def compact(self) -> int:
        """Merge snapshot + WAL + memory into a fresh snapshot; entry count.

        Runs under the shard lease. The merge (rather than a bare dump of
        this process's memory) is what makes compaction safe with N
        writers: records appended by *other* processes since this
        process's last replay live only in the WAL, and truncating it
        without folding them into the snapshot would lose them. Entries
        discovered in the merge are also adopted into this process's
        in-memory cache, so every writer's verdicts warm every server.
        """
        if not self.persistent:
            return len(self.cache)
        with self._lock:
            self._acquire_lease()
            try:
                if self._handle is not None:
                    self._handle.close()
                    self._handle = None
                merged = ResultCache(self._max_size)
                if os.path.exists(self.snapshot_path):
                    merged.load(self.snapshot_path)
                self._replay_wal(merged, trim=False)
                for key, outcome in self.cache.entries():
                    # Own entries last: anything this process served is
                    # present even if its WAL append failed (degraded
                    # spell) — the compaction heals the gap.
                    merged.put(outcome, key=key)
                _faults.fire("shards.snapshot.write")
                entries = merged.save(self.snapshot_path)
                # Truncate only after the snapshot is durably in place: a
                # crash in between leaves WAL records that replay to
                # entries the snapshot already holds — idempotent, never
                # lossy.
                with open(self.wal_path, "w", encoding="utf-8"):
                    pass
                self.pending = 0
                for key, outcome in merged.entries():
                    if key not in self.cache:
                        self.cache.put(outcome, key=key)
            finally:
                self.lease.release()
        return entries

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None


class ShardedResultCache:
    """A result cache split across ``N`` write-ahead-logged shard files.

    Drop-in for :class:`~repro.runtime.cache.ResultCache` at the
    ``get``/``put``/``stats`` surface, built for the always-on service:
    every stored verdict is appended to its shard's write-ahead log
    before it becomes visible, so acknowledged results survive a crash
    at any instruction boundary, and recovery tolerates (and trims) a
    torn final record. Every WAL append, compaction and recovery replay
    runs under a per-shard cross-process lease
    (:class:`~repro.runtime.locks.FileLease`), so any number of server
    processes can serve one cache directory concurrently.

    Parameters
    ----------
    directory:
        Where the ``shard-NNN.json`` / ``shard-NNN.wal`` /
        ``shard-NNN.lock`` files live (created if missing, loaded if
        present). ``None`` keeps the cache purely in memory — same
        sharded interface, no persistence, no locks.
    shards:
        Number of shards; keys are assigned by :func:`shard_index`.
        Changing the count over an existing directory would misplace
        keys, so the count is persisted in ``shards.meta.json`` and a
        mismatch raises :class:`RuntimeSubsystemError`.
    shard_size:
        LRU capacity *per shard* (total capacity = ``shards * shard_size``).
    compact_threshold:
        WAL records per shard that trigger an automatic compaction;
        ``0`` disables auto-compaction (call :meth:`compact` yourself).
        Auto-compaction failures are absorbed (the WAL keeps growing and
        the next threshold retries); an explicit :meth:`compact` raises.
    fsync:
        ``True`` fsyncs every WAL append (survives power loss, slower);
        the default flushes to the OS (survives process death).
    lease_timeout:
        Heartbeat age (seconds) after which another process's shard
        lease counts as stale and is taken over — the recovery time
        after a server is SIGKILLed while holding a lock. Acquisitions
        wait up to twice this before raising
        :class:`~repro.exceptions.CacheLockError`.

    Failure contract: :meth:`put` raises
    :class:`~repro.exceptions.CachePersistError` when the verdict could
    not be durably appended (disk error, lost lease, injected fault) —
    *after* inserting it into the in-memory cache, so the caller can
    still serve it warm and degrade instead of failing. The next
    successful compaction folds such entries into the snapshot.
    """

    def __init__(
        self,
        directory: Optional[PathLike] = None,
        shards: int = 8,
        shard_size: int = 4096,
        compact_threshold: int = 1024,
        fsync: bool = False,
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
    ) -> None:
        if shards <= 0:
            raise RuntimeSubsystemError(
                f"shard count must be positive, got {shards}"
            )
        if compact_threshold < 0:
            raise RuntimeSubsystemError(
                f"compact_threshold must be >= 0, got {compact_threshold}"
            )
        if lease_timeout <= 0:
            raise RuntimeSubsystemError(
                f"lease_timeout must be positive, got {lease_timeout}"
            )
        self._directory = os.fspath(directory) if directory is not None else None
        self._compact_threshold = compact_threshold
        self._lease_timeout = float(lease_timeout)
        self.replayed_records = 0
        self.torn_records = 0
        self.failed_compactions = 0
        if self._directory is not None:
            os.makedirs(self._directory, exist_ok=True)
            self._check_meta(shards, shard_size)
        self._shards = [
            _Shard(index, self._directory, shard_size, fsync, lease_timeout)
            for index in range(shards)
        ]
        if self._directory is not None:
            self.load()

    def _check_meta(self, shards: int, shard_size: int) -> None:
        meta_path = os.path.join(self._directory, "shards.meta.json")
        # The directory-level lease serialises first-writer meta creation:
        # two servers starting concurrently on a fresh directory must
        # agree on one shard count instead of racing the write.
        meta_lease = FileLease(
            os.path.join(self._directory, "cache.lock"),
            lease_timeout=self._lease_timeout,
        )
        meta_lease.acquire()
        try:
            if os.path.exists(meta_path):
                try:
                    with open(meta_path, "r", encoding="utf-8") as handle:
                        meta = json.load(handle)
                    existing = int(meta["shards"])
                except Exception as exc:  # noqa: BLE001 — persistence boundary
                    raise RuntimeSubsystemError(
                        f"cannot read shard metadata {meta_path!r}: {exc}"
                    ) from exc
                if existing != shards:
                    raise RuntimeSubsystemError(
                        f"cache directory {self._directory!r} was written with "
                        f"{existing} shards; reopening with {shards} would "
                        f"misplace keys"
                    )
            else:
                atomic_write_json(
                    meta_path,
                    {"version": 1, "shards": shards, "shard_size": shard_size},
                )
        finally:
            meta_lease.release()

    @property
    def directory(self) -> Optional[str]:
        """The cache directory (``None`` for a purely in-memory cache)."""
        return self._directory

    @property
    def num_shards(self) -> int:
        """How many shards keys are split across."""
        return len(self._shards)

    @property
    def lease_timeout(self) -> float:
        """Seconds after which a dead holder's shard lease is reclaimed."""
        return self._lease_timeout

    @property
    def lock_takeovers(self) -> int:
        """Stale shard leases this cache has reclaimed from dead holders."""
        return sum(
            shard.lease.takeovers
            for shard in self._shards
            if shard.lease is not None
        )

    def __len__(self) -> int:
        return sum(len(shard.cache) for shard in self._shards)

    def _shard_for(self, key: str) -> _Shard:
        return self._shards[shard_index(key, len(self._shards))]

    def get(self, key: str) -> Optional[SolveOutcome]:
        """Look up a cached outcome (see :meth:`ResultCache.get`)."""
        return self._shard_for(key).cache.get(key)

    def put(self, outcome: SolveOutcome, key: Optional[str] = None) -> bool:
        """Durably store a definitive outcome; ``False`` when not cacheable.

        Write-ahead contract: the WAL record is appended and flushed
        *before* the in-memory insert, so any outcome a concurrent reader
        can observe is already recoverable from disk. When the append
        fails, the outcome is inserted into memory anyway (the process
        keeps serving it warm) and :class:`CachePersistError` is raised
        so the caller can degrade; the next successful compaction folds
        the entry into the snapshot.
        """
        key = key if key is not None else outcome.cache_key
        if not key or not outcome.is_definitive:
            return False
        shard = self._shard_for(key)
        try:
            shard.append(key, outcome)
        except (OSError, CacheLockError) as exc:
            shard.cache.put(outcome, key=key)
            raise CachePersistError(
                f"shard {shard.index} could not persist verdict "
                f"{key[:16]}...: {type(exc).__name__}: {exc}"
            ) from exc
        if _telemetry.active():
            _telemetry.record_wal_append(shard.index)
        stored = shard.cache.put(outcome, key=key)
        if (
            self._compact_threshold
            and shard.pending >= self._compact_threshold
        ):
            try:
                self._compact_shard(shard)
            except (OSError, RuntimeSubsystemError):
                # The verdict itself is safely in the WAL; a failed
                # auto-compaction only postpones folding. Count it and
                # let the next threshold (or an explicit compact) retry.
                self.failed_compactions += 1
        return stored

    def load(self) -> int:
        """Load every shard's snapshot and replay its WAL; returns entries.

        Tolerates a torn final WAL record per shard (dropped and trimmed);
        counts land in :attr:`replayed_records` / :attr:`torn_records`.
        Corrupt *snapshot* files raise :class:`RuntimeSubsystemError` —
        snapshots are written atomically, so damage there means something
        outside this library touched the file.
        """
        span = _telemetry.span("cache.shard.load")
        loaded = 0
        with span:
            for shard in self._shards:
                snapshot, replayed, torn = shard.load()
                loaded += snapshot + replayed
                self.replayed_records += replayed
                self.torn_records += torn
            if span.recording:
                span.set(
                    entries=loaded,
                    replayed=self.replayed_records,
                    torn=self.torn_records,
                )
        if _telemetry.active():
            _telemetry.record_wal_recovery(self.replayed_records, self.torn_records)
        return loaded

    def _compact_shard(self, shard: _Shard) -> None:
        span = _telemetry.span("cache.shard.compact")
        with span:
            entries = shard.compact()
            if span.recording:
                span.set(shard=shard.index, entries=entries)
        if _telemetry.active():
            _telemetry.record_compaction(shard.index, entries)

    def compact(self) -> int:
        """Snapshot every shard and truncate its WAL; returns total entries."""
        total = 0
        for shard in self._shards:
            self._compact_shard(shard)
            total += len(shard.cache)
        return total

    def close(self) -> None:
        """Compact (when persistent) and release every WAL file handle.

        Tolerates persist failures during the final compaction — closing
        must always succeed, and every acknowledged verdict is already in
        the WAL.
        """
        if self._directory is not None:
            try:
                self.compact()
            except (OSError, RuntimeSubsystemError):
                self.failed_compactions += 1
        for shard in self._shards:
            shard.close()

    @property
    def stats(self) -> CacheStats:
        """The merged :class:`CacheStats` snapshot across all shards."""
        return CacheStats.merged(shard.cache.stats for shard in self._shards)

    @property
    def shard_sizes(self) -> list[int]:
        """Entries currently held by each shard, in shard order."""
        return [len(shard.cache) for shard in self._shards]

    def __enter__(self) -> "ShardedResultCache":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
