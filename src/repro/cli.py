"""Command-line interface: check or solve a DIMACS CNF file with NBL-SAT.

Usage (after installation)::

    python -m repro.cli check  instance.cnf --engine symbolic
    python -m repro.cli solve  instance.cnf --engine sampled --carrier bipolar
    python -m repro.cli figure1 --samples 500000

The CLI is a thin wrapper over :class:`repro.core.solver.NBLSATSolver` and
the Figure 1 experiment driver; it exists so the library can be exercised
without writing Python.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.cnf.dimacs import parse_dimacs_file
from repro.core.config import NBLConfig
from repro.core.solver import NBLSATSolver
from repro.noise.base import available_carriers, carrier_from_name


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="NBL-SAT reproduction command-line interface"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("cnf", help="path to a DIMACS CNF file")
        sub.add_argument(
            "--engine",
            choices=("symbolic", "sampled"),
            default="symbolic",
            help="NBL engine to use (default: symbolic, the exact correlator)",
        )
        sub.add_argument(
            "--carrier",
            choices=available_carriers(),
            default="uniform",
            help="carrier family for the sampled engine",
        )
        sub.add_argument(
            "--samples",
            type=int,
            default=200_000,
            help="sample budget per check for the sampled engine",
        )
        sub.add_argument("--seed", type=int, default=0, help="noise seed")

    check = subparsers.add_parser("check", help="Algorithm 1: SAT/UNSAT decision")
    add_common(check)

    solve = subparsers.add_parser(
        "solve", help="Algorithms 1+2: decision plus satisfying assignment"
    )
    add_common(solve)
    solve.add_argument(
        "--cube",
        action="store_true",
        help="use the cube variant (drop don't-care variables)",
    )

    figure1 = subparsers.add_parser(
        "figure1", help="regenerate the paper's Figure 1 as an ASCII plot"
    )
    figure1.add_argument("--samples", type=int, default=400_000)
    figure1.add_argument("--seed", type=int, default=0)
    return parser


def _make_solver(args: argparse.Namespace) -> NBLSATSolver:
    config = NBLConfig(
        carrier=carrier_from_name(args.carrier),
        max_samples=args.samples,
        block_size=min(50_000, args.samples),
        seed=args.seed,
    )
    return NBLSATSolver(engine=args.engine, config=config)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code (0 SAT/success, 20 UNSAT).

    The 10/20 exit-code convention for SAT/UNSAT follows the SAT-competition
    convention so the CLI can slot into existing tooling.
    """
    args = _build_parser().parse_args(argv)

    if args.command == "figure1":
        from repro.experiments.figure1 import run_figure1

        result = run_figure1(max_samples=args.samples, seed=args.seed)
        print(result.record.to_text())
        print()
        print(result.ascii_plot())
        return 0

    formula = parse_dimacs_file(args.cnf)
    solver = _make_solver(args)

    if args.command == "check":
        result = solver.check(formula)
        print(result)
        return 10 if result.satisfiable else 20

    solution = solver.solve(formula, cube=args.cube)
    if not solution.satisfiable:
        print("UNSATISFIABLE")
        return 20
    print("SATISFIABLE")
    print("v", " ".join(str(lit.to_int()) for lit in solution.assignment.to_literals()), "0")
    print(f"c checks={solution.num_checks} verified={solution.verified}")
    return 10


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
