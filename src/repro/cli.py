"""Command-line interface: check or solve DIMACS CNF files with NBL-SAT.

Usage (after installation)::

    python -m repro.cli check  instance.cnf --engine symbolic
    python -m repro.cli solve  instance.cnf --engine sampled --carrier bipolar
    python -m repro.cli batch  instances/ --workers 4 --portfolio
    python -m repro.cli incremental queries.txt --solver cdcl
    python -m repro.cli figure1 --samples 500000

``check`` and ``solve`` exit with the SAT-competition codes — 10 for SAT,
20 for UNSAT; ``figure1``, ``batch`` and ``incremental`` exit 0 on success.

The CLI is a thin wrapper over :class:`repro.core.solver.NBLSATSolver`,
the :mod:`repro.runtime` batch subsystem, the
:mod:`repro.incremental` session layer and the Figure 1 experiment driver;
it exists so the library can be exercised without writing Python.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from repro.cnf.dimacs import parse_dimacs_file
from repro.cnf.formula import CNFFormula
from repro.core.config import NBLConfig
from repro.core.solver import NBLSATSolver
from repro.noise.base import available_carriers, carrier_from_name


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="NBL-SAT reproduction command-line interface",
        epilog=(
            "exit codes: check/solve follow the SAT-competition convention "
            "(10 SAT, 20 UNSAT); figure1, batch and incremental exit 0 on "
            "success"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("cnf", help="path to a DIMACS CNF file")
        sub.add_argument(
            "--engine",
            choices=("symbolic", "sampled"),
            default="symbolic",
            help="NBL engine to use (default: symbolic, the exact correlator)",
        )
        sub.add_argument(
            "--carrier",
            choices=available_carriers(),
            default="uniform",
            help="carrier family for the sampled engine",
        )
        sub.add_argument(
            "--samples",
            type=int,
            default=200_000,
            help="sample budget per check for the sampled engine",
        )
        sub.add_argument("--seed", type=int, default=0, help="noise seed")

    check = subparsers.add_parser("check", help="Algorithm 1: SAT/UNSAT decision")
    add_common(check)

    solve = subparsers.add_parser(
        "solve", help="Algorithms 1+2: decision plus satisfying assignment"
    )
    add_common(solve)
    solve.add_argument(
        "--cube",
        action="store_true",
        help="use the cube variant (drop don't-care variables)",
    )

    figure1 = subparsers.add_parser(
        "figure1", help="regenerate the paper's Figure 1 as an ASCII plot"
    )
    figure1.add_argument("--samples", type=int, default=400_000)
    figure1.add_argument("--seed", type=int, default=0)

    batch = subparsers.add_parser(
        "batch",
        help="solve a directory/glob of DIMACS files through the runtime "
        "subsystem (exit 0 on success)",
    )
    batch.add_argument(
        "paths",
        nargs="+",
        help="DIMACS files, directories (scanned recursively) or glob patterns",
    )
    batch.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes (default: 1, in-process)",
    )
    batch.add_argument(
        "--solver",
        default=None,
        help="solver spec for every instance: portfolio, nbl-symbolic, "
        "nbl-sampled, or a registry solver name (default: portfolio)",
    )
    batch.add_argument(
        "--portfolio",
        action="store_true",
        help="shorthand for --solver portfolio",
    )
    batch.add_argument(
        "--cache-size",
        type=int,
        default=4096,
        metavar="M",
        help="LRU result-cache capacity (default: 4096 entries)",
    )
    batch.add_argument(
        "--cache-file",
        default=None,
        help="JSON file to persist the result cache across invocations "
        "(loaded when present, saved after the run)",
    )
    batch.add_argument(
        "--pattern",
        default="*.cnf",
        help="filename pattern used when scanning directories (default: *.cnf)",
    )
    batch.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-instance wall-clock budget in seconds (enforced by the "
        "classical solvers; the sampled NBL engine is bounded by --samples "
        "and the symbolic engine by its 20-variable limit instead)",
    )
    batch.add_argument(
        "--carrier",
        choices=available_carriers(),
        default="uniform",
        help="carrier family for the sampled NBL engine",
    )
    batch.add_argument(
        "--samples",
        type=int,
        default=200_000,
        help="sample budget per check for the sampled NBL engine",
    )
    batch.add_argument("--seed", type=int, default=0, help="master seed")

    incremental = subparsers.add_parser(
        "incremental",
        help="run a query script against one incremental solving session "
        "(exit 0 on success)",
        description=(
            "Execute a line-based query script against a single "
            "IncrementalSession, so sequences of related queries (k-sweeps, "
            "equivalence checks) share learned clauses and heuristic state. "
            "Script commands: 'var N' (grow the variable universe), "
            "'load FILE' (add a DIMACS file's clauses), 'add L1 L2 ... [0]' "
            "(add a clause), 'push' / 'pop' (open/close a retraction scope), "
            "'solve [L1 L2 ... [0]]' (solve under optional assumption "
            "literals). '#' starts a comment; blank lines are ignored."
        ),
    )
    incremental.add_argument(
        "script",
        help="path to the query script ('-' reads from stdin)",
    )
    incremental.add_argument(
        "--solver",
        default="cdcl",
        help="session solver spec: cdcl (native incremental), any registry "
        "solver name, nbl-symbolic, nbl-sampled or portfolio "
        "(default: cdcl)",
    )
    incremental.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-query wall-clock budget in seconds (cooperative; ignored "
        "by the NBL frontends)",
    )
    incremental.add_argument(
        "--models",
        action="store_true",
        help="print a 'v' model line for every SAT answer",
    )
    incremental.add_argument("--seed", type=int, default=0, help="solver seed")
    return parser


def _make_solver(args: argparse.Namespace) -> NBLSATSolver:
    config = NBLConfig(
        carrier=carrier_from_name(args.carrier),
        max_samples=args.samples,
        block_size=min(50_000, args.samples),
        seed=args.seed,
    )
    return NBLSATSolver(engine=args.engine, config=config)


def _run_batch(args: argparse.Namespace) -> int:
    from repro.exceptions import RuntimeSubsystemError
    from repro.runtime import BatchRunner, ResultCache

    if args.portfolio and args.solver and args.solver != "portfolio":
        print(
            f"error: --portfolio conflicts with --solver {args.solver}",
            file=sys.stderr,
        )
        return 2
    solver = args.solver or "portfolio"
    try:
        cache = ResultCache(max_size=args.cache_size)
        if args.cache_file and os.path.exists(args.cache_file):
            # The cache is an optimization: a corrupt file must not block
            # the batch, just start cold (and be rewritten on save).
            try:
                loaded = cache.load(args.cache_file)
            except RuntimeSubsystemError as exc:
                print(f"warning: ignoring cache file: {exc}", file=sys.stderr)
            else:
                print(f"c loaded {loaded} cached results from {args.cache_file}")
        runner = BatchRunner(
            solver=solver,
            workers=args.workers,
            master_seed=args.seed,
            cache=cache,
            samples=args.samples,
            carrier=args.carrier,
            timeout=args.timeout,
        )
        report = runner.run(args.paths, pattern=args.pattern)
    except RuntimeSubsystemError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(report.to_text())
    if args.cache_file:
        try:
            saved = cache.save(args.cache_file)
        except OSError as exc:
            print(f"error: cannot save cache file: {exc}", file=sys.stderr)
            return 1
        print(f"c saved {saved} cached results to {args.cache_file}")
    return 1 if report.status_counts.get("ERROR") else 0


def _parse_literals(tokens: Sequence[str], line_number: int) -> list[int]:
    """Parse DIMACS-signed literal tokens (an optional trailing 0 is dropped)."""
    literals: list[int] = []
    for token in tokens:
        try:
            value = int(token)
        except ValueError:
            raise ValueError(
                f"line {line_number}: {token!r} is not a literal"
            ) from None
        literals.append(value)
    if literals and literals[-1] == 0:
        literals.pop()
    if any(lit == 0 for lit in literals):
        raise ValueError(f"line {line_number}: '0' only terminates a clause")
    return literals


def _run_incremental(args: argparse.Namespace) -> int:
    from repro.exceptions import ReproError
    from repro.incremental import make_session

    try:
        if args.script == "-":
            script = sys.stdin.read()
        else:
            with open(args.script, "r", encoding="utf-8") as handle:
                script = handle.read()
    except OSError as exc:
        print(f"error: cannot read script: {exc}", file=sys.stderr)
        return 1

    try:
        session = make_session(args.solver, seed=args.seed)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    status_counts: dict[str, int] = {}
    queries = 0
    try:
        for line_number, raw in enumerate(script.splitlines(), start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            command, *rest = line.split()
            if command == "var":
                if len(rest) != 1 or not rest[0].isdigit():
                    raise ValueError(
                        f"line {line_number}: 'var' expects one count"
                    )
                target = int(rest[0])
                if target > session.num_variables:
                    session.add_formula(
                        CNFFormula([], num_variables=target)
                    )
            elif command == "load":
                if len(rest) != 1:
                    raise ValueError(
                        f"line {line_number}: 'load' expects one file path"
                    )
                session.add_formula(parse_dimacs_file(rest[0]))
            elif command == "add":
                session.add_clause(_parse_literals(rest, line_number))
            elif command == "push":
                session.push()
            elif command == "pop":
                session.pop()
            elif command == "solve":
                assumptions = _parse_literals(rest, line_number)
                result = session.solve(assumptions, timeout=args.timeout)
                queries += 1
                status_counts[result.status] = (
                    status_counts.get(result.status, 0) + 1
                )
                suffix = (
                    " assuming " + " ".join(str(a) for a in assumptions)
                    if assumptions
                    else ""
                )
                print(f"c query {queries}: {result.solver_name}{suffix}")
                verdict = {
                    "SAT": "SATISFIABLE",
                    "UNSAT": "UNSATISFIABLE",
                }.get(result.status, result.status)
                print(f"s {verdict}")
                if args.models and result.is_sat:
                    lits = " ".join(
                        str(lit.to_int())
                        for lit in result.assignment.to_literals()
                    )
                    print(f"v {lits} 0")
            else:
                raise ValueError(
                    f"line {line_number}: unknown command {command!r}"
                )
    except (ValueError, OSError, ReproError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    stats = session.total_stats
    summary = ", ".join(
        f"{count} {status}" for status, count in sorted(status_counts.items())
    )
    print(
        f"c session: {queries} queries ({summary or 'none'}), "
        f"{session.num_clauses} clauses, {session.num_variables} variables, "
        f"{stats.decisions} decisions, {stats.conflicts} conflicts, "
        f"{stats.elapsed_seconds:.3f}s solving"
    )
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code.

    ``check`` and ``solve`` follow the SAT-competition convention — 10 for
    SAT, 20 for UNSAT — so the CLI can slot into existing tooling.
    ``figure1``, ``batch`` and ``incremental`` return 0 on success (1 on
    errors).
    """
    args = _build_parser().parse_args(argv)

    if args.command == "figure1":
        from repro.experiments.figure1 import run_figure1

        result = run_figure1(max_samples=args.samples, seed=args.seed)
        print(result.record.to_text())
        print()
        print(result.ascii_plot())
        return 0

    if args.command == "batch":
        return _run_batch(args)

    if args.command == "incremental":
        return _run_incremental(args)

    formula = parse_dimacs_file(args.cnf)
    solver = _make_solver(args)

    if args.command == "check":
        result = solver.check(formula)
        print(result)
        return 10 if result.satisfiable else 20

    solution = solver.solve(formula, cube=args.cube)
    if not solution.satisfiable:
        print("UNSATISFIABLE")
        return 20
    print("SATISFIABLE")
    print("v", " ".join(str(lit.to_int()) for lit in solution.assignment.to_literals()), "0")
    print(f"c checks={solution.num_checks} verified={solution.verified}")
    return 10


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
