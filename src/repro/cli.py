"""Command-line interface: check or solve DIMACS CNF files with NBL-SAT.

Usage (after installation)::

    python -m repro.cli check  instance.cnf --engine symbolic
    python -m repro.cli solve  instance.cnf --engine sampled --carrier bipolar
    python -m repro.cli preprocess instance.cnf -o reduced.cnf
    python -m repro.cli batch  instances/ --workers 4 --portfolio
    python -m repro.cli incremental queries.txt --solver cdcl
    python -m repro.cli figure1 --samples 500000
    python -m repro.cli solve instance.cnf --proof proof.drat
    python -m repro.cli check-proof instance.cnf proof.drat
    python -m repro.cli serve --port 9090 --workers 4 --cache-dir cache/
    python -m repro.cli client instance.cnf --port 9090

``check`` and ``solve`` exit with the SAT-competition codes — 10 for SAT,
20 for UNSAT — and run the :mod:`repro.preprocess` inprocessing pipeline
first unless ``--no-preprocess`` is given; so does ``batch``.
``preprocess`` writes the reduced DIMACS and exits 0, or 10/20 when the
pipeline alone decides the instance. ``figure1``, ``batch`` and
``incremental`` exit 0 on success. ``solve --proof`` records a DRAT
proof (routing the search through the proof-capable CDCL solver), and
``check-proof`` verifies one — exit 0 verified, 1 rejected, 2 malformed
proof or unreadable input. ``serve`` runs the always-on solve server of
:mod:`repro.service` (exit 0 on clean shutdown) and ``client`` sends it
DIMACS files (or a ping/stats/shutdown request) over TCP.

The CLI is a thin wrapper over :class:`repro.core.solver.NBLSATSolver`,
the :mod:`repro.preprocess` pipeline, the :mod:`repro.runtime` batch
subsystem, the :mod:`repro.incremental` session layer and the Figure 1
experiment driver; it exists so the library can be exercised without
writing Python.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from repro.cnf.dimacs import parse_dimacs_file
from repro.cnf.formula import CNFFormula
from repro.core.config import NBLConfig
from repro.core.solver import NBLSATSolver
from repro.noise.base import available_carriers, carrier_from_name


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="NBL-SAT reproduction command-line interface",
        epilog=(
            "exit codes: check/solve follow the SAT-competition convention "
            "(10 SAT, 20 UNSAT); preprocess exits 0 after reducing, or "
            "10/20 when simplification alone decides the instance; "
            "figure1, batch and incremental exit 0 on success; "
            "check-proof exits 0 when the proof is verified, 1 when it is "
            "rejected, 2 for a malformed proof or unreadable input; "
            "serve exits 0 on clean shutdown; client exits 0 when every "
            "request succeeds"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_telemetry(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--trace",
            default=None,
            metavar="FILE",
            help="record a JSONL span trace of the run to FILE "
            "(read it back with 'repro stats --trace FILE')",
        )
        sub.add_argument(
            "--metrics",
            default=None,
            metavar="FILE",
            help="write end-of-run metrics to FILE (Prometheus text format, "
            "or a JSON snapshot when FILE ends in .json)",
        )

    def add_no_preprocess(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--no-preprocess",
            action="store_true",
            help="skip the inprocessing pipeline (unit propagation, pure "
            "literals, subsumption, blocked clauses, variable elimination) "
            "that otherwise shrinks the instance before solving",
        )

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("cnf", help="path to a DIMACS CNF file")
        sub.add_argument(
            "--engine",
            choices=("symbolic", "sampled"),
            default="symbolic",
            help="NBL engine to use (default: symbolic, the exact correlator)",
        )
        sub.add_argument(
            "--carrier",
            choices=available_carriers(),
            default="uniform",
            help="carrier family for the sampled engine",
        )
        sub.add_argument(
            "--samples",
            type=int,
            default=200_000,
            help="sample budget per check for the sampled engine",
        )
        sub.add_argument("--seed", type=int, default=0, help="noise seed")
        add_no_preprocess(sub)
        add_telemetry(sub)

    check = subparsers.add_parser("check", help="Algorithm 1: SAT/UNSAT decision")
    add_common(check)

    solve = subparsers.add_parser(
        "solve", help="Algorithms 1+2: decision plus satisfying assignment"
    )
    add_common(solve)
    solve.add_argument(
        "--cube",
        action="store_true",
        help="use the cube variant (drop don't-care variables)",
    )
    solve.add_argument(
        "--proof",
        default=None,
        metavar="FILE",
        help="record a DRAT proof of the run to FILE; routes the search "
        "through the proof-capable CDCL solver (--engine/--carrier/"
        "--samples/--cube do not apply), verify with 'repro check-proof'",
    )

    figure1 = subparsers.add_parser(
        "figure1", help="regenerate the paper's Figure 1 as an ASCII plot"
    )
    figure1.add_argument("--samples", type=int, default=400_000)
    figure1.add_argument("--seed", type=int, default=0)

    preprocess = subparsers.add_parser(
        "preprocess",
        help="simplify a DIMACS file with the inprocessing pipeline "
        "(exit 0 reduced, 10/20 when decided)",
        description=(
            "Run unit propagation, pure-literal elimination, subsumption + "
            "self-subsuming resolution, blocked clause elimination and "
            "bounded variable elimination to a fixpoint, then write the "
            "reduced formula (compactly renumbered) as DIMACS with the "
            "reduction statistics as leading comments. Exits 0 when a "
            "residual formula remains, 10/20 when preprocessing alone "
            "proves the instance SAT/UNSAT (the written DIMACS is then the "
            "trivial/contradictory formula)."
        ),
    )
    preprocess.add_argument("cnf", help="path to a DIMACS CNF file")
    preprocess.add_argument(
        "--output",
        "-o",
        default="-",
        help="where to write the reduced DIMACS ('-' = stdout, the default)",
    )
    preprocess.add_argument(
        "--freeze",
        type=int,
        nargs="*",
        default=(),
        metavar="VAR",
        help="variables that must survive untouched (e.g. future assumption "
        "variables)",
    )
    preprocess.add_argument(
        "--techniques",
        default=None,
        help="comma-separated subset of: units,pure,subsumption,bce,bve "
        "(default: all)",
    )
    preprocess.add_argument(
        "--max-rounds",
        type=int,
        default=20,
        help="upper bound on full pipeline rounds (default: 20)",
    )
    preprocess.add_argument(
        "--bve-growth",
        type=int,
        default=0,
        help="clauses a variable elimination may add beyond the removed "
        "count (default: 0, never grow)",
    )
    preprocess.add_argument(
        "--bve-occurrence-limit",
        type=int,
        default=16,
        help="skip variable elimination beyond this many occurrences per "
        "polarity (default: 16)",
    )

    batch = subparsers.add_parser(
        "batch",
        help="solve a directory/glob of DIMACS files through the runtime "
        "subsystem (exit 0 on success)",
    )
    batch.add_argument(
        "paths",
        nargs="+",
        help="DIMACS files, directories (scanned recursively) or glob patterns",
    )
    batch.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes (default: 1, in-process)",
    )
    batch.add_argument(
        "--solver",
        default=None,
        help="solver spec for every instance: portfolio, nbl-symbolic, "
        "nbl-sampled, or a registry solver name (default: portfolio)",
    )
    batch.add_argument(
        "--portfolio",
        action="store_true",
        help="shorthand for --solver portfolio",
    )
    batch.add_argument(
        "--cache-size",
        type=int,
        default=4096,
        metavar="M",
        help="LRU result-cache capacity (default: 4096 entries)",
    )
    batch.add_argument(
        "--cache-file",
        default=None,
        help="JSON file to persist the result cache across invocations "
        "(loaded when present, saved after the run)",
    )
    batch.add_argument(
        "--pattern",
        default="*.cnf",
        help="filename pattern used when scanning directories (default: *.cnf)",
    )
    batch.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-instance wall-clock budget in seconds (enforced by the "
        "classical solvers; the sampled NBL engine is bounded by --samples "
        "and the symbolic engine by its 20-variable limit instead)",
    )
    batch.add_argument(
        "--carrier",
        choices=available_carriers(),
        default="uniform",
        help="carrier family for the sampled NBL engine",
    )
    batch.add_argument(
        "--samples",
        type=int,
        default=200_000,
        help="sample budget per check for the sampled NBL engine",
    )
    batch.add_argument("--seed", type=int, default=0, help="master seed")
    batch.add_argument(
        "--proof-dir",
        default=None,
        metavar="DIR",
        help="write one DRAT proof per executed job into DIR (classical "
        "--solver specs only; created if missing)",
    )
    add_no_preprocess(batch)
    add_telemetry(batch)

    incremental = subparsers.add_parser(
        "incremental",
        help="run a query script against one incremental solving session "
        "(exit 0 on success)",
        description=(
            "Execute a line-based query script against a single "
            "IncrementalSession, so sequences of related queries (k-sweeps, "
            "equivalence checks) share learned clauses and heuristic state. "
            "Script commands: 'var N' (grow the variable universe), "
            "'load FILE' (add a DIMACS file's clauses), 'add L1 L2 ... [0]' "
            "(add a clause), 'push' / 'pop' (open/close a retraction scope), "
            "'solve [L1 L2 ... [0]]' (solve under optional assumption "
            "literals). '#' starts a comment; blank lines are ignored."
        ),
    )
    incremental.add_argument(
        "script",
        help="path to the query script ('-' reads from stdin)",
    )
    incremental.add_argument(
        "--solver",
        default="cdcl",
        help="session solver spec: cdcl (native incremental), any registry "
        "solver name, nbl-symbolic, nbl-sampled or portfolio "
        "(default: cdcl)",
    )
    incremental.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-query wall-clock budget in seconds (cooperative; ignored "
        "by the NBL frontends)",
    )
    incremental.add_argument(
        "--models",
        action="store_true",
        help="print a 'v' model line for every SAT answer",
    )
    incremental.add_argument(
        "--preprocess",
        action="store_true",
        help="run the inprocessing pipeline per query with the query's "
        "assumption variables frozen (registry solver specs only)",
    )
    incremental.add_argument(
        "--proof",
        default=None,
        metavar="FILE",
        help="record the session's DRAT derivations to FILE (sessions over "
        "classical solvers only; UNSAT-under-assumption queries record a "
        "partial derivation, see docs/proofs.md)",
    )
    incremental.add_argument("--seed", type=int, default=0, help="solver seed")
    add_telemetry(incremental)

    check_proof = subparsers.add_parser(
        "check-proof",
        help="verify a DRAT proof against a DIMACS file "
        "(exit 0 verified, 1 rejected, 2 malformed)",
        description=(
            "Replay a DRAT proof — as written by 'solve --proof', "
            "'incremental --proof', 'batch --proof-dir' or the library's "
            "ProofLog — against the original formula, checking every "
            "addition is RUP or RAT and that the empty clause is derived. "
            "Exit codes: 0 when the proof is verified, 1 when it is "
            "rejected (a step fails or no refutation is reached), 2 when "
            "the proof file is malformed or an input is unreadable."
        ),
    )
    check_proof.add_argument("cnf", help="path to the original DIMACS CNF file")
    check_proof.add_argument("proof", help="path to the DRAT proof file")
    add_telemetry(check_proof)

    serve = subparsers.add_parser(
        "serve",
        help="run the always-on solve server (exit 0 on clean shutdown)",
        description=(
            "Start the repro.service solve server: a stream of newline-"
            "delimited JSON solve jobs over TCP (or stdin/stdout with "
            "--stdio), with in-flight deduplication of identical formulas, "
            "bounded-queue admission control (429 rejections) and a "
            "sharded, write-ahead result cache so acknowledged verdicts "
            "survive a crash. Stop it with 'repro client --shutdown' (or "
            "EOF in --stdio mode). The wire protocol is documented in "
            "docs/service.md."
        ),
    )
    serve.add_argument(
        "--host",
        default="127.0.0.1",
        help="interface to bind (default: 127.0.0.1)",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=9090,
        help="TCP port to listen on; 0 picks an ephemeral port, announced "
        "on stdout (default: 9090)",
    )
    serve.add_argument(
        "--stdio",
        action="store_true",
        help="serve stdin/stdout instead of a TCP socket (for supervision "
        "by a parent process; exits on EOF)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help="solve executor workers: 1 = a worker thread, more = a "
        "process pool (default: 1)",
    )
    serve.add_argument(
        "--solver",
        default="portfolio",
        help="default solver spec for jobs that do not name one "
        "(default: portfolio)",
    )
    serve.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="directory for the sharded persistent result cache (created "
        "if missing, recovered if present); omit to serve from memory",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=8,
        help="cache shard count; pinned per directory (default: 8)",
    )
    serve.add_argument(
        "--shard-size",
        type=int,
        default=4096,
        help="LRU capacity per shard (default: 4096 entries)",
    )
    serve.add_argument(
        "--compact-threshold",
        type=int,
        default=1024,
        help="write-ahead-log records per shard before an automatic "
        "compaction; 0 compacts only at shutdown (default: 1024)",
    )
    serve.add_argument(
        "--fsync",
        action="store_true",
        help="fsync every write-ahead append (survives power loss, slower; "
        "the default flush survives process death)",
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=8,
        help="most solves running in the executor at once (default: 8)",
    )
    serve.add_argument(
        "--queue-limit",
        type=int,
        default=64,
        help="most requests waiting for an executor slot before new work "
        "is rejected with a 429 response (default: 64)",
    )
    serve.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="default per-job wall-clock budget in seconds",
    )
    serve.add_argument(
        "--carrier",
        choices=available_carriers(),
        default="uniform",
        help="default carrier family for the sampled NBL engine",
    )
    serve.add_argument(
        "--samples",
        type=int,
        default=200_000,
        help="default sample budget for the sampled NBL engine",
    )
    serve.add_argument("--seed", type=int, default=0, help="master seed")
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="bound on graceful shutdown: in-flight requests still "
        "running past this budget are answered with a clean 503 "
        "(default: wait for them indefinitely)",
    )
    serve.add_argument(
        "--lease-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="staleness threshold for the per-shard cross-process lock "
        "leases when several servers share --cache-dir (default: 10)",
    )
    serve.add_argument(
        "--fault-plan",
        default=None,
        metavar="FILE",
        help="inject deterministic faults from this JSON plan (see "
        "docs/faults.md); testing only — also exported to worker "
        "processes via REPRO_FAULT_PLAN",
    )
    serve.add_argument(
        "--proof-dir",
        default=None,
        metavar="DIR",
        help="write one DRAT proof per executed classical-solver job into "
        "DIR (created if missing)",
    )
    serve.add_argument(
        "--preprocess",
        action="store_true",
        help="run the inprocessing pipeline by default for jobs that do "
        "not set 'preprocess' themselves (off by default: a server solves "
        "exactly what it is sent)",
    )
    add_telemetry(serve)

    client = subparsers.add_parser(
        "client",
        help="send DIMACS files (or ping/stats/shutdown) to a running "
        "solve server (exit 0 on success)",
        description=(
            "Connect to a 'repro serve' server and either solve the given "
            "DIMACS files (pipelined over one connection, so the server "
            "can dedup and parallelise) or perform one control operation. "
            "Solve verdicts print one line per file; --stats prints the "
            "server's JSON counters. Exits 0 on success, 1 when any "
            "request fails or any job errors, 2 for usage errors."
        ),
    )
    client.add_argument(
        "files",
        nargs="*",
        help="DIMACS CNF files to solve (omit when using a control flag)",
    )
    client.add_argument(
        "--host",
        default="127.0.0.1",
        help="server host (default: 127.0.0.1)",
    )
    client.add_argument(
        "--port",
        type=int,
        default=9090,
        help="server port (default: 9090)",
    )
    client.add_argument(
        "--solver",
        default=None,
        help="solver spec to request (default: the server's default)",
    )
    client.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-job wall-clock budget to request, in seconds",
    )
    client.add_argument(
        "--preprocess",
        action="store_true",
        help="ask the server to run the inprocessing pipeline on each job",
    )
    client.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help="retry transient failures (connection loss, 429 queue-full, "
        "503 draining) up to N times with jittered exponential backoff, "
        "reconnecting and resubmitting outstanding requests (default: 0, "
        "fail fast)",
    )
    client.add_argument(
        "--ping",
        action="store_true",
        help="liveness probe: exit 0 when the server answers",
    )
    client.add_argument(
        "--stats",
        action="store_true",
        help="print the server's counters / queue depths / cache state",
    )
    client.add_argument(
        "--shutdown",
        action="store_true",
        help="ask the server to drain, compact its cache and exit",
    )

    stats = subparsers.add_parser(
        "stats",
        help="summarise telemetry artifacts: JSONL traces, metrics files, "
        "BENCH_*.json trajectories (exit 0 ok, 1 bad file, 2 no input)",
        description=(
            "Read back what the --trace/--metrics flags and the trajectory "
            "recorder wrote. At least one input flag is required; each "
            "given artifact is validated and summarised. Exit codes: 0 on "
            "success, 1 for an unreadable/invalid file, 2 when no input "
            "flag was given."
        ),
    )
    stats.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="a JSONL span trace written by --trace",
    )
    stats.add_argument(
        "--metrics",
        default=None,
        metavar="FILE",
        help="a metrics file written by --metrics (Prometheus text or .json)",
    )
    stats.add_argument(
        "--bench",
        default=None,
        metavar="FILE",
        help="a BENCH_*.json perf-trajectory file",
    )
    return parser


def _make_solver(args: argparse.Namespace) -> NBLSATSolver:
    config = NBLConfig(
        carrier=carrier_from_name(args.carrier),
        max_samples=args.samples,
        block_size=min(50_000, args.samples),
        seed=args.seed,
    )
    return NBLSATSolver(engine=args.engine, config=config)


def _run_preprocess(args: argparse.Namespace) -> int:
    from repro.cnf.dimacs import to_dimacs
    from repro.exceptions import ReproError
    from repro.preprocess import Preprocessor

    techniques = (
        [name.strip() for name in args.techniques.split(",") if name.strip()]
        if args.techniques is not None
        else None
    )
    try:
        pipeline = Preprocessor(
            techniques=techniques,
            max_rounds=args.max_rounds,
            bve_growth=args.bve_growth,
            bve_occurrence_limit=args.bve_occurrence_limit,
        )
        formula = parse_dimacs_file(args.cnf)
        result = pipeline.preprocess(formula, frozen=args.freeze)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    comments = [f"reduced by repro preprocess from {args.cnf}"]
    comments += [f"status {result.status}"]
    comments += result.stats.to_text().splitlines()
    if result.variable_map:
        renumbering = " ".join(
            f"{old}->{new}" for old, new in sorted(result.variable_map.items())
        )
        comments.append(f"variable map (original->reduced): {renumbering}")
    text = to_dimacs(result.formula, comments=comments)
    if args.output == "-":
        sys.stdout.write(text)
    else:
        try:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(text)
        except OSError as exc:
            print(f"error: cannot write {args.output!r}: {exc}", file=sys.stderr)
            return 1
    print(result.stats.to_text(), file=sys.stderr)
    if result.status == "SAT":
        return 10
    if result.status == "UNSAT":
        return 20
    return 0


def _run_batch(args: argparse.Namespace) -> int:
    from repro.exceptions import RuntimeSubsystemError
    from repro.runtime import BatchRunner, ResultCache

    if args.portfolio and args.solver and args.solver != "portfolio":
        print(
            f"error: --portfolio conflicts with --solver {args.solver}",
            file=sys.stderr,
        )
        return 2
    solver = args.solver or "portfolio"
    try:
        cache = ResultCache(max_size=args.cache_size)
        if args.cache_file and os.path.exists(args.cache_file):
            # The cache is an optimization: a corrupt file must not block
            # the batch, just start cold (and be rewritten on save).
            try:
                loaded = cache.load(args.cache_file)
            except RuntimeSubsystemError as exc:
                print(f"warning: ignoring cache file: {exc}", file=sys.stderr)
            else:
                print(f"c loaded {loaded} cached results from {args.cache_file}")
        runner = BatchRunner(
            solver=solver,
            workers=args.workers,
            master_seed=args.seed,
            cache=cache,
            samples=args.samples,
            carrier=args.carrier,
            timeout=args.timeout,
            preprocess=not args.no_preprocess,
            proof_dir=args.proof_dir,
        )
        report = runner.run(args.paths, pattern=args.pattern)
    except RuntimeSubsystemError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(report.to_text())
    if args.cache_file:
        try:
            saved = cache.save(args.cache_file)
        except OSError as exc:
            print(f"error: cannot save cache file: {exc}", file=sys.stderr)
            return 1
        print(f"c saved {saved} cached results to {args.cache_file}")
    return 1 if report.status_counts.get("ERROR") else 0


def _parse_literals(tokens: Sequence[str], line_number: int) -> list[int]:
    """Parse DIMACS-signed literal tokens (an optional trailing 0 is dropped)."""
    literals: list[int] = []
    for token in tokens:
        try:
            value = int(token)
        except ValueError:
            raise ValueError(
                f"line {line_number}: {token!r} is not a literal"
            ) from None
        literals.append(value)
    if literals and literals[-1] == 0:
        literals.pop()
    if any(lit == 0 for lit in literals):
        raise ValueError(f"line {line_number}: '0' only terminates a clause")
    return literals


def _run_incremental(args: argparse.Namespace) -> int:
    from repro.exceptions import ReproError
    from repro.incremental import make_session

    try:
        if args.script == "-":
            script = sys.stdin.read()
        else:
            with open(args.script, "r", encoding="utf-8") as handle:
                script = handle.read()
    except OSError as exc:
        print(f"error: cannot read script: {exc}", file=sys.stderr)
        return 1

    try:
        session = make_session(
            args.solver, seed=args.seed, preprocess=args.preprocess
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    proof_log = None
    if args.proof is not None:
        from repro.proofs import ProofLog

        try:
            proof_log = ProofLog(args.proof)
            session.set_proof_log(proof_log)
        except (ReproError, OSError) as exc:
            if proof_log is not None:
                proof_log.close()
            print(f"error: {exc}", file=sys.stderr)
            return 1

    status_counts: dict[str, int] = {}
    queries = 0
    try:
        for line_number, raw in enumerate(script.splitlines(), start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            command, *rest = line.split()
            if command == "var":
                if len(rest) != 1 or not rest[0].isdigit():
                    raise ValueError(
                        f"line {line_number}: 'var' expects one count"
                    )
                target = int(rest[0])
                if target > session.num_variables:
                    session.add_formula(
                        CNFFormula([], num_variables=target)
                    )
            elif command == "load":
                if len(rest) != 1:
                    raise ValueError(
                        f"line {line_number}: 'load' expects one file path"
                    )
                session.add_formula(parse_dimacs_file(rest[0]))
            elif command == "add":
                session.add_clause(_parse_literals(rest, line_number))
            elif command == "push":
                session.push()
            elif command == "pop":
                session.pop()
            elif command == "solve":
                assumptions = _parse_literals(rest, line_number)
                result = session.solve(assumptions, timeout=args.timeout)
                queries += 1
                status_counts[result.status] = (
                    status_counts.get(result.status, 0) + 1
                )
                suffix = (
                    " assuming " + " ".join(str(a) for a in assumptions)
                    if assumptions
                    else ""
                )
                print(f"c query {queries}: {result.solver_name}{suffix}")
                verdict = {
                    "SAT": "SATISFIABLE",
                    "UNSAT": "UNSATISFIABLE",
                }.get(result.status, result.status)
                print(f"s {verdict}")
                if args.models and result.is_sat:
                    lits = " ".join(
                        str(lit.to_int())
                        for lit in result.assignment.to_literals()
                    )
                    print(f"v {lits} 0")
            else:
                raise ValueError(
                    f"line {line_number}: unknown command {command!r}"
                )
    except (ValueError, OSError, ReproError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        if proof_log is not None:
            proof_log.close()
        return 1
    if proof_log is not None:
        proof_log.close()
        print(f"c proof written to {args.proof}")
    stats = session.total_stats
    summary = ", ".join(
        f"{count} {status}" for status, count in sorted(status_counts.items())
    )
    print(
        f"c session: {queries} queries ({summary or 'none'}), "
        f"{session.num_clauses} clauses, {session.num_variables} variables, "
        f"{stats.decisions} decisions, {stats.conflicts} conflicts, "
        f"{stats.elapsed_seconds:.3f}s solving"
    )
    return 0


def _run_solve_proof(args: argparse.Namespace) -> int:
    """``solve --proof``: decide with CDCL while recording a DRAT proof."""
    from repro.exceptions import ReproError
    from repro.solvers.registry import make_solver

    try:
        formula = parse_dimacs_file(args.cnf)
        result = make_solver("cdcl").solve(
            formula,
            preprocess=False if args.no_preprocess else True,
            proof=args.proof,
        )
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if result.is_sat:
        print("SATISFIABLE")
        print(
            "v",
            " ".join(str(lit.to_int()) for lit in result.assignment.to_literals()),
            "0",
        )
        print(f"c proof written to {args.proof}")
        return 10
    print("UNSATISFIABLE")
    print(f"c proof written to {args.proof}")
    return 20


def _run_check_proof(args: argparse.Namespace) -> int:
    """``check-proof``: exit 0 verified, 1 rejected, 2 malformed/unreadable."""
    from repro.exceptions import ProofError, ReproError
    from repro.proofs import check_proof_file

    try:
        formula = parse_dimacs_file(args.cnf)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        result = check_proof_file(formula, args.proof)
    except (ProofError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if result:
        print(
            f"s VERIFIED ({result.steps_checked} steps, "
            f"{result.elapsed_seconds:.3f}s)"
        )
        return 0
    print(f"s REJECTED ({result.reason})")
    return 1


def _run_serve(args: argparse.Namespace) -> int:
    """``serve``: run the always-on solve server until shutdown/EOF."""
    from repro.exceptions import ReproError
    from repro.runtime.locks import DEFAULT_LEASE_TIMEOUT
    from repro.service import ServiceConfig, SolveService

    try:
        if args.fault_plan is not None:
            from repro.faults import FAULT_PLAN_ENV, FaultPlan, install_plan

            install_plan(FaultPlan.load(args.fault_plan))
            # Exported so executor worker *processes* (workers > 1) load
            # the same plan and fire their own pool.execute faults.
            os.environ[FAULT_PLAN_ENV] = os.path.abspath(args.fault_plan)
        config = ServiceConfig(
            solver=args.solver,
            workers=args.workers,
            master_seed=args.seed,
            samples=args.samples,
            carrier=args.carrier,
            timeout=args.timeout,
            preprocess=args.preprocess,
            cache_dir=args.cache_dir,
            shards=args.shards,
            shard_size=args.shard_size,
            compact_threshold=args.compact_threshold,
            fsync=args.fsync,
            max_inflight=args.max_inflight,
            queue_limit=args.queue_limit,
            drain_timeout=args.drain_timeout,
            lease_timeout=(
                args.lease_timeout
                if args.lease_timeout is not None
                else DEFAULT_LEASE_TIMEOUT
            ),
            proof_dir=args.proof_dir,
        )
        if config.proof_dir is not None:
            os.makedirs(config.proof_dir, exist_ok=True)
        service = SolveService(config)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    if args.stdio:
        return service.run_stdio()

    def announce(host: str, port: int) -> None:
        # One parseable line so wrappers (tests, supervisors) can find an
        # ephemeral port; flushed because the server then blocks forever.
        print(f"c service listening on {host}:{port}", flush=True)

    try:
        return service.run_tcp(host=args.host, port=args.port, ready=announce)
    except KeyboardInterrupt:
        print("c interrupted", file=sys.stderr)
        return 130
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _run_client(args: argparse.Namespace) -> int:
    """``client``: solve files through (or control) a running server."""
    from repro.exceptions import ServiceError
    from repro.service import ProtocolError, RetryPolicy, ServiceClient

    control_flags = sum((args.ping, args.stats, args.shutdown))
    if args.retries < 0:
        print("error: --retries must be >= 0", file=sys.stderr)
        return 2
    if control_flags > 1:
        print(
            "error: --ping, --stats and --shutdown are mutually exclusive",
            file=sys.stderr,
        )
        return 2
    if control_flags == 0 and not args.files:
        print(
            "error: nothing to do — give DIMACS files or one of "
            "--ping/--stats/--shutdown",
            file=sys.stderr,
        )
        return 2

    try:
        client = ServiceClient(
            host=args.host,
            port=args.port,
            retry=RetryPolicy(retries=args.retries),
        )
    except (ServiceError, OSError) as exc:
        print(
            f"error: cannot connect to {args.host}:{args.port}: {exc}",
            file=sys.stderr,
        )
        return 1

    with client:
        try:
            if args.ping:
                print("c pong")
                return 0 if client.ping() else 1
            if args.stats:
                import json as _json

                print(_json.dumps(client.stats(), indent=2, sort_keys=True))
                return 0
            if args.shutdown:
                ok = client.shutdown()
                print("c server shutting down" if ok else "c shutdown refused")
                return 0 if ok else 1

            requests = []
            for path in args.files:
                try:
                    with open(path, "r", encoding="utf-8") as handle:
                        text = handle.read()
                except OSError as exc:
                    print(f"error: cannot read {path!r}: {exc}", file=sys.stderr)
                    return 1
                request = {"dimacs": text, "label": path}
                if args.solver is not None:
                    request["solver"] = args.solver
                if args.timeout is not None:
                    request["timeout"] = args.timeout
                if args.preprocess:
                    request["preprocess"] = True
                requests.append(request)
            failures = 0
            for path, response in zip(
                args.files, client.solve_many(requests)
            ):
                if response["code"] != 200:
                    failures += 1
                    print(f"{path}: error {response['code']}: {response.get('error')}")
                    continue
                result = response["result"]
                provenance = ""
                if response.get("from_cache"):
                    provenance = " [cache]"
                elif response.get("deduped"):
                    provenance = " [dedup]"
                winner = f" by {result['winner']}" if result.get("winner") else ""
                print(f"{path}: {result['status']}{winner}{provenance}")
                if result["status"] == "ERROR":
                    failures += 1
            return 1 if failures else 0
        except ServiceError as exc:
            pending = f" (pending: {', '.join(exc.pending)})" if exc.pending else ""
            print(f"error: {exc}{pending}", file=sys.stderr)
            return 1
        except (ProtocolError, OSError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1


def _summarise_trace(path: str) -> None:
    from repro import telemetry

    roots = telemetry.load_trace(path)
    counts: dict[str, int] = {}
    totals: dict[str, float] = {}
    span_count = 0
    for root in roots:
        for span in root.walk():
            span_count += 1
            counts[span.name] = counts.get(span.name, 0) + 1
            totals[span.name] = (
                totals.get(span.name, 0.0) + span.duration_seconds
            )
    print(f"trace {path}: {len(roots)} root spans, {span_count} spans total")
    for name in sorted(counts):
        print(f"  {name:16s} {counts[name]:8d}  {totals[name]:12.6f}s")


def _summarise_metrics(path: str) -> None:
    import json as _json

    from repro.exceptions import ReproError

    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        raise ReproError(f"cannot read metrics file {path!r}: {exc}") from exc
    if path.endswith(".json"):
        try:
            payload = _json.loads(text)
            if not isinstance(payload, dict):
                raise TypeError("top level must be an object")
            rows = [
                (name, family["type"], len(family["samples"]))
                for name, family in sorted(payload.items())
            ]
        except (ValueError, TypeError, KeyError) as exc:
            raise ReproError(
                f"{path!r} is not a metrics JSON snapshot: {exc}"
            ) from exc
        print(f"metrics {path}: {len(rows)} families (JSON snapshot)")
        for name, kind, sample_count in rows:
            print(f"  {name:40s} {kind:10s} {sample_count:4d} samples")
        return
    families = 0
    samples = 0
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            families += 1
        elif not line.startswith("#"):
            if " " not in line:
                raise ReproError(
                    f"{path!r} is not Prometheus text: bad sample {line!r}"
                )
            samples += 1
    if families == 0 and samples == 0:
        raise ReproError(f"{path!r} contains no metrics")
    print(f"metrics {path}: {families} families, {samples} samples")


def _run_stats(args: argparse.Namespace) -> int:
    from repro import telemetry
    from repro.exceptions import ReproError

    if not (args.trace or args.metrics or args.bench):
        print(
            "error: stats needs at least one of --trace, --metrics, --bench",
            file=sys.stderr,
        )
        return 2
    try:
        if args.trace:
            _summarise_trace(args.trace)
        if args.metrics:
            _summarise_metrics(args.metrics)
        if args.bench:
            records = telemetry.load_bench_records(args.bench)
            print(f"bench {args.bench}: {len(records)} entries")
            for record in records:
                print(f"  {record.to_text()}")
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code.

    ``check`` and ``solve`` follow the SAT-competition convention — 10 for
    SAT, 20 for UNSAT — so the CLI can slot into existing tooling;
    ``preprocess`` exits 0 after reducing and 10/20 when simplification
    alone decides the instance. ``figure1``, ``batch`` and ``incremental``
    return 0 on success (1 on errors). ``check-proof`` returns 0 when the
    proof is verified, 1 when it is rejected and 2 for a malformed proof
    or unreadable input.
    """
    args = _build_parser().parse_args(argv)

    # ``stats`` reads telemetry artifacts; its --trace/--metrics are inputs,
    # so it must not go through the output-telemetry setup below.
    if args.command == "stats":
        return _run_stats(args)

    trace_file = getattr(args, "trace", None)
    metrics_file = getattr(args, "metrics", None)
    if trace_file is None and metrics_file is None:
        return _dispatch(args)

    from repro import telemetry

    if trace_file is not None:
        telemetry.start_tracing(sink=trace_file)
    if metrics_file is not None:
        telemetry.enable_metrics()
    try:
        root_span = telemetry.span(f"cli.{args.command}")
        with root_span:
            if root_span.recording:
                root_span.set(command=args.command)
            code = _dispatch(args)
            if root_span.recording:
                root_span.set(exit_code=code)
        return code
    finally:
        if trace_file is not None:
            telemetry.stop_tracing()
        if metrics_file is not None:
            try:
                telemetry.write_metrics(metrics_file)
            except OSError as exc:
                print(
                    f"error: cannot write metrics file: {exc}", file=sys.stderr
                )
            telemetry.disable_metrics()


def _dispatch(args: argparse.Namespace) -> int:
    """Run one parsed subcommand (telemetry already set up by ``main``)."""
    if args.command == "figure1":
        from repro.experiments.figure1 import run_figure1

        result = run_figure1(max_samples=args.samples, seed=args.seed)
        print(result.record.to_text())
        print()
        print(result.ascii_plot())
        return 0

    if args.command == "preprocess":
        return _run_preprocess(args)

    if args.command == "batch":
        return _run_batch(args)

    if args.command == "incremental":
        return _run_incremental(args)

    if args.command == "check-proof":
        return _run_check_proof(args)

    if args.command == "serve":
        return _run_serve(args)

    if args.command == "client":
        return _run_client(args)

    if args.command == "solve" and args.proof is not None:
        return _run_solve_proof(args)

    from repro.exceptions import ReproError

    try:
        formula = parse_dimacs_file(args.cnf)
        solver = _make_solver(args)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    # check/solve: shrink the instance first (opt out with --no-preprocess).
    # A verdict reached during preprocessing skips the NBL engine entirely;
    # otherwise the engine sees the reduced formula and SAT models are
    # reconstructed over the original variables before printing.
    reduction = None
    if not args.no_preprocess:
        from repro.preprocess import preprocess_formula

        reduction = preprocess_formula(formula)
        if reduction.status == "UNSAT":
            print("UNSATISFIABLE (decided in preprocessing)")
            return 20
        if reduction.status == "SAT":
            model = reduction.reconstruct()
            if args.command == "check":
                print("SATISFIABLE (decided in preprocessing)")
            else:
                print("SATISFIABLE")
                print(
                    "v",
                    " ".join(str(lit.to_int()) for lit in model.to_literals()),
                    "0",
                )
                print("c checks=0 verified=True (decided in preprocessing)")
            return 10
        formula = reduction.formula

    if args.command == "check":
        result = solver.check(formula)
        print(result)
        return 10 if result.satisfiable else 20

    solution = solver.solve(formula, cube=args.cube)
    if not solution.satisfiable:
        print("UNSATISFIABLE")
        return 20
    assignment = solution.assignment
    if reduction is not None:
        assignment = reduction.reconstruct(assignment.as_dict())
    print("SATISFIABLE")
    print("v", " ".join(str(lit.to_int()) for lit in assignment.to_literals()), "0")
    print(f"c checks={solution.num_checks} verified={solution.verified}")
    return 10


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
