"""The bank of basis noise sources backing one NBL-SAT instance.

The paper's construction (Section III-C) uses **2·m·n independent basis
noise sources**: for every clause ``c_j`` (j = 1..m) and every variable
``x_i`` (i = 1..n) there is one source ``N^j_{x_i}`` for the positive literal
and one source ``N^j_{~x_i}`` for the negative literal. :class:`NoiseBank`
materialises batches of samples of all of these sources as a single NumPy
array of shape ``(m, n, 2, block)`` so the Σ/τ builders can work fully
vectorised.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.exceptions import NoiseConfigError
from repro.noise.base import Carrier
from repro.noise.uniform import UniformCarrier
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive_int

#: Index of the positive-literal source along the polarity axis.
POSITIVE = 0
#: Index of the negative-literal source along the polarity axis.
NEGATIVE = 1


@dataclass(frozen=True)
class SourceIndex:
    """Identifies one basis noise source ``N^clause_{literal}``.

    Attributes
    ----------
    clause:
        1-based clause index ``j``.
    variable:
        1-based variable index ``i``.
    positive:
        ``True`` for ``N^j_{x_i}``, ``False`` for ``N^j_{~x_i}``.
    """

    clause: int
    variable: int
    positive: bool

    def array_index(self) -> tuple[int, int, int]:
        """The ``(clause, variable, polarity)`` position inside a sample block."""
        return (self.clause - 1, self.variable - 1, POSITIVE if self.positive else NEGATIVE)

    def __str__(self) -> str:
        literal = f"x{self.variable}" if self.positive else f"~x{self.variable}"
        return f"N^{self.clause}_{literal}"


class NoiseBank:
    """Batch sampler for the 2·m·n basis noise sources of one instance.

    Parameters
    ----------
    num_clauses:
        Number of clauses ``m`` of the SAT instance.
    num_variables:
        Number of variables ``n`` of the SAT instance.
    carrier:
        Statistical family of every source (defaults to the paper's uniform
        [-0.5, 0.5] carrier).
    seed:
        Seed or generator for reproducible sampling.
    """

    def __init__(
        self,
        num_clauses: int,
        num_variables: int,
        carrier: Optional[Carrier] = None,
        seed: SeedLike = None,
    ) -> None:
        check_positive_int(num_clauses, "num_clauses")
        check_positive_int(num_variables, "num_variables")
        self._num_clauses = num_clauses
        self._num_variables = num_variables
        self._carrier = carrier if carrier is not None else UniformCarrier()
        if not isinstance(self._carrier, Carrier):
            raise NoiseConfigError(
                f"carrier must be a Carrier instance, got {type(carrier).__name__}"
            )
        self._rng = as_generator(seed)
        self._samples_drawn = 0

    # -- metadata -----------------------------------------------------------
    @property
    def num_clauses(self) -> int:
        """Number of clauses ``m``."""
        return self._num_clauses

    @property
    def num_variables(self) -> int:
        """Number of variables ``n``."""
        return self._num_variables

    @property
    def num_sources(self) -> int:
        """Total number of basis noise sources (``2·m·n``)."""
        return 2 * self._num_clauses * self._num_variables

    @property
    def carrier(self) -> Carrier:
        """The carrier family shared by every source."""
        return self._carrier

    @property
    def samples_drawn(self) -> int:
        """Total number of time samples drawn so far (per source)."""
        return self._samples_drawn

    # -- sampling -----------------------------------------------------------
    def sample_block(self, block_size: int) -> np.ndarray:
        """Draw ``block_size`` fresh samples of every source.

        Returns an array of shape ``(m, n, 2, block_size)``; axis 2 indexes
        polarity (:data:`POSITIVE` then :data:`NEGATIVE`). Consecutive calls
        continue the same sample streams (the bank is a stateful generator).
        """
        check_positive_int(block_size, "block_size")
        shape = (self._num_clauses, self._num_variables, 2, block_size)
        block = self._carrier.sample(self._rng, shape)
        if block.shape != shape:
            raise NoiseConfigError(
                f"carrier {self._carrier.name!r} returned shape {block.shape}, "
                f"expected {shape}"
            )
        self._samples_drawn += block_size
        return block

    def source(self, index: SourceIndex, block: np.ndarray) -> np.ndarray:
        """Extract one source's samples from a block returned by :meth:`sample_block`."""
        self._validate_index(index)
        return block[index.array_index()]

    def _validate_index(self, index: SourceIndex) -> None:
        if not 1 <= index.clause <= self._num_clauses:
            raise NoiseConfigError(
                f"clause index {index.clause} out of range 1..{self._num_clauses}"
            )
        if not 1 <= index.variable <= self._num_variables:
            raise NoiseConfigError(
                f"variable index {index.variable} out of range 1..{self._num_variables}"
            )

    def all_indices(self) -> list[SourceIndex]:
        """Every source index of the bank, in (clause, variable, polarity) order."""
        return [
            SourceIndex(j, i, positive)
            for j in range(1, self._num_clauses + 1)
            for i in range(1, self._num_variables + 1)
            for positive in (True, False)
        ]

    def __repr__(self) -> str:
        return (
            f"NoiseBank(m={self._num_clauses}, n={self._num_variables}, "
            f"carrier={self._carrier!r})"
        )
