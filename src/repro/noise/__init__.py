"""Noise carriers and the basis-noise bank used by the NBL-SAT engines.

The paper's NBL construction needs ``2·m·n`` pairwise-independent, zero-mean
noise processes (one per literal per clause). This subpackage provides:

* carrier families (:class:`UniformCarrier`, :class:`GaussianCarrier`,
  :class:`BipolarCarrier`, :class:`TelegraphCarrier`) behind the common
  :class:`Carrier` interface,
* :class:`NoiseBank`, the indexed collection of basis noise sources the
  engines draw batches from,
* empirical correlation / orthogonality utilities used in tests and in the
  carrier-ablation experiment.
"""

from repro.noise.base import Carrier, carrier_from_name, available_carriers
from repro.noise.uniform import UniformCarrier
from repro.noise.gaussian import GaussianCarrier
from repro.noise.telegraph import BipolarCarrier, TelegraphCarrier
from repro.noise.bank import NoiseBank, SourceIndex
from repro.noise.correlation import (
    correlation,
    normalized_correlation,
    correlation_matrix,
    max_off_diagonal_correlation,
)

__all__ = [
    "Carrier",
    "carrier_from_name",
    "available_carriers",
    "UniformCarrier",
    "GaussianCarrier",
    "BipolarCarrier",
    "TelegraphCarrier",
    "NoiseBank",
    "SourceIndex",
    "correlation",
    "normalized_correlation",
    "correlation_matrix",
    "max_off_diagonal_correlation",
]
