"""Carrier interface: the statistical family of a basis noise process.

A *carrier* describes how samples of one basis noise source are drawn. The
paper uses uniform random variables on [-0.5, 0.5]; Section V points out that
Random Telegraph Waves (±1 processes) and sinusoids can serve the same role.
All carriers used by :class:`repro.noise.bank.NoiseBank` must be zero-mean
and i.i.d. across samples and across sources; sinusoids (deterministic in
time) live in :mod:`repro.sbl` instead.
"""

from __future__ import annotations

import abc
from typing import Dict, Sequence, Type

import numpy as np

from repro.exceptions import NoiseConfigError


class Carrier(abc.ABC):
    """Abstract statistical family of one basis noise process."""

    #: Short registry name, overridden by subclasses.
    name: str = "abstract"

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator, shape: Sequence[int]) -> np.ndarray:
        """Draw an array of i.i.d. carrier samples of the given ``shape``."""

    @property
    @abc.abstractmethod
    def power(self) -> float:
        """Second moment ``E[x^2]`` of one carrier sample.

        This is the per-factor scale of the NBL signal: a satisfying minterm
        contributes ``power ** (n·m)`` to the mean of ``τ_N · Σ_N``.
        """

    @property
    def mean(self) -> float:
        """First moment of the carrier (always zero for valid NBL carriers)."""
        return 0.0

    @property
    def fourth_moment(self) -> float:
        """``E[x^4]``; used by the SNR analysis. Defaults to ``3·power²``
        (the Gaussian value); subclasses override with the exact value."""
        return 3.0 * self.power**2

    def describe(self) -> str:
        """One-line human description used in experiment reports."""
        return f"{self.name} carrier (power={self.power:.4g})"

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.__dict__ == getattr(
            other, "__dict__", None
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, tuple(sorted(self.__dict__.items()))))


#: Registry mapping carrier names to classes; populated by register_carrier.
_CARRIER_REGISTRY: Dict[str, Type[Carrier]] = {}


def register_carrier(cls: Type[Carrier]) -> Type[Carrier]:
    """Class decorator adding a carrier to the by-name registry."""
    if not issubclass(cls, Carrier):
        raise NoiseConfigError(f"{cls!r} is not a Carrier subclass")
    if not cls.name or cls.name == "abstract":
        raise NoiseConfigError(f"{cls.__name__} must define a registry name")
    _CARRIER_REGISTRY[cls.name] = cls
    return cls


def available_carriers() -> list[str]:
    """Names of all registered carrier families."""
    return sorted(_CARRIER_REGISTRY)


def carrier_from_name(name: str, **kwargs) -> Carrier:
    """Instantiate a registered carrier by name (e.g. ``"uniform"``)."""
    try:
        cls = _CARRIER_REGISTRY[name]
    except KeyError as exc:
        raise NoiseConfigError(
            f"unknown carrier {name!r}; available: {available_carriers()}"
        ) from exc
    return cls(**kwargs)
