"""Empirical correlation utilities.

The whole NBL scheme rests on the correlation operator ``⟨V_i · V_j⟩``
(paper Definition 7) being (approximately, for finite observation windows)
``δ_{i,j}`` up to a power factor. These helpers measure that property on
sampled data; they are used by the test suite and by the carrier ablation
experiment to verify orthogonality of basis sources and of hyperspace
products.
"""

from __future__ import annotations

import numpy as np


def correlation(a: np.ndarray, b: np.ndarray) -> float:
    """Time-average of the product of two sample vectors, ``⟨a·b⟩``."""
    a = np.asarray(a, dtype=np.float64).ravel()
    b = np.asarray(b, dtype=np.float64).ravel()
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    if a.size == 0:
        raise ValueError("correlation of empty vectors is undefined")
    return float(np.mean(a * b))


def normalized_correlation(a: np.ndarray, b: np.ndarray) -> float:
    """Correlation normalised by the RMS powers, in [-1, 1] for typical data."""
    a = np.asarray(a, dtype=np.float64).ravel()
    b = np.asarray(b, dtype=np.float64).ravel()
    denom = np.sqrt(np.mean(a * a) * np.mean(b * b))
    if denom == 0.0:
        return 0.0
    return correlation(a, b) / float(denom)


def correlation_matrix(sources: np.ndarray) -> np.ndarray:
    """Pairwise ``⟨s_i · s_j⟩`` matrix for a 2-D array of sources.

    ``sources`` has shape ``(num_sources, num_samples)``.
    """
    arr = np.asarray(sources, dtype=np.float64)
    if arr.ndim != 2:
        raise ValueError(f"sources must be 2-D, got shape {arr.shape}")
    if arr.shape[1] == 0:
        raise ValueError("sources must contain at least one sample")
    return arr @ arr.T / arr.shape[1]


def max_off_diagonal_correlation(sources: np.ndarray, normalize: bool = True) -> float:
    """Largest absolute cross-correlation between distinct sources.

    With ``normalize=True`` the matrix is normalised by the diagonal powers
    first, so the result is directly comparable across carrier families.
    """
    matrix = correlation_matrix(sources)
    if normalize:
        powers = np.sqrt(np.clip(np.diag(matrix), 1e-300, None))
        matrix = matrix / np.outer(powers, powers)
    off = matrix - np.diag(np.diag(matrix))
    return float(np.max(np.abs(off))) if off.size else 0.0
