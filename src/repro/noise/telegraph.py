"""Bipolar (±1) and Random Telegraph Wave carriers.

Reference [17] of the paper ("Instantaneous noise-based logic") replaces the
continuous noise processes with Random Telegraph Waves: processes that take
only the values ``+A`` and ``-A``. Two properties make them attractive for
NBL-SAT:

* they remain zero-mean and pairwise independent, so every identity the
  paper relies on still holds;
* their square is *exactly* ``A²`` at every sample, so the self-correlation
  term of a satisfying minterm carries no sampling noise at all — only the
  cross terms fluctuate. This is the "high-SNR" realization benchmarked by
  the carrier ablation.

:class:`BipolarCarrier` flips an independent fair coin per sample (the
discrete-time idealisation). :class:`TelegraphCarrier` models the
continuous-time RTW sampled at a finite rate: the sign persists between
switching events that arrive with a per-sample switching probability,
introducing temporal correlation *within* one source while keeping distinct
sources independent.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import NoiseConfigError
from repro.noise.base import Carrier, register_carrier


@register_carrier
class BipolarCarrier(Carrier):
    """I.i.d. ±amplitude carrier (discrete-time RTW)."""

    name = "bipolar"

    def __init__(self, amplitude: float = 1.0) -> None:
        if amplitude <= 0:
            raise NoiseConfigError(f"amplitude must be positive, got {amplitude}")
        self.amplitude = float(amplitude)

    def sample(self, rng: np.random.Generator, shape: Sequence[int]) -> np.ndarray:
        signs = rng.integers(0, 2, size=tuple(shape)).astype(np.float64) * 2.0 - 1.0
        return signs * self.amplitude

    @property
    def power(self) -> float:
        return self.amplitude**2

    @property
    def fourth_moment(self) -> float:
        return self.amplitude**4

    def __repr__(self) -> str:
        return f"BipolarCarrier(amplitude={self.amplitude!r})"


@register_carrier
class TelegraphCarrier(Carrier):
    """Random Telegraph Wave sampled at a finite rate.

    Each source starts at ±amplitude with equal probability and flips sign
    at each subsequent sample with probability ``switch_probability``. With
    ``switch_probability = 0.5`` this degenerates to :class:`BipolarCarrier`.

    Note that samples of one source are temporally correlated (correlation
    ``(1 - 2p)^lag``), which slows the convergence of time averages; the
    carrier-ablation experiment quantifies this effect.
    """

    name = "telegraph"

    def __init__(self, amplitude: float = 1.0, switch_probability: float = 0.5) -> None:
        if amplitude <= 0:
            raise NoiseConfigError(f"amplitude must be positive, got {amplitude}")
        if not 0.0 < switch_probability <= 1.0:
            raise NoiseConfigError(
                f"switch_probability must lie in (0, 1], got {switch_probability}"
            )
        self.amplitude = float(amplitude)
        self.switch_probability = float(switch_probability)

    def sample(self, rng: np.random.Generator, shape: Sequence[int]) -> np.ndarray:
        shape = tuple(shape)
        if not shape:
            raise NoiseConfigError("TelegraphCarrier requires a non-scalar shape")
        # The last axis is time; all leading axes index independent sources.
        initial = rng.integers(0, 2, size=shape[:-1] + (1,)).astype(np.float64) * 2 - 1
        if shape[-1] == 0:
            return np.empty(shape)
        flips = rng.random(size=shape[:-1] + (shape[-1] - 1,)) < self.switch_probability
        # Cumulative parity of flips gives the sign trajectory.
        parity = np.cumsum(flips.astype(np.int64), axis=-1) % 2
        signs = np.concatenate(
            [np.zeros(shape[:-1] + (1,), dtype=np.int64), parity], axis=-1
        )
        trajectory = initial * np.where(signs == 0, 1.0, -1.0)
        return trajectory * self.amplitude

    @property
    def power(self) -> float:
        return self.amplitude**2

    @property
    def fourth_moment(self) -> float:
        return self.amplitude**4

    def __repr__(self) -> str:
        return (
            f"TelegraphCarrier(amplitude={self.amplitude!r}, "
            f"switch_probability={self.switch_probability!r})"
        )
