"""Gaussian carriers — thermal-noise-like basis processes.

The physical realization sketched in Section V amplifies a resistor's
thermal noise, which is Gaussian; this carrier family lets the carrier
ablation compare the paper's uniform sources against that physical model.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import NoiseConfigError
from repro.noise.base import Carrier, register_carrier


@register_carrier
class GaussianCarrier(Carrier):
    """Zero-mean Gaussian noise with configurable standard deviation."""

    name = "gaussian"

    def __init__(self, std: float = 1.0) -> None:
        if std <= 0:
            raise NoiseConfigError(f"std must be positive, got {std}")
        self.std = float(std)

    def sample(self, rng: np.random.Generator, shape: Sequence[int]) -> np.ndarray:
        return rng.normal(0.0, self.std, size=tuple(shape))

    @property
    def power(self) -> float:
        return self.std**2

    @property
    def fourth_moment(self) -> float:
        return 3.0 * self.std**4

    def __repr__(self) -> str:
        return f"GaussianCarrier(std={self.std!r})"
