"""Uniform carriers — the carrier family used throughout the paper."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import NoiseConfigError
from repro.noise.base import Carrier, register_carrier


@register_carrier
class UniformCarrier(Carrier):
    """Zero-mean uniform noise on ``[-half_width, +half_width]``.

    The paper's experiments use ``half_width = 0.5`` (samples uniform on
    [-0.5, 0.5]), giving per-sample power ``E[x²] = 1/12``. Passing
    ``normalized=True`` rescales the interval so that ``E[x²] = 1``, which
    keeps the NBL signal mean equal to the satisfying-minterm count instead
    of ``K · (1/12)^{nm}`` (useful for large ``n·m`` where the paper's
    scaling underflows double precision).
    """

    name = "uniform"

    def __init__(self, half_width: float = 0.5, normalized: bool = False) -> None:
        if half_width <= 0:
            raise NoiseConfigError(f"half_width must be positive, got {half_width}")
        if normalized:
            # Var of U[-a, a] is a²/3; unit power requires a = sqrt(3).
            half_width = float(np.sqrt(3.0))
        self.half_width = float(half_width)

    def sample(self, rng: np.random.Generator, shape: Sequence[int]) -> np.ndarray:
        return rng.uniform(-self.half_width, self.half_width, size=tuple(shape))

    @property
    def power(self) -> float:
        return self.half_width**2 / 3.0

    @property
    def fourth_moment(self) -> float:
        return self.half_width**4 / 5.0

    def __repr__(self) -> str:
        return f"UniformCarrier(half_width={self.half_width!r})"
