"""The reference hyperspace ``τ_N`` (paper Equation 2) — sampled and symbolic.

``τ_N`` is the additive superposition of all logically *valid* minterms.
Each variable ``x_i`` contributes the factor

    ( Π_j N^j_{x_i}  +  Π_j N^j_{~x_i} )

i.e. the product over **all clauses'** sources for the positive literal plus
the product over all clauses' sources for the negative literal. Binding a
variable (Algorithm 2) replaces the factor by the single chosen product.
"""

from __future__ import annotations

from typing import Mapping, Optional

import numpy as np

from repro.exceptions import HyperspaceError
from repro.hyperspace.minterm import MintermSet
from repro.noise.bank import NEGATIVE, POSITIVE


def reference_hyperspace(
    block: np.ndarray, bindings: Optional[Mapping[int, bool]] = None
) -> np.ndarray:
    """Evaluate ``τ_N`` (optionally with bound variables) on a sample block.

    Parameters
    ----------
    block:
        Carrier samples of shape ``(m, n, 2, B)`` from
        :class:`repro.noise.bank.NoiseBank`.
    bindings:
        Mapping ``variable -> value``; bound variables contribute only the
        chosen literal's all-clause product (Algorithm 2's ``τ_N^red``).

    Returns
    -------
    numpy.ndarray
        Vector of ``B`` samples of ``τ_N``.
    """
    arr = np.asarray(block)
    if arr.ndim != 4 or arr.shape[2] != 2:
        raise HyperspaceError(
            f"sample block must have shape (m, n, 2, B), got {arr.shape}"
        )
    num_variables = arr.shape[1]
    bindings = dict(bindings or {})
    for variable in bindings:
        if not 1 <= variable <= num_variables:
            raise HyperspaceError(
                f"bound variable x{variable} out of range 1..{num_variables}"
            )

    # Product over clauses of each literal's sources: shape (n, B) each.
    positive_products = np.prod(arr[:, :, POSITIVE, :], axis=0)
    negative_products = np.prod(arr[:, :, NEGATIVE, :], axis=0)

    factors = positive_products + negative_products
    for variable, value in bindings.items():
        row = variable - 1
        factors[row] = positive_products[row] if value else negative_products[row]
    return np.prod(factors, axis=0)


def reference_minterms(
    num_variables: int, bindings: Optional[Mapping[int, bool]] = None
) -> MintermSet:
    """Symbolic counterpart of :func:`reference_hyperspace`.

    Without bindings this is the full hyperspace (every minterm is valid);
    with bindings it is the cube subspace selected by the bound variables.
    """
    if bindings:
        return MintermSet.from_cube(num_variables, dict(bindings))
    return MintermSet.full(num_variables)
