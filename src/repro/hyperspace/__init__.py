"""Noise-based logic hyperspace algebra (paper Section III-A/B).

Two complementary views of the 2^n-element hyperspace are provided:

* :class:`~repro.hyperspace.minterm.MintermSet` — the *exact* (symbolic)
  view: a subset of the 2^n minterms, with the set algebra that products and
  additive superpositions of orthogonal noise vectors induce.
* :mod:`~repro.hyperspace.superposition` / :mod:`~repro.hyperspace.reference`
  — the *sampled* view: NumPy builders that evaluate the superposition
  signals ``T``, ``T_v`` (Equation 1 and the cube-subspace variant) and the
  reference hyperspace ``τ_N`` (Equation 2) on blocks of carrier samples.
"""

from repro.hyperspace.minterm import MintermSet, minterm_index_of, cube_minterms
from repro.hyperspace.superposition import (
    clause_full_superposition,
    clause_cube_subspace,
    clause_literal_subspace,
    minterm_noise_product,
)
from repro.hyperspace.reference import reference_hyperspace, reference_minterms

__all__ = [
    "MintermSet",
    "minterm_index_of",
    "cube_minterms",
    "clause_full_superposition",
    "clause_cube_subspace",
    "clause_literal_subspace",
    "minterm_noise_product",
    "reference_hyperspace",
    "reference_minterms",
]
