"""Sampled superposition builders over one clause's private noise space.

These functions evaluate, on a block of carrier samples, the signals the
paper constructs per clause:

* :func:`clause_full_superposition` — Equation 1's
  ``T = Π_i (N^j_{x_i} + N^j_{~x_i})``, the superposition of all 2^n
  minterms, built from clause ``j``'s sources;
* :func:`clause_cube_subspace` — the bound variant ``T^j_cube`` of Example 4
  (any subset of variables bound to literal values);
* :func:`clause_literal_subspace` — the single-literal binding ``T^j_v``
  used when translating a CNF clause into Σ_N (Section III-C);
* :func:`minterm_noise_product` — the noise product of one fully specified
  minterm (used by tests to probe orthogonality).

All functions take a sample block of shape ``(m, n, 2, B)`` produced by
:class:`repro.noise.bank.NoiseBank` and return a vector of ``B`` samples.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.cnf.literal import Literal
from repro.exceptions import HyperspaceError
from repro.noise.bank import NEGATIVE, POSITIVE


def _validate_block(block: np.ndarray) -> tuple[int, int, int]:
    arr = np.asarray(block)
    if arr.ndim != 4 or arr.shape[2] != 2:
        raise HyperspaceError(
            f"sample block must have shape (m, n, 2, B), got {arr.shape}"
        )
    return arr.shape[0], arr.shape[1], arr.shape[3]


def _validate_clause_index(clause: int, num_clauses: int) -> int:
    if not 1 <= clause <= num_clauses:
        raise HyperspaceError(
            f"clause index {clause} out of range 1..{num_clauses}"
        )
    return clause - 1


def _pair_terms(
    block: np.ndarray, clause_row: int, bindings: Mapping[int, bool]
) -> np.ndarray:
    """Per-variable factors ``(N_x + N_~x)`` with bound variables replaced.

    Returns an array of shape ``(n, B)`` whose product along axis 0 is the
    requested superposition.
    """
    num_variables = block.shape[1]
    positive = block[clause_row, :, POSITIVE, :]
    negative = block[clause_row, :, NEGATIVE, :]
    # `positive + negative` allocates a fresh array, so overwriting bound rows
    # below never touches the caller's sample block.
    terms = positive + negative
    for variable, value in bindings.items():
        if not 1 <= variable <= num_variables:
            raise HyperspaceError(
                f"bound variable x{variable} out of range 1..{num_variables}"
            )
        row = variable - 1
        terms[row] = positive[row] if value else negative[row]
    return terms


def clause_full_superposition(block: np.ndarray, clause: int) -> np.ndarray:
    """Equation 1 over clause ``clause``'s sources: all 2^n minterms at once."""
    num_clauses, _, _ = _validate_block(block)
    row = _validate_clause_index(clause, num_clauses)
    terms = _pair_terms(block, row, {})
    return np.prod(terms, axis=0)


def clause_cube_subspace(
    block: np.ndarray, clause: int, bindings: Mapping[int, bool]
) -> np.ndarray:
    """Cube subspace ``T^clause_cube``: variables in ``bindings`` are bound.

    With an empty ``bindings`` this equals :func:`clause_full_superposition`;
    binding every variable yields a single minterm's noise product.
    """
    num_clauses, _, _ = _validate_block(block)
    row = _validate_clause_index(clause, num_clauses)
    terms = _pair_terms(block, row, dict(bindings))
    return np.prod(terms, axis=0)


def clause_literal_subspace(
    block: np.ndarray, clause: int, literal: Literal
) -> np.ndarray:
    """``T^clause_v`` for one literal ``v`` — the building block of Σ_N."""
    return clause_cube_subspace(
        block, clause, {literal.variable: literal.positive}
    )


def minterm_noise_product(
    block: np.ndarray, clause: int, minterm_index: int
) -> np.ndarray:
    """Noise product of one fully specified minterm over clause ``clause``'s sources."""
    num_clauses, num_variables, _ = _validate_block(block)
    row = _validate_clause_index(clause, num_clauses)
    if not 0 <= minterm_index < (1 << num_variables):
        raise HyperspaceError(
            f"minterm index {minterm_index} out of range for {num_variables} variables"
        )
    bindings = {
        variable: bool((minterm_index >> (variable - 1)) & 1)
        for variable in range(1, num_variables + 1)
    }
    terms = _pair_terms(block, row, bindings)
    return np.prod(terms, axis=0)
