"""Exact minterm-set algebra over the NBL hyperspace.

In idealised NBL (infinite observation time), the additive superposition of
a set of orthogonal hyperspace products is fully characterised by *which*
minterms appear in it: products of superpositions correspond to element-wise
"joins" and the correlation of two superpositions counts their common
minterms. :class:`MintermSet` captures exactly this semantics with a boolean
mask over the 2^n minterm indices, and is the data structure behind the
exact/symbolic NBL engine (:mod:`repro.core.symbolic`).

Minterm index convention: bit ``i`` (LSB first) of the index is the value of
variable ``i + 1`` — shared with :class:`repro.cnf.assignment.Assignment`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

import numpy as np

from repro.cnf.assignment import Assignment
from repro.cnf.clause import Clause
from repro.cnf.literal import Literal
from repro.exceptions import HyperspaceError

#: Guard against accidentally allocating gigantic masks.
MAX_SYMBOLIC_VARIABLES = 26


def _check_num_variables(num_variables: int) -> int:
    if num_variables < 0:
        raise HyperspaceError(f"num_variables must be >= 0, got {num_variables}")
    if num_variables > MAX_SYMBOLIC_VARIABLES:
        raise HyperspaceError(
            f"symbolic hyperspace over {num_variables} variables exceeds the "
            f"{MAX_SYMBOLIC_VARIABLES}-variable limit"
        )
    return num_variables


def minterm_index_of(assignment: Mapping[int, bool], num_variables: int) -> int:
    """Minterm index of a complete assignment over ``num_variables`` variables."""
    index = 0
    for variable in range(1, num_variables + 1):
        if variable not in assignment:
            raise HyperspaceError(f"variable x{variable} is unassigned")
        if assignment[variable]:
            index |= 1 << (variable - 1)
    return index


def cube_minterms(bindings: Mapping[int, bool], num_variables: int) -> np.ndarray:
    """Boolean mask of the minterms inside the cube defined by ``bindings``.

    Unbound variables are free; e.g. ``bindings={1: False}`` over three
    variables selects the four minterms of the cube ``~x1`` (paper Example 4).
    """
    _check_num_variables(num_variables)
    size = 1 << num_variables
    mask = np.ones(size, dtype=bool)
    indices = np.arange(size, dtype=np.uint32)
    for variable, value in bindings.items():
        if not 1 <= variable <= num_variables:
            raise HyperspaceError(
                f"bound variable x{variable} out of range 1..{num_variables}"
            )
        bit = ((indices >> np.uint32(variable - 1)) & np.uint32(1)).astype(bool)
        mask &= bit if value else ~bit
    return mask


class MintermSet:
    """A subset of the 2^n minterms, with NBL-superposition semantics.

    * The additive superposition of two noise superpositions is the set
      **union** of their minterms.
    * The correlation ⟨A · B⟩ of two superpositions built over *the same*
      basis sources is proportional to ``|A ∩ B|`` (each shared minterm
      contributes its self-correlation; distinct minterms are orthogonal).

    The per-clause product structure of Σ_N (minterms of clause c_j built
    from clause j's private sources correlating only against equal minterms
    of other clauses) is handled by the symbolic engine, which intersects
    per-clause minterm sets; :class:`MintermSet` itself is clause-agnostic.
    """

    __slots__ = ("_mask", "_num_variables")

    def __init__(self, num_variables: int, mask: np.ndarray | None = None) -> None:
        _check_num_variables(num_variables)
        size = 1 << num_variables
        if mask is None:
            mask = np.zeros(size, dtype=bool)
        else:
            mask = np.asarray(mask, dtype=bool)
            if mask.shape != (size,):
                raise HyperspaceError(
                    f"mask has shape {mask.shape}, expected ({size},)"
                )
            mask = mask.copy()
        self._mask = mask
        self._num_variables = num_variables

    # -- constructors --------------------------------------------------------
    @classmethod
    def empty(cls, num_variables: int) -> "MintermSet":
        """The empty superposition (the zero signal)."""
        return cls(num_variables)

    @classmethod
    def full(cls, num_variables: int) -> "MintermSet":
        """All 2^n minterms — the hyperspace ``T`` of Equation 1."""
        return cls(num_variables, np.ones(1 << num_variables, dtype=bool))

    @classmethod
    def from_indices(cls, num_variables: int, indices: Iterable[int]) -> "MintermSet":
        """Superposition of the given minterm indices."""
        result = cls(num_variables)
        size = 1 << num_variables
        for index in indices:
            if not 0 <= index < size:
                raise HyperspaceError(
                    f"minterm index {index} out of range for {num_variables} variables"
                )
            result._mask[index] = True
        return result

    @classmethod
    def from_cube(
        cls, num_variables: int, bindings: Mapping[int, bool]
    ) -> "MintermSet":
        """The cube subspace ``T_v`` of Example 4: all minterms matching ``bindings``."""
        return cls(num_variables, cube_minterms(bindings, num_variables))

    @classmethod
    def from_literal(cls, num_variables: int, literal: Literal) -> "MintermSet":
        """All minterms in which ``literal`` is true (cube of one literal)."""
        return cls.from_cube(num_variables, {literal.variable: literal.positive})

    @classmethod
    def from_clause(cls, num_variables: int, clause: Clause) -> "MintermSet":
        """All minterms satisfying ``clause`` — the ``Z_j`` superposition."""
        result = cls.empty(num_variables)
        for literal in clause:
            result = result | cls.from_literal(num_variables, literal)
        return result

    # -- set algebra -----------------------------------------------------------
    @property
    def num_variables(self) -> int:
        """Number of variables ``n`` of the hyperspace."""
        return self._num_variables

    @property
    def mask(self) -> np.ndarray:
        """Boolean membership mask (a copy; mutations do not affect the set)."""
        return self._mask.copy()

    def _check_compatible(self, other: "MintermSet") -> None:
        if self._num_variables != other._num_variables:
            raise HyperspaceError(
                "cannot combine minterm sets over different variable counts: "
                f"{self._num_variables} vs {other._num_variables}"
            )

    def __or__(self, other: "MintermSet") -> "MintermSet":
        """Additive superposition (set union)."""
        self._check_compatible(other)
        return MintermSet(self._num_variables, self._mask | other._mask)

    def __and__(self, other: "MintermSet") -> "MintermSet":
        """Common-minterm set (what the correlation ⟨·⟩ 'sees')."""
        self._check_compatible(other)
        return MintermSet(self._num_variables, self._mask & other._mask)

    def __sub__(self, other: "MintermSet") -> "MintermSet":
        self._check_compatible(other)
        return MintermSet(self._num_variables, self._mask & ~other._mask)

    def complement(self) -> "MintermSet":
        """All minterms not in this set."""
        return MintermSet(self._num_variables, ~self._mask)

    def restrict(self, bindings: Mapping[int, bool]) -> "MintermSet":
        """Intersect with the cube defined by ``bindings`` (variable binding)."""
        return MintermSet(
            self._num_variables,
            self._mask & cube_minterms(bindings, self._num_variables),
        )

    # -- queries ---------------------------------------------------------------
    def count(self) -> int:
        """Number of minterms in the superposition."""
        return int(self._mask.sum())

    def __len__(self) -> int:
        return self.count()

    def __bool__(self) -> bool:
        return bool(self._mask.any())

    def __contains__(self, index: int) -> bool:
        return bool(0 <= index < self._mask.size and self._mask[index])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MintermSet):
            return NotImplemented
        return self._num_variables == other._num_variables and bool(
            np.array_equal(self._mask, other._mask)
        )

    def __hash__(self) -> int:
        return hash((self._num_variables, self._mask.tobytes()))

    def indices(self) -> np.ndarray:
        """Sorted array of member minterm indices."""
        return np.flatnonzero(self._mask)

    def __iter__(self) -> Iterator[int]:
        return iter(int(i) for i in self.indices())

    def assignments(self) -> Iterator[Assignment]:
        """Iterate the member minterms as complete assignments."""
        for index in self.indices():
            yield Assignment.from_minterm_index(int(index), self._num_variables)

    def correlation_count(self, other: "MintermSet") -> int:
        """``|self ∩ other|`` — the number of correlating minterms."""
        return (self & other).count()

    def __repr__(self) -> str:
        return (
            f"MintermSet(num_variables={self._num_variables}, "
            f"count={self.count()})"
        )
