"""Incremental solving sessions: add clauses, assume, push/pop, re-solve.

The paper's motivating EDA workloads — register-allocation k-sweeps,
equivalence checking — are *sequences* of closely related SAT queries. An
:class:`IncrementalSession` keeps solver state alive between those queries:

.. code-block:: python

    from repro.incremental import make_session

    session = make_session("cdcl", base_formula=formula)
    session.solve(assumptions=[3, -7])   # query 1
    session.add_clause([1, 2])           # strengthen the problem
    with session.scope():                # push ...
        session.add_clause([-1])
        session.solve()
    # ... pop: the scoped clause is retracted again
    session.solve()                      # query N, warm solver state

Two implementations share the interface:

* :class:`CDCLSession` — native incremental CDCL. Learned clauses and
  VSIDS activities persist across calls, assumptions are temporary
  decisions inside one search (no formula rebuild, no restart from
  scratch).
* :class:`ResolveSession` — the generic fallback for every other
  registered solver (DPLL, WalkSAT, GSAT, brute force, hybrid, ...): each
  query re-solves the accumulated formula with the assumptions appended as
  unit clauses. Same semantics, none of the warm-start benefit.

Semantics shared by both: ``solve(assumptions)`` is equivalent to solving
``session.formula().with_assumptions(assumptions)`` from scratch — an
``UNSAT`` answer means *unsatisfiable under the assumptions*, and an
incomplete solver reports ``UNKNOWN`` instead of ``UNSAT``. The
differential fuzz suite (``tests/property/test_differential_fuzz.py``)
checks this equivalence across the whole solver stack.
"""

from __future__ import annotations

import abc
import contextlib
from typing import Iterator, Optional, Sequence

from repro.cnf.clause import Clause
from repro.cnf.formula import ClauseLike, CNFFormula
from repro.exceptions import SolverError
from repro.solvers.base import (
    SATSolver,
    SolverResult,
    SolverStats,
    check_assumption_literal,
)
from repro.telemetry import instrument as _telemetry


class IncrementalSession(abc.ABC):
    """Common interface of all incremental solving sessions.

    The session owns the clause ledger (a growing list plus a stack of
    scope marks), validates assumptions, verifies returned models and
    accumulates per-query work counters; subclasses supply the actual
    solving strategy via the ``_solve`` / ``_clause_added`` /
    ``_clauses_retracted`` hooks.

    Parameters
    ----------
    base_formula:
        Optional starting formula; its clauses seed the outermost scope.
    num_variables:
        Minimum variable universe (grows automatically as clauses or a
        larger ``base_formula`` arrive; it never shrinks, not even on
        ``pop``, so variable indices stay stable for the session's life).
    """

    #: Reported as :attr:`SolverResult.solver_name` on query results.
    solver_name: str = "abstract"

    def __init__(
        self,
        base_formula: Optional[CNFFormula] = None,
        num_variables: int = 0,
    ) -> None:
        if num_variables < 0:
            raise SolverError(
                f"num_variables must be non-negative, got {num_variables}"
            )
        self._clauses: list[Clause] = []
        self._marks: list[int] = []
        self._num_variables = int(num_variables)
        self._total_stats = SolverStats()
        self._num_queries = 0
        self._last_core: Optional[tuple[int, ...]] = None
        self._sync_variables()
        if base_formula is not None:
            self.add_formula(base_formula)

    # -- introspection ---------------------------------------------------------
    @property
    def num_variables(self) -> int:
        """Current size of the variable universe."""
        return self._num_variables

    @property
    def num_clauses(self) -> int:
        """Number of clauses currently asserted (all scopes)."""
        return len(self._clauses)

    @property
    def scope_depth(self) -> int:
        """How many ``push`` scopes are currently open."""
        return len(self._marks)

    @property
    def num_queries(self) -> int:
        """How many ``solve`` calls this session has answered."""
        return self._num_queries

    @property
    def total_stats(self) -> SolverStats:
        """Work counters accumulated over every query of this session."""
        return self._total_stats

    def formula(self) -> CNFFormula:
        """The currently asserted clause set as an immutable formula."""
        return CNFFormula(list(self._clauses), self._num_variables)

    # -- building the problem --------------------------------------------------
    def add_clause(self, clause: ClauseLike) -> None:
        """Assert one clause (a :class:`Clause` or iterable of literals)."""
        coerced = clause if isinstance(clause, Clause) else Clause(clause)
        max_var = max((lit.variable for lit in coerced), default=0)
        if max_var > self._num_variables:
            self._num_variables = max_var
            self._sync_variables()
        self._clauses.append(coerced)
        self._clause_added(coerced)

    def add_formula(self, formula: CNFFormula) -> None:
        """Assert every clause of ``formula`` (growing the universe first)."""
        if formula.num_variables > self._num_variables:
            self._num_variables = formula.num_variables
            self._sync_variables()
        for clause in formula:
            self.add_clause(clause)

    # -- scopes ----------------------------------------------------------------
    def push(self) -> int:
        """Open a retraction scope; returns the new scope depth."""
        self._marks.append(len(self._clauses))
        return len(self._marks)

    def pop(self) -> None:
        """Retract every clause asserted since the matching :meth:`push`."""
        if not self._marks:
            raise SolverError("pop() without a matching push()")
        mark = self._marks.pop()
        removed = self._clauses[mark:]
        del self._clauses[mark:]
        self._clauses_retracted(removed)

    @contextlib.contextmanager
    def scope(self) -> Iterator["IncrementalSession"]:
        """``with session.scope(): ...`` — push on entry, pop on exit."""
        self.push()
        try:
            yield self
        finally:
            self.pop()

    # -- solving ---------------------------------------------------------------
    def solve(
        self,
        assumptions: Sequence[int] = (),
        timeout: Optional[float] = None,
    ) -> SolverResult:
        """Solve the asserted clauses under temporary ``assumptions``.

        Parameters
        ----------
        assumptions:
            DIMACS-signed literals that must hold for this query only; they
            are *not* added to the clause set. ``UNSAT`` therefore means
            "unsatisfiable under these assumptions".
        timeout:
            Optional cooperative wall-clock budget in seconds (ignored by
            the NBL frontends, which are bounded by their sample budget).
        """
        validated = self._validate_assumptions(assumptions)
        session_span = _telemetry.span("session.solve")
        with session_span:
            if session_span.recording:
                session_span.set(
                    session=type(self).__name__,
                    solver=self.solver_name,
                    query=self._num_queries + 1,
                    assumptions=len(validated),
                    clauses=len(self._clauses),
                )
            result = self._solve(validated, timeout)
            result.solver_name = result.solver_name or self.solver_name
            if result.is_unsat:
                if result.core is None:
                    # Fallback for strategies without final-conflict
                    # analysis: the full assumption set is always a valid
                    # (if unminimized) failing core.
                    result.core = validated
                self._last_core = result.core
            else:
                self._last_core = None
            self._num_queries += 1
            self._accumulate(result.stats)
            if session_span.recording:
                session_span.set(status=result.status)
        if _telemetry.active():
            _telemetry.record_session_query(result.solver_name, result.status)
        if result.is_sat:
            self._verify_model(result, validated)
        return result

    def unsat_core(self) -> Optional[tuple[int, ...]]:
        """Failing assumption core of the most recent query.

        ``None`` unless the last :meth:`solve` answered UNSAT. For an
        UNSAT answer the core is a subset of that query's assumptions
        sufficient for unsatisfiability — minimized by final-conflict
        analysis on :class:`CDCLSession`, the full assumption set on
        sessions without it — and the empty tuple when the clause set is
        contradictory regardless of the assumptions.
        """
        return self._last_core

    def set_proof_log(self, log) -> None:
        """Attach a DRAT :class:`~repro.proofs.ProofLog` sink, if supported.

        Only sessions backed by a proof-capable solver accept a sink; the
        NBL and portfolio frontends raise :class:`SolverError`. The log
        records the derivations of subsequent queries; it stays checkable
        against the clause set in force at refutation time (with any
        assumptions of that query as unit clauses for re-solve sessions).
        """
        raise SolverError(
            f"{type(self).__name__} does not support proof logging"
        )

    # -- subclass hooks --------------------------------------------------------
    @abc.abstractmethod
    def _solve(
        self, assumptions: tuple[int, ...], timeout: Optional[float]
    ) -> SolverResult:
        """Strategy-specific solving of the current clause set."""

    def _clause_added(self, clause: Clause) -> None:
        """Called after each clause lands in the ledger."""

    def _clauses_retracted(self, removed: list[Clause]) -> None:
        """Called after ``pop`` removed ``removed`` from the ledger."""

    def _sync_variables(self) -> None:
        """Called whenever the variable universe grew."""

    # -- internals -------------------------------------------------------------
    def _validate_assumptions(
        self, assumptions: Sequence[int]
    ) -> tuple[int, ...]:
        seen: dict[int, None] = {}
        for lit in assumptions:
            check_assumption_literal(lit, self._num_variables)
            seen.setdefault(lit, None)
        return tuple(seen)

    def _accumulate(self, stats: SolverStats) -> None:
        total = self._total_stats
        total.decisions += stats.decisions
        total.propagations += stats.propagations
        total.conflicts += stats.conflicts
        total.learned_clauses += stats.learned_clauses
        total.restarts += stats.restarts
        total.flips += stats.flips
        total.evaluations += stats.evaluations
        total.elapsed_seconds += stats.elapsed_seconds

    def _verify_model(
        self, result: SolverResult, assumptions: tuple[int, ...]
    ) -> None:
        if result.assignment is None:
            raise SolverError(
                f"{result.solver_name} returned SAT without a model"
            )
        model = result.assignment.as_dict()
        for lit in assumptions:
            if model.get(abs(lit)) != (lit > 0):
                raise SolverError(
                    f"{result.solver_name} model violates assumption {lit}"
                )
        if not self.formula().evaluate(model):
            raise SolverError(
                f"{result.solver_name} returned a non-satisfying assignment"
            )

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(solver={self.solver_name!r}, "
            f"clauses={self.num_clauses}, vars={self.num_variables}, "
            f"depth={self.scope_depth})"
        )


class ResolveSession(IncrementalSession):
    """Generic fallback session: re-solve the whole formula per query.

    Works with *any* :class:`~repro.solvers.base.SATSolver` (DPLL, WalkSAT,
    GSAT, brute force, hybrid, ...). Each ``solve`` rebuilds the formula,
    appends the assumptions as unit clauses and runs the wrapped solver from
    scratch — the session interface without the warm-start speedups of
    :class:`CDCLSession`. Incomplete solvers keep their semantics: they
    answer ``UNKNOWN``, never ``UNSAT`` — unless a query's *preprocessing*
    refutes the formula, which is a sound ``UNSAT`` proof even under an
    incomplete search.

    With ``preprocessor`` set (``True`` or a
    :class:`~repro.preprocess.Preprocessor`), every query first runs the
    inprocessing pipeline on the accumulated formula. The query's
    assumption variables are frozen, so eliminated variables can never
    collide with assumptions or with clauses asserted in ``push``/``pop``
    scopes — scoped clauses are part of the snapshot each query
    preprocesses, and retracting them simply changes the next snapshot.
    """

    def __init__(
        self,
        solver: SATSolver,
        base_formula: Optional[CNFFormula] = None,
        num_variables: int = 0,
        preprocessor=None,
    ) -> None:
        if not isinstance(solver, SATSolver):
            raise SolverError(
                f"ResolveSession expects a SATSolver, got {type(solver).__name__}"
            )
        from repro.preprocess.pipeline import resolve_preprocessor

        self._solver = solver
        self._preprocessor = resolve_preprocessor(preprocessor)
        self.solver_name = solver.name
        super().__init__(base_formula=base_formula, num_variables=num_variables)

    @property
    def solver(self) -> SATSolver:
        """The wrapped solver instance (reused across queries)."""
        return self._solver

    @property
    def preprocessor(self):
        """The per-query :class:`~repro.preprocess.Preprocessor` (or ``None``)."""
        return self._preprocessor

    def set_proof_log(self, log) -> None:
        """Attach a persistent DRAT sink to the wrapped solver.

        Each query re-solves the accumulated formula with its assumptions
        appended as unit clauses, so a refutation recorded here checks
        against ``formula().with_assumptions(assumptions)`` of the query
        that produced it. Solvers that are not proof-capable leave the log
        empty (and flag it incomplete on their own UNSAT verdicts).
        """
        self._solver.set_proof_log(log)

    def _solve(
        self, assumptions: tuple[int, ...], timeout: Optional[float]
    ) -> SolverResult:
        strengthened = self.formula().with_assumptions(assumptions)
        if self._preprocessor is None:
            return self._solver.solve(strengthened, timeout=timeout)
        # The assumptions are already baked into ``strengthened`` as unit
        # clauses, so nothing outlives them: the reduction is rebuilt per
        # query. Freezing their variables would forbid the pipeline from
        # propagating exactly the literals most likely to simplify the
        # query, for no soundness benefit.
        return self._solver.solve(
            strengthened,
            timeout=timeout,
            preprocess=self._preprocessor,
        )


class CDCLSession(IncrementalSession):
    """Native incremental session on top of :class:`CDCLSolver`.

    Clauses attach directly to the solver's persistent database; learned
    clauses and VSIDS activities survive across queries, and assumptions are
    handled inside the search as temporary decisions. ``pop`` rebuilds the
    solver from the surviving problem clauses (learned clauses may depend on
    retracted ones, so they are dropped) while keeping the branching
    activities warm.
    """

    solver_name = "cdcl"

    def __init__(
        self,
        solver=None,
        base_formula: Optional[CNFFormula] = None,
        num_variables: int = 0,
    ) -> None:
        # Imported here so repro.solvers.base can import this module without
        # a cycle through the concrete solver.
        from repro.solvers.cdcl import CDCLSolver

        if solver is None:
            solver = CDCLSolver()
        if not isinstance(solver, CDCLSolver):
            raise SolverError(
                f"CDCLSession expects a CDCLSolver, got {type(solver).__name__}"
            )
        self._solver = solver
        self._solver.begin_incremental(0)
        super().__init__(base_formula=base_formula, num_variables=num_variables)

    @property
    def solver(self):
        """The wrapped incremental CDCL solver."""
        return self._solver

    def set_proof_log(self, log) -> None:
        """Attach a persistent DRAT sink to the incremental solver.

        Learned clauses and refutations of subsequent queries are recorded
        against the clause set in force when they are derived; UNSAT
        *under assumptions* emits no empty clause (the failing core is
        reported via :meth:`unsat_core` instead), so the log refutes the
        asserted clauses only when an assumption-free query (or a root
        conflict) ends in UNSAT. A ``pop`` rebuilds the clause database,
        after which earlier proof lines no longer apply to the new set.
        """
        self._solver.set_proof_log(log)

    def _sync_variables(self) -> None:
        self._solver.ensure_variables(self._num_variables)

    def _clause_added(self, clause: Clause) -> None:
        if not clause.is_tautology():
            self._solver.attach_clause(clause.to_ints())

    def _clauses_retracted(self, removed: list[Clause]) -> None:
        # Learned clauses are consequences of the *whole* database, possibly
        # including the retracted clauses — only a rebuild from the
        # survivors is sound. VSIDS activities carry over, so the rebuilt
        # solver still branches on historically useful variables first.
        self._solver.reset_clauses(keep_activity=True)
        self._solver.ensure_variables(self._num_variables)
        for clause in self._clauses:
            if not clause.is_tautology():
                self._solver.attach_clause(clause.to_ints())

    def _solve(
        self, assumptions: tuple[int, ...], timeout: Optional[float]
    ) -> SolverResult:
        return self._solver.solve_incremental(assumptions, timeout=timeout)
