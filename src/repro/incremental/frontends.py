"""Session frontends for the NBL engines and the portfolio racer.

The classical solvers get sessions through
:meth:`repro.solvers.base.SATSolver.make_session`; the two NBL engine specs
and the portfolio are not :class:`SATSolver` subclasses, so they get
dedicated re-solve frontends here. :func:`make_session` is the single
factory that understands every solver spec of the runtime —
``"cdcl"``-style registry names, ``"nbl-symbolic"``/``"nbl-sampled"`` and
``"portfolio"`` — and hands back the right session type.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.cnf.formula import CNFFormula
from repro.core.config import NBLConfig
from repro.core.solver import NBLSATSolver
from repro.exceptions import SolverError
from repro.incremental.session import IncrementalSession
from repro.noise.base import carrier_from_name
from repro.solvers.base import SAT, UNKNOWN, UNSAT, SolverResult, SolverStats
from repro.solvers.registry import make_solver


class NBLSession(IncrementalSession):
    """Re-solve session over an :class:`~repro.core.solver.NBLSATSolver`.

    Each query runs the NBL engine on the accumulated formula with the
    assumptions appended as unit clauses. The symbolic engine is exact, so
    its ``UNSAT`` stands; the sampled engine's UNSAT verdict is statistical
    and is therefore reported as ``UNKNOWN``, matching the portfolio's
    treatment of the same engine. ``timeout`` is ignored — the engines are
    bounded by their sample budget / variable limit instead.
    """

    def __init__(
        self,
        solver: NBLSATSolver,
        base_formula: Optional[CNFFormula] = None,
        num_variables: int = 0,
    ) -> None:
        self._nbl = solver
        self.solver_name = f"nbl-{solver.engine_name}"
        super().__init__(base_formula=base_formula, num_variables=num_variables)

    def _solve(
        self, assumptions: tuple[int, ...], timeout: Optional[float]
    ) -> SolverResult:
        strengthened = self.formula().with_assumptions(assumptions)
        started = time.perf_counter()
        solution = self._nbl.solve(strengthened)
        stats = SolverStats(
            evaluations=solution.total_samples,
            elapsed_seconds=time.perf_counter() - started,
        )
        if solution.satisfiable:
            if solution.verified and solution.assignment is not None:
                return SolverResult(SAT, solution.assignment, stats)
            return SolverResult(UNKNOWN, None, stats)
        status = UNSAT if self._nbl.engine_name == "symbolic" else UNKNOWN
        return SolverResult(status, None, stats)


class PortfolioSession(IncrementalSession):
    """Re-solve session that races the portfolio roster per query.

    ``solve`` hands the accumulated formula plus the query's assumptions to
    :meth:`repro.runtime.portfolio.PortfolioSolver.solve`; the full
    :class:`~repro.runtime.portfolio.PortfolioResult` of the latest query
    (per-contender timings and verdicts) stays available as
    :attr:`last_result`.
    """

    solver_name = "portfolio"

    def __init__(
        self,
        portfolio=None,
        base_formula: Optional[CNFFormula] = None,
        num_variables: int = 0,
        seed: Optional[int] = None,
    ) -> None:
        # Imported here: repro.runtime already imports repro.incremental's
        # sibling modules indirectly via the solver base class.
        from repro.runtime.portfolio import PortfolioSolver

        self._portfolio = portfolio if portfolio is not None else PortfolioSolver()
        self._seed = seed
        self.last_result = None
        super().__init__(base_formula=base_formula, num_variables=num_variables)

    def _solve(
        self, assumptions: tuple[int, ...], timeout: Optional[float]
    ) -> SolverResult:
        race = self._portfolio.solve(
            self.formula(),
            seed=self._seed,
            timeout=timeout,
            assumptions=assumptions,
        )
        self.last_result = race
        stats = SolverStats(
            evaluations=race.samples_used,
            elapsed_seconds=race.elapsed_seconds,
        )
        result = SolverResult(
            race.status, race.assignment, stats, timed_out=race.timed_out
        )
        if race.winner:
            result.solver_name = f"portfolio:{race.winner}"
        return result


def make_session(
    solver: str = "cdcl",
    base_formula: Optional[CNFFormula] = None,
    num_variables: int = 0,
    seed: Optional[int] = None,
    samples: int = 200_000,
    carrier: str = "uniform",
    preprocess=None,
    **solver_kwargs,
) -> IncrementalSession:
    """Build an incremental session for any runtime solver spec.

    Parameters
    ----------
    solver:
        ``"portfolio"``, ``"nbl-symbolic"``, ``"nbl-sampled"`` or any
        registry solver name (``"cdcl"`` gets the native incremental
        session, everything else the generic re-solve fallback).
    base_formula / num_variables:
        Initial problem (see :class:`IncrementalSession`).
    seed:
        Seed for stochastic solvers (WalkSAT, GSAT, the sampled engine,
        the portfolio's stochastic contenders).
    samples / carrier:
        Sampled-NBL engine budget and carrier family.
    preprocess:
        ``True`` or a :class:`~repro.preprocess.Preprocessor` to run the
        inprocessing pipeline per query with the query's assumption
        variables frozen. Registry solver specs only — the NBL and
        portfolio frontends get preprocessing through the batch runtime
        (``SolveJob(preprocess=True)``) instead; requesting it here for
        them raises :class:`~repro.exceptions.SolverError`. The ``"cdcl"``
        spec falls back to the generic re-solve session when preprocessing
        is requested (per-query inprocessing is incompatible with retained
        native solver state).
    solver_kwargs:
        Extra constructor arguments for the underlying solver.
    """
    if preprocess and solver in ("nbl-symbolic", "nbl-sampled", "portfolio"):
        raise SolverError(
            f"preprocess= is not supported for {solver!r} sessions; use a "
            "registry solver spec, or SolveJob(preprocess=True) in the "
            "batch runtime"
        )
    if solver in ("nbl-symbolic", "nbl-sampled"):
        engine = solver.split("-", 1)[1]
        config = NBLConfig(
            carrier=carrier_from_name(carrier),
            max_samples=samples,
            block_size=min(20_000, samples),
            seed=seed,
        )
        nbl = NBLSATSolver(engine=engine, config=config, **solver_kwargs)
        return NBLSession(
            nbl, base_formula=base_formula, num_variables=num_variables
        )
    if solver == "portfolio":
        from repro.runtime.portfolio import PortfolioSolver

        portfolio = PortfolioSolver(
            samples=samples, carrier=carrier, **solver_kwargs
        )
        return PortfolioSession(
            portfolio,
            base_formula=base_formula,
            num_variables=num_variables,
            seed=seed,
        )
    from repro.runtime.portfolio import SEEDED_SOLVERS

    kwargs = dict(solver_kwargs)
    if solver in SEEDED_SOLVERS and seed is not None:
        kwargs.setdefault("seed", seed)
    instance = make_solver(solver, **kwargs)
    return instance.make_session(
        base_formula=base_formula,
        num_variables=num_variables,
        preprocess=preprocess,
    )
