"""repro.incremental — incremental solving sessions for the whole stack.

EDA workloads arrive as *sequences* of closely related queries (k-sweeps,
equivalence checks); this package keeps solver state alive between them:

* :class:`IncrementalSession` — the shared interface: ``add_clause()``,
  ``solve(assumptions=[...])``, ``push()``/``pop()`` scopes;
* :class:`CDCLSession` — native incremental CDCL (retained learned clauses
  and VSIDS activities, in-search assumption handling);
* :class:`ResolveSession` — the generic re-solve fallback wrapping any
  registered classical solver;
* :class:`NBLSession` / :class:`PortfolioSession` — session frontends for
  the NBL engines and the portfolio racer;
* :func:`make_session` — factory understanding every runtime solver spec.

Quickstart (register-allocation k-sweep)::

    from repro.cnf import graph_coloring_formula
    from repro.incremental import make_session

    formula = graph_coloring_formula(edges, num_values, max_registers)
    session = make_session("cdcl", base_formula=formula)
    for k in range(2, max_registers + 1):
        blocked = [-var(v, c) for v in values for c in range(k, max_registers)]
        result = session.solve(assumptions=blocked)   # warm solver state
"""

from repro.incremental.frontends import (
    NBLSession,
    PortfolioSession,
    make_session,
)
from repro.incremental.session import (
    CDCLSession,
    IncrementalSession,
    ResolveSession,
)

__all__ = [
    "CDCLSession",
    "IncrementalSession",
    "NBLSession",
    "PortfolioSession",
    "ResolveSession",
    "make_session",
]
