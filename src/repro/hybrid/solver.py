"""The hybrid CPU + NBL-coprocessor solver."""

from __future__ import annotations

import time
from typing import Optional

from repro.cnf.formula import CNFFormula
from repro.core.config import NBLConfig
from repro.hybrid.guidance import NBLGuidance
from repro.solvers.base import UNKNOWN, SATSolver, SolverResult, SolverStats
from repro.solvers.dpll import DPLLSolver


class HybridNBLSolver(SATSolver):
    """DPLL search whose branching decisions come from an NBL coprocessor.

    The CPU side is the complete :class:`~repro.solvers.dpll.DPLLSolver`;
    at every decision point it hands the residual formula to
    :class:`~repro.hybrid.guidance.NBLGuidance`, which returns the binding
    with the highest reduced-``S_N`` mean (the subspace with the most
    satisfying minterms). Completeness is unaffected — the guidance only
    chooses the branching order.

    Parameters
    ----------
    guidance_engine:
        ``"symbolic"`` (ideal coprocessor) or ``"sampled"`` (finite
        observation window).
    guidance_config:
        Configuration of the sampled coprocessor.
    guidance_mode:
        ``"value"`` (coprocessor picks the polarity of the CPU's variable;
        default) or ``"variable"`` (the paper's literal sketch — the
        coprocessor picks both variable and value among the candidates).
    top_variables:
        How many candidate variables the coprocessor scores per decision in
        ``"variable"`` mode.
    use_pure_literals:
        Forwarded to the underlying DPLL solver.
    """

    name = "hybrid-nbl"
    complete = True

    def __init__(
        self,
        guidance_engine: str = "symbolic",
        guidance_config: Optional[NBLConfig] = None,
        guidance_mode: str = "value",
        top_variables: int = 4,
        use_pure_literals: bool = True,
    ) -> None:
        self._guidance = NBLGuidance(
            engine=guidance_engine,
            config=guidance_config,
            mode=guidance_mode,
            top_variables=top_variables,
        )
        self._dpll = DPLLSolver(
            branching=self._guidance, use_pure_literals=use_pure_literals
        )

    @property
    def guidance(self) -> NBLGuidance:
        """The coprocessor model (exposes ``checks_issued``)."""
        return self._guidance

    def _solve(self, formula: CNFFormula) -> SolverResult:
        # Forward the remainder of our own wall-clock budget to the inner
        # DPLL search (which owns all the cooperative checkpoints).
        timeout: Optional[float] = None
        if self._deadline is not None:
            timeout = self._deadline - time.monotonic()
            if timeout <= 0:
                return SolverResult(UNKNOWN, None, SolverStats(), timed_out=True)
        result = self._dpll.solve(formula, timeout=timeout)
        # Propagate the DPLL work counters but rebrand the result, and note
        # the coprocessor traffic in the (otherwise unused) evaluations field.
        result.solver_name = self.name
        result.stats.evaluations = self._guidance.checks_issued
        return result
