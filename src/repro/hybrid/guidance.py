"""NBL coprocessor guidance: branching decisions from reduced S_N means.

Section V of the paper sketches a hybrid engine in which "the assignment of
variables is guided through the NBL-SAT coprocessor": candidate bindings are
loaded into the coprocessor, which reports the mean of the reduced ``S_N``
— a quantity proportional to the number of satisfying minterms in the bound
subspace — and the CPU solver branches into the subspace with the highest
mean. Two concrete guidance modes are implemented:

* ``"value"`` (default) — the CPU solver keeps its own variable-selection
  heuristic (which maximises propagation) and the coprocessor only chooses
  the *polarity* to try first, by comparing the two reduced means. With an
  ideal coprocessor the search never descends into an empty subspace first,
  so satisfiable instances are solved without backtracking.
* ``"variable"`` — the paper's literal sketch: the coprocessor scores the
  candidate variables bound both ways and the CPU branches on the overall
  best ``(variable, value)``. This costs ``2·|candidates|`` coprocessor
  checks per decision and is kept for the ablation benchmark.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.cnf.formula import CNFFormula
from repro.core.config import NBLConfig
from repro.core.checker import make_engine
from repro.exceptions import EngineError
from repro.noise.telegraph import BipolarCarrier
from repro.solvers.dpll import most_frequent_variable

#: Supported guidance modes.
GUIDANCE_MODES = ("value", "variable")


class NBLGuidance:
    """Model of the NBL-SAT coprocessor used to guide a CPU solver.

    Parameters
    ----------
    engine:
        ``"symbolic"`` (exact coprocessor — the idealised infinite-
        observation device) or ``"sampled"`` (finite observation window).
    config:
        Configuration for the sampled coprocessor; ignored by the symbolic
        one. Defaults to a small-budget bipolar-carrier configuration,
        since guidance only needs relative ordering, not precise means.
    mode:
        ``"value"`` or ``"variable"`` (see module docstring).
    top_variables:
        In ``"variable"`` mode, how many of the most frequent free variables
        are scored per decision (bounds coprocessor traffic).
    """

    def __init__(
        self,
        engine: str = "symbolic",
        config: Optional[NBLConfig] = None,
        mode: str = "value",
        top_variables: int = 4,
    ) -> None:
        if engine not in ("symbolic", "sampled"):
            raise EngineError(
                f"guidance engine must be 'symbolic' or 'sampled', got {engine!r}"
            )
        if mode not in GUIDANCE_MODES:
            raise EngineError(
                f"guidance mode must be one of {GUIDANCE_MODES}, got {mode!r}"
            )
        if top_variables <= 0:
            raise EngineError("top_variables must be positive")
        self._engine_name = engine
        if config is None and engine == "sampled":
            config = NBLConfig(
                carrier=BipolarCarrier(),
                max_samples=20_000,
                block_size=5_000,
                min_samples=5_000,
            )
        self._config = config
        self._mode = mode
        self._top_variables = top_variables
        self.checks_issued = 0

    @property
    def mode(self) -> str:
        """The guidance mode in use."""
        return self._mode

    # -- scoring ------------------------------------------------------------------
    def _candidate_variables(self, formula: CNFFormula) -> list[int]:
        counts: Dict[int, int] = {}
        for clause in formula:
            for literal in clause:
                counts[literal.variable] = counts.get(literal.variable, 0) + 1
        ranked = sorted(counts, key=lambda v: (-counts[v], v))
        return ranked[: self._top_variables]

    def _reduced_mean(self, engine, variable: int, value: bool) -> float:
        result = engine.check({variable: value})
        self.checks_issued += 1
        return result.mean

    def score_bindings(
        self, formula: CNFFormula, variables: Optional[list[int]] = None
    ) -> Dict[tuple[int, bool], float]:
        """Reduced-S_N mean for each candidate ``(variable, value)`` binding.

        The formula passed in should already be conditioned on the CPU
        solver's current partial assignment; the coprocessor binds τ_N inside
        a fresh engine for that residual formula.
        """
        if formula.num_clauses == 0 or formula.num_variables == 0:
            return {}
        engine = make_engine(formula, self._engine_name, self._config)
        if variables is None:
            variables = self._candidate_variables(formula)
        scores: Dict[tuple[int, bool], float] = {}
        for variable in variables:
            for value in (True, False):
                scores[(variable, value)] = self._reduced_mean(engine, variable, value)
        return scores

    def propose_branch(
        self, formula: CNFFormula, assignment: Dict[int, bool]
    ) -> Optional[tuple[int, bool]]:
        """Branching heuristic compatible with :class:`repro.solvers.dpll.DPLLSolver`.

        Returns ``None`` when the residual formula has no literals, letting
        the CPU solver fall back to its default heuristic.
        """
        if self._mode == "value":
            base = most_frequent_variable(formula, assignment)
            if base is None:
                return None
            variable, _default_value = base
            scores = self.score_bindings(formula, variables=[variable])
            if not scores:
                return None
            positive = scores[(variable, True)]
            negative = scores[(variable, False)]
            return variable, positive >= negative

        scores = self.score_bindings(formula)
        if not scores:
            return None
        (variable, value), _best = max(
            scores.items(), key=lambda item: (item[1], item[0][1], -item[0][0])
        )
        return variable, value

    def __call__(
        self, formula: CNFFormula, assignment: Dict[int, bool]
    ) -> Optional[tuple[int, bool]]:
        return self.propose_branch(formula, assignment)

    def __repr__(self) -> str:
        return (
            f"NBLGuidance(engine={self._engine_name!r}, mode={self._mode!r}, "
            f"checks={self.checks_issued})"
        )
