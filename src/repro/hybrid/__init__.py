"""Hybrid CPU + NBL-coprocessor SAT solving (paper Section V).

The paper proposes pairing an exact CPU solver with an NBL-SAT coprocessor:
before each branching decision, the coprocessor evaluates the reduced
``S_N`` mean for every candidate binding; since that mean is proportional to
the number of satisfying minterms in the bound subspace, the CPU branches
into the subspace with the most solutions.

* :class:`~repro.hybrid.guidance.NBLGuidance` — the coprocessor model: turns
  NBL mean estimates into branching scores (usable as a
  :class:`repro.solvers.dpll.DPLLSolver` branching heuristic);
* :class:`~repro.hybrid.solver.HybridNBLSolver` — DPLL driven by that
  guidance, with counters for how many coprocessor checks were issued.
"""

from repro.hybrid.guidance import NBLGuidance
from repro.hybrid.solver import HybridNBLSolver

__all__ = ["NBLGuidance", "HybridNBLSolver"]
