"""Table A2 — Algorithm 2 (assignment determination) correctness."""

from __future__ import annotations

from typing import Sequence

from repro.cnf.formula import CNFFormula
from repro.cnf.generators import planted_ksat
from repro.cnf.paper_instances import (
    example5_instance,
    example6_instance,
    section4_sat_instance,
)
from repro.cnf.structured import all_equal_formula, parity_chain_formula, pigeonhole_formula
from repro.core.config import NBLConfig
from repro.core.checker import make_engine
from repro.core.assignment import find_satisfying_assignment, find_satisfying_cube
from repro.experiments.recording import ExperimentRecord
from repro.noise.telegraph import BipolarCarrier
from repro.utils.rng import SeedLike

#: Same sampled-feasibility bound as the checker validation.
MAX_SAMPLED_NM = 20


def default_assignment_suite(seed: SeedLike = 0) -> list[tuple[str, CNFFormula]]:
    """Satisfiable instances exercised by the Algorithm 2 validation."""
    suite: list[tuple[str, CNFFormula]] = [
        ("section4_sat", section4_sat_instance()),
        ("example5", example5_instance()),
        ("example6", example6_instance()),
        ("php_2_2", pigeonhole_formula(2, 2)),
        ("parity_3", parity_chain_formula(3)),
        ("all_equal_4", all_equal_formula(4)),
    ]
    for index in range(3):
        formula, _model = planted_ksat(5, 10, k=3, seed=hash((seed, index)) & 0x7FFFFFFF)
        suite.append((f"planted_5_10_{index}", formula))
    return suite


def run_assignment_validation(
    instances: Sequence[tuple[str, CNFFormula]] | None = None,
    num_samples: int = 60_000,
    seed: SeedLike = 0,
    max_sampled_nm: int = MAX_SAMPLED_NM,
) -> ExperimentRecord:
    """Validate Algorithm 2 on satisfiable instances.

    For every instance the symbolic engine runs both the minterm variant and
    the cube variant; the sampled engine (bipolar carriers) runs the minterm
    variant when ``n·m`` permits. Every returned assignment is verified
    against the CNF formula; the check count column confirms the paper's
    "n + 1 operations" bound for the minterm variant.
    """
    if instances is None:
        instances = default_assignment_suite(seed)
    record = ExperimentRecord(
        experiment_id="table_a2",
        title="Table A2 — Algorithm 2 satisfying-assignment determination",
        headers=[
            "instance",
            "n",
            "m",
            "symbolic assignment",
            "symbolic checks",
            "symbolic verified",
            "cube (don't-cares)",
            "sampled verified",
        ],
    )
    config = NBLConfig(
        carrier=BipolarCarrier(),
        max_samples=num_samples,
        block_size=min(20_000, num_samples),
        min_samples=min(10_000, num_samples),
        seed=seed,
    )
    for name, formula in instances:
        symbolic_engine = make_engine(formula, "symbolic")
        symbolic_result = find_satisfying_assignment(symbolic_engine)
        cube_result = find_satisfying_cube(make_engine(formula, "symbolic"))
        nm = formula.num_variables * formula.num_clauses
        if nm <= max_sampled_nm:
            sampled_engine = make_engine(formula, "sampled", config)
            sampled_result = find_satisfying_assignment(sampled_engine)
            sampled_verified: object = sampled_result.verified
        else:
            sampled_verified = "skipped (n·m too large)"
        record.add_row(
            name,
            formula.num_variables,
            formula.num_clauses,
            str(symbolic_result.assignment),
            symbolic_result.num_checks,
            symbolic_result.verified,
            len(cube_result.dont_care_variables),
            sampled_verified,
        )
    record.add_note(
        "Shape check: every symbolic row must be verified=True with exactly "
        "n + 1 checks (one Algorithm 1 check plus one per variable)."
    )
    return record
