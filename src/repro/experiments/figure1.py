"""Reproduction of the paper's Figure 1 (Section IV).

The paper plots the running mean of ``S_N`` against the number of noise
samples for one unsatisfiable and one satisfiable instance (both with
``n = 2`` variables and ``m = 4`` clauses, uniform [-0.5, 0.5] carriers).
The expected shape:

* the SAT trace converges to ``K · (1/12)^{n·m} = (1/12)^8 ≈ 2.33e-9``
  (one satisfying minterm);
* the UNSAT trace converges to zero;
* both fluctuate with an envelope shrinking as ``1/sqrt(N)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.convergence import ConvergenceReport, analyze_trace
from repro.cnf.paper_instances import section4_sat_instance, section4_unsat_instance
from repro.core.config import NBLConfig, paper_figure1_config
from repro.core.sampled import SampledNBLEngine
from repro.core.symbolic import SymbolicNBLEngine
from repro.experiments.recording import ExperimentRecord
from repro.utils.ascii_plot import ascii_line_plot
from repro.utils.rng import SeedLike


@dataclass
class Figure1Result:
    """Traces and summary of the Figure 1 reproduction.

    Attributes
    ----------
    sat_trace / unsat_trace:
        ``(samples, running_mean)`` pairs for the two instances.
    expected_sat_mean:
        The exact asymptote of the SAT trace (symbolic engine).
    record:
        Tabular summary (one row per instance).
    sat_convergence / unsat_convergence:
        Convergence reports applying the paper's third-significant-digit
        stopping rule.
    """

    sat_trace: tuple[list[int], list[float]]
    unsat_trace: tuple[list[int], list[float]]
    expected_sat_mean: float
    record: ExperimentRecord
    sat_convergence: ConvergenceReport
    unsat_convergence: ConvergenceReport
    notes: list[str] = field(default_factory=list)

    def ascii_plot(self, width: int = 72, height: int = 18) -> str:
        """ASCII rendering of the two traces (log-x, like the paper's axis)."""
        return ascii_line_plot(
            {
                "SAT": self.sat_trace,
                "UNSAT": self.unsat_trace,
            },
            width=width,
            height=height,
            title="Figure 1: running mean of S_N vs number of noise samples",
            logx=True,
        )


def run_figure1(
    max_samples: int = 2_000_000,
    seed: SeedLike = 0,
    config: NBLConfig | None = None,
) -> Figure1Result:
    """Regenerate Figure 1: S_N mean traces for the Section IV instances.

    Parameters
    ----------
    max_samples:
        Noise samples per instance (the paper used up to 1e8; 2e6 already
        shows the separation and the 1/sqrt(N) envelope clearly).
    seed:
        Seed for the noise streams.
    config:
        Full configuration override; when given, ``max_samples``/``seed``
        are ignored.
    """
    if config is None:
        config = paper_figure1_config(max_samples=max_samples, seed=seed)
        # ~50 trace points regardless of the budget, so the rendered figure
        # shows the convergence envelope rather than a handful of dots.
        config = config.replace(block_size=max(10_000, max_samples // 50))
    sat_formula = section4_sat_instance()
    unsat_formula = section4_unsat_instance()

    sat_engine = SampledNBLEngine(sat_formula, config)
    unsat_engine = SampledNBLEngine(unsat_formula, config.replace())
    sat_check = sat_engine.check()
    unsat_check = unsat_engine.check()

    exact = SymbolicNBLEngine(sat_formula, config.carrier)
    expected_sat_mean = exact.expected_mean()

    sat_trace = (sat_check.trace_samples, sat_check.trace_means)
    unsat_trace = (unsat_check.trace_samples, unsat_check.trace_means)
    sat_convergence = analyze_trace(*sat_trace)
    unsat_convergence = analyze_trace(*unsat_trace)

    record = ExperimentRecord(
        experiment_id="figure1",
        title="Figure 1 — S_N mean for the SAT and UNSAT instances of Section IV",
        headers=[
            "instance",
            "n",
            "m",
            "samples",
            "final S_N mean",
            "exact asymptote",
            "decision",
            "correct",
        ],
    )
    record.add_row(
        "S_SAT",
        sat_formula.num_variables,
        sat_formula.num_clauses,
        sat_check.samples_used,
        sat_check.mean,
        expected_sat_mean,
        "SAT" if sat_check.satisfiable else "UNSAT",
        sat_check.satisfiable,
    )
    record.add_row(
        "S_UNSAT",
        unsat_formula.num_variables,
        unsat_formula.num_clauses,
        unsat_check.samples_used,
        unsat_check.mean,
        0.0,
        "SAT" if unsat_check.satisfiable else "UNSAT",
        not unsat_check.satisfiable,
    )
    record.add_note(
        "Shape check: the SAT trace must settle near the exact asymptote "
        f"{expected_sat_mean:.3e} while the UNSAT trace settles near zero."
    )
    record.add_note(
        "S_SAT is reconstructed as (x1+x2)^2 (~x1+x2)(~x1+~x2); see DESIGN.md "
        "for the overline-ambiguity discussion."
    )

    return Figure1Result(
        sat_trace=sat_trace,
        unsat_trace=unsat_trace,
        expected_sat_mean=expected_sat_mean,
        record=record,
        sat_convergence=sat_convergence,
        unsat_convergence=unsat_convergence,
    )
