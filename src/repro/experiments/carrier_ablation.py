"""Table C1 — carrier-family and realization ablation (Section V)."""

from __future__ import annotations

from repro.analog.compiler import AnalogNBLEngine
from repro.cnf.paper_instances import section4_sat_instance, section4_unsat_instance
from repro.core.config import NBLConfig
from repro.core.sampled import SampledNBLEngine
from repro.core.symbolic import SymbolicNBLEngine
from repro.experiments.recording import ExperimentRecord
from repro.noise.gaussian import GaussianCarrier
from repro.noise.telegraph import BipolarCarrier, TelegraphCarrier
from repro.noise.uniform import UniformCarrier
from repro.rtw.engine import RTWNBLEngine
from repro.sbl.engine import SBLNBLEngine
from repro.sbl.frequency_plan import FrequencyPlan
from repro.utils.rng import SeedLike


def _normalized_margin(sat_mean: float, unsat_mean: float, minterm_signal: float) -> float:
    """Separation of the SAT and UNSAT means in units of the one-minterm signal."""
    if minterm_signal == 0.0:
        return 0.0
    return (sat_mean - unsat_mean) / minterm_signal


def run_carrier_ablation(
    max_samples: int = 150_000,
    seed: SeedLike = 0,
) -> ExperimentRecord:
    """Check the Section IV instances under every realization in the library.

    For each realization the table reports the S_N mean on the SAT and UNSAT
    instances (normalised by the one-minterm signal level so the columns are
    comparable across carriers), the resulting decisions, and whether both
    are correct. Realizations covered:

    * sampled noise engine with uniform (paper), Gaussian, bipolar and
      slow-switching telegraph carriers;
    * the RTW engine;
    * the SBL engine with the dithered and the paper's equally spaced
      frequency plans;
    * the compiled analog netlist engine;
    * the symbolic engine (exact reference).
    """
    sat_formula = section4_sat_instance()
    unsat_formula = section4_unsat_instance()
    record = ExperimentRecord(
        experiment_id="table_c1",
        title="Table C1 — carrier-family / realization ablation on the Section IV instances",
        headers=[
            "realization",
            "SAT mean (minterm units)",
            "UNSAT mean (minterm units)",
            "margin",
            "SAT verdict",
            "UNSAT verdict",
            "both correct",
        ],
    )

    def add_engine_row(name: str, make_engine) -> None:
        sat_engine = make_engine(sat_formula)
        unsat_engine = make_engine(unsat_formula)
        sat_result = sat_engine.check()
        unsat_result = unsat_engine.check()
        signal = sat_result.expected_minterm_signal
        sat_units = sat_result.mean / signal if signal else 0.0
        unsat_units = unsat_result.mean / signal if signal else 0.0
        record.add_row(
            name,
            sat_units,
            unsat_units,
            _normalized_margin(sat_result.mean, unsat_result.mean, signal),
            "SAT" if sat_result.satisfiable else "UNSAT",
            "SAT" if unsat_result.satisfiable else "UNSAT",
            sat_result.satisfiable and not unsat_result.satisfiable,
        )

    def sampled_factory(carrier):
        def make(formula):
            config = NBLConfig(
                carrier=carrier,
                max_samples=max_samples,
                block_size=min(25_000, max_samples),
                convergence="fixed",
                seed=seed,
            )
            return SampledNBLEngine(formula, config)

        return make

    add_engine_row("symbolic (exact reference)", lambda f: SymbolicNBLEngine(f))
    add_engine_row("sampled / uniform [-0.5,0.5] (paper)", sampled_factory(UniformCarrier()))
    add_engine_row("sampled / gaussian", sampled_factory(GaussianCarrier()))
    add_engine_row("sampled / bipolar (+-1)", sampled_factory(BipolarCarrier()))
    add_engine_row(
        "sampled / telegraph (p_switch=0.1)",
        sampled_factory(TelegraphCarrier(switch_probability=0.1)),
    )
    add_engine_row(
        "rtw engine",
        lambda f: RTWNBLEngine(f, max_samples=max_samples, seed=seed),
    )
    add_engine_row(
        "sbl / dithered plan",
        lambda f: SBLNBLEngine(f, max_samples=max_samples, seed=seed),
    )
    add_engine_row(
        "sbl / equally spaced plan (paper)",
        lambda f: SBLNBLEngine(
            f,
            plan=FrequencyPlan(
                num_sources=2 * f.num_clauses * f.num_variables, strategy="spaced"
            ),
            max_samples=max_samples,
            seed=seed,
        ),
    )
    add_engine_row(
        "analog netlist / bipolar",
        lambda f: AnalogNBLEngine(
            f, carrier=BipolarCarrier(), seed=seed, max_samples=max_samples
        ),
    )

    record.add_note(
        "Shape check: every realization should report a SAT mean near +1 minterm "
        "unit and an UNSAT mean near 0; unit-power carriers (bipolar/RTW) reach "
        "a usable margin with far fewer samples than the paper's uniform carrier."
    )
    record.add_note(
        "The equally spaced SBL plan is expected to misbehave: equal spacing "
        "makes intermodulation products of distinct minterms coincide, which "
        "is why the library defaults to the dithered plan."
    )
    return record
