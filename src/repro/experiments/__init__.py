"""Experiment drivers reproducing the paper's figure and the derived tables.

Each driver returns an :class:`~repro.experiments.recording.ExperimentRecord`
that carries the table headers/rows plus free-form notes, and can render
itself as plain text or Markdown. The benchmark harness under
``benchmarks/`` simply calls these drivers and prints the records; the
EXPERIMENTS.md summaries were generated the same way.

Experiment index (see DESIGN.md §4 for the full mapping):

* :func:`run_figure1` — paper Figure 1 (S_N mean vs. noise samples);
* :func:`run_snr_scaling` — Table S1 (Section III-F SNR model vs. measurement);
* :func:`run_checker_validation` — Table A1 (Algorithm 1 vs. ground truth);
* :func:`run_assignment_validation` — Table A2 (Algorithm 2 correctness);
* :func:`run_baseline_comparison` — Table B1 (NBL vs. classical solvers);
* :func:`run_hybrid_comparison` — Table H1 (Section V hybrid engine);
* :func:`run_carrier_ablation` — Table C1 (noise vs. sinusoid vs. RTW vs.
  analog netlist realizations).
"""

from repro.experiments.recording import ExperimentRecord
from repro.experiments.figure1 import Figure1Result, run_figure1
from repro.experiments.snr_scaling import run_snr_scaling
from repro.experiments.checker_validation import run_checker_validation
from repro.experiments.assignment_validation import run_assignment_validation
from repro.experiments.baseline_comparison import run_baseline_comparison
from repro.experiments.hybrid_comparison import run_hybrid_comparison
from repro.experiments.carrier_ablation import run_carrier_ablation
from repro.experiments.runner import run_all_experiments

__all__ = [
    "ExperimentRecord",
    "Figure1Result",
    "run_figure1",
    "run_snr_scaling",
    "run_checker_validation",
    "run_assignment_validation",
    "run_baseline_comparison",
    "run_hybrid_comparison",
    "run_carrier_ablation",
    "run_all_experiments",
]
