"""Table H1 — the Section V hybrid CPU + NBL-coprocessor engine."""

from __future__ import annotations

from typing import Sequence

from repro.cnf.formula import CNFFormula
from repro.cnf.generators import random_ksat
from repro.experiments.recording import ExperimentRecord
from repro.hybrid.solver import HybridNBLSolver
from repro.solvers.dpll import DPLLSolver
from repro.utils.rng import SeedLike


def default_hybrid_suite(
    num_variables: int = 14,
    ratios: Sequence[float] = (4.0, 4.25),
    instances_per_ratio: int = 4,
    seed: SeedLike = 0,
) -> list[tuple[str, CNFFormula]]:
    """Random 3-SAT instances around the phase transition."""
    suite: list[tuple[str, CNFFormula]] = []
    for ratio in ratios:
        num_clauses = max(1, int(round(ratio * num_variables)))
        for index in range(instances_per_ratio):
            formula = random_ksat(
                num_variables,
                num_clauses,
                3,
                seed=hash((seed, ratio, index)) & 0x7FFFFFFF,
            )
            suite.append((f"r={ratio:g} #{index}", formula))
    return suite


def run_hybrid_comparison(
    instances: Sequence[tuple[str, CNFFormula]] | None = None,
    seed: SeedLike = 0,
    guidance_mode: str = "value",
) -> ExperimentRecord:
    """Compare plain DPLL against DPLL guided by the NBL coprocessor.

    The coprocessor is the symbolic engine (ideal correlator). In the
    default ``"value"`` mode it chooses, for the CPU's branching variable,
    the polarity whose reduced ``S_N`` mean is larger (the subspace with
    more satisfying minterms) — so on satisfiable instances the search never
    first descends into an empty subspace. The ``"variable"`` mode
    reproduces the paper's literal sketch (coprocessor picks variable and
    value) and is reported by the ablation benchmark.
    """
    if instances is None:
        instances = default_hybrid_suite(seed=seed)
    record = ExperimentRecord(
        experiment_id="table_h1",
        title="Table H1 — plain DPLL vs. hybrid CPU + NBL-coprocessor DPLL "
        f"(guidance mode: {guidance_mode})",
        headers=[
            "instance",
            "n",
            "m",
            "verdict",
            "DPLL decisions",
            "hybrid decisions",
            "coprocessor checks",
            "decision reduction",
            "agree",
        ],
    )
    total_plain = 0
    total_hybrid = 0
    sat_plain = 0
    sat_hybrid = 0
    for name, formula in instances:
        plain = DPLLSolver().solve(formula)
        hybrid_solver = HybridNBLSolver(guidance_mode=guidance_mode)
        hybrid = hybrid_solver.solve(formula)
        agree = plain.status == hybrid.status
        plain_decisions = plain.stats.decisions
        hybrid_decisions = hybrid.stats.decisions
        total_plain += plain_decisions
        total_hybrid += hybrid_decisions
        if plain.is_sat:
            sat_plain += plain_decisions
            sat_hybrid += hybrid_decisions
        reduction = (
            (plain_decisions - hybrid_decisions) / plain_decisions
            if plain_decisions
            else 0.0
        )
        record.add_row(
            name,
            formula.num_variables,
            formula.num_clauses,
            hybrid.status,
            plain_decisions,
            hybrid_decisions,
            hybrid.stats.evaluations,
            f"{100.0 * reduction:.0f}%",
            agree,
        )
    overall = (total_plain - total_hybrid) / total_plain if total_plain else 0.0
    sat_overall = (sat_plain - sat_hybrid) / sat_plain if sat_plain else 0.0
    record.add_note(
        "Shape check: verdicts must agree on every instance (guidance only "
        "reorders the search), and unsatisfiable instances cannot benefit (the "
        "whole space must be refuted regardless of order)."
    )
    record.add_note(
        "Observed behaviour: the ideal coprocessor guarantees the search never "
        "first descends into a model-free subspace, but at these instance sizes "
        "that does not consistently beat the propagation-driven default "
        "heuristic — model-rich subspaces propagate less, so per-instance "
        "reductions vary in sign. See EXPERIMENTS.md for the discussion."
    )
    record.add_note(
        f"Aggregate decision reduction: {100.0 * overall:.0f}% over all instances, "
        f"{100.0 * sat_overall:.0f}% over satisfiable instances "
        f"({total_plain} plain vs {total_hybrid} hybrid decisions in total)."
    )
    return record
