"""Table B1 — NBL-SAT engines next to classical complete/stochastic solvers."""

from __future__ import annotations

from typing import Sequence

from repro.cnf.formula import CNFFormula
from repro.cnf.generators import random_ksat
from repro.cnf.structured import pigeonhole_formula
from repro.core.checker import nbl_sat_check
from repro.experiments.recording import ExperimentRecord
from repro.solvers.registry import make_solver
from repro.utils.rng import SeedLike

#: Solvers included in the comparison, in reporting order.
BASELINE_SOLVERS = ("brute-force", "dpll", "cdcl", "walksat", "gsat")


def default_comparison_suite(seed: SeedLike = 0) -> list[tuple[str, CNFFormula]]:
    """Instance families contrasted across solvers."""
    suite: list[tuple[str, CNFFormula]] = [
        ("random_10_35", random_ksat(10, 35, 3, seed=hash((seed, 0)) & 0x7FFFFFFF)),
        ("random_10_43 (near PT)", random_ksat(10, 43, 3, seed=hash((seed, 1)) & 0x7FFFFFFF)),
        ("random_10_55", random_ksat(10, 55, 3, seed=hash((seed, 2)) & 0x7FFFFFFF)),
        ("php_4_3 (UNSAT)", pigeonhole_formula(4, 3)),
        ("php_3_3 (SAT)", pigeonhole_formula(3, 3)),
    ]
    return suite


def run_baseline_comparison(
    instances: Sequence[tuple[str, CNFFormula]] | None = None,
    seed: SeedLike = 0,
) -> ExperimentRecord:
    """Compare solver verdicts and work counters on a shared instance suite.

    The NBL column uses the symbolic engine (the idealised device — a single
    check operation per instance); classical solvers report their own work
    units (decisions for DPLL/CDCL, flips for local search). The point of
    the table is decision agreement and the *kind* of work each approach
    performs, not wall-clock superiority.
    """
    if instances is None:
        instances = default_comparison_suite(seed)
    record = ExperimentRecord(
        experiment_id="table_b1",
        title="Table B1 — NBL-SAT vs. classical baseline solvers",
        headers=[
            "instance",
            "n",
            "m",
            "NBL (symbolic)",
            "brute-force",
            "dpll (decisions)",
            "cdcl (conflicts)",
            "walksat",
            "gsat",
            "all complete agree",
        ],
    )
    for name, formula in instances:
        nbl = nbl_sat_check(formula, engine="symbolic")
        nbl_verdict = "SAT" if nbl.satisfiable else "UNSAT"
        verdicts: dict[str, str] = {}
        details: dict[str, str] = {}
        for solver_name in BASELINE_SOLVERS:
            kwargs = {"seed": hash((seed, solver_name)) & 0x7FFFFFFF} if solver_name in ("walksat", "gsat") else {}
            solver = make_solver(solver_name, **kwargs)
            result = solver.solve(formula)
            verdicts[solver_name] = result.status
            if solver_name == "dpll":
                details[solver_name] = f"{result.status} ({result.stats.decisions})"
            elif solver_name == "cdcl":
                details[solver_name] = f"{result.status} ({result.stats.conflicts})"
            else:
                details[solver_name] = result.status
        complete_agree = (
            verdicts["brute-force"]
            == verdicts["dpll"]
            == verdicts["cdcl"]
            == nbl_verdict
        )
        record.add_row(
            name,
            formula.num_variables,
            formula.num_clauses,
            nbl_verdict,
            verdicts["brute-force"],
            details["dpll"],
            details["cdcl"],
            verdicts["walksat"],
            verdicts["gsat"],
            complete_agree,
        )
    record.add_note(
        "Shape check: all complete approaches (NBL symbolic, brute force, DPLL, "
        "CDCL) must agree on every instance; the incomplete local-search "
        "solvers may return UNKNOWN on unsatisfiable or hard instances."
    )
    record.add_note(
        "The NBL engine answers with a single check operation per instance "
        "(Algorithm 1); classical solvers report their per-instance search work."
    )
    return record
