"""Uniform result record for every experiment driver."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.utils.tables import format_markdown_table, format_table


@dataclass
class ExperimentRecord:
    """A named table of results plus free-form notes.

    Attributes
    ----------
    experiment_id:
        Short identifier matching DESIGN.md's per-experiment index
        (e.g. ``"figure1"``, ``"table_s1"``).
    title:
        Human-readable title.
    headers:
        Column names of the result table.
    rows:
        Table rows (sequences matching ``headers`` in length).
    notes:
        Free-form commentary lines (assumptions, shape checks, caveats).
    """

    experiment_id: str
    title: str
    headers: Sequence[str]
    rows: list[Sequence[object]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        """Append one row (must match the header width)."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, expected {len(self.headers)}"
            )
        self.rows.append(list(cells))

    def add_note(self, note: str) -> None:
        """Append one commentary line."""
        self.notes.append(note)

    def to_text(self) -> str:
        """Fixed-width text rendering (used by the benchmark harness)."""
        parts = [f"== {self.title} [{self.experiment_id}] =="]
        parts.append(format_table(self.headers, self.rows))
        if self.notes:
            parts.append("")
            parts.extend(f"note: {note}" for note in self.notes)
        return "\n".join(parts)

    def to_markdown(self) -> str:
        """Markdown rendering (used to build EXPERIMENTS.md)."""
        parts = [f"### {self.title} (`{self.experiment_id}`)", ""]
        parts.append(format_markdown_table(self.headers, self.rows))
        if self.notes:
            parts.append("")
            parts.extend(f"* {note}" for note in self.notes)
        return "\n".join(parts)

    def __str__(self) -> str:
        return self.to_text()
