"""Table S1 — the Section III-F SNR scaling model versus measurement."""

from __future__ import annotations

from typing import Sequence

from repro.analysis.snr_empirical import measure_empirical_snr
from repro.cnf.formula import CNFFormula
from repro.cnf.generators import planted_ksat
from repro.cnf.structured import pigeonhole_formula
from repro.core.config import NBLConfig
from repro.core.snr import SNRParameters, samples_for_target_snr, snr_paper_model, snr_sqrt_model
from repro.experiments.recording import ExperimentRecord
from repro.noise.uniform import UniformCarrier
from repro.utils.rng import SeedLike


def _matched_unsat(num_variables: int, num_clauses: int) -> CNFFormula:
    """An unsatisfiable instance with the requested (n, m).

    Built from the four binary clauses over (x1, x2) — jointly UNSAT — padded
    with repeated clauses and extra variables folded in as positive literals
    on satisfied... no padding tricks: we instead repeat the four clauses and
    extend each with no extra literals, keeping num_variables by declaration.
    """
    base = [[1, 2], [1, -2], [-1, 2], [-1, -2]]
    clauses = [base[i % 4] for i in range(num_clauses)]
    if num_clauses < 4:
        # Fewer than four clauses over two variables cannot be UNSAT; fall
        # back to the minimal (x1)(~x1) core repeated.
        clauses = [[1] if i % 2 == 0 else [-1] for i in range(num_clauses)]
    return CNFFormula.from_ints(clauses, num_variables=num_variables)


def run_snr_scaling(
    sizes: Sequence[tuple[int, int]] = ((2, 2), (2, 4), (3, 4), (3, 6)),
    num_samples: int = 100_000,
    repetitions: int = 6,
    seed: SeedLike = 0,
) -> ExperimentRecord:
    """Measure the discrimination SNR over a sweep of instance sizes.

    For each ``(n, m)``, a planted (hence satisfiable) 3-ish-SAT instance and
    a matched UNSAT instance are checked ``repetitions`` times with a fixed
    budget of ``num_samples`` uniform-carrier samples; the paper's analytic
    SNR and the corrected (sqrt) model are tabulated next to the measured
    value, together with the sample budget each model says is needed for
    SNR = 1.
    """
    record = ExperimentRecord(
        experiment_id="table_s1",
        title="Table S1 — SNR scaling (Section III-F model vs. measurement)",
        headers=[
            "n",
            "m",
            "samples/check",
            "SNR (paper model)",
            "SNR (sqrt model)",
            "SNR (measured)",
            "N for SNR=1 (paper)",
            "N for SNR=1 (sqrt)",
        ],
    )
    config = NBLConfig(
        carrier=UniformCarrier(),
        max_samples=num_samples,
        block_size=min(25_000, num_samples),
        convergence="fixed",
        seed=seed,
    )
    for n, m in sizes:
        k = min(3, n)
        sat_formula, _model = planted_ksat(n, m, k=k, seed=hash((seed, n, m)) & 0x7FFFFFFF)
        unsat_formula = _matched_unsat(n, m)
        measurement = measure_empirical_snr(
            sat_formula, unsat_formula, config, repetitions=repetitions
        )
        params = SNRParameters(num_variables=n, num_clauses=m, clause_size=k)
        record.add_row(
            n,
            m,
            num_samples,
            snr_paper_model(params, num_samples),
            snr_sqrt_model(params, num_samples),
            measurement.measured_snr,
            samples_for_target_snr(params, 1.0, model="paper"),
            samples_for_target_snr(params, 1.0, model="sqrt"),
        )
    record.add_note(
        "Shape check: every column collapses exponentially with n·m and the "
        "required sample budget grows exponentially — the paper's scalability "
        "discussion. Once the models drop below ~1 the measured value becomes "
        "noise-dominated and can go negative (the 3σ bands of the SAT and "
        "UNSAT means overlap), which is precisely the discrimination failure "
        "the model predicts."
    )
    record.add_note(
        "The planted SAT instances can have more than one model, so measured "
        "SNR may exceed the K=1 analytic curves."
    )
    return record


def pigeonhole_snr_note(pigeons: int = 3, holes: int = 2) -> str:
    """Helper used in documentation: sample cost of a tiny structured instance."""
    formula = pigeonhole_formula(pigeons, holes)
    params = SNRParameters.from_formula(formula)
    budget = samples_for_target_snr(params, 1.0, model="sqrt")
    return (
        f"PHP({pigeons},{holes}) has n={formula.num_variables}, "
        f"m={formula.num_clauses}; the corrected model already needs "
        f"~{budget:,} samples per check."
    )
