"""Run every experiment and collect the records.

The suite runs sequentially by default; ``parallel=True`` fans the
independent experiment drivers out over worker processes (they share no
state — every driver takes only plain-value parameters), which roughly
divides the suite's wall-clock time by the core count.
"""

from __future__ import annotations

import concurrent.futures
from dataclasses import dataclass, field
from typing import Optional

from repro.experiments.assignment_validation import run_assignment_validation
from repro.experiments.baseline_comparison import run_baseline_comparison
from repro.experiments.carrier_ablation import run_carrier_ablation
from repro.experiments.checker_validation import run_checker_validation
from repro.experiments.figure1 import run_figure1
from repro.experiments.hybrid_comparison import run_hybrid_comparison
from repro.experiments.recording import ExperimentRecord
from repro.experiments.snr_scaling import run_snr_scaling
from repro.utils.rng import SeedLike


@dataclass
class ExperimentSuiteResult:
    """All records produced by :func:`run_all_experiments`."""

    records: list[ExperimentRecord] = field(default_factory=list)
    figure1_plot: str = ""

    def to_text(self) -> str:
        """Plain-text rendering of the full suite."""
        parts = [record.to_text() for record in self.records]
        if self.figure1_plot:
            parts.append(self.figure1_plot)
        return "\n\n".join(parts)

    def to_markdown(self) -> str:
        """Markdown rendering of the full suite (EXPERIMENTS.md style)."""
        parts = [record.to_markdown() for record in self.records]
        if self.figure1_plot:
            parts.append("```\n" + self.figure1_plot + "\n```")
        return "\n\n".join(parts)


def _suite_plan(fast: bool, seed: SeedLike) -> list[tuple]:
    """The suite as ``(driver, kwargs)`` pairs, in reporting order.

    Every driver is a module-level function with plain-value kwargs, so a
    plan entry survives pickling into a worker process unchanged.
    """
    figure1_samples = 400_000 if fast else 5_000_000
    snr_samples = 60_000 if fast else 400_000
    validation_samples = 40_000 if fast else 200_000
    ablation_samples = 80_000 if fast else 400_000
    return [
        (run_figure1, {"max_samples": figure1_samples, "seed": seed}),
        (
            run_snr_scaling,
            {
                "num_samples": snr_samples,
                "repetitions": 4 if fast else 8,
                "seed": seed,
            },
        ),
        (run_checker_validation, {"num_samples": validation_samples, "seed": seed}),
        (run_assignment_validation, {"num_samples": validation_samples, "seed": seed}),
        (run_baseline_comparison, {"seed": seed}),
        (run_hybrid_comparison, {"seed": seed}),
        (run_carrier_ablation, {"max_samples": ablation_samples, "seed": seed}),
    ]


def run_all_experiments(
    fast: bool = True,
    seed: SeedLike = 0,
    parallel: bool = False,
    max_workers: Optional[int] = None,
) -> ExperimentSuiteResult:
    """Run the full experiment suite.

    Parameters
    ----------
    fast:
        ``True`` (default) uses reduced sample budgets so the whole suite
        finishes in well under a minute; ``False`` uses budgets closer to
        the paper's (minutes of runtime).
    seed:
        Master seed forwarded to every driver. Must be a plain integer (or
        ``None``) when ``parallel=True`` so it can cross process
        boundaries.
    parallel:
        Run the independent drivers across worker processes instead of
        sequentially. Record order in the result is unchanged.
    max_workers:
        Worker-process cap for the parallel mode (``None`` — one per
        driver, capped by the executor's CPU default).
    """
    plan = _suite_plan(fast, seed)
    if parallel:
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=max_workers
        ) as executor:
            futures = [executor.submit(driver, **kwargs) for driver, kwargs in plan]
            outputs = [future.result() for future in futures]
    else:
        outputs = [driver(**kwargs) for driver, kwargs in plan]

    result = ExperimentSuiteResult()
    figure1 = outputs[0]
    result.records.append(figure1.record)
    result.figure1_plot = figure1.ascii_plot()
    result.records.extend(outputs[1:])
    return result
