"""Run every experiment in sequence and collect the records."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.assignment_validation import run_assignment_validation
from repro.experiments.baseline_comparison import run_baseline_comparison
from repro.experiments.carrier_ablation import run_carrier_ablation
from repro.experiments.checker_validation import run_checker_validation
from repro.experiments.figure1 import run_figure1
from repro.experiments.hybrid_comparison import run_hybrid_comparison
from repro.experiments.recording import ExperimentRecord
from repro.experiments.snr_scaling import run_snr_scaling
from repro.utils.rng import SeedLike


@dataclass
class ExperimentSuiteResult:
    """All records produced by :func:`run_all_experiments`."""

    records: list[ExperimentRecord] = field(default_factory=list)
    figure1_plot: str = ""

    def to_text(self) -> str:
        """Plain-text rendering of the full suite."""
        parts = [record.to_text() for record in self.records]
        if self.figure1_plot:
            parts.append(self.figure1_plot)
        return "\n\n".join(parts)

    def to_markdown(self) -> str:
        """Markdown rendering of the full suite (EXPERIMENTS.md style)."""
        parts = [record.to_markdown() for record in self.records]
        if self.figure1_plot:
            parts.append("```\n" + self.figure1_plot + "\n```")
        return "\n\n".join(parts)


def run_all_experiments(fast: bool = True, seed: SeedLike = 0) -> ExperimentSuiteResult:
    """Run the full experiment suite.

    Parameters
    ----------
    fast:
        ``True`` (default) uses reduced sample budgets so the whole suite
        finishes in well under a minute; ``False`` uses budgets closer to
        the paper's (minutes of runtime).
    seed:
        Master seed forwarded to every driver.
    """
    figure1_samples = 400_000 if fast else 5_000_000
    snr_samples = 60_000 if fast else 400_000
    validation_samples = 40_000 if fast else 200_000
    ablation_samples = 80_000 if fast else 400_000

    result = ExperimentSuiteResult()
    figure1 = run_figure1(max_samples=figure1_samples, seed=seed)
    result.records.append(figure1.record)
    result.figure1_plot = figure1.ascii_plot()
    result.records.append(
        run_snr_scaling(num_samples=snr_samples, repetitions=4 if fast else 8, seed=seed)
    )
    result.records.append(
        run_checker_validation(num_samples=validation_samples, seed=seed)
    )
    result.records.append(
        run_assignment_validation(num_samples=validation_samples, seed=seed)
    )
    result.records.append(run_baseline_comparison(seed=seed))
    result.records.append(run_hybrid_comparison(seed=seed))
    result.records.append(
        run_carrier_ablation(max_samples=ablation_samples, seed=seed)
    )
    return result
