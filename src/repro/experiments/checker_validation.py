"""Table A1 — Algorithm 1 decisions versus exact ground truth."""

from __future__ import annotations

from typing import Sequence

from repro.cnf.formula import CNFFormula
from repro.cnf.generators import planted_ksat, random_ksat
from repro.cnf.paper_instances import paper_instances
from repro.cnf.structured import (
    all_equal_formula,
    cycle_graph_edges,
    graph_coloring_formula,
    parity_chain_formula,
    pigeonhole_formula,
)
from repro.core.config import NBLConfig
from repro.core.checker import nbl_sat_check
from repro.experiments.recording import ExperimentRecord
from repro.noise.telegraph import BipolarCarrier
from repro.solvers.brute_force import BruteForceSolver
from repro.utils.rng import SeedLike


def default_validation_suite(seed: SeedLike = 0) -> list[tuple[str, CNFFormula]]:
    """The named instance suite used by the checker/assignment validations."""
    suite: list[tuple[str, CNFFormula]] = list(paper_instances().items())
    suite.append(("php_3_2 (UNSAT)", pigeonhole_formula(3, 2)))
    suite.append(("php_2_2 (SAT)", pigeonhole_formula(2, 2)))
    suite.append(("parity_3", parity_chain_formula(3)))
    suite.append(("all_equal_4", all_equal_formula(4)))
    suite.append(
        ("color_c3_k2 (UNSAT)", graph_coloring_formula(cycle_graph_edges(3), 3, 2))
    )
    planted, _ = planted_ksat(4, 8, k=3, seed=seed)
    suite.append(("planted_4_8", planted))
    suite.append(("random_3_9", random_ksat(3, 9, k=3, seed=seed)))
    return suite


#: Sampled checks are only attempted when n·m stays below this product: the
#: Section III-F analysis shows the required sample budget explodes with
#: n·m, so beyond it a fixed small budget would return coin-flip decisions.
MAX_SAMPLED_NM = 20


def run_checker_validation(
    instances: Sequence[tuple[str, CNFFormula]] | None = None,
    num_samples: int = 60_000,
    seed: SeedLike = 0,
    max_sampled_nm: int = MAX_SAMPLED_NM,
) -> ExperimentRecord:
    """Validate the symbolic and sampled checkers against brute force.

    The sampled checker uses bipolar (RTW-style) carriers so the comparison
    stays meaningful at moderate ``n·m``; instances whose ``n·m`` exceeds
    ``max_sampled_nm`` are checked symbolically only (the sampled column
    records "skipped"), which is exactly the scalability limitation the
    paper's Section III-F predicts.
    """
    if instances is None:
        instances = default_validation_suite(seed)
    oracle = BruteForceSolver()
    record = ExperimentRecord(
        experiment_id="table_a1",
        title="Table A1 — Algorithm 1 decisions vs. exhaustive ground truth",
        headers=[
            "instance",
            "n",
            "m",
            "ground truth",
            "symbolic NBL",
            "sampled NBL",
            "sampled samples",
            "agree",
        ],
    )
    config = NBLConfig(
        carrier=BipolarCarrier(),
        max_samples=num_samples,
        block_size=min(20_000, num_samples),
        min_samples=min(10_000, num_samples),
        seed=seed,
    )
    for name, formula in instances:
        truth = oracle.solve(formula)
        symbolic = nbl_sat_check(formula, engine="symbolic")
        truth_sat = truth.is_sat
        agree = symbolic.satisfiable == truth_sat
        nm = formula.num_variables * formula.num_clauses
        if nm <= max_sampled_nm:
            sampled = nbl_sat_check(formula, engine="sampled", config=config)
            sampled_verdict = "SAT" if sampled.satisfiable else "UNSAT"
            sampled_samples: object = sampled.samples_used
            agree = agree and (sampled.satisfiable == truth_sat)
        else:
            sampled_verdict = "skipped (n·m too large)"
            sampled_samples = "-"
        record.add_row(
            name,
            formula.num_variables,
            formula.num_clauses,
            "SAT" if truth_sat else "UNSAT",
            "SAT" if symbolic.satisfiable else "UNSAT",
            sampled_verdict,
            sampled_samples,
            agree,
        )
    record.add_note(
        "Shape check: the symbolic engine must agree with ground truth on every "
        "row (it is exact); sampled-engine disagreements, if any, are finite-"
        "sample errors whose rate the SNR model predicts."
    )
    record.add_note(
        f"Sampled checks are skipped when n·m > {max_sampled_nm}: Section III-F "
        "puts the required sample budget beyond a laptop-scale simulation there."
    )
    return record
