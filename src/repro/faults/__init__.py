"""repro.faults — deterministic fault injection for resilience testing.

Production control systems are judged by how they fail, not how they
run: the serving stack (:mod:`repro.service` over
:mod:`repro.runtime.shards`) claims that no acknowledged verdict is ever
lost and that every failure maps to a retry, a degradation or a clean
error. This package makes those claims *testable* by injecting named
faults — fsync failures, torn writes, IO delays, dropped connections,
killed workers — at explicit fault points threaded through the WAL
cache, the server and the client:

* :class:`FaultPlan` — a seeded, deterministic schedule of
  :class:`FaultRule` entries: which fault point, which fault kind, which
  invocations (``after`` / ``every`` / ``times`` / ``probability``).
  The same plan against the same request sequence injects exactly the
  same faults, so a failing chaos run replays.
* :func:`fire` — the hook call sites invoke; near-free when no plan is
  installed. Generic kinds (``error`` → :class:`InjectedFault`,
  ``delay`` → sleep, ``kill`` → SIGKILL) execute inside the hook;
  site-specific kinds (``torn`` partial write, ``drop`` abrupt
  connection close) are returned for the site to enact.
* :func:`install_plan` / :func:`clear_plan` / :func:`active_plan` —
  process-wide plan installation, including lazy loading from the
  :envvar:`REPRO_FAULT_PLAN` environment variable so ``repro serve
  --fault-plan plan.json`` reaches worker and subprocess servers.

The fault-point catalogue and plan-file format are documented in
``docs/faults.md``; the chaos soak in ``tests/service/test_chaos.py``
is the consumer that proves the serving guarantees under this package's
faults.

Quickstart::

    from repro import faults

    plan = faults.FaultPlan(
        rules=[{"point": "shards.wal.fsync", "kind": "error", "times": 2}],
        seed=7,
    )
    faults.install_plan(plan)   # the next two WAL fsyncs now fail
"""

from repro.faults.plan import (
    FAULT_PLAN_ENV,
    FAULT_POINTS,
    KINDS,
    FaultPlan,
    FaultRule,
    InjectedFault,
    active_plan,
    clear_plan,
    fire,
    install_plan,
)

__all__ = [
    "FAULT_PLAN_ENV",
    "FAULT_POINTS",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "KINDS",
    "active_plan",
    "clear_plan",
    "fire",
    "install_plan",
]
