"""Deterministic fault plans: seeded, named faults at explicit fault points.

A :class:`FaultPlan` is a list of :class:`FaultRule` entries, each naming
one *fault point* — a call site the library explicitly instrumented with
:func:`fire` — and one fault *kind*. The plan decides, deterministically,
which invocation of a fault point misbehaves: rules select by operation
index (``after`` / ``every`` / ``times``) and optionally by a seeded
per-point RNG (``probability``), so the same plan against the same
request sequence injects exactly the same faults, run after run. That
determinism is what makes chaos tests debuggable: a failing soak replays.

The generic kinds (``error``, ``delay``, ``kill``) are executed by
:func:`fire` itself; site-specific kinds (``torn``, ``drop``) are
returned to the call site, which knows how to tear its own write or drop
its own connection. The full point/kind catalogue lives in
``docs/faults.md``.

Plans install process-wide (:func:`install_plan`) or arrive from the
environment: when :envvar:`REPRO_FAULT_PLAN` names a JSON plan file, the
first :func:`active_plan` call loads it — which is how ``repro serve
--fault-plan`` reaches worker processes and test subprocesses.
"""

from __future__ import annotations

import json
import os
import random
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.exceptions import FaultPlanError
from repro.telemetry import instrument as _telemetry

#: Environment variable naming a JSON fault-plan file; loaded lazily by
#: :func:`active_plan` so child processes inherit the plan.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: The fault-point catalogue: every site the library threads through
#: :func:`fire`, with the kinds that make sense there (documented in
#: ``docs/faults.md``). Rules naming an unknown point are rejected.
FAULT_POINTS = {
    "shards.wal.append": "appending one verdict record to a shard WAL",
    "shards.wal.fsync": "fsyncing a shard WAL after an append",
    "shards.snapshot.write": "writing a shard snapshot during compaction",
    "shards.lock.acquire": "acquiring a shard's cross-process lease",
    "server.response": "writing one response line back to a client",
    "client.send": "writing one request line to the server socket",
    "client.recv": "reading one response line from the server socket",
    "pool.execute": "executing one solve job inside a worker",
}

#: Fault kinds a rule may request.
KINDS = ("error", "delay", "torn", "drop", "kill")

#: Kinds executed by :func:`fire` itself; the rest are returned to the
#: call site for site-specific interpretation.
GENERIC_KINDS = frozenset({"error", "delay", "kill"})


class InjectedFault(OSError):
    """The exception raised by an ``error``-kind injected fault.

    Subclasses :class:`OSError` on purpose: fault points sit at IO
    boundaries (WAL appends, fsyncs, socket writes), and the code under
    test must survive an injected failure through exactly the handlers
    that would catch the real one.
    """


@dataclass
class FaultRule:
    """One deterministic fault: which point, which kind, which invocations.

    Attributes
    ----------
    point:
        A fault-point name from :data:`FAULT_POINTS`.
    kind:
        ``error`` raises :class:`InjectedFault`; ``delay`` sleeps
        ``delay_seconds``; ``kill`` SIGKILLs the current process;
        ``torn`` / ``drop`` are interpreted by the call site (partial
        write / abrupt connection close).
    after:
        Skip the first ``after`` invocations of the point.
    every:
        Fire on every ``every``-th eligible invocation (default 1: each).
    times:
        Stop after this many firings; ``0`` means unlimited.
    probability:
        Fire eligible invocations only with this probability, drawn from
        the plan's seeded per-point RNG (still deterministic for a fixed
        plan seed and call sequence).
    delay_seconds:
        Sleep duration for ``delay`` faults.
    message:
        Human-readable tag carried by the injected error.
    """

    point: str
    kind: str
    after: int = 0
    every: int = 1
    times: int = 1
    probability: float = 1.0
    delay_seconds: float = 0.01
    message: str = "injected fault"
    fired: int = field(default=0, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.point not in FAULT_POINTS:
            raise FaultPlanError(
                f"unknown fault point {self.point!r}; "
                f"known: {sorted(FAULT_POINTS)}"
            )
        if self.kind not in KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; known: {list(KINDS)}"
            )
        if self.after < 0:
            raise FaultPlanError(f"'after' must be >= 0, got {self.after}")
        if self.every < 1:
            raise FaultPlanError(f"'every' must be >= 1, got {self.every}")
        if self.times < 0:
            raise FaultPlanError(f"'times' must be >= 0, got {self.times}")
        if not 0.0 <= self.probability <= 1.0:
            raise FaultPlanError(
                f"'probability' must be in [0, 1], got {self.probability}"
            )
        if self.delay_seconds < 0:
            raise FaultPlanError(
                f"'delay_seconds' must be >= 0, got {self.delay_seconds}"
            )

    def matches(self, index: int, rng: random.Random) -> bool:
        """Does this rule fire on the ``index``-th invocation of its point?"""
        if index < self.after:
            return False
        if (index - self.after) % self.every != 0:
            return False
        if self.times and self.fired >= self.times:
            return False
        if self.probability < 1.0 and rng.random() >= self.probability:
            return False
        return True

    def to_dict(self) -> dict:
        """JSON-serialisable form (the plan-file rule format)."""
        return {
            "point": self.point,
            "kind": self.kind,
            "after": self.after,
            "every": self.every,
            "times": self.times,
            "probability": self.probability,
            "delay_seconds": self.delay_seconds,
            "message": self.message,
        }


class FaultPlan:
    """A seeded, deterministic schedule of injected faults.

    Thread-safe: invocation counters are kept under one lock, so a plan
    shared by the event loop and worker threads still fires each rule on
    exactly the invocations it names.

    Parameters
    ----------
    rules:
        The :class:`FaultRule` list (or dicts in the rule format).
    seed:
        Root of the per-point RNGs consulted by ``probability`` rules.
    """

    def __init__(self, rules=(), seed: int = 0) -> None:
        self.seed = int(seed)
        self.rules: list[FaultRule] = []
        for rule in rules:
            if isinstance(rule, dict):
                rule = FaultRule(**rule)
            elif not isinstance(rule, FaultRule):
                raise FaultPlanError(
                    f"rules must be FaultRule or dict, got {type(rule).__name__}"
                )
            self.rules.append(rule)
        self._lock = threading.Lock()
        self._counts: dict[str, int] = {}
        self._rngs: dict[str, random.Random] = {}
        self._by_point: dict[str, list[FaultRule]] = {}
        for rule in self.rules:
            self._by_point.setdefault(rule.point, []).append(rule)

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        """Build a plan from its JSON object form ``{seed, rules}``."""
        if not isinstance(payload, dict):
            raise FaultPlanError(
                f"fault plan must be a JSON object, got {type(payload).__name__}"
            )
        unknown = set(payload) - {"seed", "rules", "version"}
        if unknown:
            raise FaultPlanError(f"unknown fault-plan fields: {sorted(unknown)}")
        rules = payload.get("rules", [])
        if not isinstance(rules, list):
            raise FaultPlanError("'rules' must be a list of rule objects")
        try:
            return cls(rules=rules, seed=payload.get("seed", 0))
        except TypeError as exc:
            raise FaultPlanError(f"bad fault rule: {exc}") from None

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse a plan from JSON text."""
        try:
            payload = json.loads(text)
        except ValueError as exc:
            raise FaultPlanError(f"unparsable fault plan: {exc}") from None
        return cls.from_dict(payload)

    @classmethod
    def load(cls, path) -> "FaultPlan":
        """Read a plan from a JSON file."""
        try:
            with open(os.fspath(path), "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as exc:
            raise FaultPlanError(
                f"cannot read fault plan {os.fspath(path)!r}: {exc}"
            ) from exc
        return cls.from_json(text)

    def to_dict(self) -> dict:
        """JSON-serialisable form accepted by :meth:`from_dict`."""
        return {
            "version": 1,
            "seed": self.seed,
            "rules": [rule.to_dict() for rule in self.rules],
        }

    def save(self, path) -> None:
        """Write the plan as a JSON file (the ``--fault-plan`` format)."""
        with open(os.fspath(path), "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    def fire(self, point: str) -> Optional[FaultRule]:
        """Record one invocation of ``point``; the firing rule, if any.

        The first matching rule wins (rules are consulted in plan order);
        its ``fired`` counter and the point's invocation counter advance
        under the plan lock, so concurrent callers see a consistent,
        deterministic schedule.
        """
        if point not in FAULT_POINTS:
            raise FaultPlanError(f"unknown fault point {point!r}")
        with self._lock:
            index = self._counts.get(point, 0)
            self._counts[point] = index + 1
            for rule in self._by_point.get(point, ()):
                rng = self._rngs.get(point)
                if rng is None:
                    rng = self._rngs[point] = random.Random(
                        f"{self.seed}\x1f{point}"
                    )
                if rule.matches(index, rng):
                    rule.fired += 1
                    return rule
        return None

    @property
    def injected(self) -> dict[str, int]:
        """Total faults fired so far, by point name."""
        with self._lock:
            counts: dict[str, int] = {}
            for rule in self.rules:
                if rule.fired:
                    counts[rule.point] = counts.get(rule.point, 0) + rule.fired
            return counts


_plan: Optional[FaultPlan] = None
_env_checked = False
_install_lock = threading.Lock()


def install_plan(plan: FaultPlan) -> None:
    """Make ``plan`` the process-wide active fault plan."""
    global _plan, _env_checked
    if not isinstance(plan, FaultPlan):
        raise FaultPlanError(
            f"install_plan needs a FaultPlan, got {type(plan).__name__}"
        )
    with _install_lock:
        _plan = plan
        _env_checked = True


def clear_plan() -> None:
    """Remove the active plan (and stop consulting the environment)."""
    global _plan, _env_checked
    with _install_lock:
        _plan = None
        _env_checked = True


def active_plan() -> Optional[FaultPlan]:
    """The installed plan, loading :envvar:`REPRO_FAULT_PLAN` on first use."""
    global _plan, _env_checked
    if _plan is None and not _env_checked:
        with _install_lock:
            if _plan is None and not _env_checked:
                _env_checked = True
                path = os.environ.get(FAULT_PLAN_ENV)
                if path:
                    _plan = FaultPlan.load(path)
    return _plan


def fire(point: str) -> Optional[FaultRule]:
    """The fault-point hook: maybe inject a fault at ``point``.

    No-op (and near-free) without an active plan. When a rule fires, the
    generic kinds are executed here — ``error`` raises
    :class:`InjectedFault`, ``delay`` sleeps, ``kill`` SIGKILLs the
    process — and site-specific kinds (``torn``, ``drop``) are returned
    for the call site to enact. Every firing is counted in the
    ``repro_faults_injected_total`` metric family.
    """
    plan = active_plan()
    if plan is None:
        return None
    rule = plan.fire(point)
    if rule is None:
        return None
    if _telemetry.active():
        _telemetry.record_fault_injected(point, rule.kind)
    if rule.kind == "delay":
        time.sleep(rule.delay_seconds)
        return rule
    if rule.kind == "error":
        raise InjectedFault(f"injected fault at {point}: {rule.message}")
    if rule.kind == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    return rule
