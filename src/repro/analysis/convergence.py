"""Convergence diagnostics for S_N running-mean traces.

The paper's stopping rule (Section IV) is "until the mean value of S_N has
converged to the third significant digit or until 1e8 noise samples". These
helpers formalise that rule so the Figure 1 reproduction can report when
each trace meets it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.exceptions import ExperimentError


@dataclass
class ConvergenceReport:
    """Summary of a running-mean trace.

    Attributes
    ----------
    final_mean:
        Last running-mean value of the trace.
    final_samples:
        Sample count at the end of the trace.
    converged_at:
        Sample count at which the significant-digit criterion was first met
        (``None`` if never).
    significant_digits:
        The digit criterion that was applied.
    relative_fluctuation:
        Max relative deviation of the trace from its final value over the
        last quarter of the trace (a stability summary).
    """

    final_mean: float
    final_samples: int
    converged_at: Optional[int]
    significant_digits: int
    relative_fluctuation: float


def significant_digit_convergence(
    samples: Sequence[int],
    means: Sequence[float],
    digits: int = 3,
    window: int = 3,
) -> Optional[int]:
    """First sample count after which the mean is stable to ``digits`` digits.

    Stability means: over ``window`` consecutive trace points, every value
    rounds to the same ``digits`` significant digits. Returns the sample
    count at the start of the first such window, or ``None``.
    """
    if len(samples) != len(means):
        raise ExperimentError("samples and means must have equal length")
    if digits <= 0 or window <= 1:
        raise ExperimentError("digits must be positive and window at least 2")
    if len(means) < window:
        return None

    def rounded(value: float) -> float:
        if value == 0.0 or not math.isfinite(value):
            return 0.0
        exponent = math.floor(math.log10(abs(value)))
        scale = 10.0 ** (exponent - digits + 1)
        return round(value / scale) * scale

    for start in range(0, len(means) - window + 1):
        reference = rounded(means[start])
        if all(rounded(means[idx]) == reference for idx in range(start, start + window)):
            return int(samples[start])
    return None


def analyze_trace(
    samples: Sequence[int],
    means: Sequence[float],
    digits: int = 3,
) -> ConvergenceReport:
    """Produce a :class:`ConvergenceReport` for one running-mean trace."""
    if not samples or not means:
        raise ExperimentError("cannot analyse an empty trace")
    if len(samples) != len(means):
        raise ExperimentError("samples and means must have equal length")
    final_mean = float(means[-1])
    tail_start = max(0, len(means) - max(1, len(means) // 4))
    tail = means[tail_start:]
    if final_mean != 0.0:
        fluctuation = max(abs(value - final_mean) for value in tail) / abs(final_mean)
    else:
        fluctuation = max(abs(value) for value in tail)
    return ConvergenceReport(
        final_mean=final_mean,
        final_samples=int(samples[-1]),
        converged_at=significant_digit_convergence(samples, means, digits),
        significant_digits=digits,
        relative_fluctuation=float(fluctuation),
    )
