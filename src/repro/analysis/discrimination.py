"""SAT/UNSAT decision quality of the sampled checker at finite sample budgets."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.cnf.formula import CNFFormula
from repro.core.config import NBLConfig
from repro.core.sampled import SampledNBLEngine
from repro.exceptions import ExperimentError


@dataclass
class DiscriminationReport:
    """Error rates of the sampled checker over repeated trials.

    Attributes
    ----------
    num_samples:
        Sample budget per check.
    trials:
        Trials per instance class.
    false_positive_rate:
        Fraction of UNSAT trials judged SAT.
    false_negative_rate:
        Fraction of SAT trials judged UNSAT.
    sat_means / unsat_means:
        The individual mean estimates (for plotting / debugging).
    """

    num_samples: int
    trials: int
    false_positive_rate: float
    false_negative_rate: float
    sat_means: list[float] = field(default_factory=list)
    unsat_means: list[float] = field(default_factory=list)

    @property
    def accuracy(self) -> float:
        """Overall decision accuracy across both classes."""
        return 1.0 - 0.5 * (self.false_positive_rate + self.false_negative_rate)


def measure_discrimination(
    sat_formula: CNFFormula,
    unsat_formula: CNFFormula,
    config: NBLConfig,
    trials: int = 10,
) -> DiscriminationReport:
    """Estimate false-positive / false-negative rates at a fixed sample budget.

    Each trial uses fresh noise streams. The configuration is forced to the
    fixed-budget convergence mode so every trial consumes exactly
    ``config.max_samples`` samples — this is the quantity the SNR model of
    Section III-F predicts.
    """
    if trials <= 0:
        raise ExperimentError("trials must be positive")
    fixed = config.replace(convergence="fixed", record_trace=False)
    base_seed = 0 if config.seed is None else config.seed

    sat_means: list[float] = []
    unsat_means: list[float] = []
    false_negatives = 0
    false_positives = 0
    for trial in range(trials):
        sat_engine = SampledNBLEngine(
            sat_formula, fixed.replace(seed=hash((base_seed, "sat", trial)) & 0x7FFFFFFF)
        )
        unsat_engine = SampledNBLEngine(
            unsat_formula, fixed.replace(seed=hash((base_seed, "unsat", trial)) & 0x7FFFFFFF)
        )
        sat_result = sat_engine.check()
        unsat_result = unsat_engine.check()
        sat_means.append(sat_result.mean)
        unsat_means.append(unsat_result.mean)
        if not sat_result.satisfiable:
            false_negatives += 1
        if unsat_result.satisfiable:
            false_positives += 1

    return DiscriminationReport(
        num_samples=fixed.max_samples,
        trials=trials,
        false_positive_rate=false_positives / trials,
        false_negative_rate=false_negatives / trials,
        sat_means=sat_means,
        unsat_means=unsat_means,
    )


def discrimination_sweep(
    sat_formula: CNFFormula,
    unsat_formula: CNFFormula,
    sample_budgets: Sequence[int],
    config: NBLConfig,
    trials: int = 10,
) -> list[DiscriminationReport]:
    """Repeat :func:`measure_discrimination` over several sample budgets."""
    reports = []
    for budget in sample_budgets:
        if budget <= 0:
            raise ExperimentError(f"sample budget must be positive, got {budget}")
        reports.append(
            measure_discrimination(
                sat_formula,
                unsat_formula,
                config.replace(max_samples=budget, block_size=min(config.block_size, budget)),
                trials=trials,
            )
        )
    return reports
