"""Empirical SNR measurement: repeated checks on SAT vs UNSAT instances."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cnf.formula import CNFFormula
from repro.core.config import NBLConfig
from repro.core.sampled import SampledNBLEngine
from repro.core.snr import (
    SNRParameters,
    empirical_snr,
    snr_paper_model,
    snr_sqrt_model,
)
from repro.exceptions import ExperimentError


@dataclass
class SNRMeasurement:
    """Result of one empirical SNR measurement.

    Attributes
    ----------
    params:
        Instance-size parameters (n, m, k, K) of the SAT instance.
    num_samples:
        Noise samples per individual check.
    repetitions:
        Independent checks per class (SAT / UNSAT).
    sat_means / unsat_means:
        The individual S_N mean estimates.
    measured_snr:
        The paper-style empirical SNR ``(μ₁ - 3σ₁)/(μ₀ + 3σ₀)``.
    paper_model_snr / sqrt_model_snr:
        The two analytical predictions for the same (n, m, N).
    """

    params: SNRParameters
    num_samples: int
    repetitions: int
    sat_means: list[float] = field(default_factory=list)
    unsat_means: list[float] = field(default_factory=list)
    measured_snr: float = 0.0
    paper_model_snr: float = 0.0
    sqrt_model_snr: float = 0.0


def measure_empirical_snr(
    sat_formula: CNFFormula,
    unsat_formula: CNFFormula,
    config: NBLConfig,
    repetitions: int = 8,
    satisfying_minterms: int = 1,
) -> SNRMeasurement:
    """Measure the SAT/UNSAT discrimination SNR for a pair of instances.

    Both formulas must share the same (n, m) so the analytic models apply to
    both; the SAT instance should have ``satisfying_minterms`` models.
    Each repetition builds a fresh engine (fresh noise streams) and performs
    a fixed-budget check.
    """
    if repetitions < 2:
        raise ExperimentError("repetitions must be at least 2")
    if (
        sat_formula.num_variables != unsat_formula.num_variables
        or sat_formula.num_clauses != unsat_formula.num_clauses
    ):
        raise ExperimentError(
            "SAT and UNSAT instances must have matching (n, m) for the SNR model"
        )
    fixed_config = config.replace(convergence="fixed", record_trace=False)
    params = SNRParameters.from_formula(
        sat_formula, satisfying_minterms=satisfying_minterms
    )

    sat_means: list[float] = []
    unsat_means: list[float] = []
    for repetition in range(repetitions):
        seed_base = 0 if config.seed is None else config.seed
        sat_engine = SampledNBLEngine(
            sat_formula, fixed_config.replace(seed=hash((seed_base, "sat", repetition)) & 0x7FFFFFFF)
        )
        unsat_engine = SampledNBLEngine(
            unsat_formula, fixed_config.replace(seed=hash((seed_base, "unsat", repetition)) & 0x7FFFFFFF)
        )
        sat_means.append(sat_engine.check().mean)
        unsat_means.append(unsat_engine.check().mean)

    measurement = SNRMeasurement(
        params=params,
        num_samples=fixed_config.max_samples,
        repetitions=repetitions,
        sat_means=sat_means,
        unsat_means=unsat_means,
        measured_snr=empirical_snr(sat_means, unsat_means),
        paper_model_snr=snr_paper_model(params, fixed_config.max_samples),
        sqrt_model_snr=snr_sqrt_model(params, fixed_config.max_samples),
    )
    return measurement
