"""Sample-budget planning from the Section III-F SNR model."""

from __future__ import annotations

from dataclasses import dataclass

from repro.cnf.formula import CNFFormula
from repro.core.snr import SNRParameters, samples_for_target_snr
from repro.exceptions import ExperimentError
from repro.noise.base import Carrier
from repro.noise.uniform import UniformCarrier

#: Above this many samples a single check is impractical on a laptop-scale
#: simulation; the plan flags it so callers can fall back to the symbolic
#: engine or a higher-SNR carrier.
PRACTICAL_SAMPLE_LIMIT = 50_000_000


@dataclass
class SamplePlan:
    """Recommended sample budget for a target discrimination SNR.

    Attributes
    ----------
    params:
        Instance-size parameters the plan was computed for.
    target_snr:
        Requested SNR (>= 1 means the 3σ bands of the SAT and UNSAT means
        no longer overlap, per the paper's definition).
    samples_paper_model / samples_sqrt_model:
        Budgets implied by the paper's formula and by the corrected
        (sqrt-of-products) formula.
    practical:
        Whether the *sqrt-model* budget is below
        :data:`PRACTICAL_SAMPLE_LIMIT`.
    recommendation:
        Human-readable recommendation string (sampled engine, higher-power
        carrier, or symbolic engine).
    """

    params: SNRParameters
    target_snr: float
    samples_paper_model: int
    samples_sqrt_model: int
    practical: bool
    recommendation: str


def plan_samples(
    formula: CNFFormula,
    target_snr: float = 1.0,
    satisfying_minterms: int = 1,
    carrier: Carrier | None = None,
) -> SamplePlan:
    """Plan the sample budget needed to check ``formula`` at ``target_snr``.

    The plan exposes the paper's central scalability observation: the budget
    grows like ``4^{n·m}`` (paper model) or ``2^{n·m}`` (corrected model), so
    only tiny instances are checkable by sampling; larger ones should use
    the symbolic engine (this library's stand-in for an ideal correlator).
    """
    if target_snr <= 0:
        raise ExperimentError("target_snr must be positive")
    carrier = carrier or UniformCarrier()
    params = SNRParameters.from_formula(formula, satisfying_minterms=satisfying_minterms)
    paper_budget = samples_for_target_snr(params, target_snr, model="paper")
    sqrt_budget = samples_for_target_snr(params, target_snr, model="sqrt")
    practical = sqrt_budget <= PRACTICAL_SAMPLE_LIMIT

    if practical:
        recommendation = (
            f"sampled engine is practical: ~{sqrt_budget:,} samples "
            f"(paper model asks for ~{paper_budget:,})"
        )
    else:
        recommendation = (
            "sampled engine impractical at this size; use the symbolic engine "
            "or a unit-power carrier (BipolarCarrier) and accept reduced SNR"
        )
    return SamplePlan(
        params=params,
        target_snr=target_snr,
        samples_paper_model=paper_budget,
        samples_sqrt_model=sqrt_budget,
        practical=practical,
        recommendation=recommendation,
    )
