"""Analysis tools: empirical SNR, convergence, discrimination, sample planning.

These modules quantify the behaviour the paper discusses qualitatively in
Section III-F (scaling) and Section IV (convergence of the S_N mean), and
back the derived tables in EXPERIMENTS.md.
"""

from repro.analysis.snr_empirical import SNRMeasurement, measure_empirical_snr
from repro.analysis.convergence import (
    ConvergenceReport,
    analyze_trace,
    significant_digit_convergence,
)
from repro.analysis.discrimination import (
    DiscriminationReport,
    measure_discrimination,
)
from repro.analysis.sample_planning import SamplePlan, plan_samples

__all__ = [
    "SNRMeasurement",
    "measure_empirical_snr",
    "ConvergenceReport",
    "analyze_trace",
    "significant_digit_convergence",
    "DiscriminationReport",
    "measure_discrimination",
    "SamplePlan",
    "plan_samples",
]
