"""Model reconstruction for satisfiability-preserving eliminations.

Unit propagation, pure-literal elimination, blocked clause elimination and
bounded variable elimination all shrink the formula in ways that change
(or drop) variables: a model of the reduced formula is not a model of the
original. Each technique therefore records a :class:`ReconstructionStack`
step when it removes something model-relevant, and :meth:`extend` replays
the steps in reverse chronological order to turn any model of the reduced
formula into a model of the original — the standard witness-stack scheme
of SatELite-style preprocessors.

Replay invariant: when a step recorded at time ``t`` is replayed, every
variable alive in the formula just after time ``t`` already has a value
(it either survived into the reduced formula or was eliminated later and
so was replayed earlier), so the step only has to choose its own
variable's value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Union


@dataclass(frozen=True)
class ForcedLiteral:
    """A literal fixed by unit propagation or pure-literal elimination."""

    literal: int


@dataclass(frozen=True)
class BlockedClause:
    """A clause removed by BCE, with the literal it was blocked on."""

    clause: tuple[int, ...]
    witness: int


@dataclass(frozen=True)
class EliminatedVariable:
    """A variable removed by BVE, with every original clause mentioning it."""

    variable: int
    clauses: tuple[tuple[int, ...], ...]


Step = Union[ForcedLiteral, BlockedClause, EliminatedVariable]


def _clause_satisfied(clause: Iterable[int], model: Mapping[int, bool]) -> bool:
    """Clause truth under ``model`` (unassigned variables default to False)."""
    return any(model.get(abs(lit), False) == (lit > 0) for lit in clause)


class ReconstructionStack:
    """Chronological record of model-relevant eliminations."""

    def __init__(self) -> None:
        self._steps: list[Step] = []

    def __len__(self) -> int:
        return len(self._steps)

    @property
    def steps(self) -> tuple[Step, ...]:
        """The recorded steps, oldest first."""
        return tuple(self._steps)

    def push_forced(self, literal: int) -> None:
        """Record a unit/pure binding: ``literal`` must be made true."""
        self._steps.append(ForcedLiteral(int(literal)))

    def push_blocked(self, clause: Iterable[int], witness: int) -> None:
        """Record a BCE removal: flip ``witness`` if ``clause`` ends up false."""
        self._steps.append(
            BlockedClause(tuple(sorted(clause, key=abs)), int(witness))
        )

    def push_eliminated(
        self, variable: int, clauses: Iterable[Iterable[int]]
    ) -> None:
        """Record a BVE elimination with all removed occurrences of ``variable``."""
        self._steps.append(
            EliminatedVariable(
                int(variable),
                tuple(tuple(sorted(c, key=abs)) for c in clauses),
            )
        )

    def extend(self, model: Mapping[int, bool]) -> Dict[int, bool]:
        """Extend a reduced-formula model to the eliminated variables.

        ``model`` maps *original* variable indices (of the variables that
        survived preprocessing) to values; the result additionally assigns
        every variable the stack eliminated, such that all removed clauses
        are satisfied. The input is not mutated.
        """
        extended = dict(model)
        for step in reversed(self._steps):
            if isinstance(step, ForcedLiteral):
                extended[abs(step.literal)] = step.literal > 0
            elif isinstance(step, BlockedClause):
                # A blocked clause's resolvents were all tautological, so
                # making the blocking literal true never falsifies the
                # neighbouring clauses — flip it only when needed.
                if not _clause_satisfied(step.clause, extended):
                    extended[abs(step.witness)] = step.witness > 0
            else:
                # BVE kept all resolvents, so one of the two values of the
                # eliminated variable satisfies every removed clause.
                extended[step.variable] = True
                if not all(
                    _clause_satisfied(c, extended) for c in step.clauses
                ):
                    extended[step.variable] = False
        return extended
