"""repro.preprocess — SatELite-style inprocessing with model reconstruction.

Every clause and variable removed before a formula reaches the NBL engines
or the CPU baselines shrinks the hyperspace product and the search alike,
so this package sits in front of the whole solver stack:

* :class:`Preprocessor` — unit propagation, pure-literal elimination,
  subsumption + self-subsuming resolution, blocked clause elimination and
  bounded variable elimination, run to a fixpoint;
* :class:`PreprocessResult` — the reduced (renumbered) formula, the
  old→new variable map and the model :class:`ReconstructionStack`;
* frozen variables — assumption variables survive untouched, keeping
  incremental sessions and assumption-carrying jobs sound;
* :func:`preprocess_formula` / :func:`resolve_preprocessor` — the one-shot
  helper and the normaliser behind every ``preprocess=`` hook
  (:meth:`repro.solvers.base.SATSolver.solve`,
  :class:`repro.runtime.SolveJob`, ``repro.cli``);
* :func:`inprocess_learned` / :class:`InprocessResult` — the cheap
  restart-boundary variant the CDCL arena kernel runs *during* search:
  learned-clause subsumption and vivification-lite against the root
  assignment, budget-bounded, never touching problem clauses.

Quickstart::

    from repro.cnf import CNFFormula
    from repro.preprocess import preprocess_formula

    result = preprocess_formula(formula)
    if result.status == "REDUCED":
        model = solve(result.formula)              # any engine
        original_model = result.reconstruct(model) # back to the input
"""

from repro.preprocess.inprocess import InprocessResult, inprocess_learned
from repro.preprocess.occurrence import ClauseDatabase
from repro.preprocess.pipeline import (
    REDUCED,
    SAT,
    TECHNIQUES,
    UNSAT,
    Preprocessor,
    PreprocessResult,
    PreprocessStats,
    preprocess_formula,
    resolve_preprocessor,
)
from repro.preprocess.reconstruction import (
    BlockedClause,
    EliminatedVariable,
    ForcedLiteral,
    ReconstructionStack,
)

__all__ = [
    "REDUCED",
    "SAT",
    "TECHNIQUES",
    "UNSAT",
    "BlockedClause",
    "ClauseDatabase",
    "EliminatedVariable",
    "ForcedLiteral",
    "InprocessResult",
    "Preprocessor",
    "PreprocessResult",
    "PreprocessStats",
    "ReconstructionStack",
    "inprocess_learned",
    "preprocess_formula",
    "resolve_preprocessor",
]
