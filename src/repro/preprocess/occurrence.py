"""Occurrence-indexed mutable clause database for the inprocessing pipeline.

The rest of the library works on the immutable
:class:`~repro.cnf.formula.CNFFormula`; preprocessing techniques instead
need to remove, strengthen and add clauses thousands of times, and to ask
"which clauses contain literal ``l``" in O(1). :class:`ClauseDatabase` is
that mutable view: clauses are stored as frozensets of DIMACS-signed
integers under stable integer ids, with one occurrence list per literal.
Dead clauses keep their id (occurrence lists drop them eagerly), so
technique loops can hold id snapshots safely while the database changes
under them.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Optional, Set

from repro.cnf.clause import Clause
from repro.cnf.formula import CNFFormula
from repro.exceptions import PreprocessError


def _is_tautology(literals: frozenset[int]) -> bool:
    return any(-lit in literals for lit in literals)


class ClauseDatabase:
    """Clauses as frozensets of DIMACS ints, plus a literal-occurrence index.

    Ids are assigned densely in insertion order and never reused; a removed
    clause's slot is set to ``None``. Tautological clauses are rejected at
    :meth:`add` (they constrain nothing and would confuse the blocked-clause
    check), and duplicate literals disappear via the set representation.
    """

    def __init__(self) -> None:
        self._clauses: list[Optional[frozenset[int]]] = []
        self._occ: Dict[int, Set[int]] = {}
        self._alive = 0

    @classmethod
    def from_formula(cls, formula: CNFFormula) -> tuple["ClauseDatabase", int]:
        """Load a formula; returns the database and the tautology-drop count."""
        db = cls()
        tautologies = 0
        for clause in formula:
            if db.add(clause.to_ints()) is None:
                tautologies += 1
        return db, tautologies

    # -- queries -------------------------------------------------------------
    def __len__(self) -> int:
        return self._alive

    def is_alive(self, cid: int) -> bool:
        """``True`` while clause ``cid`` is still part of the database."""
        return self._clauses[cid] is not None

    def clause(self, cid: int) -> frozenset[int]:
        """The literal set of clause ``cid`` (must be alive)."""
        literals = self._clauses[cid]
        if literals is None:
            raise PreprocessError(f"clause {cid} is dead")
        return literals

    def alive_ids(self) -> list[int]:
        """Snapshot of the ids of all alive clauses, in insertion order."""
        return [cid for cid, lits in enumerate(self._clauses) if lits is not None]

    def occurrences(self, lit: int) -> Set[int]:
        """The ids of alive clauses containing ``lit`` (a live set — copy
        before mutating the database while iterating)."""
        return self._occ.get(lit, set())

    def variables(self) -> set[int]:
        """Variables occurring (in either polarity) in at least one alive clause."""
        return {abs(lit) for lit, ids in self._occ.items() if ids}

    def iter_clauses(self) -> Iterator[frozenset[int]]:
        """Iterate the literal sets of all alive clauses."""
        for literals in self._clauses:
            if literals is not None:
                yield literals

    def has_empty_clause(self) -> bool:
        """``True`` when an alive clause is empty (the database is UNSAT)."""
        return any(not literals for literals in self.iter_clauses())

    def to_formula(self, num_variables: int) -> CNFFormula:
        """The alive clauses as an immutable formula over ``num_variables``."""
        return CNFFormula(
            [Clause.from_ints(sorted(lits, key=abs)) for lits in self.iter_clauses()],
            num_variables,
        )

    # -- mutations -----------------------------------------------------------
    def add(self, literals: Iterable[int]) -> Optional[int]:
        """Insert a clause; returns its id, or ``None`` for a tautology."""
        lits = frozenset(int(lit) for lit in literals)
        if any(lit == 0 for lit in lits):
            raise PreprocessError("0 is not a valid clause literal")
        if _is_tautology(lits):
            return None
        cid = len(self._clauses)
        self._clauses.append(lits)
        for lit in lits:
            self._occ.setdefault(lit, set()).add(cid)
        self._alive += 1
        return cid

    def remove(self, cid: int) -> frozenset[int]:
        """Delete clause ``cid``; returns its literal set."""
        literals = self.clause(cid)
        for lit in literals:
            self._occ[lit].discard(cid)
        self._clauses[cid] = None
        self._alive -= 1
        return literals

    def strengthen(self, cid: int, lit: int) -> frozenset[int]:
        """Remove ``lit`` from clause ``cid``; returns the shrunken set.

        Shrinking to the empty set is allowed — it is how conflicting frozen
        unit clauses surface — and the caller checks for it.
        """
        literals = self.clause(cid)
        if lit not in literals:
            raise PreprocessError(f"literal {lit} not in clause {cid}")
        self._occ[lit].discard(cid)
        shrunk = literals - {lit}
        self._clauses[cid] = shrunk
        return shrunk
