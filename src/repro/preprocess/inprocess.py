"""Cheap inprocessing over a CDCL learned-clause database.

Full preprocessing (:class:`repro.preprocess.Preprocessor`) renumbers
variables and maintains a model-reconstruction stack, which makes it the
wrong tool *during* search. This module is the restart-boundary variant
the arena kernel calls: it only ever deletes or strengthens **learned**
clauses — each one a resolution consequence of the problem clauses, so
removing or shortening it can never change satisfiability, the model set,
or any later ``unsat_core()`` — and it never touches problem clauses,
reason clauses, or the variable numbering.

Two techniques, both budget-bounded:

* **vivification-lite** against the root-level assignment: a learned
  clause containing a root-true literal is dropped (it is permanently
  satisfied); root-false literals are stripped (the shortened clause is
  RUP against the database, since the unit clauses forcing those
  literals are part of it);
* **subsumption**: a learned clause equal to or a superset of any other
  live clause (problem or learned) is dropped, via the least-occurring
  literal's occurrence list.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

__all__ = ["InprocessResult", "inprocess_learned"]


@dataclass
class InprocessResult:
    """What an inprocessing pass decided, for the kernel to apply.

    ``dropped`` lists ``(cref, literals)`` of learned clauses to delete
    outright (satisfied at the root, or subsumed). ``strengthened`` lists
    ``(cref, old_literals, new_literals)`` of learned clauses to replace
    with a shorter consequence; ``new_literals`` may be empty (the
    database is contradictory at the root) or a unit. ``examined`` counts
    learned clauses actually looked at before the budget ran out.
    """

    dropped: List[Tuple[int, Tuple[int, ...]]] = field(default_factory=list)
    strengthened: List[Tuple[int, Tuple[int, ...], Tuple[int, ...]]] = field(
        default_factory=list
    )
    examined: int = 0


def inprocess_learned(
    problem: Sequence[Tuple[int, ...]],
    learned: Sequence[Tuple[int, Tuple[int, ...]]],
    root_literals: Sequence[int] = (),
    budget: int = 2000,
) -> InprocessResult:
    """Plan a cheap inprocessing pass over ``learned`` clauses.

    Parameters
    ----------
    problem:
        Live non-deletable clauses (problem clauses and locked learned
        clauses), as DIMACS literal tuples. Only used as subsumers.
    learned:
        ``(cref, literals)`` pairs of deletable learned clauses; ``cref``
        is an opaque handle echoed back in the result.
    root_literals:
        The level-0 (permanent) assignment, as DIMACS literals.
    budget:
        Maximum learned clauses examined; the pass stops cleanly when it
        is exhausted. ``0`` examines nothing.

    Clauses are examined in the given order, and a dropped clause no
    longer subsumes later ones — so of two duplicate learned clauses
    exactly one survives.
    """
    result = InprocessResult()
    if not learned or budget <= 0:
        return result
    root: Set[int] = set(root_literals)

    # Occurrence index over every live clause (subsumers): literal -> ids.
    occurrences: Dict[int, Set[int]] = {}
    clauses: Dict[int, frozenset] = {}
    next_id = 0
    for lits in problem:
        clauses[next_id] = frozenset(lits)
        for lit in lits:
            occurrences.setdefault(lit, set()).add(next_id)
        next_id += 1
    learned_ids: Dict[int, int] = {}  # clause id -> index into `learned`
    for index, (cref, lits) in enumerate(learned):
        clauses[next_id] = frozenset(lits)
        for lit in lits:
            occurrences.setdefault(lit, set()).add(next_id)
        learned_ids[next_id] = index
        next_id += 1

    def kill(clause_id: int) -> None:
        for lit in clauses.pop(clause_id):
            occurrences[lit].discard(clause_id)

    first_learned_id = next_id - len(learned)
    for offset, (cref, lits) in enumerate(learned):
        if result.examined >= budget:
            break
        clause_id = first_learned_id + offset
        if clause_id not in clauses:
            continue  # already dropped as subsumed
        result.examined += 1

        # Vivification-lite against the root assignment.
        if any(lit in root for lit in lits):
            result.dropped.append((cref, lits))
            kill(clause_id)
            continue
        stripped = tuple(lit for lit in lits if -lit not in root)
        if len(stripped) != len(lits):
            result.strengthened.append((cref, lits, stripped))
            kill(clause_id)
            continue

        # Subsumption: subset check against clauses sharing the
        # least-occurring literal.
        key = frozenset(lits)
        pivot = min(lits, key=lambda lit: len(occurrences.get(lit, ())))
        subsumed = False
        for other_id in occurrences.get(pivot, ()):
            if other_id != clause_id and clauses[other_id] <= key:
                subsumed = True
                break
        if subsumed:
            result.dropped.append((cref, lits))
            kill(clause_id)
    return result
