"""The inprocessing pipeline: SatELite-style simplification to a fixpoint.

:class:`Preprocessor` runs unit propagation, pure-literal elimination,
subsumption + self-subsuming resolution, blocked clause elimination (BCE)
and bounded variable elimination (BVE, occurrence-indexed with a
clause-growth budget) in rounds until nothing changes. The result is a
:class:`PreprocessResult` carrying the reduced (compactly renumbered)
formula, the old→new variable map, and a
:class:`~repro.preprocess.reconstruction.ReconstructionStack` that extends
any model of the reduced formula back to a model of the original.

Frozen variables (:meth:`Preprocessor.preprocess`'s ``frozen`` argument)
are exempt from every model-changing technique, so callers that later
constrain them externally — incremental sessions posting assumptions, the
batch runtime solving under per-job assumption literals — stay sound: the
reduced formula is equisatisfiable with the original under *any* additional
constraint over the frozen variables.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Sequence, Set, Union

from repro.cnf.assignment import Assignment
from repro.cnf.clause import Clause
from repro.cnf.formula import CNFFormula
from repro.exceptions import PreprocessError
from repro.preprocess.occurrence import ClauseDatabase
from repro.preprocess.reconstruction import ReconstructionStack
from repro.telemetry import instrument as _telemetry

#: Technique names, in pipeline order. ``subsumption`` covers both plain
#: subsumption and self-subsuming resolution (clause strengthening).
TECHNIQUES = ("units", "pure", "subsumption", "bce", "bve")

#: :attr:`PreprocessResult.status` values. ``REDUCED`` means a residual
#: formula remains to be solved; ``SAT``/``UNSAT`` mean preprocessing alone
#: decided the instance.
REDUCED = "REDUCED"
SAT = "SAT"
UNSAT = "UNSAT"


class _Conflict(Exception):
    """Internal: preprocessing derived the empty clause."""


@dataclass
class PreprocessStats:
    """Work and reduction counters of one preprocessing run."""

    original_variables: int = 0
    original_clauses: int = 0
    original_literals: int = 0
    reduced_variables: int = 0
    reduced_clauses: int = 0
    reduced_literals: int = 0
    rounds: int = 0
    #: ``True`` when a ``deadline`` expired before the fixpoint was reached
    #: (the returned reduction is still sound, just less simplified).
    interrupted: bool = False
    tautologies_removed: int = 0
    units_propagated: int = 0
    pure_literals: int = 0
    subsumed_clauses: int = 0
    strengthened_literals: int = 0
    blocked_clauses: int = 0
    eliminated_variables: int = 0
    elapsed_seconds: float = 0.0

    @property
    def clause_reduction(self) -> float:
        """Fraction of the original clauses removed (0.0 for an empty input)."""
        if self.original_clauses == 0:
            return 0.0
        return 1.0 - self.reduced_clauses / self.original_clauses

    @property
    def variable_reduction(self) -> float:
        """Fraction of the original variables removed (0.0 for no variables)."""
        if self.original_variables == 0:
            return 0.0
        return 1.0 - self.reduced_variables / self.original_variables

    def to_text(self) -> str:
        """Human-readable multi-line summary (the CLI's stats output)."""
        return "\n".join(
            [
                f"clauses   {self.original_clauses} -> {self.reduced_clauses} "
                f"({self.clause_reduction:.0%} removed)",
                f"variables {self.original_variables} -> {self.reduced_variables} "
                f"({self.variable_reduction:.0%} removed)",
                f"rounds    {self.rounds}",
                f"work      units={self.units_propagated} "
                f"pure={self.pure_literals} subsumed={self.subsumed_clauses} "
                f"strengthened={self.strengthened_literals} "
                f"blocked={self.blocked_clauses} "
                f"eliminated={self.eliminated_variables} "
                f"tautologies={self.tautologies_removed}",
                f"elapsed   {self.elapsed_seconds:.3f}s",
            ]
        )


@dataclass
class PreprocessResult:
    """Everything a caller needs to solve the reduced instance and map back.

    Attributes
    ----------
    status:
        ``"REDUCED"``, ``"SAT"`` or ``"UNSAT"`` (the latter two mean
        preprocessing decided the instance outright).
    formula:
        The reduced formula in *compact* variable numbering (``1..k``).
        Empty for ``SAT``; contains the empty clause for ``UNSAT``.
    variable_map:
        Mapping ``original variable -> reduced variable`` for every
        surviving variable (frozen variables always survive).
    stack:
        The model reconstruction stack (see :meth:`reconstruct`).
    original_num_variables:
        Variable universe of the input formula.
    frozen:
        The frozen variable set the run was given.
    stats:
        Reduction and work counters.
    """

    status: str
    formula: CNFFormula
    variable_map: Dict[int, int]
    stack: ReconstructionStack
    original_num_variables: int
    frozen: frozenset[int] = frozenset()
    stats: PreprocessStats = field(default_factory=PreprocessStats)

    @property
    def decided(self) -> bool:
        """``True`` when preprocessing alone settled SAT/UNSAT."""
        return self.status in (SAT, UNSAT)

    def map_assumptions(self, assumptions: Iterable[int]) -> tuple[int, ...]:
        """Translate assumption literals into the reduced numbering.

        Every assumption variable must have survived preprocessing — pass
        them as ``frozen`` to guarantee it — otherwise
        :class:`PreprocessError` is raised.
        """
        mapped = []
        for lit in assumptions:
            variable = abs(int(lit))
            if variable not in self.variable_map:
                raise PreprocessError(
                    f"assumption {lit} mentions x{variable}, which was "
                    "eliminated during preprocessing (freeze it first)"
                )
            mapped.append(
                self.variable_map[variable] if lit > 0 else -self.variable_map[variable]
            )
        return tuple(mapped)

    def reconstruct(
        self, reduced_model: Optional[Mapping[int, bool]] = None
    ) -> Assignment:
        """Extend a model of the reduced formula to the original formula.

        Parameters
        ----------
        reduced_model:
            ``reduced variable -> bool`` mapping (an :class:`Assignment`
            works too). May be ``None``/empty when the reduced formula has
            no clauses; unassigned surviving variables default to False.

        Returns
        -------
        Assignment
            A complete assignment over the original variable universe that
            satisfies the original formula whenever ``reduced_model``
            satisfies the reduced one.
        """
        if self.status == UNSAT:
            raise PreprocessError("cannot reconstruct a model of an UNSAT instance")
        values: Dict[int, bool] = {}
        if reduced_model is not None:
            known = set(self.variable_map.values())
            for variable in reduced_model:
                if variable not in known:
                    raise PreprocessError(
                        f"reduced model mentions unknown variable x{variable}"
                    )
        for original, reduced in self.variable_map.items():
            value = False if reduced_model is None else reduced_model.get(reduced)
            values[original] = bool(value) if value is not None else False
        extended = self.stack.extend(values)
        for variable in range(1, self.original_num_variables + 1):
            extended.setdefault(variable, False)
        return Assignment(extended)


class Preprocessor:
    """Configurable fixpoint pipeline over the classic simplifications.

    Parameters
    ----------
    techniques:
        Subset of :data:`TECHNIQUES` to run (default: all, in order).
    max_rounds:
        Upper bound on full pipeline rounds (a safety valve; the pipeline
        normally reaches its fixpoint much earlier).
    bve_growth:
        How many clauses beyond the removed count a variable elimination
        may add (0 = SatELite's classic "never grow" rule).
    bve_occurrence_limit:
        Skip BVE for variables occurring more often than this in either
        polarity (bounds the resolvent computation on dense variables).
    """

    def __init__(
        self,
        techniques: Optional[Sequence[str]] = None,
        max_rounds: int = 20,
        bve_growth: int = 0,
        bve_occurrence_limit: int = 16,
    ) -> None:
        chosen = tuple(techniques) if techniques is not None else TECHNIQUES
        unknown = [name for name in chosen if name not in TECHNIQUES]
        if unknown:
            raise PreprocessError(
                f"unknown technique(s) {unknown}; available: {list(TECHNIQUES)}"
            )
        if max_rounds <= 0:
            raise PreprocessError(f"max_rounds must be positive, got {max_rounds}")
        if bve_growth < 0:
            raise PreprocessError(f"bve_growth must be >= 0, got {bve_growth}")
        if bve_occurrence_limit <= 0:
            raise PreprocessError(
                f"bve_occurrence_limit must be positive, got {bve_occurrence_limit}"
            )
        self.techniques = chosen
        self.max_rounds = max_rounds
        self.bve_growth = bve_growth
        self.bve_occurrence_limit = bve_occurrence_limit

    def __repr__(self) -> str:
        return (
            f"Preprocessor(techniques={list(self.techniques)}, "
            f"max_rounds={self.max_rounds}, bve_growth={self.bve_growth}, "
            f"bve_occurrence_limit={self.bve_occurrence_limit})"
        )

    # -- entry point ---------------------------------------------------------
    @staticmethod
    def _expired(deadline: Optional[float]) -> bool:
        return deadline is not None and time.monotonic() >= deadline

    def preprocess(
        self,
        formula: CNFFormula,
        frozen: Iterable[int] = (),
        deadline: Optional[float] = None,
        proof=None,
    ) -> PreprocessResult:
        """Simplify ``formula`` to a fixpoint.

        Parameters
        ----------
        formula:
            The input CNF instance.
        frozen:
            Variables that must survive into the reduced formula untouched
            (no technique may eliminate them or drop clauses on their
            account). Assumption variables of a later solve belong here.
        deadline:
            Optional ``time.monotonic()`` value after which simplification
            stops cooperatively: the pipeline checks it at the start of
            each round and before the expensive passes (subsumption, BVE),
            so an expired budget overshoots by at most one technique pass.
            The partially-simplified result is sound — every state between
            technique passes is equisatisfiable with reconstruction —
            and is flagged via :attr:`PreprocessStats.interrupted`.
        proof:
            Optional :class:`~repro.proofs.ProofLog` to record DRAT lines
            into: every strengthening and every BVE resolvent becomes an
            addition (emitted while its antecedent clauses are still
            alive, so each line is RUP), every removed clause a deletion.
            Lines use the *original* variable numbering — the compact
            renumbering of :meth:`_build_result` happens after all
            emission — so a refutation extends seamlessly into a proof
            checkable against the input formula.
        """
        trace_span = _telemetry.span("preprocess")
        started = time.perf_counter()
        with trace_span:
            frozen_set = frozenset(abs(int(v)) for v in frozen)
            for variable in frozen_set:
                if variable <= 0:
                    raise PreprocessError(f"invalid frozen variable {variable}")
            stats = PreprocessStats(
                original_variables=formula.num_variables,
                original_clauses=formula.num_clauses,
                original_literals=formula.num_literals,
            )
            if trace_span.recording:
                trace_span.set(
                    variables=formula.num_variables,
                    clauses=formula.num_clauses,
                    frozen=len(frozen_set),
                )
            db, stats.tautologies_removed = ClauseDatabase.from_formula(formula)
            stack = ReconstructionStack()
            conflict = False
            try:
                if db.has_empty_clause():
                    raise _Conflict()
                while stats.rounds < self.max_rounds:
                    if self._expired(deadline):
                        stats.interrupted = True
                        break
                    stats.rounds += 1
                    changed = False
                    if "units" in self.techniques:
                        changed |= self._propagate_units(
                            db, stack, stats, frozen_set, proof
                        )
                    if "pure" in self.techniques:
                        changed |= self._eliminate_pure(
                            db, stack, stats, frozen_set, proof
                        )
                    if self._expired(deadline):
                        stats.interrupted = True
                        break
                    if "subsumption" in self.techniques:
                        changed |= self._subsume_and_strengthen(db, stats, proof)
                    if "bce" in self.techniques:
                        changed |= self._eliminate_blocked(
                            db, stack, stats, frozen_set, proof
                        )
                    if self._expired(deadline):
                        stats.interrupted = True
                        break
                    if "bve" in self.techniques:
                        changed |= self._eliminate_variables(
                            db, stack, stats, frozen_set, proof
                        )
                    if not changed:
                        break
            except _Conflict:
                conflict = True

            result = self._build_result(
                db, stack, stats, formula.num_variables, frozen_set, conflict
            )
            stats.elapsed_seconds = time.perf_counter() - started
            if trace_span.recording:
                trace_span.set(
                    status=result.status,
                    rounds=stats.rounds,
                    reduced_variables=stats.reduced_variables,
                    reduced_clauses=stats.reduced_clauses,
                    interrupted=stats.interrupted,
                    elapsed_seconds=stats.elapsed_seconds,
                )
        if _telemetry.active():
            _telemetry.record_preprocess(stats, result.status)
        return result

    # -- techniques ----------------------------------------------------------
    def _propagate_units(
        self,
        db: ClauseDatabase,
        stack: ReconstructionStack,
        stats: PreprocessStats,
        frozen: frozenset[int],
        proof=None,
    ) -> bool:
        changed = False
        queue = [
            cid
            for cid in db.alive_ids()
            if len(db.clause(cid)) == 1
            and abs(next(iter(db.clause(cid)))) not in frozen
        ]
        while queue:
            cid = queue.pop()
            if not db.is_alive(cid):
                continue
            literals = db.clause(cid)
            if len(literals) != 1:
                continue
            lit = next(iter(literals))
            if abs(lit) in frozen:
                continue
            stack.push_forced(lit)
            stats.units_propagated += 1
            changed = True
            # Strengthen before deleting the satisfied clauses: the unit
            # clause itself is among the satisfied ones, and each shrunk
            # clause is RUP only while both the unit and the unshrunk
            # original are still part of the proof's active set.
            for shrink in list(db.occurrences(-lit)):
                old = set(db.clause(shrink))
                shrunk = db.strengthen(shrink, -lit)
                if proof is not None:
                    proof.add(shrunk)
                    proof.delete(old)
                if not shrunk:
                    raise _Conflict()
                if len(shrunk) == 1 and abs(next(iter(shrunk))) not in frozen:
                    queue.append(shrink)
            for satisfied in list(db.occurrences(lit)):
                removed = db.remove(satisfied)
                if proof is not None:
                    proof.delete(removed)
        return changed

    def _eliminate_pure(
        self,
        db: ClauseDatabase,
        stack: ReconstructionStack,
        stats: PreprocessStats,
        frozen: frozenset[int],
        proof=None,
    ) -> bool:
        changed = False
        queue = sorted(db.variables() - frozen)
        while queue:
            variable = queue.pop()
            positive = db.occurrences(variable)
            negative = db.occurrences(-variable)
            if bool(positive) == bool(negative):
                continue  # absent, or occurs in both polarities
            pure = variable if positive else -variable
            stack.push_forced(pure)
            stats.pure_literals += 1
            changed = True
            freed: Set[int] = set()
            for cid in list(db.occurrences(pure)):
                if proof is not None:
                    proof.delete(db.clause(cid))
                freed |= db.remove(cid)
            # Removing those clauses may have made further variables pure.
            queue.extend(
                sorted({abs(lit) for lit in freed} - frozen - {variable})
            )
        return changed

    def _subsume_and_strengthen(
        self, db: ClauseDatabase, stats: PreprocessStats, proof=None
    ) -> bool:
        changed = False
        # Forward subsumption, smallest clauses first: C subsumes D ⊇ C.
        for cid in sorted(db.alive_ids(), key=lambda c: len(db.clause(c))):
            if not db.is_alive(cid):
                continue
            literals = db.clause(cid)
            if not literals:
                raise _Conflict()
            pivot = min(literals, key=lambda lit: len(db.occurrences(lit)))
            for other in list(db.occurrences(pivot)):
                if other == cid or not db.is_alive(other):
                    continue
                if literals <= db.clause(other):
                    if proof is not None:
                        proof.delete(db.clause(other))
                    db.remove(other)
                    stats.subsumed_clauses += 1
                    changed = True
        # Self-subsuming resolution: C = R ∪ {l}, D ⊇ R ∪ {¬l} → drop ¬l
        # from D (equivalence-preserving, so no reconstruction step).
        for cid in db.alive_ids():
            if not db.is_alive(cid):
                continue
            for lit in list(db.clause(cid)):
                if not db.is_alive(cid):
                    break
                rest = db.clause(cid) - {lit}
                for other in list(db.occurrences(-lit)):
                    if other == cid or not db.is_alive(other):
                        continue
                    if rest <= (db.clause(other) - {-lit}):
                        old = set(db.clause(other))
                        shrunk = db.strengthen(other, -lit)
                        if proof is not None:
                            # The shrunk clause is the resolvent of C and
                            # the old D on ``lit``; both are still alive,
                            # so the addition is RUP when emitted here.
                            proof.add(shrunk)
                            proof.delete(old)
                        stats.strengthened_literals += 1
                        changed = True
                        if not shrunk:
                            raise _Conflict()
        return changed

    def _eliminate_blocked(
        self,
        db: ClauseDatabase,
        stack: ReconstructionStack,
        stats: PreprocessStats,
        frozen: frozenset[int],
        proof=None,
    ) -> bool:
        changed = False
        for cid in db.alive_ids():
            if not db.is_alive(cid):
                continue
            literals = db.clause(cid)
            for lit in literals:
                if abs(lit) in frozen:
                    continue
                rest = literals - {lit}
                if all(
                    any(-other in db.clause(did) for other in rest)
                    for did in db.occurrences(-lit)
                ):
                    stack.push_blocked(literals, lit)
                    stats.blocked_clauses += 1
                    if proof is not None:
                        proof.delete(literals)
                    db.remove(cid)
                    changed = True
                    break
        return changed

    def _eliminate_variables(
        self,
        db: ClauseDatabase,
        stack: ReconstructionStack,
        stats: PreprocessStats,
        frozen: frozenset[int],
        proof=None,
    ) -> bool:
        changed = False
        candidates = sorted(
            db.variables() - frozen,
            key=lambda v: len(db.occurrences(v)) + len(db.occurrences(-v)),
        )
        for variable in candidates:
            positive = list(db.occurrences(variable))
            negative = list(db.occurrences(-variable))
            if not positive or not negative:
                continue  # absent or pure — the pure pass owns those
            if (
                len(positive) > self.bve_occurrence_limit
                or len(negative) > self.bve_occurrence_limit
            ):
                continue
            resolvents: Set[frozenset[int]] = set()
            for pid in positive:
                for nid in negative:
                    resolvent = (db.clause(pid) - {variable}) | (
                        db.clause(nid) - {-variable}
                    )
                    if not any(-lit in resolvent for lit in resolvent):
                        resolvents.add(resolvent)
            if len(resolvents) > len(positive) + len(negative) + self.bve_growth:
                continue
            removed = [db.clause(cid) for cid in positive + negative]
            if proof is not None:
                # Resolvent additions go out while both parents are still
                # alive (each is RUP via its generating pair); only then
                # the parent deletions.
                for resolvent in sorted(
                    resolvents, key=lambda r: sorted(r, key=abs)
                ):
                    proof.add(resolvent)
            if any(not resolvent for resolvent in resolvents):
                raise _Conflict()
            stack.push_eliminated(variable, removed)
            stats.eliminated_variables += 1
            changed = True
            for cid in positive + negative:
                db.remove(cid)
            if proof is not None:
                for literals in removed:
                    proof.delete(literals)
            for resolvent in resolvents:
                db.add(resolvent)
        return changed

    # -- result assembly -----------------------------------------------------
    def _build_result(
        self,
        db: ClauseDatabase,
        stack: ReconstructionStack,
        stats: PreprocessStats,
        original_num_variables: int,
        frozen: frozenset[int],
        conflict: bool,
    ) -> PreprocessResult:
        if conflict:
            reduced = CNFFormula([Clause([])], 0)
            stats.reduced_variables = 0
            stats.reduced_clauses = 1
            stats.reduced_literals = 0
            return PreprocessResult(
                UNSAT, reduced, {}, stack, original_num_variables, frozen, stats
            )
        survivors = sorted(db.variables() | frozen)
        variable_map = {old: new for new, old in enumerate(survivors, start=1)}
        clauses = [
            Clause.from_ints(
                sorted(
                    (
                        variable_map[abs(lit)] if lit > 0 else -variable_map[abs(lit)]
                        for lit in literals
                    ),
                    key=abs,
                )
            )
            for literals in db.iter_clauses()
        ]
        reduced = CNFFormula(clauses, len(survivors))
        stats.reduced_variables = reduced.num_variables
        stats.reduced_clauses = reduced.num_clauses
        stats.reduced_literals = reduced.num_literals
        status = SAT if reduced.num_clauses == 0 else REDUCED
        return PreprocessResult(
            status, reduced, variable_map, stack, original_num_variables, frozen, stats
        )


def preprocess_formula(
    formula: CNFFormula, frozen: Iterable[int] = (), **options
) -> PreprocessResult:
    """One-shot convenience wrapper: ``Preprocessor(**options).preprocess(...)``."""
    return Preprocessor(**options).preprocess(formula, frozen=frozen)


PreprocessSpec = Union[None, bool, Preprocessor]


def resolve_preprocessor(spec: PreprocessSpec) -> Optional[Preprocessor]:
    """Normalise the ``preprocess=`` argument accepted across the library.

    ``None``/``False`` → no preprocessing; ``True`` → a default-configured
    :class:`Preprocessor`; a :class:`Preprocessor` instance → itself.
    """
    if spec is None or spec is False:
        return None
    if spec is True:
        return Preprocessor()
    if isinstance(spec, Preprocessor):
        return spec
    raise PreprocessError(
        f"preprocess must be None, a bool or a Preprocessor, got {spec!r}"
    )
