"""Random CNF instance generators.

The paper's evaluation uses only two hand-written 2-variable instances; the
scaling and ablation experiments in this reproduction need families of
instances whose satisfiability status and difficulty are controllable. These
generators provide:

* uniform random k-SAT (:func:`random_ksat`),
* *planted* k-SAT instances guaranteed satisfiable (:func:`planted_ksat`),
* a sweep across clause/variable ratios around the 3-SAT phase transition
  (:func:`phase_transition_family`).
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

import numpy as np

from repro.cnf.assignment import Assignment
from repro.cnf.clause import Clause
from repro.cnf.formula import CNFFormula
from repro.cnf.literal import Literal
from repro.exceptions import CNFError
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive_int

#: Empirical location of the random 3-SAT satisfiability phase transition.
PHASE_TRANSITION_RATIO_3SAT = 4.267


def _random_clause(
    num_variables: int,
    k: int,
    rng: np.random.Generator,
    forbid_satisfying: Optional[Assignment] = None,
) -> Clause:
    """Draw one k-clause over distinct variables with random polarities.

    When ``forbid_satisfying`` is given, the clause is redrawn (polarity-wise)
    until it is satisfied by that assignment — this is the planted-instance
    construction, which keeps the planted model a model of every clause.
    """
    variables = rng.choice(num_variables, size=k, replace=False) + 1
    while True:
        polarities = rng.integers(0, 2, size=k).astype(bool)
        literals = [Literal(int(v), bool(p)) for v, p in zip(variables, polarities)]
        clause = Clause(literals)
        if forbid_satisfying is None:
            return clause
        if clause.evaluate(forbid_satisfying.as_dict()):
            return clause


def random_ksat(
    num_variables: int,
    num_clauses: int,
    k: int = 3,
    seed: SeedLike = None,
) -> CNFFormula:
    """Uniform random k-SAT: ``num_clauses`` clauses of ``k`` distinct variables.

    Clauses may repeat (as in the standard fixed-clause-length model), but a
    single clause never repeats a variable, so tautological clauses cannot
    occur.
    """
    check_positive_int(num_variables, "num_variables")
    check_positive_int(num_clauses, "num_clauses")
    check_positive_int(k, "k")
    if k > num_variables:
        raise CNFError(f"k={k} exceeds num_variables={num_variables}")
    rng = as_generator(seed)
    clauses = [_random_clause(num_variables, k, rng) for _ in range(num_clauses)]
    return CNFFormula(clauses, num_variables)


def planted_ksat(
    num_variables: int,
    num_clauses: int,
    k: int = 3,
    seed: SeedLike = None,
) -> tuple[CNFFormula, Assignment]:
    """Random k-SAT with a *planted* satisfying assignment.

    Returns the formula together with the planted model (every clause is
    satisfied by it by construction), which the validation experiments use as
    ground truth for Algorithm 2.
    """
    check_positive_int(num_variables, "num_variables")
    check_positive_int(num_clauses, "num_clauses")
    check_positive_int(k, "k")
    if k > num_variables:
        raise CNFError(f"k={k} exceeds num_variables={num_variables}")
    rng = as_generator(seed)
    planted_values = rng.integers(0, 2, size=num_variables).astype(bool)
    planted = Assignment(
        {var: bool(planted_values[var - 1]) for var in range(1, num_variables + 1)}
    )
    clauses = [
        _random_clause(num_variables, k, rng, forbid_satisfying=planted)
        for _ in range(num_clauses)
    ]
    return CNFFormula(clauses, num_variables), planted


def phase_transition_family(
    num_variables: int,
    ratios: Sequence[float] = (3.0, 3.5, 4.0, PHASE_TRANSITION_RATIO_3SAT, 4.5, 5.0),
    k: int = 3,
    seed: SeedLike = None,
) -> Iterator[tuple[float, CNFFormula]]:
    """Yield ``(ratio, formula)`` pairs sweeping the clause/variable ratio.

    Instances below the phase transition are almost surely satisfiable;
    instances above are almost surely unsatisfiable. The NBL hybrid and
    baseline comparison experiments use this family.
    """
    check_positive_int(num_variables, "num_variables")
    rng = as_generator(seed)
    for ratio in ratios:
        if ratio <= 0:
            raise CNFError(f"clause/variable ratio must be positive, got {ratio}")
        num_clauses = max(1, int(round(ratio * num_variables)))
        yield float(ratio), random_ksat(num_variables, num_clauses, k, rng)
