"""Structured CNF instance families.

These are the standard "named" instances used in EDA/SAT research to probe
specific solver behaviours:

* :func:`pigeonhole_formula` — provably unsatisfiable for holes < pigeons,
  the classic hard family for resolution-based solvers;
* :func:`graph_coloring_formula` — SAT encodings of graph k-colouring, the
  intro's logic-synthesis-flavoured workload;
* :func:`parity_chain_formula` — XOR/parity chains in CNF, small but with a
  single satisfying assignment spread across all variables.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Sequence

from repro.cnf.clause import Clause
from repro.cnf.formula import CNFFormula
from repro.cnf.literal import Literal
from repro.exceptions import CNFError
from repro.utils.validation import check_nonnegative_int, check_positive_int


def pigeonhole_formula(pigeons: int, holes: int) -> CNFFormula:
    """The pigeonhole principle PHP(pigeons, holes) in CNF.

    Variable ``p_{i,j}`` ("pigeon i sits in hole j") is numbered
    ``(i - 1) * holes + j``. The formula asserts every pigeon sits somewhere
    and no hole hosts two pigeons; it is satisfiable iff
    ``pigeons <= holes``.
    """
    check_positive_int(pigeons, "pigeons")
    check_positive_int(holes, "holes")

    def var(i: int, j: int) -> int:
        return (i - 1) * holes + j

    clauses: list[Clause] = []
    for i in range(1, pigeons + 1):
        clauses.append(Clause([Literal(var(i, j)) for j in range(1, holes + 1)]))
    for j in range(1, holes + 1):
        for i1, i2 in itertools.combinations(range(1, pigeons + 1), 2):
            clauses.append(
                Clause([Literal(var(i1, j), False), Literal(var(i2, j), False)])
            )
    return CNFFormula(clauses, pigeons * holes)


def cycle_graph_edges(num_vertices: int) -> list[tuple[int, int]]:
    """Edges of the cycle graph ``C_n`` on vertices ``0..n-1``."""
    check_positive_int(num_vertices, "num_vertices")
    if num_vertices == 1:
        return []
    if num_vertices == 2:
        return [(0, 1)]
    return [(v, (v + 1) % num_vertices) for v in range(num_vertices)]


def complete_graph_edges(num_vertices: int) -> list[tuple[int, int]]:
    """Edges of the complete graph ``K_n`` on vertices ``0..n-1``."""
    check_positive_int(num_vertices, "num_vertices")
    return list(itertools.combinations(range(num_vertices), 2))


def graph_coloring_formula(
    edges: Iterable[tuple[int, int]],
    num_vertices: int,
    num_colors: int,
) -> CNFFormula:
    """CNF encoding of proper ``num_colors``-colouring of a graph.

    Vertices are ``0..num_vertices-1``; variable ``c_{v,k}`` ("vertex v takes
    colour k") is numbered ``v * num_colors + k + 1``. Constraints: every
    vertex takes at least one colour, at most one colour, and adjacent
    vertices differ.
    """
    check_positive_int(num_vertices, "num_vertices")
    check_positive_int(num_colors, "num_colors")

    def var(vertex: int, color: int) -> int:
        return vertex * num_colors + color + 1

    clauses: list[Clause] = []
    for vertex in range(num_vertices):
        clauses.append(Clause([Literal(var(vertex, c)) for c in range(num_colors)]))
        for c1, c2 in itertools.combinations(range(num_colors), 2):
            clauses.append(
                Clause([Literal(var(vertex, c1), False), Literal(var(vertex, c2), False)])
            )
    for u, v in edges:
        if not (0 <= u < num_vertices and 0 <= v < num_vertices):
            raise CNFError(f"edge ({u}, {v}) references a vertex out of range")
        if u == v:
            raise CNFError(f"self-loop ({u}, {v}) cannot be properly coloured")
        for c in range(num_colors):
            clauses.append(
                Clause([Literal(var(u, c), False), Literal(var(v, c), False)])
            )
    return CNFFormula(clauses, num_vertices * num_colors)


def parity_chain_formula(num_variables: int, parity: int = 1) -> CNFFormula:
    """CNF asserting ``x_1 XOR x_2 XOR ... XOR x_n = parity``.

    Encoded directly (without auxiliary variables) as the conjunction of all
    clauses that forbid assignments of the wrong parity; clause count grows
    as ``2^{n-1}``, so this is intended for the small ``n`` regimes the NBL
    engines operate in. The formula has exactly ``2^{n-1}`` models.
    """
    check_positive_int(num_variables, "num_variables")
    check_nonnegative_int(parity, "parity")
    if parity not in (0, 1):
        raise CNFError(f"parity must be 0 or 1, got {parity}")

    clauses: list[Clause] = []
    for bits in itertools.product((0, 1), repeat=num_variables):
        if sum(bits) % 2 != parity:
            # Forbid this assignment: the clause is the disjunction of the
            # complemented literals of the assignment.
            clauses.append(
                Clause(
                    [
                        Literal(i + 1, not bool(bit))
                        for i, bit in enumerate(bits)
                    ]
                )
            )
    return CNFFormula(clauses, num_variables)


def all_equal_formula(num_variables: int) -> CNFFormula:
    """CNF asserting all variables take the same value (2 models)."""
    check_positive_int(num_variables, "num_variables")
    clauses: list[Clause] = []
    for i in range(1, num_variables):
        clauses.append(Clause([Literal(i, False), Literal(i + 1, True)]))
        clauses.append(Clause([Literal(i, True), Literal(i + 1, False)]))
    if num_variables == 1:
        return CNFFormula([], 1)
    return CNFFormula(clauses, num_variables)
