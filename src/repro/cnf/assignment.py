"""Assignments of truth values to variables (complete or partial)."""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Optional, Tuple, Union

from repro.cnf.literal import Literal
from repro.exceptions import AssignmentError


class Assignment:
    """A (possibly partial) mapping from 1-based variables to Boolean values.

    The class behaves like a read-only mapping and adds SAT-specific helpers:
    conversion to/from literal lists and minterm indices, extension,
    consistency checks and pretty printing in the paper's cube notation
    (``x1 ~x2 x3``).
    """

    def __init__(self, values: Optional[Mapping[int, bool]] = None) -> None:
        self._values: Dict[int, bool] = {}
        if values:
            for var, val in values.items():
                self._set(var, val)

    def _set(self, variable: int, value: bool) -> None:
        if isinstance(variable, bool) or not isinstance(variable, int):
            raise AssignmentError(
                f"variable must be an int, got {type(variable).__name__}"
            )
        if variable <= 0:
            raise AssignmentError(f"variable must be >= 1, got {variable}")
        value = bool(value)
        if variable in self._values and self._values[variable] != value:
            raise AssignmentError(
                f"conflicting values for x{variable}: "
                f"{self._values[variable]} vs {value}"
            )
        self._values[variable] = value

    # -- constructors --------------------------------------------------------
    @classmethod
    def from_trusted_model(cls, values: Dict[int, bool]) -> "Assignment":
        """Adopt a pre-validated ``{variable: bool}`` dict without copying.

        For solver hot paths returning models they constructed themselves
        (keys already 1-based ints, values already bools): skips the
        per-variable validation of ``__init__``. The dict is adopted, not
        copied — the caller must not mutate it afterwards.
        """
        assignment = cls()
        assignment._values = values
        return assignment

    @classmethod
    def from_literals(cls, literals: Iterable[Union[Literal, int]]) -> "Assignment":
        """Build an assignment that makes every listed literal true."""
        assignment = cls()
        for lit in literals:
            literal = lit if isinstance(lit, Literal) else Literal.from_int(lit)
            assignment._set(literal.variable, literal.positive)
        return assignment

    @classmethod
    def from_minterm_index(cls, index: int, num_variables: int) -> "Assignment":
        """Build the complete assignment encoded by a minterm index.

        Bit ``i`` (least significant) of ``index`` gives the value of variable
        ``i + 1``. This is the convention used throughout
        :mod:`repro.hyperspace`.
        """
        if index < 0 or index >= (1 << num_variables):
            raise AssignmentError(
                f"minterm index {index} out of range for {num_variables} variables"
            )
        return cls(
            {var: bool((index >> (var - 1)) & 1) for var in range(1, num_variables + 1)}
        )

    # -- mapping protocol ------------------------------------------------------
    def __getitem__(self, variable: int) -> bool:
        try:
            return self._values[variable]
        except KeyError as exc:
            raise AssignmentError(f"variable x{variable} is unassigned") from exc

    def get(self, variable: int, default: Optional[bool] = None) -> Optional[bool]:
        """Return the value of ``variable`` or ``default`` if unassigned."""
        return self._values.get(variable, default)

    def __contains__(self, variable: int) -> bool:
        return variable in self._values

    def __iter__(self) -> Iterator[int]:
        return iter(sorted(self._values))

    def __len__(self) -> int:
        return len(self._values)

    def items(self) -> Iterator[Tuple[int, bool]]:
        """Iterate ``(variable, value)`` pairs in variable order."""
        for var in sorted(self._values):
            yield var, self._values[var]

    def as_dict(self) -> Dict[int, bool]:
        """A plain ``dict`` copy of the assignment."""
        return dict(self._values)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Assignment):
            return self._values == other._values
        if isinstance(other, Mapping):
            return self._values == dict(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(tuple(sorted(self._values.items())))

    # -- SAT-specific helpers ---------------------------------------------------
    def is_complete(self, num_variables: int) -> bool:
        """``True`` when every variable ``1..num_variables`` is assigned."""
        return all(var in self._values for var in range(1, num_variables + 1))

    def assigned_variables(self) -> set[int]:
        """The set of assigned variable indices."""
        return set(self._values)

    def extended(self, variable: int, value: bool) -> "Assignment":
        """A copy of this assignment with ``variable`` additionally bound."""
        new = Assignment(self._values)
        new._set(variable, value)
        return new

    def updated(self, other: Mapping[int, bool]) -> "Assignment":
        """A copy extended with every binding of ``other`` (must be consistent)."""
        new = Assignment(self._values)
        for var, val in other.items():
            new._set(var, val)
        return new

    def satisfies_literal(self, literal: Literal) -> Optional[bool]:
        """Truth value of ``literal`` under this assignment, ``None`` if free."""
        value = self._values.get(literal.variable)
        if value is None:
            return None
        return literal.evaluate(value)

    def to_literals(self) -> list[Literal]:
        """The assignment as a list of true literals (cube form)."""
        return [Literal(var, val) for var, val in self.items()]

    def to_minterm_index(self, num_variables: int) -> int:
        """Encode a complete assignment as a minterm index (see above)."""
        if not self.is_complete(num_variables):
            raise AssignmentError(
                "cannot convert a partial assignment to a minterm index"
            )
        index = 0
        for var in range(1, num_variables + 1):
            if self._values[var]:
                index |= 1 << (var - 1)
        return index

    def __str__(self) -> str:
        if not self._values:
            return "(empty assignment)"
        return " ".join(str(lit) for lit in self.to_literals())

    def __repr__(self) -> str:
        return f"Assignment({self._values!r})"
