"""CNF substrate: literals, clauses, formulas, I/O and instance generators.

This subpackage is the Boolean-side foundation of the library. Every engine
(the NBL-SAT engines, the baseline solvers, the analog compiler) consumes
:class:`~repro.cnf.formula.CNFFormula` objects built from
:class:`~repro.cnf.literal.Literal` and :class:`~repro.cnf.clause.Clause`.
"""

from repro.cnf.literal import Literal
from repro.cnf.clause import Clause
from repro.cnf.formula import CNFFormula
from repro.cnf.assignment import Assignment
from repro.cnf.dimacs import (
    parse_dimacs,
    parse_dimacs_file,
    to_dimacs,
    write_dimacs_file,
)
from repro.cnf.evaluate import (
    evaluate_clause,
    evaluate_formula,
    count_models,
    enumerate_models,
    satisfying_minterm_mask,
)
from repro.cnf.simplify import (
    unit_propagate,
    pure_literal_eliminate,
    simplify_formula,
    SimplificationResult,
)
from repro.cnf.generators import (
    random_ksat,
    planted_ksat,
    phase_transition_family,
)
from repro.cnf.structured import (
    pigeonhole_formula,
    graph_coloring_formula,
    parity_chain_formula,
    all_equal_formula,
    cycle_graph_edges,
    complete_graph_edges,
)
from repro.cnf.paper_instances import (
    section4_sat_instance,
    section4_unsat_instance,
    example5_instance,
    example6_instance,
    example7_instance,
    paper_instances,
)

__all__ = [
    "Literal",
    "Clause",
    "CNFFormula",
    "Assignment",
    "parse_dimacs",
    "parse_dimacs_file",
    "to_dimacs",
    "write_dimacs_file",
    "evaluate_clause",
    "evaluate_formula",
    "count_models",
    "enumerate_models",
    "satisfying_minterm_mask",
    "unit_propagate",
    "pure_literal_eliminate",
    "simplify_formula",
    "SimplificationResult",
    "random_ksat",
    "planted_ksat",
    "phase_transition_family",
    "pigeonhole_formula",
    "graph_coloring_formula",
    "parity_chain_formula",
    "all_equal_formula",
    "cycle_graph_edges",
    "complete_graph_edges",
    "section4_sat_instance",
    "section4_unsat_instance",
    "example5_instance",
    "example6_instance",
    "example7_instance",
    "paper_instances",
]
