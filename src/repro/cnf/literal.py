"""Literal: a Boolean variable or its negation (paper Definition 1)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import CNFError


@dataclass(frozen=True, order=True)
class Literal:
    """A literal ``x_v`` (positive) or ``~x_v`` (negative).

    Variables are 1-based integers, matching DIMACS conventions and the
    paper's ``x_1 ... x_n`` notation.

    Attributes
    ----------
    variable:
        1-based variable index.
    positive:
        ``True`` for the positive literal ``x_v``, ``False`` for ``~x_v``.
    """

    variable: int
    positive: bool = True

    def __post_init__(self) -> None:
        if isinstance(self.variable, bool) or not isinstance(self.variable, int):
            raise CNFError(
                f"literal variable must be an int, got {type(self.variable).__name__}"
            )
        if self.variable <= 0:
            raise CNFError(f"literal variable must be >= 1, got {self.variable}")
        if not isinstance(self.positive, bool):
            raise CNFError("literal polarity must be a bool")

    # -- constructors --------------------------------------------------------
    @classmethod
    def from_int(cls, encoded: int) -> "Literal":
        """Build a literal from its DIMACS integer encoding (``-3`` → ``~x_3``)."""
        if encoded == 0:
            raise CNFError("0 is not a valid DIMACS literal (it terminates clauses)")
        return cls(abs(encoded), encoded > 0)

    @classmethod
    def positive_of(cls, variable: int) -> "Literal":
        """The positive literal of ``variable``."""
        return cls(variable, True)

    @classmethod
    def negative_of(cls, variable: int) -> "Literal":
        """The negative literal of ``variable``."""
        return cls(variable, False)

    # -- operations ----------------------------------------------------------
    def negate(self) -> "Literal":
        """Return the complementary literal."""
        return Literal(self.variable, not self.positive)

    def __neg__(self) -> "Literal":
        return self.negate()

    def __invert__(self) -> "Literal":
        return self.negate()

    def to_int(self) -> int:
        """DIMACS integer encoding of this literal."""
        return self.variable if self.positive else -self.variable

    def evaluate(self, value: bool) -> bool:
        """Truth value of this literal when its variable takes ``value``."""
        return value if self.positive else not value

    def __str__(self) -> str:
        return f"x{self.variable}" if self.positive else f"~x{self.variable}"

    def __repr__(self) -> str:
        return f"Literal({self.to_int():+d})"
