"""DIMACS CNF reading and writing.

The DIMACS format is the de-facto interchange format for SAT instances:

.. code-block:: text

    c a comment
    p cnf <num_variables> <num_clauses>
    1 -2 0
    2 3 0

Only the ``cnf`` problem type is supported. Clauses may span multiple lines
and multiple clauses may share a line, exactly as the format allows.
"""

from __future__ import annotations

import os
from typing import Iterable, Union

from repro.cnf.formula import CNFFormula
from repro.exceptions import DimacsParseError

PathLike = Union[str, os.PathLike]


def parse_dimacs(text: str) -> CNFFormula:
    """Parse a DIMACS CNF string into a :class:`CNFFormula`.

    Raises
    ------
    DimacsParseError
        On missing/malformed problem line, non-integer tokens, variable
        indices out of range, or a clause count that does not match the
        header.
    """
    num_variables: int | None = None
    declared_clauses: int | None = None
    clauses: list[list[int]] = []
    current: list[int] = []

    for line_no, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("%"):
            # Some benchmark suites terminate files with "%" and a stray "0".
            break
        if line.startswith("p"):
            if num_variables is not None:
                raise DimacsParseError(f"line {line_no}: duplicate problem line")
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise DimacsParseError(
                    f"line {line_no}: malformed problem line {line!r}"
                )
            try:
                num_variables = int(parts[2])
                declared_clauses = int(parts[3])
            except ValueError as exc:
                raise DimacsParseError(
                    f"line {line_no}: non-integer counts in problem line"
                ) from exc
            if num_variables < 0 or declared_clauses < 0:
                raise DimacsParseError(
                    f"line {line_no}: negative counts in problem line"
                )
            continue
        if num_variables is None:
            raise DimacsParseError(
                f"line {line_no}: clause data before the problem line"
            )
        for token in line.split():
            try:
                value = int(token)
            except ValueError as exc:
                raise DimacsParseError(
                    f"line {line_no}: non-integer literal {token!r}"
                ) from exc
            if value == 0:
                clauses.append(current)
                current = []
            else:
                if abs(value) > num_variables:
                    raise DimacsParseError(
                        f"line {line_no}: literal {value} exceeds declared "
                        f"variable count {num_variables}"
                    )
                current.append(value)

    if num_variables is None:
        raise DimacsParseError("missing problem line ('p cnf n m')")
    if current:
        # A final clause without the terminating 0 is tolerated (some
        # generators emit this); it is still a complete clause.
        clauses.append(current)
    if declared_clauses is not None and len(clauses) != declared_clauses:
        raise DimacsParseError(
            f"problem line declares {declared_clauses} clauses but "
            f"{len(clauses)} were found"
        )
    return CNFFormula.from_ints(clauses, num_variables)


def parse_dimacs_file(path: PathLike) -> CNFFormula:
    """Parse the DIMACS CNF file at ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_dimacs(handle.read())


def to_dimacs(formula: CNFFormula, comments: Iterable[str] = ()) -> str:
    """Serialise ``formula`` to a DIMACS CNF string."""
    lines = [f"c {comment}" for comment in comments]
    lines.append(f"p cnf {formula.num_variables} {formula.num_clauses}")
    for clause in formula:
        lines.append(" ".join(str(v) for v in clause.to_ints()) + " 0")
    return "\n".join(lines) + "\n"


def write_dimacs_file(
    formula: CNFFormula, path: PathLike, comments: Iterable[str] = ()
) -> None:
    """Write ``formula`` to ``path`` in DIMACS CNF format."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_dimacs(formula, comments))
