"""The concrete CNF instances that appear in the paper.

Section IV validates the NBL-SAT checker on one unsatisfiable and one
satisfiable instance, each with ``n = 2`` variables and ``m = 4`` clauses.
The examples of Section III (Examples 5-8) are also reproduced here so tests
and documentation can refer to them by name.

Note on ``S_SAT``: the arXiv text renders the overlines of the satisfiable
example inconsistently ("(x1 + x2) · (x1 + x2) · (x1 + x2) · (x1 + x2)"), but
states that *the first clause is redundant* and was added only to bring the
clause count to four. We therefore reconstruct it as

    (x1 + x2) · (x1 + x2) · (~x1 + x2) · (~x1 + ~x2)

which has four clauses, a duplicated (redundant) first clause, and exactly
one satisfying assignment ``x1 = 0, x2 = 1`` — matching every property the
paper states. This assumption is recorded in DESIGN.md and EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.cnf.formula import CNFFormula

__all__ = [
    "section4_unsat_instance",
    "section4_sat_instance",
    "example5_instance",
    "example6_instance",
    "example7_instance",
    "paper_instances",
]


def section4_unsat_instance() -> CNFFormula:
    """``S_UNSAT = (x1+x2)·(x1+~x2)·(~x1+x2)·(~x1+~x2)`` — all four 2-clauses.

    Unsatisfiable: the four clauses jointly forbid every one of the four
    assignments over ``{x1, x2}``.
    """
    return CNFFormula.from_ints(
        [[1, 2], [1, -2], [-1, 2], [-1, -2]], num_variables=2
    )


def section4_sat_instance() -> CNFFormula:
    """``S_SAT = (x1+x2)·(x1+x2)·(~x1+x2)·(~x1+~x2)`` (see module docstring).

    Satisfiable with the single model ``x1 = 0, x2 = 1``; the first clause is
    the redundant duplicate the paper describes, keeping ``m = 4``.
    """
    return CNFFormula.from_ints(
        [[1, 2], [1, 2], [-1, 2], [-1, -2]], num_variables=2
    )


def example5_instance() -> CNFFormula:
    """Example 5: ``S = (x1)·(x2+~x3)·(~x1+x3)·(x1+~x2+x3)`` (3 variables)."""
    return CNFFormula.from_ints(
        [[1], [2, -3], [-1, 3], [1, -2, 3]], num_variables=3
    )


def example6_instance() -> CNFFormula:
    """Example 6: ``S = (x1+x2)·(~x1+~x2)`` — satisfiable, two models."""
    return CNFFormula.from_ints([[1, 2], [-1, -2]], num_variables=2)


def example7_instance() -> CNFFormula:
    """Example 7: ``S = (x1)·(~x1)`` — the minimal unsatisfiable instance."""
    return CNFFormula.from_ints([[1], [-1]], num_variables=1)


def paper_instances() -> dict[str, CNFFormula]:
    """All named paper instances keyed by a short identifier."""
    return {
        "section4_unsat": section4_unsat_instance(),
        "section4_sat": section4_sat_instance(),
        "example5": example5_instance(),
        "example6": example6_instance(),
        "example7": example7_instance(),
    }
