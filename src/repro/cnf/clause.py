"""Clause: a disjunction of literals (paper Definition 3)."""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Union

from repro.cnf.literal import Literal
from repro.exceptions import CNFError

LiteralLike = Union[Literal, int]


def _coerce_literal(lit: LiteralLike) -> Literal:
    if isinstance(lit, Literal):
        return lit
    if isinstance(lit, bool):
        raise CNFError("bool is not a valid literal")
    if isinstance(lit, int):
        return Literal.from_int(lit)
    raise CNFError(f"cannot interpret {lit!r} as a literal")


class Clause:
    """An immutable disjunction (OR) of literals.

    Duplicate literals are removed; the literal order is normalised by
    variable index then polarity so structurally equal clauses compare and
    hash equal.
    """

    __slots__ = ("_literals",)

    def __init__(self, literals: Iterable[LiteralLike]) -> None:
        coerced = [_coerce_literal(lit) for lit in literals]
        if not coerced:
            # An empty clause is allowed — it is the canonical "falsum" used
            # by resolution/simplification — but most constructors go through
            # CNFFormula which tracks it explicitly.
            self._literals: tuple[Literal, ...] = ()
            return
        unique = sorted(set(coerced), key=lambda l: (l.variable, not l.positive))
        self._literals = tuple(unique)

    # -- basic protocol -----------------------------------------------------
    @property
    def literals(self) -> tuple[Literal, ...]:
        """The clause's literals in canonical order."""
        return self._literals

    def __iter__(self) -> Iterator[Literal]:
        return iter(self._literals)

    def __len__(self) -> int:
        return len(self._literals)

    def __contains__(self, lit: LiteralLike) -> bool:
        return _coerce_literal(lit) in self._literals

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Clause):
            return NotImplemented
        return self._literals == other._literals

    def __hash__(self) -> int:
        return hash(self._literals)

    def __str__(self) -> str:
        if not self._literals:
            return "(⊥)"
        return "(" + " + ".join(str(lit) for lit in self._literals) + ")"

    def __repr__(self) -> str:
        return f"Clause({[lit.to_int() for lit in self._literals]})"

    # -- queries ------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        """``True`` for the empty (unsatisfiable) clause."""
        return not self._literals

    @property
    def is_unit(self) -> bool:
        """``True`` when the clause has exactly one literal."""
        return len(self._literals) == 1

    def variables(self) -> set[int]:
        """The set of variable indices mentioned by this clause."""
        return {lit.variable for lit in self._literals}

    def is_tautology(self) -> bool:
        """``True`` when the clause contains a literal and its negation."""
        seen: dict[int, bool] = {}
        for lit in self._literals:
            if lit.variable in seen and seen[lit.variable] != lit.positive:
                return True
            seen[lit.variable] = lit.positive
        return False

    def evaluate(self, assignment: Mapping[int, bool]) -> bool:
        """Evaluate under a complete assignment ``variable -> bool``.

        Raises :class:`CNFError` if a variable of the clause is unassigned.
        """
        for lit in self._literals:
            if lit.variable not in assignment:
                raise CNFError(f"variable x{lit.variable} is unassigned")
            if lit.evaluate(assignment[lit.variable]):
                return True
        return False

    def status_under(self, partial: Mapping[int, bool]) -> str:
        """Clause status under a *partial* assignment.

        Returns one of ``"satisfied"``, ``"falsified"``, ``"unit"`` or
        ``"unresolved"``. ``"unit"`` means exactly one literal is still free
        and all others are false.
        """
        free = 0
        for lit in self._literals:
            if lit.variable not in partial:
                free += 1
            elif lit.evaluate(partial[lit.variable]):
                return "satisfied"
        if free == 0:
            return "falsified"
        if free == 1:
            return "unit"
        return "unresolved"

    def unassigned_literals(self, partial: Mapping[int, bool]) -> list[Literal]:
        """Literals whose variables are not bound by ``partial``."""
        return [lit for lit in self._literals if lit.variable not in partial]

    def to_ints(self) -> list[int]:
        """DIMACS integer encoding of the clause (without the trailing 0)."""
        return [lit.to_int() for lit in self._literals]

    # -- construction helpers -------------------------------------------------
    @classmethod
    def from_ints(cls, encoded: Iterable[int]) -> "Clause":
        """Build a clause from DIMACS-style signed integers."""
        return cls([Literal.from_int(v) for v in encoded])

    def without_variable(self, variable: int) -> "Clause":
        """A copy of the clause with every literal of ``variable`` removed."""
        return Clause([lit for lit in self._literals if lit.variable != variable])
