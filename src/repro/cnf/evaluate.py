"""Exhaustive evaluation utilities: truth tables, model counting.

These routines enumerate the full 2^n assignment space with vectorised NumPy
bit arithmetic, so they are practical up to roughly ``n = 24``. They provide
ground truth for the NBL-SAT engines (which the paper validates only on tiny
instances) and power the exact/symbolic engine in :mod:`repro.core.symbolic`.
"""

from __future__ import annotations

from typing import Iterator, Mapping

import numpy as np

from repro.cnf.assignment import Assignment
from repro.cnf.clause import Clause
from repro.cnf.formula import CNFFormula
from repro.exceptions import CNFError

#: Enumerating more variables than this would allocate > 2^26 bytes per mask.
MAX_ENUMERATION_VARIABLES = 26


def evaluate_clause(clause: Clause, assignment: Mapping[int, bool]) -> bool:
    """Evaluate a single clause under a complete assignment."""
    return clause.evaluate(assignment)


def evaluate_formula(formula: CNFFormula, assignment: Mapping[int, bool]) -> bool:
    """Evaluate a formula under a complete assignment."""
    return formula.evaluate(assignment)


def _check_enumerable(num_variables: int) -> None:
    if num_variables > MAX_ENUMERATION_VARIABLES:
        raise CNFError(
            f"exhaustive enumeration over {num_variables} variables is not "
            f"supported (limit {MAX_ENUMERATION_VARIABLES})"
        )


def clause_minterm_mask(clause: Clause, num_variables: int) -> np.ndarray:
    """Boolean vector of length ``2^num_variables``: which minterms satisfy ``clause``.

    Minterm index bit ``i`` holds the value of variable ``i + 1`` (the
    convention shared with :class:`repro.cnf.assignment.Assignment` and
    :mod:`repro.hyperspace`).
    """
    _check_enumerable(num_variables)
    size = 1 << num_variables
    indices = np.arange(size, dtype=np.uint32)
    satisfied = np.zeros(size, dtype=bool)
    for lit in clause:
        bit = (indices >> np.uint32(lit.variable - 1)) & np.uint32(1)
        satisfied |= bit.astype(bool) if lit.positive else ~bit.astype(bool)
    return satisfied


def satisfying_minterm_mask(formula: CNFFormula, num_variables: int | None = None) -> np.ndarray:
    """Boolean vector over all minterms: which satisfy the whole formula."""
    n = formula.num_variables if num_variables is None else num_variables
    _check_enumerable(n)
    mask = np.ones(1 << n, dtype=bool)
    for clause in formula:
        mask &= clause_minterm_mask(clause, n)
    return mask


def count_models(formula: CNFFormula) -> int:
    """Exact model count of ``formula`` (exhaustive, small ``n`` only)."""
    if formula.num_variables == 0:
        return 0 if formula.has_empty_clause() else 1
    return int(satisfying_minterm_mask(formula).sum())


def enumerate_models(formula: CNFFormula) -> Iterator[Assignment]:
    """Yield every satisfying assignment of ``formula`` in minterm order."""
    mask = satisfying_minterm_mask(formula)
    for index in np.flatnonzero(mask):
        yield Assignment.from_minterm_index(int(index), formula.num_variables)


def first_model(formula: CNFFormula) -> Assignment | None:
    """The lexicographically first satisfying assignment, or ``None``."""
    for model in enumerate_models(formula):
        return model
    return None
