"""CNF formulas (paper Definition 4) and their basic algebra."""

from __future__ import annotations

import hashlib
from typing import Iterable, Iterator, Mapping, Optional, Sequence, Union

from repro.cnf.clause import Clause, LiteralLike
from repro.cnf.literal import Literal
from repro.exceptions import CNFError

ClauseLike = Union[Clause, Sequence[LiteralLike]]


def _coerce_clause(clause: ClauseLike) -> Clause:
    if isinstance(clause, Clause):
        return clause
    return Clause(clause)


class CNFFormula:
    """A conjunction of clauses over variables ``x_1 .. x_{num_variables}``.

    The formula is immutable: all "mutating" operations return new formulas.

    Parameters
    ----------
    clauses:
        Iterable of :class:`Clause` objects or iterables of literal-likes
        (``Literal`` instances or DIMACS-signed integers).
    num_variables:
        Number of variables in the instance. If omitted it defaults to the
        largest variable index mentioned by any clause; pass it explicitly
        when trailing variables are unconstrained.
    """

    __slots__ = ("_clauses", "_num_variables", "_fingerprint")

    def __init__(
        self,
        clauses: Iterable[ClauseLike],
        num_variables: Optional[int] = None,
    ) -> None:
        coerced = tuple(_coerce_clause(c) for c in clauses)
        max_var = 0
        for clause in coerced:
            for lit in clause:
                max_var = max(max_var, lit.variable)
        if num_variables is None:
            num_variables = max_var
        if num_variables < max_var:
            raise CNFError(
                f"num_variables={num_variables} but clause mentions x{max_var}"
            )
        if num_variables < 0:
            raise CNFError(f"num_variables must be non-negative, got {num_variables}")
        self._clauses = coerced
        self._num_variables = int(num_variables)
        self._fingerprint: Optional[str] = None

    # -- constructors ----------------------------------------------------------
    @classmethod
    def from_ints(
        cls,
        clauses: Iterable[Iterable[int]],
        num_variables: Optional[int] = None,
    ) -> "CNFFormula":
        """Build a formula from DIMACS-style signed integer clauses."""
        return cls([Clause.from_ints(c) for c in clauses], num_variables)

    # -- basic protocol ----------------------------------------------------------
    @property
    def clauses(self) -> tuple[Clause, ...]:
        """The formula's clauses, in input order."""
        return self._clauses

    @property
    def num_variables(self) -> int:
        """Number of variables ``n`` of the instance."""
        return self._num_variables

    @property
    def num_clauses(self) -> int:
        """Number of clauses ``m`` of the instance."""
        return len(self._clauses)

    @property
    def num_literals(self) -> int:
        """Total number of literal occurrences across all clauses."""
        return sum(len(c) for c in self._clauses)

    def __iter__(self) -> Iterator[Clause]:
        return iter(self._clauses)

    def __len__(self) -> int:
        return len(self._clauses)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CNFFormula):
            return NotImplemented
        return (
            self._clauses == other._clauses
            and self._num_variables == other._num_variables
        )

    def __hash__(self) -> int:
        return hash((self._clauses, self._num_variables))

    def __str__(self) -> str:
        if not self._clauses:
            return "(empty CNF)"
        return " · ".join(str(c) for c in self._clauses)

    def __repr__(self) -> str:
        return (
            f"CNFFormula(num_variables={self._num_variables}, "
            f"num_clauses={self.num_clauses})"
        )

    def fingerprint(self) -> str:
        """Canonical content hash of the formula (hex SHA-256).

        The hash covers ``num_variables`` and the *sorted* multiset of
        clauses (each clause already normalises its literal order), so two
        formulas that differ only in clause order — or in literal order
        within a clause — fingerprint identically. The result-cache of
        :mod:`repro.runtime` keys on this value.
        """
        if self._fingerprint is None:
            digest = hashlib.sha256()
            digest.update(f"p cnf {self._num_variables}\n".encode())
            for ints in sorted(clause.to_ints() for clause in self._clauses):
                digest.update(" ".join(str(v) for v in ints).encode())
                digest.update(b"\n")
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    # -- queries -------------------------------------------------------------------
    def variables(self) -> set[int]:
        """Variables actually mentioned by at least one clause."""
        result: set[int] = set()
        for clause in self._clauses:
            result |= clause.variables()
        return result

    def has_empty_clause(self) -> bool:
        """``True`` if any clause is empty (the formula is trivially UNSAT)."""
        return any(c.is_empty for c in self._clauses)

    def is_ksat(self, k: int) -> bool:
        """``True`` when every clause has exactly ``k`` literals."""
        return all(len(c) == k for c in self._clauses)

    def clause_size_histogram(self) -> dict[int, int]:
        """Mapping ``clause size -> count``."""
        histogram: dict[int, int] = {}
        for clause in self._clauses:
            histogram[len(clause)] = histogram.get(len(clause), 0) + 1
        return histogram

    def evaluate(self, assignment: Mapping[int, bool]) -> bool:
        """Evaluate the formula under a complete assignment."""
        return all(clause.evaluate(assignment) for clause in self._clauses)

    def is_satisfied_by(self, assignment: Mapping[int, bool]) -> bool:
        """Alias of :meth:`evaluate` matching solver terminology."""
        return self.evaluate(assignment)

    def unsatisfied_clauses(self, assignment: Mapping[int, bool]) -> list[Clause]:
        """Clauses falsified by a complete assignment (for local search)."""
        return [c for c in self._clauses if not c.evaluate(assignment)]

    # -- transformations ---------------------------------------------------------
    def with_clause(self, clause: ClauseLike) -> "CNFFormula":
        """A new formula with one extra clause appended."""
        new_clause = _coerce_clause(clause)
        max_var = max(
            [self._num_variables] + [lit.variable for lit in new_clause]
        )
        return CNFFormula(self._clauses + (new_clause,), max_var)

    def with_assumptions(self, assumptions: Iterable[int]) -> "CNFFormula":
        """A new formula with one unit clause per assumption literal.

        ``assumptions`` are DIMACS-signed integers; appending them as unit
        clauses is the from-scratch equivalent of solving this formula under
        those assumptions in an incremental session (the differential tests
        of :mod:`repro.incremental` rely on this equivalence). The variable
        count grows if an assumption mentions a new variable.
        """
        units: list[Clause] = []
        max_var = self._num_variables
        for lit in assumptions:
            if not isinstance(lit, int) or isinstance(lit, bool) or lit == 0:
                raise CNFError(f"invalid assumption literal {lit!r}")
            units.append(Clause([lit]))
            max_var = max(max_var, abs(lit))
        return CNFFormula(self._clauses + tuple(units), max_var)

    def condition(self, variable: int, value: bool) -> "CNFFormula":
        """Condition the formula on ``x_variable = value``.

        Clauses satisfied by the binding are dropped; the bound variable is
        removed from the remaining clauses (possibly producing empty
        clauses). The variable count is preserved so indices stay stable.
        """
        if not 1 <= variable <= self._num_variables:
            raise CNFError(
                f"variable x{variable} out of range 1..{self._num_variables}"
            )
        survivors: list[Clause] = []
        for clause in self._clauses:
            satisfied = False
            remaining: list[Literal] = []
            for lit in clause:
                if lit.variable == variable:
                    if lit.evaluate(value):
                        satisfied = True
                        break
                else:
                    remaining.append(lit)
            if not satisfied:
                survivors.append(Clause(remaining))
        return CNFFormula(survivors, self._num_variables)

    def remove_tautologies(self) -> "CNFFormula":
        """Drop clauses that contain complementary literals."""
        return CNFFormula(
            [c for c in self._clauses if not c.is_tautology()], self._num_variables
        )

    def to_ints(self) -> list[list[int]]:
        """DIMACS integer encoding of all clauses."""
        return [clause.to_ints() for clause in self._clauses]

    def renumbered(self) -> tuple["CNFFormula", dict[int, int]]:
        """Compact variable indices to ``1..k`` (k = #used variables).

        Returns the renumbered formula and the mapping
        ``old variable -> new variable``.
        """
        used = sorted(self.variables())
        mapping = {old: new for new, old in enumerate(used, start=1)}
        clauses = [
            Clause([Literal(mapping[l.variable], l.positive) for l in clause])
            for clause in self._clauses
        ]
        return CNFFormula(clauses, len(used)), mapping
