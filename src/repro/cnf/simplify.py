"""CNF preprocessing: unit propagation and pure-literal elimination.

These classic simplifications are used by the DPLL/CDCL baselines and by the
hybrid CPU+NBL solver to shrink instances before (and between) NBL checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.cnf.clause import Clause
from repro.cnf.formula import CNFFormula
from repro.cnf.literal import Literal


@dataclass
class SimplificationResult:
    """Outcome of a simplification pass.

    Attributes
    ----------
    formula:
        The simplified formula (same variable numbering as the input).
    forced:
        Variable bindings implied by the simplification (unit clauses and
        pure literals).
    conflict:
        ``True`` when simplification derived the empty clause, i.e. the input
        (under the already-forced bindings) is unsatisfiable.
    """

    formula: CNFFormula
    forced: Dict[int, bool] = field(default_factory=dict)
    conflict: bool = False


def unit_propagate(
    formula: CNFFormula, assignment: Optional[Dict[int, bool]] = None
) -> SimplificationResult:
    """Repeatedly assign the literal of every unit clause.

    Parameters
    ----------
    formula:
        The formula to propagate over.
    assignment:
        Optional pre-existing bindings to start from (not mutated).

    Returns
    -------
    SimplificationResult
        The residual formula, the accumulated forced bindings (including the
        ones passed in) and a conflict flag.
    """
    forced: Dict[int, bool] = dict(assignment or {})
    current = formula
    for variable, value in list(forced.items()):
        current = current.condition(variable, value)

    while True:
        if current.has_empty_clause():
            return SimplificationResult(current, forced, conflict=True)
        unit_literal: Optional[Literal] = None
        for clause in current:
            if clause.is_unit:
                unit_literal = clause.literals[0]
                break
        if unit_literal is None:
            return SimplificationResult(current, forced, conflict=False)
        forced[unit_literal.variable] = unit_literal.positive
        current = current.condition(unit_literal.variable, unit_literal.positive)


def pure_literal_eliminate(formula: CNFFormula) -> SimplificationResult:
    """Bind every variable that appears with a single polarity.

    A *pure* literal can always be set true without losing satisfiability, so
    every clause containing it is removed.
    """
    polarity_seen: Dict[int, set[bool]] = {}
    for clause in formula:
        for lit in clause:
            polarity_seen.setdefault(lit.variable, set()).add(lit.positive)

    forced: Dict[int, bool] = {
        var: next(iter(pols)) for var, pols in polarity_seen.items() if len(pols) == 1
    }
    current = formula
    for variable, value in forced.items():
        current = current.condition(variable, value)
    conflict = current.has_empty_clause()
    return SimplificationResult(current, forced, conflict)


def simplify_formula(formula: CNFFormula) -> SimplificationResult:
    """Run tautology removal, unit propagation and pure-literal elimination to a fixpoint."""
    current = formula.remove_tautologies()
    forced: Dict[int, bool] = {}
    while True:
        unit_result = unit_propagate(current)
        forced.update(unit_result.forced)
        if unit_result.conflict:
            return SimplificationResult(unit_result.formula, forced, conflict=True)
        pure_result = pure_literal_eliminate(unit_result.formula)
        forced.update(pure_result.forced)
        if pure_result.conflict:
            return SimplificationResult(pure_result.formula, forced, conflict=True)
        if not unit_result.forced and not pure_result.forced:
            return SimplificationResult(pure_result.formula, forced, conflict=False)
        current = pure_result.formula


def make_unit_clause(variable: int, value: bool) -> Clause:
    """The unit clause asserting ``x_variable = value``."""
    return Clause([Literal(variable, value)])
