"""The always-on asyncio solve server.

:class:`SolveService` keeps the full solving stack — preprocessing,
solvers, portfolio, proofs — resident and answers a stream of requests
with three serving guarantees the one-shot batch runner cannot give:

* **In-flight deduplication.** Concurrent requests for a structurally
  identical formula under the same assumptions (and the same solver
  spec) share *one* underlying solve; late arrivals await the first
  request's future instead of re-submitting.
* **Admission control.** At most ``max_inflight`` solves run in the
  executor at once and at most ``queue_limit`` requests may wait for a
  slot; anything beyond is rejected immediately with a ``429`` response
  instead of silently growing an unbounded queue.
* **Durable results.** Verdicts land in a
  :class:`~repro.runtime.shards.ShardedResultCache`: appended to a
  per-shard write-ahead log *before* the response is written, so every
  acknowledged verdict survives a crash and warms every later request.

Execution runs on :class:`repro.runtime.pool.JobExecutor` — the same
submit/collect core under :class:`~repro.runtime.batch.BatchRunner` —
so a formula answers identically whether it arrived via ``repro batch``
or over the wire.

Two transports: :meth:`SolveService.serve_tcp` (a socket server, one
connection per client, requests pipelined) and
:meth:`SolveService.serve_stdio` (newline-delimited JSON over
stdin/stdout, for supervision by a parent process). The wire format is
:mod:`repro.service.protocol`; operational notes live in
``docs/service.md``.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import signal
import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro import faults as _faults
from repro.exceptions import CachePersistError, RuntimeSubsystemError
from repro.runtime.jobs import ERROR, SolveJob, SolveOutcome, solve_cache_key
from repro.runtime.locks import DEFAULT_LEASE_TIMEOUT
from repro.runtime.pool import JobExecutor, WorkerPool
from repro.runtime.shards import ShardedResultCache
from repro.service import protocol
from repro.service.protocol import (
    BAD_REQUEST,
    FAILED,
    OK,
    PROTOCOL_VERSION,
    REJECTED,
    UNAVAILABLE,
    JobDefaults,
    ProtocolError,
    build_job,
    encode_message,
    error_response,
    ok_response,
    parse_request,
)
from repro.telemetry import instrument as _telemetry


@dataclass
class ServiceConfig:
    """Everything a :class:`SolveService` needs to start serving.

    Attributes
    ----------
    solver / samples / carrier / timeout / preprocess:
        Per-job defaults, overridable per request (see
        :class:`~repro.service.protocol.JobDefaults`).
    workers:
        Executor worker count (1 = a single worker thread; more = a
        process pool). The event loop never blocks on a solve either way.
    master_seed:
        Root of the deterministic per-job seed derivation (identical to
        the batch runner's).
    cache_dir:
        Directory for the sharded persistent cache; ``None`` serves from
        memory only.
    shards / shard_size / compact_threshold / fsync:
        Forwarded to :class:`~repro.runtime.shards.ShardedResultCache`.
    max_inflight:
        Most solves submitted to the executor at once.
    queue_limit:
        Most requests allowed to wait for an executor slot; beyond this,
        new work is rejected with a ``429`` response.
    drain_timeout:
        Seconds a graceful shutdown (a ``shutdown`` request, ``SIGTERM``
        or stdin EOF) waits for in-flight requests. Work still running
        past the budget is cancelled and answered with a clean ``503``
        (safe to resend to another server); ``None`` waits forever.
    lease_timeout:
        Cross-process shard-lease staleness threshold (seconds) —
        forwarded to :class:`~repro.runtime.shards.ShardedResultCache`
        so several servers can share ``cache_dir``.
    proof_dir:
        When set, classical solves record a DRAT proof under this
        directory (named ``<job_id>.drat``) and outcomes carry the path —
        the service-side twin of ``repro batch --proof-dir``.
    """

    solver: str = "portfolio"
    workers: int = 1
    master_seed: int = 0
    samples: int = 200_000
    carrier: str = "uniform"
    timeout: Optional[float] = None
    preprocess: bool = False
    cache_dir: Optional[str] = None
    shards: int = 8
    shard_size: int = 4096
    compact_threshold: int = 1024
    fsync: bool = False
    max_inflight: int = 8
    queue_limit: int = 64
    drain_timeout: Optional[float] = None
    lease_timeout: float = DEFAULT_LEASE_TIMEOUT
    proof_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.solver not in protocol.known_solver_specs():
            raise RuntimeSubsystemError(
                f"unknown solver spec {self.solver!r}; "
                f"available: {sorted(protocol.known_solver_specs())}"
            )
        if self.workers <= 0:
            raise RuntimeSubsystemError(
                f"workers must be positive, got {self.workers}"
            )
        if self.max_inflight <= 0:
            raise RuntimeSubsystemError(
                f"max_inflight must be positive, got {self.max_inflight}"
            )
        if self.queue_limit < 0:
            raise RuntimeSubsystemError(
                f"queue_limit must be >= 0, got {self.queue_limit}"
            )
        if self.drain_timeout is not None and self.drain_timeout < 0:
            raise RuntimeSubsystemError(
                f"drain_timeout must be >= 0, got {self.drain_timeout}"
            )
        if self.lease_timeout <= 0:
            raise RuntimeSubsystemError(
                f"lease_timeout must be positive, got {self.lease_timeout}"
            )

    def job_defaults(self) -> JobDefaults:
        """The request-facing defaults bundle for :func:`build_job`."""
        return JobDefaults(
            solver=self.solver,
            samples=self.samples,
            carrier=self.carrier,
            timeout=self.timeout,
            preprocess=self.preprocess,
            proof_dir=self.proof_dir,
        )


@dataclass
class ServiceStats:
    """Lifetime request counters of one :class:`SolveService`.

    Mutated only from the service's event loop (single-thread ownership;
    executor work happens in workers, not here), so reads taken on that
    loop — the ``stats`` operation — are always consistent.
    """

    requests: int = 0
    solves: int = 0
    executed: int = 0
    cache_hits: int = 0
    dedup_hits: int = 0
    rejected: int = 0
    bad_requests: int = 0
    failures: int = 0
    persist_failures: int = 0
    drained: int = 0
    responses: dict = field(default_factory=dict)

    def count_response(self, code: int) -> None:
        """Tally one response by its wire code."""
        key = str(code)
        self.responses[key] = self.responses.get(key, 0) + 1

    def to_dict(self) -> dict:
        """JSON-serialisable snapshot (the ``stats`` response payload)."""
        return {
            "requests": self.requests,
            "solves": self.solves,
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "dedup_hits": self.dedup_hits,
            "rejected": self.rejected,
            "bad_requests": self.bad_requests,
            "failures": self.failures,
            "persist_failures": self.persist_failures,
            "drained": self.drained,
            "responses": dict(self.responses),
        }


class SolveService:
    """The solve server: parse, dedup, admit, execute, persist, respond.

    Parameters
    ----------
    config:
        The :class:`ServiceConfig`; defaults serve the portfolio from an
        in-memory cache with one worker thread.
    cache:
        An explicit :class:`ShardedResultCache` (tests inject one);
        ``None`` builds it from the config.
    executor:
        An explicit :class:`~repro.runtime.pool.JobExecutor`; ``None``
        builds a non-blocking one from the config. An injected executor
        is not shut down by the service.
    """

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        cache: Optional[ShardedResultCache] = None,
        executor: Optional[JobExecutor] = None,
    ) -> None:
        self._config = config if config is not None else ServiceConfig()
        self._defaults = self._config.job_defaults()
        if cache is not None:
            self._cache = cache
        else:
            self._cache = ShardedResultCache(
                directory=self._config.cache_dir,
                shards=self._config.shards,
                shard_size=self._config.shard_size,
                compact_threshold=self._config.compact_threshold,
                fsync=self._config.fsync,
                lease_timeout=self._config.lease_timeout,
            )
        self._executor = executor
        self._owns_executor = executor is None
        self._stats = ServiceStats()
        self._degraded = False
        self._inflight: dict[tuple, asyncio.Future] = {}
        self._waiting = 0
        self._running = 0
        self._sema: Optional[asyncio.Semaphore] = None
        self._closing: Optional[asyncio.Event] = None
        self._tasks: set = set()
        self._ids = itertools.count(1)
        self.address: Optional[tuple[str, int]] = None

    @property
    def config(self) -> ServiceConfig:
        """The serving configuration."""
        return self._config

    @property
    def cache(self) -> ShardedResultCache:
        """The sharded result cache fronting the executor."""
        return self._cache

    @property
    def stats(self) -> ServiceStats:
        """Lifetime request counters."""
        return self._stats

    @property
    def queue_depth(self) -> int:
        """Requests currently waiting for an executor slot."""
        return self._waiting

    @property
    def inflight(self) -> int:
        """Distinct solves currently running in the executor."""
        return self._running

    @property
    def degraded(self) -> bool:
        """``True`` while verdicts are served without durable persistence.

        Set when a shard WAL append fails (disk full, IO error, lost
        lease); cleared automatically by the next successful persist.
        A degraded server keeps answering correctly — the flag tells
        operators that a crash *right now* could forget recent verdicts
        (until a later compaction heals them from memory).
        """
        return self._degraded

    # -- event-loop plumbing ---------------------------------------------------
    def _ensure_loop_state(self) -> None:
        if self._sema is None:
            self._sema = asyncio.Semaphore(self._config.max_inflight)
        if self._closing is None:
            self._closing = asyncio.Event()
        if self._executor is None:
            self._executor = WorkerPool(
                workers=self._config.workers,
                master_seed=self._config.master_seed,
            ).executor(inline=False)

    def _next_id(self) -> str:
        return f"auto-{next(self._ids)}"

    def _report_load(self) -> None:
        if _telemetry.active():
            _telemetry.record_service_load(self._waiting, self._running)

    # -- request handling ------------------------------------------------------
    async def handle_line(self, line: str) -> dict:
        """One raw request line -> the response dict (never raises)."""
        self._ensure_loop_state()
        started = time.perf_counter()
        request_id: Optional[str] = None
        op = "invalid"
        try:
            payload = parse_request(line)
            op = payload["op"]
            request_id = payload.get("id") or self._next_id()
            response = await self._dispatch(op, payload, request_id)
        except ProtocolError as exc:
            self._stats.bad_requests += 1
            response = error_response(request_id, exc.code, str(exc))
        except Exception as exc:  # noqa: BLE001 — the service must keep serving
            self._stats.failures += 1
            response = error_response(
                request_id, FAILED, f"{type(exc).__name__}: {exc}"
            )
        elapsed = time.perf_counter() - started
        self._stats.requests += 1
        self._stats.count_response(response["code"])
        if _telemetry.active():
            if _telemetry.tracing_active():
                _telemetry.event(
                    "service.request",
                    op=op,
                    code=response["code"],
                    elapsed_seconds=elapsed,
                )
            _telemetry.record_service_request(op, response["code"], elapsed)
        return response

    async def _dispatch(self, op: str, payload: dict, request_id: str) -> dict:
        if op == "ping":
            return {"id": request_id, "code": OK, "op": "ping", "ok": True}
        if op == "stats":
            return self._stats_response(request_id)
        if op == "shutdown":
            return {"id": request_id, "code": OK, "op": "shutdown", "ok": True}
        return await self._handle_solve(payload, request_id)

    def _stats_response(self, request_id: str) -> dict:
        stats = self._cache.stats
        if _telemetry.active():
            _telemetry.record_shard_sizes(self._cache.shard_sizes)
        return {
            "id": request_id,
            "code": OK,
            "op": "stats",
            "stats": {
                "protocol_version": PROTOCOL_VERSION,
                "service": self._stats.to_dict(),
                "queue_depth": self._waiting,
                "inflight": self._running,
                "workers": self._config.workers,
                "max_inflight": self._config.max_inflight,
                "queue_limit": self._config.queue_limit,
                "degraded": self._degraded,
                "cache": {
                    "entries": stats.size,
                    "hits": stats.hits,
                    "misses": stats.misses,
                    "evictions": stats.evictions,
                    "shards": self._cache.num_shards,
                    "shard_sizes": self._cache.shard_sizes,
                    "directory": self._cache.directory,
                    "replayed_records": self._cache.replayed_records,
                    "torn_records": self._cache.torn_records,
                    "lock_takeovers": self._cache.lock_takeovers,
                    "failed_compactions": self._cache.failed_compactions,
                },
            },
        }

    def _store(self, job: SolveJob, outcome: SolveOutcome) -> None:
        """Persist a definitive outcome under its own key and the original.

        Mirrors the batch runner: preprocessed outcomes key on the
        reduced fingerprint, so the original ``(fingerprint,
        assumptions)`` key is stored as an alias — a later identical
        request is then answered without re-running the pipeline. The
        model (when SAT) was verified against this very job's formula,
        so the alias entry is sound for any structurally identical
        original.

        Persistence failures degrade instead of failing the request:
        the entry is already in memory (``put`` inserts before raising
        :class:`~repro.exceptions.CachePersistError`), the service flips
        :attr:`degraded` and the verdict is still acknowledged — losing
        durability must never lose availability. The flag clears on the
        next successful persist.
        """
        persisted = failed = False
        original_key = solve_cache_key(job.fingerprint, job.assumptions)
        for key in (None, original_key):
            if key == outcome.cache_key:
                continue
            try:
                if self._cache.put(outcome, key=key):
                    persisted = True
            except CachePersistError:
                failed = True
                self._stats.persist_failures += 1
        if failed:
            self._degraded = True
            if _telemetry.active():
                _telemetry.record_service_degraded(True)
            if _telemetry.tracing_active():
                _telemetry.event("service.degraded", active=True)
        elif persisted and self._degraded:
            self._degraded = False
            if _telemetry.active():
                _telemetry.record_service_degraded(False)
            if _telemetry.tracing_active():
                _telemetry.event("service.degraded", active=False)

    async def _handle_solve(self, payload: dict, request_id: str) -> dict:
        self._stats.solves += 1
        job = build_job(payload, self._defaults)
        original_key = solve_cache_key(job.fingerprint, job.assumptions)

        hit = self._cache.get(original_key)
        if hit is not None:
            self._stats.cache_hits += 1
            # ``solver`` documents what this request asked for; ``winner``
            # keeps recording who originally produced the verdict.
            hit.job_id = job.job_id
            hit.label = job.label
            hit.solver = job.solver
            return ok_response(request_id, hit, from_cache=True)

        dedup_key = (original_key, job.solver, job.preprocess)
        shared = self._inflight.get(dedup_key)
        if shared is not None:
            self._stats.dedup_hits += 1
            if _telemetry.active():
                if _telemetry.tracing_active():
                    _telemetry.event("service.dedup", key=original_key)
                _telemetry.record_service_dedup()
            # shield(): a cancelled waiter must not cancel the shared solve.
            outcome = await asyncio.shield(shared)
            duplicate = outcome.copy(
                job_id=job.job_id,
                label=job.label,
                from_cache=outcome.is_definitive,
                elapsed_seconds=0.0,
            )
            return ok_response(request_id, duplicate, deduped=True)

        # Reject only work that would have to *wait* in a full queue; a
        # free executor slot always admits (so queue_limit=0 still serves
        # up to max_inflight concurrent solves).
        if (
            self._running >= self._config.max_inflight
            and self._waiting >= self._config.queue_limit
        ):
            self._stats.rejected += 1
            if _telemetry.active():
                _telemetry.record_service_rejection()
            return error_response(
                request_id,
                REJECTED,
                f"queue full ({self._waiting} waiting, "
                f"{self._running} in flight); retry later",
            )

        loop = asyncio.get_running_loop()
        shared = loop.create_future()
        self._inflight[dedup_key] = shared
        try:
            outcome = await self._execute(job)
            self._stats.executed += 1
            self._store(job, outcome)
            if not shared.done():
                shared.set_result(outcome)
            return ok_response(request_id, outcome)
        except BaseException as exc:
            # Resolve waiters with an ERROR outcome so a dedup'd request
            # never hangs on its representative's failure.
            if not shared.done():
                shared.set_result(
                    SolveOutcome(
                        job_id=job.job_id,
                        status=ERROR,
                        solver=job.solver,
                        label=job.label,
                        fingerprint=job.fingerprint,
                        assumptions=job.assumptions,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                )
            raise
        finally:
            self._inflight.pop(dedup_key, None)

    async def _execute(self, job: SolveJob) -> SolveOutcome:
        """Run one representative job through the executor (slot-gated)."""
        self._waiting += 1
        self._report_load()
        try:
            await self._sema.acquire()
        finally:
            self._waiting -= 1
        self._running += 1
        self._report_load()
        try:
            future = self._executor.submit(job)
            return await asyncio.wrap_future(future)
        finally:
            self._sema.release()
            self._running -= 1
            self._report_load()

    # -- transports ------------------------------------------------------------
    async def _serve_line(self, raw: bytes, respond) -> None:
        line = raw.decode("utf-8", errors="replace").strip()
        if not line:
            return
        try:
            response = await self.handle_line(line)
        except asyncio.CancelledError:
            # The drain budget expired mid-request. Abandoning silently
            # would strand the client on a request that will never be
            # answered — send a clean 503 instead (shielded: this write
            # must survive the very cancellation that triggered it).
            self._stats.drained += 1
            self._stats.count_response(UNAVAILABLE)
            response = error_response(
                _peek_request_id(line),
                UNAVAILABLE,
                "server shutting down before the request finished; "
                "safe to resend",
            )
            try:
                await asyncio.shield(respond(response))
            except (ConnectionError, OSError):
                pass  # client already gone; nothing left to tell it
            return
        await respond(response)
        if response.get("op") == "shutdown" and response["code"] == OK:
            self._closing.set()

    def _track(self, task: "asyncio.Task") -> None:
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _drain(self, timeout: Optional[float] = None) -> None:
        """Await in-flight request tasks; cancel stragglers past ``timeout``.

        Cancelled tasks answer their clients with ``503`` (see
        :meth:`_serve_line`) — a bounded shutdown never leaves a request
        hanging with no response at all.
        """
        if timeout is not None:
            deadline = asyncio.get_running_loop().time() + timeout
        while self._tasks:
            pending = list(self._tasks)
            if timeout is None:
                await asyncio.gather(*pending, return_exceptions=True)
                continue
            remaining = deadline - asyncio.get_running_loop().time()
            if remaining > 0:
                await asyncio.wait(pending, timeout=remaining)
                remaining = deadline - asyncio.get_running_loop().time()
            still_running = [task for task in pending if not task.done()]
            if still_running and remaining <= 0:
                for task in still_running:
                    task.cancel()
                await asyncio.gather(*still_running, return_exceptions=True)

    def _install_sigterm(self, loop) -> bool:
        """Route ``SIGTERM`` to a graceful drain; ``False`` when unsupported.

        Unsupported means a non-main thread or a platform without signal
        handler support in the loop — serving proceeds without it.
        """
        try:
            loop.add_signal_handler(signal.SIGTERM, self._closing.set)
        except (NotImplementedError, RuntimeError, ValueError, OSError):
            return False
        return True

    def _remove_sigterm(self, loop) -> None:
        try:
            loop.remove_signal_handler(signal.SIGTERM)
        except (NotImplementedError, RuntimeError, ValueError, OSError):
            pass

    def _finalize(self) -> None:
        if self._owns_executor and self._executor is not None:
            self._executor.shutdown()
            self._executor = None
        self._cache.close()

    async def serve_tcp(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        ready: Optional[Callable[[str, int], None]] = None,
    ) -> int:
        """Serve over a TCP socket until a ``shutdown`` request arrives.

        ``port=0`` binds an ephemeral port; the bound address lands in
        :attr:`address` and is passed to the ``ready`` callback (the CLI
        prints it so clients can connect). Returns the process exit code
        (0 on clean shutdown).
        """
        self._ensure_loop_state()
        loop = asyncio.get_running_loop()
        sigterm = self._install_sigterm(loop)
        writers: set = set()
        conn_tasks: set = set()

        async def on_connection(reader, writer):
            conn_tasks.add(asyncio.current_task())
            writers.add(writer)
            write_lock = asyncio.Lock()

            async def respond(message: dict) -> None:
                rule = _faults.fire("server.response")
                if rule is not None and rule.kind == "drop":
                    # Injected connection drop: the response vanishes on
                    # the wire — the client's retry layer must recover.
                    writer.transport.abort()
                    return
                async with write_lock:
                    writer.write(encode_message(message).encode("utf-8"))
                    await writer.drain()

            try:
                while not self._closing.is_set():
                    raw = await reader.readline()
                    if not raw:
                        break
                    task = asyncio.ensure_future(self._serve_line(raw, respond))
                    self._track(task)
                # Finish this connection's outstanding responses before
                # closing the socket under the client. The drain budget
                # (which *cancels* stragglers) applies only when the
                # whole server is shutting down — a single client
                # disconnecting must never 503 other clients' work.
                await self._drain(
                    self._config.drain_timeout
                    if self._closing.is_set()
                    else None
                )
            finally:
                writers.discard(writer)
                try:
                    writer.close()
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass
                conn_tasks.discard(asyncio.current_task())

        server = await asyncio.start_server(on_connection, host=host, port=port)
        bound = server.sockets[0].getsockname()
        self.address = (bound[0], bound[1])
        if ready is not None:
            ready(bound[0], bound[1])
        try:
            await self._closing.wait()
            # Graceful shutdown: stop accepting, finish (or 503) what is
            # in flight, then compact and close the cache in _finalize.
            server.close()
            await server.wait_closed()
            await self._drain(self._config.drain_timeout)
            for writer in list(writers):
                try:
                    writer.close()
                except (ConnectionError, OSError):
                    pass
            # Let the per-connection tasks run to completion before the
            # event loop goes away: cancelling them at loop teardown makes
            # asyncio's stream protocol log a spurious CancelledError.
            if conn_tasks:
                await asyncio.wait(set(conn_tasks), timeout=2.0)
        finally:
            if sigterm:
                self._remove_sigterm(loop)
            self._finalize()
        return 0

    async def serve_stdio(self, stdin=None, stdout=None) -> int:
        """Serve newline-delimited JSON over stdin/stdout until EOF/shutdown.

        The pipe mode: a parent process writes requests to our stdin and
        reads responses from our stdout (responses may interleave with
        request order; match by ``id``). EOF on stdin drains in-flight
        work, compacts the cache and exits cleanly. Returns the exit code.
        """
        self._ensure_loop_state()
        stdin = stdin if stdin is not None else sys.stdin
        stdout = stdout if stdout is not None else sys.stdout
        loop = asyncio.get_running_loop()
        sigterm = self._install_sigterm(loop)
        readline = await _stdin_readline(loop, stdin)
        write_lock = asyncio.Lock()

        async def respond(message: dict) -> None:
            rule = _faults.fire("server.response")
            if rule is not None and rule.kind == "drop":
                return  # injected loss: the response never reaches stdout
            async with write_lock:
                stdout.write(encode_message(message))
                stdout.flush()

        try:
            closing_wait = asyncio.ensure_future(self._closing.wait())
            while not self._closing.is_set():
                read = asyncio.ensure_future(readline())
                done, _ = await asyncio.wait(
                    {read, closing_wait},
                    return_when=asyncio.FIRST_COMPLETED,
                )
                if read not in done:
                    read.cancel()
                    break
                raw = read.result()
                if not raw:
                    break
                self._track(
                    asyncio.ensure_future(self._serve_line(raw, respond))
                )
            closing_wait.cancel()
            await self._drain(self._config.drain_timeout)
        finally:
            if sigterm:
                self._remove_sigterm(loop)
            self._finalize()
        return 0

    def run_tcp(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        ready: Optional[Callable[[str, int], None]] = None,
    ) -> int:
        """Blocking wrapper: run :meth:`serve_tcp` on a fresh event loop."""
        return asyncio.run(self.serve_tcp(host=host, port=port, ready=ready))

    def run_stdio(self, stdin=None, stdout=None) -> int:
        """Blocking wrapper: run :meth:`serve_stdio` on a fresh event loop."""
        return asyncio.run(self.serve_stdio(stdin=stdin, stdout=stdout))


def _peek_request_id(line: str) -> Optional[str]:
    """Best-effort request id from a raw line (for a 503 on a dying task)."""
    try:
        payload = json.loads(line)
        request_id = payload.get("id")
    except (ValueError, AttributeError):
        return None
    return request_id if isinstance(request_id, str) else None


async def _stdin_readline(loop, stdin):
    """An async ``readline() -> bytes`` over ``stdin``, pipe or not.

    Pipes get a real non-blocking :class:`asyncio.StreamReader`; anything
    the event loop cannot poll (a regular file, a PTY on some platforms)
    falls back to one reader thread.
    """
    try:
        reader = asyncio.StreamReader()
        await loop.connect_read_pipe(
            lambda: asyncio.StreamReaderProtocol(reader), stdin
        )

        async def readline() -> bytes:
            return await reader.readline()

        return readline
    except (ValueError, OSError, NotImplementedError):
        binary = getattr(stdin, "buffer", stdin)

        async def readline() -> bytes:
            return await loop.run_in_executor(None, binary.readline)

        return readline
