"""The solve service's wire protocol: newline-delimited JSON messages.

One request per line, one JSON object per request; one response per
request, also a single JSON line, matched to its request by ``id``.
Responses may arrive out of request order (the server solves
concurrently), which is what makes pipelining — write many requests,
then collect — worthwhile.

Request operations (the ``op`` field):

``solve``
    Solve one CNF instance. The formula arrives either as a DIMACS
    string (``dimacs``) or as signed-integer clauses (``clauses``, with
    optional ``num_variables``); the remaining fields mirror
    :class:`~repro.runtime.jobs.SolveJob` knobs and default to the
    server's configuration: ``solver``, ``assumptions``, ``timeout``,
    ``preprocess``, ``samples``, ``carrier``, ``seed``, ``label``.
``ping``
    Liveness probe; answered immediately.
``stats``
    Service counters, queue/in-flight depths, cache and shard state.
``shutdown``
    Acknowledge, finish in-flight work, compact the cache and exit.

Response codes (the ``code`` field) follow the HTTP idiom:

=====  =========================================================
200    request served; ``solve`` responses carry ``result`` (a
       :meth:`SolveOutcome.to_dict` payload), ``from_cache`` and
       ``deduped`` flags
400    malformed request (unparsable line, unknown op or field,
       bad formula, unknown solver spec, ...)
429    rejected by admission control: the bounded queue was full —
       back off and resend
500    the service failed internally while handling the request
503    the server is shutting down and the request did not finish
       within its drain budget — the solve was abandoned cleanly
       and is safe to resend elsewhere
=====  =========================================================

Unknown request fields are rejected rather than ignored: a typo'd
``assumptoins`` silently changing the answer is exactly the kind of bug
a solve service must refuse to serve.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Optional

from repro.cnf.dimacs import parse_dimacs
from repro.cnf.formula import CNFFormula
from repro.exceptions import ReproError
from repro.runtime.jobs import NBL_SPECS, PORTFOLIO_SPEC, SolveJob, SolveOutcome
from repro.solvers.registry import available_solvers

#: Protocol schema version, included in ``stats`` responses so clients
#: can detect incompatible servers.
PROTOCOL_VERSION = 1

#: Response codes (HTTP-idiom).
OK = 200
BAD_REQUEST = 400
REJECTED = 429
FAILED = 500
UNAVAILABLE = 503

#: Request operations the server understands.
OPS = ("solve", "ping", "stats", "shutdown")

#: Fields a ``solve`` request may carry (anything else is a 400).
_SOLVE_FIELDS = frozenset(
    {
        "op",
        "id",
        "dimacs",
        "clauses",
        "num_variables",
        "solver",
        "assumptions",
        "timeout",
        "preprocess",
        "samples",
        "carrier",
        "seed",
        "label",
    }
)


class ProtocolError(ReproError):
    """A request the service must refuse, with its response code.

    ``code`` is :data:`BAD_REQUEST` for malformed requests and
    :data:`REJECTED` for admission-control refusals; the server turns
    the exception into the matching error response.
    """

    def __init__(self, message: str, code: int = BAD_REQUEST) -> None:
        super().__init__(message)
        self.code = code


@dataclass(frozen=True)
class JobDefaults:
    """Server-side defaults applied to ``solve`` requests.

    One frozen bundle of the per-job knobs (solver spec, sample budget,
    carrier, timeout, preprocessing, proof directory) so
    :func:`build_job` stays a pure function of ``(payload, defaults)``.
    """

    solver: str = PORTFOLIO_SPEC
    samples: int = 200_000
    carrier: str = "uniform"
    timeout: Optional[float] = None
    preprocess: bool = False
    proof_dir: Optional[str] = None


def known_solver_specs() -> set[str]:
    """Every solver spec a request may name (registry + NBL + portfolio)."""
    return set(available_solvers()) | set(NBL_SPECS) | {PORTFOLIO_SPEC}


def parse_request(line: str) -> dict:
    """One wire line -> a validated request dict (op checked, id optional).

    Raises :class:`ProtocolError` (code 400) for anything that is not a
    JSON object with a known ``op`` and a string ``id`` (when present).
    """
    try:
        payload = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"unparsable request line: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"request must be a JSON object, got {type(payload).__name__}"
        )
    op = payload.get("op")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r}; expected one of {list(OPS)}")
    request_id = payload.get("id")
    if request_id is not None and not isinstance(request_id, str):
        raise ProtocolError(f"request id must be a string, got {request_id!r}")
    return payload


def _require_number(payload: dict, field: str, positive: bool = False):
    value = payload[field]
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError(f"{field!r} must be a number, got {value!r}")
    if positive and value <= 0:
        raise ProtocolError(f"{field!r} must be positive, got {value!r}")
    return value


def _build_formula(payload: dict) -> CNFFormula:
    has_dimacs = "dimacs" in payload
    has_clauses = "clauses" in payload
    if has_dimacs == has_clauses:
        raise ProtocolError(
            "a solve request needs exactly one of 'dimacs' or 'clauses'"
        )
    try:
        if has_dimacs:
            if not isinstance(payload["dimacs"], str):
                raise ProtocolError("'dimacs' must be a DIMACS CNF string")
            return parse_dimacs(payload["dimacs"])
        clauses = payload["clauses"]
        if not isinstance(clauses, list) or not all(
            isinstance(clause, list) for clause in clauses
        ):
            raise ProtocolError("'clauses' must be a list of literal lists")
        num_variables = None
        if "num_variables" in payload:
            num_variables = _require_number(
                payload, "num_variables", positive=True
            )
            if not isinstance(num_variables, int):
                raise ProtocolError("'num_variables' must be an integer")
        return CNFFormula.from_ints(clauses, num_variables=num_variables)
    except ProtocolError:
        raise
    except ReproError as exc:
        raise ProtocolError(f"bad formula: {exc}") from None


def build_job(payload: dict, defaults: JobDefaults) -> SolveJob:
    """A validated ``solve`` request -> the :class:`SolveJob` to execute.

    Every knob falls back to ``defaults`` (the server's configuration);
    the job's DRAT proof path is attached here when the server has a
    proof directory and the requested solver can emit derivations.
    Raises :class:`ProtocolError` (code 400) on any invalid field.
    """
    unknown = set(payload) - _SOLVE_FIELDS
    if unknown:
        raise ProtocolError(f"unknown request fields: {sorted(unknown)}")
    formula = _build_formula(payload)
    solver = payload.get("solver", defaults.solver)
    if solver not in known_solver_specs():
        raise ProtocolError(
            f"unknown solver spec {solver!r}; "
            f"available: {sorted(known_solver_specs())}"
        )
    assumptions = payload.get("assumptions", ())
    if not isinstance(assumptions, (list, tuple)):
        raise ProtocolError("'assumptions' must be a list of signed literals")
    timeout = defaults.timeout
    if "timeout" in payload:
        timeout = float(_require_number(payload, "timeout", positive=True))
    samples = defaults.samples
    if "samples" in payload:
        samples = _require_number(payload, "samples", positive=True)
        if not isinstance(samples, int):
            raise ProtocolError("'samples' must be an integer")
    seed = None
    if "seed" in payload:
        seed = _require_number(payload, "seed")
        if not isinstance(seed, int):
            raise ProtocolError("'seed' must be an integer")
    preprocess = payload.get("preprocess", defaults.preprocess)
    if not isinstance(preprocess, bool):
        raise ProtocolError(f"'preprocess' must be a boolean, got {preprocess!r}")
    label = payload.get("label", "")
    if not isinstance(label, str):
        raise ProtocolError(f"'label' must be a string, got {label!r}")
    carrier = payload.get("carrier", defaults.carrier)
    if not isinstance(carrier, str):
        raise ProtocolError(f"'carrier' must be a string, got {carrier!r}")
    try:
        job = SolveJob(
            formula=formula,
            label=label,
            solver=solver,
            samples=samples,
            carrier=carrier,
            timeout=timeout,
            assumptions=tuple(assumptions),
            seed=seed,
            preprocess=preprocess,
        )
        if defaults.proof_dir is not None and solver not in NBL_SPECS and (
            solver != PORTFOLIO_SPEC
        ):
            # Proof passthrough: classical solves get a DRAT receipt named
            # after the job id (fingerprint-derived, so concurrent
            # duplicates share one file — exactly like `batch --proof-dir`).
            job.proof = os.path.join(
                defaults.proof_dir, f"{job.job_id}.drat"
            )
        return job
    except ReproError as exc:
        raise ProtocolError(str(exc)) from None


def encode_message(message: dict) -> str:
    """A response/request dict -> one compact wire line (with newline)."""
    return json.dumps(message, separators=(",", ":")) + "\n"


def ok_response(
    request_id: str,
    outcome: SolveOutcome,
    from_cache: bool = False,
    deduped: bool = False,
) -> dict:
    """A ``200`` solve response carrying the outcome payload."""
    return {
        "id": request_id,
        "code": OK,
        "status": outcome.status,
        "from_cache": bool(from_cache),
        "deduped": bool(deduped),
        "result": outcome.to_dict(),
    }


def error_response(request_id: Optional[str], code: int, message: str) -> dict:
    """A non-200 response (400 malformed / 429 rejected / 500 failed / 503 draining)."""
    return {"id": request_id, "code": code, "error": message}
