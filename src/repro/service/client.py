"""A small blocking client for the solve service.

:class:`ServiceClient` speaks the :mod:`repro.service.protocol` wire
format over one TCP connection. It is deliberately synchronous — the
scripting and testing counterpart to the asyncio server — but still
supports *pipelining*: :meth:`ServiceClient.send` writes a request
without waiting, and :meth:`ServiceClient.wait` collects responses by
``id`` in any arrival order, so a caller can keep the server's whole
executor busy from a single connection::

    with ServiceClient("127.0.0.1", 9090) as client:
        ids = [client.send_solve(dimacs=text) for text in formulas]
        results = [client.wait(request_id) for request_id in ids]

One-shot conveniences (:meth:`solve`, :meth:`ping`, :meth:`stats`,
:meth:`shutdown`) wrap the same send/wait pair.
"""

from __future__ import annotations

import itertools
import json
import socket
from typing import Optional

from repro.service.protocol import OK, ProtocolError, encode_message


class ServiceClient:
    """One TCP connection to a :class:`~repro.service.server.SolveService`.

    Parameters
    ----------
    host / port:
        Where the service listens (``repro serve`` prints the bound
        address on startup).
    timeout:
        Socket timeout in seconds for connect and reads; ``None`` blocks
        indefinitely (solves can be slow — pass a timeout only when the
        caller has its own retry story).
    """

    def __init__(
        self, host: str = "127.0.0.1", port: int = 9090, timeout: Optional[float] = None
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._sock.makefile("r", encoding="utf-8", newline="\n")
        self._ids = itertools.count(1)
        self._pending: dict[str, dict] = {}
        self._closed = False

    # -- plumbing --------------------------------------------------------------
    def close(self) -> None:
        """Close the connection (idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def send(self, payload: dict) -> str:
        """Write one request line without waiting; returns its ``id``.

        Assigns a connection-unique ``id`` when the payload has none, so
        the matching response can be collected later with :meth:`wait`.
        """
        request_id = payload.get("id")
        if request_id is None:
            request_id = f"req-{next(self._ids)}"
            payload = dict(payload, id=request_id)
        self._sock.sendall(encode_message(payload).encode("utf-8"))
        return request_id

    def wait(self, request_id: str) -> dict:
        """Block until the response with this ``id`` arrives.

        Responses for *other* outstanding requests that arrive first are
        buffered and returned by their own :meth:`wait` calls — that is
        what makes pipelining safe.
        """
        if request_id in self._pending:
            return self._pending.pop(request_id)
        while True:
            line = self._reader.readline()
            if not line:
                raise ProtocolError(
                    f"connection closed while waiting for response {request_id!r}"
                )
            try:
                response = json.loads(line)
            except ValueError as exc:
                raise ProtocolError(f"unparsable response line: {exc}") from None
            if response.get("id") == request_id:
                return response
            self._pending[str(response.get("id"))] = response

    def call(self, payload: dict) -> dict:
        """Send one request and block for its response."""
        return self.wait(self.send(payload))

    # -- operations ------------------------------------------------------------
    def send_solve(
        self,
        dimacs: Optional[str] = None,
        clauses=None,
        **options,
    ) -> str:
        """Pipeline one ``solve`` request; returns the ``id`` to wait on.

        Exactly one of ``dimacs`` (a DIMACS CNF string) or ``clauses``
        (signed-integer literal lists) describes the formula; ``options``
        are the remaining protocol fields (``solver``, ``assumptions``,
        ``timeout``, ``preprocess``, ``samples``, ``seed``, ``label``...).
        """
        payload = {"op": "solve", **options}
        if dimacs is not None:
            payload["dimacs"] = dimacs
        if clauses is not None:
            payload["clauses"] = [list(clause) for clause in clauses]
        return self.send(payload)

    def solve(
        self,
        dimacs: Optional[str] = None,
        clauses=None,
        **options,
    ) -> dict:
        """Solve one formula and return the full response dict.

        Raises :class:`ProtocolError` on any non-200 response (the
        server's error message and code are preserved); a 200 response is
        returned as-is, with ``result`` holding the outcome payload and
        ``from_cache`` / ``deduped`` telling how it was served.
        """
        response = self.wait(self.send_solve(dimacs=dimacs, clauses=clauses, **options))
        if response["code"] != OK:
            raise ProtocolError(
                response.get("error", "request failed"), code=response["code"]
            )
        return response

    def solve_many(self, requests: list[dict]) -> list[dict]:
        """Pipeline many ``solve`` payloads; responses in request order.

        Each element is a protocol payload minus the ``op`` (for example
        ``{"dimacs": text, "solver": "cdcl"}``). All requests are written
        before any response is read, so identical formulas in the batch
        exercise the server's in-flight deduplication.
        """
        ids = [self.send({"op": "solve", **request}) for request in requests]
        return [self.wait(request_id) for request_id in ids]

    def ping(self) -> bool:
        """Liveness probe; ``True`` when the server answers."""
        return self.call({"op": "ping"}).get("code") == OK

    def stats(self) -> dict:
        """The server's counters / queue depths / cache state snapshot."""
        response = self.call({"op": "stats"})
        if response["code"] != OK:
            raise ProtocolError(
                response.get("error", "stats failed"), code=response["code"]
            )
        return response["stats"]

    def shutdown(self) -> bool:
        """Ask the server to drain, compact its cache and exit."""
        return self.call({"op": "shutdown"}).get("code") == OK
