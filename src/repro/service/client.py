"""A small blocking client for the solve service, with retry/backoff.

:class:`ServiceClient` speaks the :mod:`repro.service.protocol` wire
format over one TCP connection. It is deliberately synchronous — the
scripting and testing counterpart to the asyncio server — but still
supports *pipelining*: :meth:`ServiceClient.send` writes a request
without waiting, and :meth:`ServiceClient.wait` collects responses by
``id`` in any arrival order, so a caller can keep the server's whole
executor busy from a single connection::

    with ServiceClient("127.0.0.1", 9090) as client:
        ids = [client.send_solve(dimacs=text) for text in formulas]
        results = [client.wait(request_id) for request_id in ids]

One-shot conveniences (:meth:`solve`, :meth:`ping`, :meth:`stats`,
:meth:`shutdown`) wrap the same send/wait pair.

Failure handling is layered:

* Every transport-level failure — a reset connection, abrupt EOF, a
  read timeout, an unparsable response line — surfaces as one typed
  :class:`~repro.exceptions.ServiceError` whose ``pending`` attribute
  lists the request ids still awaiting responses, so a caller always
  knows exactly what is unaccounted for.
* With a :class:`RetryPolicy`, the client absorbs those failures
  itself: it reconnects and **re-submits every outstanding request**
  (safe — the server's cache and in-flight dedup make duplicate solves
  idempotent), and it honours ``429`` (queue full) and ``503``
  (draining) responses by backing off — exponential delay with full
  jitter — and resending. A retrying client therefore rides out server
  restarts, dropped connections and load spikes, and only raises once
  its retry budget or per-request deadline is exhausted.
"""

from __future__ import annotations

import itertools
import json
import random
import socket
import time
from dataclasses import dataclass
from typing import Optional

from repro import faults as _faults
from repro.exceptions import ServiceError
from repro.service.protocol import (
    OK,
    REJECTED,
    UNAVAILABLE,
    ProtocolError,
    encode_message,
)
from repro.telemetry import instrument as _telemetry


@dataclass(frozen=True)
class RetryPolicy:
    """How a :class:`ServiceClient` retries transient failures.

    Backoff is exponential with **full jitter**: the delay before retry
    attempt ``n`` is drawn uniformly from ``[0, min(max_delay,
    base_delay * 2**n)]`` — the jitter decorrelates a thundering herd of
    clients all retrying the same overloaded server.

    Attributes
    ----------
    retries:
        How many times one operation (a send, or one ``wait``) may be
        retried after a transient failure. ``0`` — the default — means
        fail fast: transport errors still surface as typed
        :class:`~repro.exceptions.ServiceError`\\ s, but nothing is
        resent automatically.
    base_delay / max_delay:
        The exponential backoff envelope, in seconds.
    deadline:
        Overall wall-clock budget (seconds) for one :meth:`wait`,
        spanning all its retries; ``None`` means unbounded.
    retry_rejected:
        Whether ``429`` (queue full) and ``503`` (server draining)
        responses consume a retry and resend, instead of being returned
        to the caller immediately.
    seed:
        Seed for the jitter RNG — chaos tests pin it so retry schedules
        are reproducible; ``None`` seeds from the OS.
    """

    retries: int = 0
    base_delay: float = 0.05
    max_delay: float = 2.0
    deadline: Optional[float] = None
    retry_rejected: bool = True
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ServiceError(f"retries must be >= 0, got {self.retries}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ServiceError(
                f"backoff delays must be >= 0, got base={self.base_delay} "
                f"max={self.max_delay}"
            )
        if self.deadline is not None and self.deadline <= 0:
            raise ServiceError(
                f"deadline must be positive, got {self.deadline}"
            )

    def backoff(self, attempt: int, rng: random.Random) -> float:
        """The jittered delay (seconds) before retry number ``attempt``."""
        ceiling = min(self.max_delay, self.base_delay * (2 ** attempt))
        return rng.uniform(0.0, ceiling)


class ServiceClient:
    """One TCP connection to a :class:`~repro.service.server.SolveService`.

    Parameters
    ----------
    host / port:
        Where the service listens (``repro serve`` prints the bound
        address on startup).
    timeout:
        Socket timeout in seconds for connect and reads; ``None`` blocks
        indefinitely (solves can be slow — pass a timeout only when the
        caller has its own retry story). With a retrying policy, a read
        timeout counts as a transient failure and triggers reconnect.
    retry:
        The :class:`RetryPolicy`; the default fails fast (no resends)
        while still mapping every transport failure to
        :class:`~repro.exceptions.ServiceError`.

    Attributes
    ----------
    retries:
        Transient failures absorbed so far (transport + backoff resends).
    reconnects:
        How many times the TCP connection was re-established.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 9090,
        timeout: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self._host = host
        self._port = port
        self._timeout = timeout
        self._retry = retry if retry is not None else RetryPolicy()
        self._rng = random.Random(self._retry.seed)
        self._ids = itertools.count(1)
        self._responses: dict[str, dict] = {}
        self._sent: dict[str, dict] = {}
        self._closed = False
        self._sock: Optional[socket.socket] = None
        self._reader = None
        self.retries = 0
        self.reconnects = 0
        self._connect()

    # -- plumbing --------------------------------------------------------------
    @property
    def pending(self) -> tuple[str, ...]:
        """Request ids sent but not yet answered."""
        return tuple(self._sent)

    def _connect(self) -> None:
        attempt = 0
        while True:
            try:
                self._sock = socket.create_connection(
                    (self._host, self._port), timeout=self._timeout
                )
                self._reader = self._sock.makefile(
                    "r", encoding="utf-8", newline="\n"
                )
                return
            except OSError as exc:
                if attempt >= self._retry.retries:
                    raise ServiceError(
                        f"cannot connect to {self._host}:{self._port}: "
                        f"{type(exc).__name__}: {exc}",
                        pending=tuple(self._sent),
                    ) from exc
                self._note_retry("connect")
                time.sleep(self._retry.backoff(attempt, self._rng))
                attempt += 1

    def _teardown(self) -> None:
        """Close the socket pair, tolerating any state it is in."""
        for closer in (self._reader, self._sock):
            if closer is None:
                continue
            try:
                closer.close()
            except OSError:
                pass
        self._reader = None
        self._sock = None

    def _note_retry(self, reason: str) -> None:
        self.retries += 1
        if _telemetry.active():
            _telemetry.record_service_retry(reason)

    def _reconnect_and_resubmit(self) -> None:
        """Fresh connection, then resend everything still unanswered.

        Re-submission is safe by construction: the server deduplicates
        in-flight work and answers repeats from its cache, so a request
        that was already received (even already *solved*) just gets its
        verdict again under the same id.
        """
        self._teardown()
        self._connect()
        self.reconnects += 1
        if _telemetry.active():
            _telemetry.record_service_reconnect()
        for payload in list(self._sent.values()):
            self._sock.sendall(encode_message(payload).encode("utf-8"))

    def close(self) -> None:
        """Close the connection (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._teardown()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def send(self, payload: dict) -> str:
        """Write one request line without waiting; returns its ``id``.

        Assigns a connection-unique ``id`` when the payload has none, so
        the matching response can be collected later with :meth:`wait`.
        A send that hits a dead connection reconnects and re-submits
        (within the retry budget); beyond it, raises
        :class:`~repro.exceptions.ServiceError`.
        """
        request_id = payload.get("id")
        if request_id is None:
            request_id = f"req-{next(self._ids)}"
            payload = dict(payload, id=request_id)
        self._sent[request_id] = payload
        attempt = 0
        while True:
            try:
                rule = _faults.fire("client.send")
                if rule is not None and rule.kind == "drop":
                    # Injected connection loss while sending: sever the
                    # socket so the failure is real, then recover below.
                    self._teardown()
                    raise _faults.InjectedFault(
                        "injected connection drop at client.send"
                    )
                if self._sock is None:
                    raise ConnectionResetError("connection is down")
                self._sock.sendall(encode_message(payload).encode("utf-8"))
                return request_id
            except OSError as exc:
                if attempt >= self._retry.retries:
                    raise ServiceError(
                        f"send failed for request {request_id!r}: "
                        f"{type(exc).__name__}: {exc}",
                        pending=tuple(self._sent),
                    ) from exc
                self._note_retry("transport")
                time.sleep(self._retry.backoff(attempt, self._rng))
                attempt += 1
                try:
                    self._reconnect_and_resubmit()
                    return request_id  # resubmit included this payload
                except OSError:
                    continue  # reconnected socket died instantly; retry

    def _read_response(self) -> dict:
        """One response line off the wire (raises ``OSError``-family on loss).

        A closed stream, an abrupt EOF and a torn/unparsable line all
        raise ``ConnectionResetError`` so :meth:`wait` has a single
        transient-failure path to retry.
        """
        rule = _faults.fire("client.recv")
        if rule is not None and rule.kind == "drop":
            self._teardown()
            raise _faults.InjectedFault(
                "injected connection drop at client.recv"
            )
        if self._reader is None:
            raise ConnectionResetError("connection is down")
        try:
            line = self._reader.readline()
        except ValueError as exc:  # reading a closed makefile()
            raise ConnectionResetError(f"connection closed: {exc}") from None
        if not line:
            raise ConnectionResetError("connection closed by server")
        try:
            response = json.loads(line)
        except ValueError as exc:
            # A torn response line is indistinguishable from a lost
            # connection: resynchronising mid-stream is impossible, so
            # treat it as one and let the retry layer resubmit.
            raise ConnectionResetError(
                f"unparsable response line: {exc}"
            ) from None
        if not isinstance(response, dict):
            raise ConnectionResetError(
                f"response must be a JSON object, got {type(response).__name__}"
            )
        return response

    def wait(self, request_id: str, deadline: Optional[float] = None) -> dict:
        """Block until the response with this ``id`` arrives.

        Responses for *other* outstanding requests that arrive first are
        buffered and returned by their own :meth:`wait` calls — that is
        what makes pipelining safe. Under a retrying policy, transport
        failures reconnect and re-submit all outstanding requests, and
        ``429``/``503`` responses back off and resend; ``deadline``
        (seconds, defaulting to the policy's) bounds the whole affair.
        Raises :class:`~repro.exceptions.ServiceError` when the budget
        is exhausted, with :attr:`pending` attached.
        """
        if request_id in self._responses:
            self._sent.pop(request_id, None)
            return self._responses.pop(request_id)
        policy = self._retry
        budget = deadline if deadline is not None else policy.deadline
        cutoff = None if budget is None else time.monotonic() + budget
        attempt = 0

        def out_of_budget() -> bool:
            return cutoff is not None and time.monotonic() >= cutoff

        def spend_retry(reason: str, exc: Optional[BaseException]) -> None:
            nonlocal attempt
            if attempt >= policy.retries or out_of_budget():
                raise ServiceError(
                    f"no response for request {request_id!r} after "
                    f"{attempt} retries"
                    + (f": {type(exc).__name__}: {exc}" if exc else ""),
                    pending=tuple(self._sent),
                ) from exc
            self._note_retry(reason)
            delay = policy.backoff(attempt, self._rng)
            if cutoff is not None:
                delay = min(delay, max(0.0, cutoff - time.monotonic()))
            time.sleep(delay)
            attempt += 1

        while True:
            if out_of_budget():
                raise ServiceError(
                    f"deadline of {budget}s exhausted waiting for "
                    f"request {request_id!r}",
                    pending=tuple(self._sent),
                )
            try:
                response = self._read_response()
            except OSError as exc:
                spend_retry("transport", exc)
                try:
                    self._reconnect_and_resubmit()
                except OSError:
                    pass  # next iteration fails fast and spends a retry
                continue
            response_id = response.get("id")
            code = response.get("code")
            if (
                policy.retry_rejected
                and code in (REJECTED, UNAVAILABLE)
                and isinstance(response_id, str)
                and response_id in self._sent
                and attempt < policy.retries
                and not out_of_budget()
            ):
                # The server said "not now" (queue full / draining):
                # back off and resend the same request id.
                reason = "rejected" if code == REJECTED else "unavailable"
                spend_retry(reason, None)
                try:
                    self._sock.sendall(
                        encode_message(self._sent[response_id]).encode("utf-8")
                    )
                except (OSError, AttributeError):
                    pass  # connection loss here is caught by the next read
                continue
            if response_id == request_id:
                self._sent.pop(request_id, None)
                return response
            if response_id is not None:
                self._sent.pop(str(response_id), None)
                self._responses[str(response_id)] = response

    def call(self, payload: dict) -> dict:
        """Send one request and block for its response."""
        return self.wait(self.send(payload))

    # -- operations ------------------------------------------------------------
    def send_solve(
        self,
        dimacs: Optional[str] = None,
        clauses=None,
        **options,
    ) -> str:
        """Pipeline one ``solve`` request; returns the ``id`` to wait on.

        Exactly one of ``dimacs`` (a DIMACS CNF string) or ``clauses``
        (signed-integer literal lists) describes the formula; ``options``
        are the remaining protocol fields (``solver``, ``assumptions``,
        ``timeout``, ``preprocess``, ``samples``, ``seed``, ``label``...).
        """
        payload = {"op": "solve", **options}
        if dimacs is not None:
            payload["dimacs"] = dimacs
        if clauses is not None:
            payload["clauses"] = [list(clause) for clause in clauses]
        return self.send(payload)

    def solve(
        self,
        dimacs: Optional[str] = None,
        clauses=None,
        **options,
    ) -> dict:
        """Solve one formula and return the full response dict.

        Raises :class:`ProtocolError` on any non-200 response (the
        server's error message and code are preserved); a 200 response is
        returned as-is, with ``result`` holding the outcome payload and
        ``from_cache`` / ``deduped`` telling how it was served.
        """
        response = self.wait(self.send_solve(dimacs=dimacs, clauses=clauses, **options))
        if response["code"] != OK:
            raise ProtocolError(
                response.get("error", "request failed"), code=response["code"]
            )
        return response

    def solve_many(self, requests: list[dict]) -> list[dict]:
        """Pipeline many ``solve`` payloads; responses in request order.

        Each element is a protocol payload minus the ``op`` (for example
        ``{"dimacs": text, "solver": "cdcl"}``). All requests are written
        before any response is read, so identical formulas in the batch
        exercise the server's in-flight deduplication.
        """
        ids = [self.send({"op": "solve", **request}) for request in requests]
        return [self.wait(request_id) for request_id in ids]

    def ping(self) -> bool:
        """Liveness probe; ``True`` when the server answers."""
        return self.call({"op": "ping"}).get("code") == OK

    def stats(self) -> dict:
        """The server's counters / queue depths / cache state snapshot."""
        response = self.call({"op": "stats"})
        if response["code"] != OK:
            raise ProtocolError(
                response.get("error", "stats failed"), code=response["code"]
            )
        return response["stats"]

    def shutdown(self) -> bool:
        """Ask the server to drain, compact its cache and exit."""
        return self.call({"op": "shutdown"}).get("code") == OK
