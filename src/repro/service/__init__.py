"""repro.service — the always-on solve server and its client.

The batch runner (:mod:`repro.runtime`) answers one CLI invocation and
exits; this package keeps the whole stack resident and serves *streams*
of DIMACS solve jobs over a newline-delimited JSON protocol:

* :mod:`repro.service.protocol` — the wire format: request parsing and
  validation, :class:`SolveJob` construction, response encoding, the
  ``200 / 400 / 429 / 500 / 503`` response codes;
* :mod:`repro.service.server` — :class:`SolveService`, the asyncio
  event loop: in-flight deduplication by fingerprint (concurrent
  identical jobs share one solve), admission control with bounded-queue
  backpressure (``429`` rejections), a
  :class:`~repro.runtime.shards.ShardedResultCache` front so verdicts
  are durable the moment they are acknowledged, graceful degradation
  when persistence fails (serve-without-persist, never a 500), bounded
  graceful drain on ``shutdown``/``SIGTERM`` (stragglers get a clean
  ``503``), and proof-directory passthrough so served UNSAT verdicts
  keep their DRAT receipts. Runs over a TCP socket (``serve_tcp``) or
  stdin/stdout (``serve_stdio``);
* :mod:`repro.service.client` — :class:`ServiceClient`, a small
  blocking client for scripting and tests (request pipelining
  included), with opt-in :class:`RetryPolicy` resilience: exponential
  backoff with full jitter, automatic reconnect and idempotent
  re-submission of outstanding requests.

Several servers may share one cache directory — every shard write
happens under a cross-process lease (:mod:`repro.runtime.locks`) — and
:mod:`repro.faults` can inject deterministic failures at the service's
IO boundaries for chaos testing (``repro serve --fault-plan``).

Execution sits on :class:`repro.runtime.pool.JobExecutor` — the same
submit/collect core the batch runner uses — so verdicts, seeds and
timeout semantics are identical whether a formula arrives via ``repro
batch`` or ``repro serve``.

The CLI front ends are ``repro serve`` and ``repro client``; the
protocol and operational notes live in ``docs/service.md``.

Quickstart::

    from repro.service import ServiceConfig, SolveService

    service = SolveService(ServiceConfig(workers=2, cache_dir="cache/"))
    service.run_tcp(host="127.0.0.1", port=9090)   # blocks until shutdown
"""

from repro.exceptions import ServiceError
from repro.service.client import RetryPolicy, ServiceClient
from repro.service.protocol import (
    BAD_REQUEST,
    FAILED,
    OK,
    PROTOCOL_VERSION,
    REJECTED,
    UNAVAILABLE,
    ProtocolError,
    build_job,
    encode_message,
    error_response,
    ok_response,
    parse_request,
)
from repro.service.server import ServiceConfig, ServiceStats, SolveService

__all__ = [
    "BAD_REQUEST",
    "FAILED",
    "OK",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "REJECTED",
    "RetryPolicy",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceStats",
    "SolveService",
    "UNAVAILABLE",
    "build_job",
    "encode_message",
    "error_response",
    "ok_response",
    "parse_request",
]
