"""Streaming simulation of an analog netlist."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.analog.blocks import Block
from repro.analog.netlist import Netlist
from repro.exceptions import NetlistError
from repro.utils.validation import check_positive_int


class AnalogSimulator:
    """Evaluates a :class:`Netlist` block-by-block over streamed sample blocks.

    The simulator fixes the topological order once at construction time and
    then evaluates every block per call to :meth:`run_block`, passing along
    the wire vectors. Stateful blocks carry their state across calls, so a
    long observation window can be split into many small blocks without
    changing the result.
    """

    def __init__(self, netlist: Netlist) -> None:
        self._netlist = netlist
        self._order: List[Block] = netlist.topological_order()

    @property
    def netlist(self) -> Netlist:
        """The netlist being simulated."""
        return self._netlist

    def reset(self) -> None:
        """Reset all stateful blocks to their initial state."""
        self._netlist.reset()

    def run_block(
        self, block_size: int, probes: Optional[Iterable[str]] = None
    ) -> Dict[str, np.ndarray]:
        """Simulate ``block_size`` time samples.

        Parameters
        ----------
        block_size:
            Number of samples to advance.
        probes:
            Wire names whose sample vectors should be returned; ``None``
            returns every wire (convenient for debugging, memory-heavier).

        Returns
        -------
        dict
            Mapping from probed wire name to its vector of samples.
        """
        check_positive_int(block_size, "block_size")
        wire_values: Dict[str, np.ndarray] = {}
        for block in self._order:
            inputs = [wire_values[wire] for wire in block.inputs]
            output = block.process(inputs, block_size)
            output = np.asarray(output, dtype=np.float64)
            if output.shape != (block_size,):
                raise NetlistError(
                    f"block {block.name!r} produced shape {output.shape}, "
                    f"expected ({block_size},)"
                )
            wire_values[block.output] = output
        if probes is None:
            return wire_values
        missing = [wire for wire in probes if wire not in wire_values]
        if missing:
            raise NetlistError(f"probed wires are not driven: {missing}")
        return {wire: wire_values[wire] for wire in probes}

    def run(
        self,
        total_samples: int,
        block_size: int = 10_000,
        probes: Optional[Iterable[str]] = None,
    ) -> Dict[str, np.ndarray]:
        """Simulate ``total_samples`` samples, streaming in blocks.

        Only the **final block's** probe vectors are returned (the typical
        probe is a correlator output, whose last sample is the quantity of
        interest); use :meth:`run_block` directly to retain full traces.
        """
        check_positive_int(total_samples, "total_samples")
        check_positive_int(block_size, "block_size")
        remaining = total_samples
        result: Dict[str, np.ndarray] = {}
        while remaining > 0:
            size = min(block_size, remaining)
            result = self.run_block(size, probes)
            remaining -= size
        return result
