"""Analog component library for the NBL-SAT hardware model.

Every block is a discrete-time component: it consumes one NumPy vector per
input wire and produces one output vector of the same length per processing
call. Stateful blocks (low-pass filters, correlators) preserve their state
across calls, so long simulations can be streamed block-by-block exactly
like the sampled NBL engine streams its noise.
"""

from __future__ import annotations

import abc
from typing import Optional, Sequence

import numpy as np

from repro.exceptions import NetlistError
from repro.noise.base import Carrier
from repro.noise.uniform import UniformCarrier
from repro.utils.rng import SeedLike, as_generator


class Block(abc.ABC):
    """Abstract analog block: named inputs, a single named output."""

    def __init__(self, name: str, inputs: Sequence[str], output: str) -> None:
        if not name:
            raise NetlistError("block name must be non-empty")
        if not output:
            raise NetlistError(f"block {name!r} must drive a named output wire")
        self.name = name
        self.inputs = list(inputs)
        self.output = output

    @abc.abstractmethod
    def process(self, inputs: list[np.ndarray], block_size: int) -> np.ndarray:
        """Produce ``block_size`` output samples from the input vectors."""

    def reset(self) -> None:
        """Clear any internal state (default: stateless, nothing to do)."""

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(name={self.name!r}, inputs={self.inputs}, "
            f"output={self.output!r})"
        )


class NoiseSourceBlock(Block):
    """A basis noise source: e.g. a wideband amplifier over thermal noise.

    Each source owns an independent RNG stream so distinct sources are
    pairwise independent regardless of evaluation order.
    """

    def __init__(
        self,
        name: str,
        output: str,
        carrier: Optional[Carrier] = None,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(name, [], output)
        self.carrier = carrier if carrier is not None else UniformCarrier()
        self._rng = as_generator(seed)

    def process(self, inputs: list[np.ndarray], block_size: int) -> np.ndarray:
        return self.carrier.sample(self._rng, (block_size,))


class ConstantBlock(Block):
    """A DC source holding a constant value (used for bound literals)."""

    def __init__(self, name: str, output: str, value: float = 0.0) -> None:
        super().__init__(name, [], output)
        self.value = float(value)

    def process(self, inputs: list[np.ndarray], block_size: int) -> np.ndarray:
        return np.full(block_size, self.value, dtype=np.float64)


class AdderBlock(Block):
    """Analog adder: element-wise sum of all input wires."""

    def __init__(self, name: str, inputs: Sequence[str], output: str) -> None:
        if not inputs:
            raise NetlistError(f"adder {name!r} needs at least one input")
        super().__init__(name, inputs, output)

    def process(self, inputs: list[np.ndarray], block_size: int) -> np.ndarray:
        total = np.zeros(block_size, dtype=np.float64)
        for signal in inputs:
            total += signal
        return total


class MultiplierBlock(Block):
    """Analog multiplier: element-wise product of all input wires."""

    def __init__(self, name: str, inputs: Sequence[str], output: str) -> None:
        if not inputs:
            raise NetlistError(f"multiplier {name!r} needs at least one input")
        super().__init__(name, inputs, output)

    def process(self, inputs: list[np.ndarray], block_size: int) -> np.ndarray:
        product = np.ones(block_size, dtype=np.float64)
        for signal in inputs:
            product = product * signal
        return product


class GainBlock(Block):
    """Wideband amplifier modelled as an ideal gain stage."""

    def __init__(self, name: str, inputs: Sequence[str], output: str, gain: float = 1.0) -> None:
        if len(inputs) != 1:
            raise NetlistError(f"gain block {name!r} takes exactly one input")
        super().__init__(name, inputs, output)
        self.gain = float(gain)

    def process(self, inputs: list[np.ndarray], block_size: int) -> np.ndarray:
        return inputs[0] * self.gain


class LowPassFilterBlock(Block):
    """Single-pole IIR low-pass filter ``y[k] = (1-α)·y[k-1] + α·x[k]``.

    ``alpha`` in (0, 1]; small alpha = long time constant. The filter keeps
    its last output across processing calls (streaming).
    """

    def __init__(self, name: str, inputs: Sequence[str], output: str, alpha: float = 0.01) -> None:
        if len(inputs) != 1:
            raise NetlistError(f"low-pass filter {name!r} takes exactly one input")
        if not 0.0 < alpha <= 1.0:
            raise NetlistError(f"alpha must lie in (0, 1], got {alpha}")
        super().__init__(name, inputs, output)
        self.alpha = float(alpha)
        self._state = 0.0

    def process(self, inputs: list[np.ndarray], block_size: int) -> np.ndarray:
        signal = inputs[0]
        output = np.empty(block_size, dtype=np.float64)
        state = self._state
        alpha = self.alpha
        one_minus = 1.0 - alpha
        for index in range(block_size):
            state = one_minus * state + alpha * signal[index]
            output[index] = state
        self._state = state
        return output

    def reset(self) -> None:
        self._state = 0.0


class CorrelatorBlock(Block):
    """Correlator: multiplies its inputs and integrates (running time average).

    With a single input it averages that signal; with two or more it
    averages their product — this is the ``⟨τ_N · Σ_N⟩`` observation block of
    the NBL-SAT engine. The output at sample ``k`` is the running mean over
    every sample processed so far (across calls).
    """

    def __init__(self, name: str, inputs: Sequence[str], output: str) -> None:
        if not inputs:
            raise NetlistError(f"correlator {name!r} needs at least one input")
        super().__init__(name, inputs, output)
        self._sum = 0.0
        self._count = 0

    def process(self, inputs: list[np.ndarray], block_size: int) -> np.ndarray:
        product = np.ones(block_size, dtype=np.float64)
        for signal in inputs:
            product = product * signal
        cumulative = self._sum + np.cumsum(product)
        counts = self._count + np.arange(1, block_size + 1)
        self._sum = float(cumulative[-1])
        self._count = int(counts[-1])
        return cumulative / counts

    def reset(self) -> None:
        self._sum = 0.0
        self._count = 0

    @property
    def mean(self) -> float:
        """Current running mean (0.0 before any sample)."""
        return self._sum / self._count if self._count else 0.0

    @property
    def samples_integrated(self) -> int:
        """Number of samples integrated so far."""
        return self._count
