"""Compile a CNF instance into the NBL-SAT analog block diagram.

The generated netlist follows the paper's Section V sketch literally:

* one noise source per literal per clause (2·m·n wideband-amplifier noise
  generators),
* per clause and variable an analog adder forming ``N^j_{x_i} + N^j_{~x_i}``,
* per clause a multiplier chain forming the full superposition ``T^j``, a
  multiplier chain forming the falsifying cube (every literal of the clause
  false), and a subtracting adder forming ``Z_j = T^j − T^j_falsified`` (see
  :mod:`repro.core.sigma` for why this, rather than summing the per-literal
  cubes, keeps every satisfying minterm with coefficient one),
* a multiplier forming ``Σ_N`` from the ``Z_j``,
* per variable multiplier chains forming the all-clause literal products of
  ``τ_N`` (Equation 2), with bound variables wired straight through,
* a final multiplier for ``S_N = τ_N · Σ_N`` feeding a correlator (and an
  optional low-pass filter probe).

:class:`AnalogNBLEngine` wraps the compiled netlist behind the same
``check(bindings) -> CheckResult`` interface as the other engines so it can
drive Algorithm 2 and the cross-validation experiments unchanged.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.analog.blocks import (
    AdderBlock,
    ConstantBlock,
    CorrelatorBlock,
    GainBlock,
    LowPassFilterBlock,
    MultiplierBlock,
    NoiseSourceBlock,
)
from repro.analog.engine import AnalogSimulator
from repro.analog.netlist import Netlist
from repro.cnf.formula import CNFFormula
from repro.core.result import CheckResult
from repro.core.sigma import falsifying_cube_bindings
from repro.exceptions import EngineError
from repro.noise.base import Carrier
from repro.noise.uniform import UniformCarrier
from repro.utils.rng import SeedLike, spawn_generators
from repro.utils.stats import RunningStats

#: Wire carrying the final running mean of S_N.
OUTPUT_WIRE = "s_n_mean"
#: Wire carrying the instantaneous S_N product.
SN_WIRE = "s_n"
#: Wire carrying the optional low-pass-filtered S_N.
FILTERED_WIRE = "s_n_filtered"


def _literal_wire(clause: int, variable: int, positive: bool) -> str:
    polarity = "p" if positive else "n"
    return f"noise_c{clause}_x{variable}_{polarity}"


def compile_nbl_sat_netlist(
    formula: CNFFormula,
    carrier: Optional[Carrier] = None,
    seed: SeedLike = None,
    bindings: Optional[Mapping[int, bool]] = None,
    include_lowpass: bool = False,
    lowpass_alpha: float = 0.01,
) -> Netlist:
    """Build the NBL-SAT analog netlist for ``formula``.

    Parameters
    ----------
    formula:
        The CNF instance.
    carrier:
        Noise statistics of every source (defaults to uniform [-0.5, 0.5]).
    seed:
        Seed from which every noise source's independent stream is spawned.
    bindings:
        Variable bindings of ``τ_N`` (Algorithm 2's reduced hyperspace).
    include_lowpass:
        Also instantiate a single-pole low-pass filter probe on ``S_N``
        (slower to simulate; the correlator is always present).
    lowpass_alpha:
        Filter coefficient when ``include_lowpass`` is set.
    """
    if formula.num_variables == 0 or formula.num_clauses == 0:
        raise EngineError("the analog compiler requires at least one variable and clause")
    carrier = carrier if carrier is not None else UniformCarrier()
    bindings = dict(bindings or {})
    for variable in bindings:
        if not 1 <= variable <= formula.num_variables:
            raise EngineError(
                f"bound variable x{variable} out of range 1..{formula.num_variables}"
            )

    m, n = formula.num_clauses, formula.num_variables
    netlist = Netlist()
    generators = spawn_generators(seed, 2 * m * n)
    generator_index = 0

    # 1. Noise sources and per-(clause, variable) pair adders.
    for clause in range(1, m + 1):
        for variable in range(1, n + 1):
            for positive in (True, False):
                wire = _literal_wire(clause, variable, positive)
                netlist.add(
                    NoiseSourceBlock(
                        name=f"src_{wire}",
                        output=wire,
                        carrier=carrier,
                        seed=generators[generator_index],
                    )
                )
                generator_index += 1
            netlist.add(
                AdderBlock(
                    name=f"pair_c{clause}_x{variable}",
                    inputs=[
                        _literal_wire(clause, variable, True),
                        _literal_wire(clause, variable, False),
                    ],
                    output=f"pair_c{clause}_x{variable}",
                )
            )

    # 2. Per-clause satisfying superpositions Z_j = T^j - T^j_falsified.
    clause_wires: list[str] = []
    for clause_index, clause in enumerate(formula, start=1):
        z_wire = f"Z_c{clause_index}"
        if clause.is_empty:
            # Empty clause: its superposition is identically zero.
            netlist.add(ConstantBlock(name=f"const_{z_wire}", output=z_wire, value=0.0))
            clause_wires.append(z_wire)
            continue

        full_wire = f"T_full_c{clause_index}"
        netlist.add(
            MultiplierBlock(
                name=f"mult_{full_wire}",
                inputs=[f"pair_c{clause_index}_x{v}" for v in range(1, n + 1)],
                output=full_wire,
            )
        )
        falsifying = falsifying_cube_bindings(clause)
        if falsifying is None:
            # Tautological clause: every minterm satisfies it, Z_j = T^j.
            netlist.add(
                GainBlock(
                    name=f"gain_{z_wire}", inputs=[full_wire], output=z_wire, gain=1.0
                )
            )
            clause_wires.append(z_wire)
            continue

        falsified_wire = f"T_falsified_c{clause_index}"
        falsified_inputs = []
        for variable in range(1, n + 1):
            if variable in falsifying:
                falsified_inputs.append(
                    _literal_wire(clause_index, variable, falsifying[variable])
                )
            else:
                falsified_inputs.append(f"pair_c{clause_index}_x{variable}")
        netlist.add(
            MultiplierBlock(
                name=f"mult_{falsified_wire}",
                inputs=falsified_inputs,
                output=falsified_wire,
            )
        )
        negated_wire = f"neg_{falsified_wire}"
        netlist.add(
            GainBlock(
                name=f"gain_{negated_wire}",
                inputs=[falsified_wire],
                output=negated_wire,
                gain=-1.0,
            )
        )
        netlist.add(
            AdderBlock(
                name=f"adder_{z_wire}", inputs=[full_wire, negated_wire], output=z_wire
            )
        )
        clause_wires.append(z_wire)

    netlist.add(MultiplierBlock(name="mult_sigma", inputs=clause_wires, output="sigma"))

    # 3. τ_N: all-clause literal products per variable, with optional binding.
    tau_factor_wires: list[str] = []
    for variable in range(1, n + 1):
        positive_inputs = [_literal_wire(c, variable, True) for c in range(1, m + 1)]
        negative_inputs = [_literal_wire(c, variable, False) for c in range(1, m + 1)]
        positive_wire = f"tau_pos_x{variable}"
        negative_wire = f"tau_neg_x{variable}"
        netlist.add(
            MultiplierBlock(
                name=f"mult_{positive_wire}", inputs=positive_inputs, output=positive_wire
            )
        )
        netlist.add(
            MultiplierBlock(
                name=f"mult_{negative_wire}", inputs=negative_inputs, output=negative_wire
            )
        )
        factor_wire = f"tau_factor_x{variable}"
        if variable in bindings:
            chosen = positive_wire if bindings[variable] else negative_wire
            netlist.add(
                GainBlock(
                    name=f"bind_x{variable}", inputs=[chosen], output=factor_wire, gain=1.0
                )
            )
        else:
            netlist.add(
                AdderBlock(
                    name=f"adder_{factor_wire}",
                    inputs=[positive_wire, negative_wire],
                    output=factor_wire,
                )
            )
        tau_factor_wires.append(factor_wire)

    netlist.add(MultiplierBlock(name="mult_tau", inputs=tau_factor_wires, output="tau"))

    # 4. S_N product, correlator and optional low-pass probe.
    netlist.add(MultiplierBlock(name="mult_s_n", inputs=["tau", "sigma"], output=SN_WIRE))
    netlist.add(CorrelatorBlock(name="correlator", inputs=[SN_WIRE], output=OUTPUT_WIRE))
    if include_lowpass:
        netlist.add(
            LowPassFilterBlock(
                name="lpf_s_n",
                inputs=[SN_WIRE],
                output=FILTERED_WIRE,
                alpha=lowpass_alpha,
            )
        )
    return netlist


class AnalogNBLEngine:
    """NBL-SAT engine backed by the compiled analog block diagram.

    The engine exposes the same ``check(bindings)`` interface as
    :class:`repro.core.sampled.SampledNBLEngine`, so Algorithm 2 and every
    experiment driver can run on top of the hardware model unchanged. Each
    check compiles a fresh netlist (bindings change the τ_N wiring, exactly
    as a field-programmable NBL engine would be reconfigured).
    """

    name = "analog"

    def __init__(
        self,
        formula: CNFFormula,
        carrier: Optional[Carrier] = None,
        seed: SeedLike = 0,
        max_samples: int = 100_000,
        block_size: int = 10_000,
        decision_fraction: float = 0.5,
        include_lowpass: bool = False,
    ) -> None:
        if max_samples <= 0 or block_size <= 0:
            raise EngineError("max_samples and block_size must be positive")
        if not 0.0 < decision_fraction < 1.0:
            raise EngineError("decision_fraction must lie in (0, 1)")
        self.formula = formula
        self._carrier = carrier if carrier is not None else UniformCarrier()
        self._seed = seed
        self._max_samples = max_samples
        self._block_size = min(block_size, max_samples)
        self._decision_fraction = decision_fraction
        self._include_lowpass = include_lowpass
        self._check_counter = 0

    @property
    def minterm_signal(self) -> float:
        """Analytic one-satisfying-minterm signal level ``E[x²]^{n·m}``."""
        exponent = self.formula.num_variables * self.formula.num_clauses
        return float(self._carrier.power**exponent)

    @property
    def decision_threshold(self) -> float:
        """The SAT/UNSAT threshold applied to the correlator output."""
        return self._decision_fraction * self.minterm_signal

    def component_counts(self) -> dict[str, int]:
        """Bill of materials of the compiled engine (no bindings)."""
        netlist = compile_nbl_sat_netlist(
            self.formula, self._carrier, self._seed, include_lowpass=self._include_lowpass
        )
        return netlist.component_counts()

    def check(self, bindings: Optional[Mapping[int, bool]] = None) -> CheckResult:
        """Algorithm 1 on the analog model: integrate S_N and threshold the mean.

        The correlator block is the hardware observable; alongside it, the
        engine accumulates a standard error of the S_N samples so the
        observation window can stop adaptively (3σ separation from the
        threshold), mirroring the sampled engine's convergence policy.
        """
        self._check_counter += 1
        netlist = compile_nbl_sat_netlist(
            self.formula,
            carrier=self._carrier,
            # A fresh, deterministic seed per check keeps repeated checks
            # independent while the whole engine stays reproducible.
            seed=(None if self._seed is None else (hash((self._seed, self._check_counter)) & 0x7FFFFFFF)),
            bindings=bindings,
            include_lowpass=self._include_lowpass,
        )
        simulator = AnalogSimulator(netlist)
        correlator = netlist.block("correlator")
        threshold = self.decision_threshold
        stats = RunningStats()
        converged = False
        while stats.count < self._max_samples:
            size = min(self._block_size, self._max_samples - stats.count)
            probes = simulator.run_block(size, probes=[SN_WIRE])
            stats.push_batch(probes[SN_WIRE])
            if stats.count >= self._block_size:
                margin = 3.0 * stats.std_error
                if stats.mean - margin > threshold or stats.mean + margin < threshold:
                    converged = True
                    break
        mean = correlator.mean
        return CheckResult(
            satisfiable=mean > threshold,
            mean=mean,
            threshold=threshold,
            samples_used=correlator.samples_integrated,
            std_error=stats.std_error,
            converged=converged,
            expected_minterm_signal=self.minterm_signal,
            engine=self.name,
            bindings=dict(bindings or {}),
        )

    def __repr__(self) -> str:
        return (
            f"AnalogNBLEngine(n={self.formula.num_variables}, "
            f"m={self.formula.num_clauses}, carrier={self._carrier.name})"
        )
